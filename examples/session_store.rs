//! A web session store — the kind of skewed, variable-value workload the
//! paper's introduction motivates (§III-B: "real-world applications often
//! have obvious hotspots, as well as variable-sized key-value entries").
//!
//! Eight simulated worker threads serve a zipfian stream of session
//! lookups and updates over 100 k sessions with 64–512-byte payloads. The
//! demo shows the adaptive in-place update at work: hot sessions are
//! absorbed by the persistent CPU cache, and the run prints how much PM
//! write traffic that saved versus an always-flush policy.
//!
//! ```sh
//! cargo run --release --example session_store
//! ```

use std::sync::Arc;

use spash_repro::index_api::PersistentIndex;
use spash_repro::pmem::{PmConfig, PmDevice};
use spash_repro::spash::{Spash, SpashConfig, UpdatePolicy};
use spash_repro::workloads::{Rng64, Zipfian};

const SESSIONS: u64 = 100_000;
const OPS_PER_WORKER: u64 = 50_000;
const WORKERS: u64 = 8;

fn session_payload(rng: &mut Rng64, session: u64) -> Vec<u8> {
    // 64–512 bytes of "serialized session state".
    let len = 64 + (rng.next_u64() % 448) as usize;
    let mut v = vec![0u8; len];
    let tag = session.to_le_bytes();
    for (i, b) in v.iter_mut().enumerate() {
        *b = tag[i % 8] ^ i as u8;
    }
    v
}

fn run(policy: UpdatePolicy, label: &str) -> (f64, u64) {
    let dev = PmDevice::new(PmConfig {
        arena_size: 1 << 30,
        cache_capacity: 4 << 20,
        ..PmConfig::default()
    });
    let mut ctx = dev.ctx();
    let store = Arc::new(
        Spash::format(
            &mut ctx,
            SpashConfig {
                update_policy: policy,
                ..SpashConfig::default()
            },
        )
        .expect("format"),
    );

    // Load phase: create every session.
    let mut rng = Rng64::new(1);
    for s in 1..=SESSIONS {
        let payload = session_payload(&mut rng, s);
        store.insert(&mut ctx, s, &payload).unwrap();
    }

    let before = dev.snapshot();
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let store = Arc::clone(&store);
            let dev = Arc::clone(&dev);
            scope.spawn(move || {
                let mut ctx = dev.ctx();
                let zipf = Zipfian::new(SESSIONS, 0.99);
                let mut rng = Rng64::new(100 + w);
                let mut buf = Vec::new();
                for _ in 0..OPS_PER_WORKER {
                    let session = 1 + zipf.rank(rng.next_f64());
                    if rng.below(100) < 70 {
                        // 70% session reads.
                        buf.clear();
                        assert!(store.get(&mut ctx, session, &mut buf));
                    } else {
                        // 30% session refreshes (same size class → pure
                        // in-place update).
                        let payload = session_payload(&mut rng, session);
                        store.update(&mut ctx, session, &payload).unwrap();
                    }
                }
            });
        }
    });
    dev.quiesce();
    let d = dev.snapshot().since(&before);
    let mb = d.media_write_bytes as f64 / (1 << 20) as f64;
    println!(
        "{label:<14} media writes: {mb:8.1} MiB  (XPLines {:>8}, amplification {:.2})",
        d.xp_writes,
        d.write_amplification()
    );
    (mb, d.xp_writes)
}

fn main() {
    println!(
        "session store: {SESSIONS} sessions, {} ops across {WORKERS} workers, zipfian 0.99\n",
        OPS_PER_WORKER * WORKERS
    );
    let (adaptive_mb, _) = run(SpashConfig::default().update_policy, "adaptive");
    let (flush_mb, _) = run(UpdatePolicy::AlwaysFlush, "always-flush");
    println!(
        "\nadaptive in-place updates cut PM write traffic by {:.1}% \
         (paper §III-B / Table I: hot sessions never leave the persistent cache)",
        (1.0 - adaptive_mb / flush_mb) * 100.0
    );
}
