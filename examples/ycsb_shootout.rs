//! A miniature YCSB shoot-out across every index in the repository —
//! the same drivers that regenerate the paper's Fig 10, at toy scale.
//!
//! ```sh
//! cargo run --release --example ycsb_shootout
//! ```

use spash_repro::index_api::{run_one, BatchOp, PersistentIndex};
use spash_repro::pmem::{PmConfig, PmDevice};
use spash_repro::spash::{Spash, SpashConfig};
use spash_repro::baselines::{CLevel, Cceh, Dash, Halo, Level, Plush};
use spash_repro::workloads::{
    load_keys, Distribution, Mix, OpStream, ValueSize, WorkOp, WorkloadConfig,
};

const KEYS: u64 = 100_000;
const OPS: u64 = 60_000;

fn build(dev: &std::sync::Arc<PmDevice>, which: &str) -> Box<dyn PersistentIndex> {
    let mut ctx = dev.ctx();
    match which {
        "Spash" => Box::new(Spash::format(&mut ctx, SpashConfig::default()).unwrap()),
        "CCEH" => Box::new(Cceh::format(&mut ctx, 2).unwrap()),
        "Dash" => Box::new(Dash::format(&mut ctx, 2).unwrap()),
        "Level" => Box::new(Level::format(&mut ctx, 10).unwrap()),
        "CLevel" => Box::new(CLevel::format(&mut ctx, 10).unwrap()),
        "Plush" => Box::new(Plush::format(&mut ctx, 8).unwrap()),
        "Halo" => Box::new(Halo::format(&mut ctx, 256 << 20, u64::MAX).unwrap()),
        _ => unreachable!(),
    }
}

fn main() {
    println!("mini-YCSB: {KEYS} keys, {OPS} ops, zipfian 0.99, balanced 50:50\n");
    println!(
        "{:<8} {:>12} {:>14} {:>14} {:>10}",
        "index", "Mops (virt)", "PM CL reads/op", "PM CL writes/op", "load fac"
    );
    for which in ["Spash", "CCEH", "Dash", "Level", "CLevel", "Plush", "Halo"] {
        let dev = PmDevice::new(PmConfig {
            arena_size: 512 << 20,
            cache_capacity: 1 << 20,
            ..PmConfig::default()
        });
        let index = build(&dev, which);
        let cfg = WorkloadConfig::new(KEYS, Distribution::Zipfian, Mix::BALANCED, ValueSize::Inline);

        // Load.
        let mut ctx = dev.ctx();
        let mut stream = OpStream::new(&cfg, 0);
        for k in load_keys(&cfg) {
            let v = stream.expected_value(k);
            index.insert(&mut ctx, k, &v).unwrap();
        }

        // Run (single simulated thread; the bench harness sweeps 56).
        dev.quiesce();
        let floor0 = dev.vtime_floor();
        dev.raise_vtime_floor(ctx.now());
        let before = dev.snapshot();
        let mut ctx = dev.ctx();
        let start = ctx.now().max(floor0);
        let mut stream = OpStream::new(&cfg, 1);
        for _ in 0..OPS {
            let op = stream.next_op();
            let bop = match &op {
                WorkOp::Search(k) => BatchOp::Get(*k),
                WorkOp::Update(k, v) => BatchOp::Update(*k, v),
                WorkOp::Insert(k, v) => BatchOp::Insert(*k, v),
                WorkOp::Delete(k) => BatchOp::Remove(*k),
            };
            run_one(index.as_ref(), &mut ctx, &bop);
        }
        dev.quiesce();
        let d = dev.snapshot().since(&before);
        let elapsed = (ctx.now() - start).max(1);
        println!(
            "{:<8} {:>12.3} {:>14.2} {:>14.2} {:>10.2}",
            which,
            OPS as f64 * 1e3 / elapsed as f64,
            d.cl_reads as f64 / OPS as f64,
            d.cl_writes as f64 / OPS as f64,
            index.load_factor(),
        );
    }
    println!("\n(the full thread sweeps live in `cargo bench -p spash-bench`)");
}
