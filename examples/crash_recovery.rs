//! Durable linearizability in action: crash the platform mid-workload and
//! recover the index (paper §II-C, §IV).
//!
//! The demo also contrasts the two persistence domains:
//! * under **eADR** (the paper's platform) every completed operation
//!   survives, with zero flush instructions on the critical path;
//! * under **ADR** (volatile cache) the same store-without-flush code
//!   *loses* unflushed data — the gap eADR closes.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use std::sync::Arc;

use spash_repro::index_api::PersistentIndex;
use spash_repro::pmem::{PmAddr, PmConfig, PmDevice};
use spash_repro::spash::{Spash, SpashConfig};

fn main() {
    eadr_crash_and_recover();
    adr_gap_demo();
}

fn eadr_crash_and_recover() {
    println!("== eADR: crash + recovery of a live Spash index ==");
    let dev = PmDevice::new(PmConfig {
        arena_size: 256 << 20,
        ..PmConfig::eadr_test()
    });
    let mut ctx = dev.ctx();
    let index = Spash::format(&mut ctx, SpashConfig::default()).expect("format");

    // Four writers hammer the index...
    let index = Arc::new(index);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let index = Arc::clone(&index);
            let dev = Arc::clone(&dev);
            s.spawn(move || {
                let mut ctx = dev.ctx();
                for i in 0..25_000u64 {
                    let k = 1 + t * 25_000 + i;
                    index.insert(&mut ctx, k, &k.to_le_bytes()).unwrap();
                    if i % 10 == 0 {
                        index.update(&mut ctx, k, &(k * 2).to_le_bytes()).unwrap();
                    }
                }
            });
        }
    });
    let live = index.len();
    println!("before crash: {live} entries, depth grown through splits");
    drop(index);

    // Power failure: under eADR the reserved energy flushes the cache, so
    // the arena now holds exactly the durable state.
    dev.simulate_power_failure();
    println!("-- power failure --");

    // Recovery: scan the allocator's chunk headers and the segment-info
    // table, rebuild the volatile directory, recount entries.
    let mut ctx2 = dev.ctx();
    let recovered = Spash::recover(&mut ctx2, SpashConfig::default()).expect("recoverable");
    assert_eq!(recovered.len(), live, "every completed insert survived");
    let mut buf = Vec::new();
    assert!(recovered.get(&mut ctx2, 11, &mut buf));
    assert_eq!(buf, (22u64).to_le_bytes(), "updated value survived");
    println!(
        "recovered {} entries; spot checks pass; index is writable again",
        recovered.len()
    );
    recovered.insert_u64(&mut ctx2, 999_999, 1).unwrap();
    println!();
}

fn adr_gap_demo() {
    println!("== ADR: why volatile caches need flushes ==");
    // Full crash fidelity captures pre-images so the simulated failure can
    // actually revert unflushed cachelines.
    let dev = PmDevice::new(PmConfig::adr_test());
    let mut ctx = dev.ctx();

    // Two raw 8-byte writes: one flushed, one not.
    ctx.write_u64(PmAddr(4096), 0xAAAA);
    ctx.flush(PmAddr(4096));
    ctx.fence();
    ctx.write_u64(PmAddr(8192), 0xBBBB); // store only — visible, not durable

    dev.simulate_power_failure();

    let flushed = dev.arena().load_u64(PmAddr(4096));
    let unflushed = dev.arena().load_u64(PmAddr(8192));
    println!("flushed write   after crash: {flushed:#x}  (survived)");
    println!("unflushed write after crash: {unflushed:#x}       (lost!)");
    println!(
        "\neADR removes exactly this gap — visibility implies durability, so \
         Spash needs no flushes for correctness (paper §II-C)."
    );
}
