//! Quickstart: create a simulated eADR platform, build a Spash index, and
//! run the basic operations.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spash_repro::index_api::PersistentIndex;
use spash_repro::pmem::{PmConfig, PmDevice};
use spash_repro::spash::{Spash, SpashConfig};

fn main() {
    // A 256 MiB simulated persistent-memory device with the CPU cache
    // inside the persistence domain (eADR) — the platform the paper
    // targets.
    let dev = PmDevice::new(PmConfig {
        arena_size: 256 << 20,
        ..PmConfig::default()
    });

    // Every simulated thread talks to the device through its own context,
    // which carries the virtual clock and access accounting.
    let mut ctx = dev.ctx();

    // Format the arena and build an empty index.
    let index = Spash::format(&mut ctx, SpashConfig::default()).expect("format");

    // Small values (6 bytes) are stored inline in the compound slots;
    // anything larger goes out-of-place behind a 48-bit pointer.
    index.insert(&mut ctx, 1, b"tiny:)").unwrap();
    index
        .insert(&mut ctx, 2, b"a larger value that lives out-of-place in PM")
        .unwrap();

    let mut buf = Vec::new();
    assert!(index.get(&mut ctx, 2, &mut buf));
    println!("key 2 -> {:?}", String::from_utf8_lossy(&buf));

    // In-place update: hot keys are absorbed by the persistent CPU cache.
    index.insert_u64(&mut ctx, 3, 30).unwrap();
    for v in 0..1000 {
        index.update_u64(&mut ctx, 3, v).unwrap();
    }
    assert_eq!(index.get_u64(&mut ctx, 3), Some(999));

    assert!(index.remove(&mut ctx, 1));
    assert!(!index.remove(&mut ctx, 1), "double remove misses");

    // Load a few thousand keys to trigger segment splits and a directory
    // doubling or two.
    for k in 100..50_000u64 {
        index.insert_u64(&mut ctx, k, k * 7).unwrap();
    }
    assert_eq!(index.get_u64(&mut ctx, 31_415), Some(31_415 * 7));

    println!(
        "entries={} capacity={} load-factor={:.2}",
        index.len(),
        index.capacity(),
        index.load_factor()
    );

    // The platform counts every PM access; this is what regenerates the
    // paper's Fig 8.
    let s = dev.snapshot();
    println!(
        "PM traffic: {} cacheline reads, {} cacheline writes, {} XPLine writes (WA {:.2})",
        s.cl_reads,
        s.cl_writes,
        s.xp_writes,
        s.write_amplification()
    );
    let h = index.htm_stats();
    println!(
        "HTM: {} commits, {} conflict aborts, {} lock fallbacks",
        h.commits,
        h.conflict_aborts,
        index.fallback_count()
    );
    println!("virtual time elapsed: {:.2} ms", ctx.now() as f64 / 1e6);
}
