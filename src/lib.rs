//! Umbrella crate for the Spash reproduction workspace.
//!
//! Re-exports every sub-crate so that examples and integration tests can
//! depend on a single name. See the README for the architecture overview
//! and DESIGN.md for the system inventory.

pub use spash;
pub use spash_alloc as alloc;
pub use spash_baselines as baselines;
pub use spash_htm as htm;
pub use spash_index_api as index_api;
pub use spash_pmem as pmem;
pub use spash_sched as sched;
pub use spash_service as service;
pub use spash_workloads as workloads;
