//! Targeted tests of the metadata-free segment machinery: overflow hints,
//! circular probing, hint-slot exhaustion forcing splits, and hint cleanup
//! on delete (paper §III-A).

use spash::slot::{bucket_of, SLOTS_PER_BUCKET};
use spash::{Spash, SpashConfig};
use spash_index_api::{hash_key, PersistentIndex};
use spash_pmem::{PmConfig, PmDevice};

fn setup() -> (std::sync::Arc<PmDevice>, Spash, spash_pmem::MemCtx) {
    let dev = PmDevice::new(PmConfig {
        arena_size: 64 << 20,
        ..PmConfig::small_test()
    });
    let mut ctx = dev.ctx();
    let idx = Spash::format(&mut ctx, SpashConfig::test_default()).unwrap();
    (dev, idx, ctx)
}

/// Keys that all land in one directory slot are hard to fabricate with a
/// strong hash; instead, find keys sharing a *bucket* within whatever
/// segment they route to by brute force.
fn keys_sharing_bucket(n: usize) -> Vec<u64> {
    let mut found = Vec::new();
    let target_bucket = 2u8;
    for k in 1..200_000u64 {
        let h = hash_key(k);
        // Same top-2 bits (initial segments at depth 2) and same bucket.
        if h >> 62 == 0b01 && bucket_of(h) == target_bucket {
            found.push(k);
            if found.len() == n {
                break;
            }
        }
    }
    assert_eq!(found.len(), n, "not enough colliding keys in range");
    found
}

#[test]
fn overflow_entries_are_found_through_hints() {
    let (_d, idx, mut ctx) = setup();
    // > 4 keys in one bucket: the extras overflow with hints.
    let keys = keys_sharing_bucket(7);
    for (i, &k) in keys.iter().enumerate() {
        idx.insert_u64(&mut ctx, k, i as u64).unwrap();
    }
    for (i, &k) in keys.iter().enumerate() {
        assert_eq!(idx.get_u64(&mut ctx, k), Some(i as u64), "key {k}");
    }
}

#[test]
fn hint_slot_exhaustion_forces_split_not_loss() {
    let (_d, idx, mut ctx) = setup();
    // 4 main-bucket slots + 4 hint slots = at most 8 same-bucket keys per
    // segment; the 9th must force a split (never a lost insert).
    let keys = keys_sharing_bucket(12);
    for &k in &keys {
        idx.insert_u64(&mut ctx, k, k).unwrap();
    }
    for &k in &keys {
        assert_eq!(idx.get_u64(&mut ctx, k), Some(k), "key {k}");
    }
    assert_eq!(idx.len(), keys.len() as u64);
}

#[test]
fn deleting_overflowed_entry_clears_its_hint() {
    let (_d, idx, mut ctx) = setup();
    let keys = keys_sharing_bucket(6);
    for &k in &keys {
        idx.insert_u64(&mut ctx, k, k).unwrap();
    }
    // Delete the overflowed entries (the ones beyond the 4 main slots),
    // then re-insert different colliders: hint slots must have been
    // recycled.
    for &k in &keys[4..] {
        assert!(idx.remove(&mut ctx, k));
    }
    let more = keys_sharing_bucket(12);
    let fresh: Vec<u64> = more.iter().copied().filter(|k| !keys.contains(k)).take(4).collect();
    for &k in &fresh {
        idx.insert_u64(&mut ctx, k, k + 1).unwrap();
    }
    for &k in &keys[..4] {
        assert_eq!(idx.get_u64(&mut ctx, k), Some(k), "survivor {k}");
    }
    for &k in &fresh {
        assert_eq!(idx.get_u64(&mut ctx, k), Some(k + 1), "fresh {k}");
    }
}

#[test]
fn delete_then_miss_is_authoritative_even_with_other_overflow() {
    let (_d, idx, mut ctx) = setup();
    let keys = keys_sharing_bucket(6);
    for &k in &keys {
        idx.insert_u64(&mut ctx, k, k).unwrap();
    }
    // Delete a MAIN-bucket entry; the overflowed ones must stay reachable
    // (their hints guarantee it even though the main bucket has a hole).
    assert!(idx.remove(&mut ctx, keys[0]));
    assert_eq!(idx.get_u64(&mut ctx, keys[0]), None);
    for &k in &keys[1..] {
        assert_eq!(idx.get_u64(&mut ctx, k), Some(k), "key {k}");
    }
}

#[test]
fn large_values_in_overflowed_slots() {
    let (_d, idx, mut ctx) = setup();
    let keys = keys_sharing_bucket(7);
    for (i, &k) in keys.iter().enumerate() {
        let v = vec![k as u8; 100 + i * 37];
        idx.insert(&mut ctx, k, &v).unwrap();
    }
    let mut out = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        out.clear();
        assert!(idx.get(&mut ctx, k, &mut out));
        assert_eq!(out, vec![k as u8; 100 + i * 37]);
    }
}

#[test]
fn split_redistributes_overflowed_buckets() {
    let (_d, idx, mut ctx) = setup();
    // Enough same-bucket keys to split the segment repeatedly.
    let keys = keys_sharing_bucket(30);
    for &k in &keys {
        idx.insert_u64(&mut ctx, k, k * 2).unwrap();
    }
    // Plus background volume to force broader growth.
    for k in 500_000..520_000u64 {
        idx.insert_u64(&mut ctx, k, 1).unwrap();
    }
    for &k in &keys {
        assert_eq!(idx.get_u64(&mut ctx, k), Some(k * 2), "collider {k}");
    }
    let slots = SLOTS_PER_BUCKET; // silence unused-import pedantry
    assert_eq!(slots, 4);
}
