//! Metadata-free segments and compound key-value slots (paper §III-A).
//!
//! A segment is one 256-byte XPLine holding four cacheline-sized buckets of
//! four 16-byte compound slots each — no header, no bitmap, no lock, no
//! version. All bookkeeping that other indexes keep in metadata is either
//! unnecessary (durable linearizability comes from HTM + persistent cache)
//! or folded into reserved bits of the slots themselves:
//!
//! * **key word** `[tag:2][fp14:14][payload:48]` — payload is the inline
//!   key or a 48-bit pointer to an out-of-place blob; `fp14` is the key
//!   fingerprint (hash bits 3–16) that filters pointer dereferences.
//! * **value word** `[hint:16][payload:48]` — payload is the inline value
//!   or the blob length; the top 16 bits belong to the *bucket*, not the
//!   slot: they hold an overflow hint `[fp12:12][slot:4]` pointing at an
//!   entry of this bucket that had to be placed in another bucket of the
//!   segment (circular probing).
//!
//! Out-of-place blobs are `[key: u64][len: u64][value bytes…]`.

use spash_pmem::PmAddr;

/// Segment size in bytes — exactly one XPLine.
pub const SEG_SIZE: u64 = 256;
/// Cacheline-sized buckets per segment.
pub const BUCKETS_PER_SEG: u8 = 4;
/// Compound slots per bucket.
pub const SLOTS_PER_BUCKET: u8 = 4;
/// Total slots per segment.
pub const SLOTS_PER_SEG: u8 = BUCKETS_PER_SEG * SLOTS_PER_BUCKET;
/// Slot size in bytes (key word + value word).
pub const SLOT_SIZE: u64 = 16;

/// Largest key storable inline (the payload field is 48 bits).
pub const MAX_INLINE_KEY: u64 = (1 << 48) - 1;
/// Inline values are exactly 6 bytes (48 bits); anything else goes
/// out-of-place.
pub const INLINE_VALUE_LEN: usize = 6;

const TAG_SHIFT: u32 = 62;
const TAG_INLINE: u64 = 1;
const TAG_PTR: u64 = 2;
const FP_SHIFT: u32 = 48;
const FP_MASK: u64 = 0x3fff;
const PAYLOAD_MASK: u64 = (1 << 48) - 1;

/// The bucket a key hashes to: the lowest 2 bits of the hash (§III-A).
#[inline]
pub fn bucket_of(hash: u64) -> u8 {
    (hash & 0b11) as u8
}

/// 14-bit key fingerprint: hash bits 3–16 (§III-A "the lowest 3-16 bits").
#[inline]
pub fn fp14(hash: u64) -> u16 {
    ((hash >> 3) & FP_MASK) as u16
}

/// 12-bit overflow fingerprint: hash bits 3–14, forced non-zero so that a
/// packed hint can never collide with the "no hint" encoding (0).
#[inline]
pub fn fp12(hash: u64) -> u16 {
    let fp = ((hash >> 3) & 0xfff) as u16;
    fp.max(1)
}

/// Decoded key word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotKey {
    Empty,
    /// Inline key (≤ 48 bits).
    Inline { key: u64, fp: u16 },
    /// Pointer to an out-of-place blob.
    Ptr { addr: PmAddr, fp: u16 },
}

impl SlotKey {
    /// Encode to the raw key word.
    pub fn pack(self) -> u64 {
        match self {
            SlotKey::Empty => 0,
            SlotKey::Inline { key, fp } => {
                debug_assert!(key <= MAX_INLINE_KEY);
                TAG_INLINE << TAG_SHIFT | (fp as u64 & FP_MASK) << FP_SHIFT | key
            }
            SlotKey::Ptr { addr, fp } => {
                debug_assert!(addr.0 <= PAYLOAD_MASK);
                TAG_PTR << TAG_SHIFT | (fp as u64 & FP_MASK) << FP_SHIFT | addr.0
            }
        }
    }

    /// Decode a raw key word.
    pub fn unpack(word: u64) -> SlotKey {
        match word >> TAG_SHIFT {
            0 => SlotKey::Empty,
            TAG_INLINE => SlotKey::Inline {
                key: word & PAYLOAD_MASK,
                fp: ((word >> FP_SHIFT) & FP_MASK) as u16,
            },
            TAG_PTR => SlotKey::Ptr {
                addr: PmAddr(word & PAYLOAD_MASK),
                fp: ((word >> FP_SHIFT) & FP_MASK) as u16,
            },
            _ => SlotKey::Empty, // reserved tag: treat as empty
        }
    }

    #[inline]
    pub fn is_empty(self) -> bool {
        matches!(self, SlotKey::Empty)
    }
}

/// Value-word helpers. The value word is `[hint:16][payload:48]`; the hint
/// belongs to the bucket, the payload to the slot's own entry.
pub mod value_word {
    /// Extract the overflow hint.
    #[inline]
    pub fn hint(word: u64) -> u16 {
        (word >> 48) as u16
    }

    /// Extract the payload (inline value or blob length).
    #[inline]
    pub fn payload(word: u64) -> u64 {
        word & ((1 << 48) - 1)
    }

    /// Replace the payload, preserving the hint.
    #[inline]
    pub fn with_payload(word: u64, payload: u64) -> u64 {
        debug_assert!(payload < 1 << 48);
        (word & !((1 << 48) - 1)) | payload
    }

    /// Replace the hint, preserving the payload.
    #[inline]
    pub fn with_hint(word: u64, hint: u16) -> u64 {
        (word & ((1 << 48) - 1)) | (hint as u64) << 48
    }
}

/// 8-bit probe tag: hash bits 17–24, forced non-zero so a stored tag can
/// never collide with the "empty slot" encoding (0). Disjoint from the
/// bucket bits (0–1), `fp14` (3–16) and `fp12` (3–14), so tag collisions
/// are independent of the in-slot fingerprints the tag pre-filters.
///
/// Under the [`crate::testhooks::fp_collide`] mutation every hash maps to
/// the same tag: the filter degenerates to "every slot is a candidate",
/// which must not change any result (candidate supersets only).
#[inline]
pub fn fp8(hash: u64) -> u8 {
    if crate::testhooks::fp_collide() {
        return 1;
    }
    let t = ((hash >> 17) & 0xff) as u8;
    if t == 0 {
        1
    } else {
        t
    }
}

/// Packed per-bucket fingerprint word, stored in the persistent fp
/// sidecar table ([`crate::fptable`]), one `u64` per bucket:
///
/// * **low 32 bits — slot tags**: byte `j` is the [`fp8`] tag of the key
///   in slot `4b+j` of bucket `b`, 0 when the slot is empty;
/// * **high 32 bits — hint tags**: byte `j` is the [`fp8`] tag of the
///   *overflow* key whose hint lives in the value word of slot `4b+j`,
///   0 when that value word carries no hint.
///
/// Together the two halves make one fp word a complete membership filter
/// for its bucket: a key stored in the segment is either in its main
/// bucket (slot tag) or reachable through a main-bucket hint (hint tag),
/// so a probe whose tag matches no byte is a definitive miss without
/// touching the bucket line.
pub mod fp_word {
    /// Slot-tag byte `j` (0..4).
    #[inline]
    pub fn slot_tag(word: u64, j: u8) -> u8 {
        debug_assert!(j < 4);
        (word >> (8 * j)) as u8
    }

    /// Replace slot-tag byte `j`.
    #[inline]
    pub fn with_slot_tag(word: u64, j: u8, tag: u8) -> u64 {
        debug_assert!(j < 4);
        (word & !(0xffu64 << (8 * j))) | (tag as u64) << (8 * j)
    }

    /// Hint-tag byte `j` (0..4).
    #[inline]
    pub fn hint_tag(word: u64, j: u8) -> u8 {
        debug_assert!(j < 4);
        (word >> (32 + 8 * j)) as u8
    }

    /// Replace hint-tag byte `j`.
    #[inline]
    pub fn with_hint_tag(word: u64, j: u8, tag: u8) -> u64 {
        debug_assert!(j < 4);
        (word & !(0xffu64 << (32 + 8 * j))) | (tag as u64) << (32 + 8 * j)
    }

    /// Bitmask (bit `j`) of slot-tag bytes equal to `tag`.
    #[inline]
    pub fn slot_candidates(word: u64, tag: u8) -> u8 {
        let mut m = 0u8;
        for j in 0..4 {
            if slot_tag(word, j) == tag {
                m |= 1 << j;
            }
        }
        m
    }

    /// Bitmask (bit `j`) of hint-tag bytes equal to `tag`.
    #[inline]
    pub fn hint_candidates(word: u64, tag: u8) -> u8 {
        let mut m = 0u8;
        for j in 0..4 {
            if hint_tag(word, j) == tag {
                m |= 1 << j;
            }
        }
        m
    }

    /// Does any byte (slot or hint tag) equal `tag`? False means the key
    /// is definitively absent from the segment.
    #[inline]
    pub fn any_match(word: u64, tag: u8) -> bool {
        slot_candidates(word, tag) != 0 || hint_candidates(word, tag) != 0
    }
}

/// A packed overflow hint: `[fp12:12][slot:4]`, never zero.
#[inline]
pub fn make_hint(hash: u64, slot_idx: u8) -> u16 {
    debug_assert!(slot_idx < SLOTS_PER_SEG);
    fp12(hash) << 4 | slot_idx as u16
}

/// If `hint` could refer to a key with hash `hash`, the candidate slot.
#[inline]
pub fn hint_matches(hint: u16, hash: u64) -> Option<u8> {
    if hint != 0 && hint >> 4 == fp12(hash) {
        Some((hint & 0xf) as u8)
    } else {
        None
    }
}

/// Byte address of slot `idx`'s key word within segment `seg`.
#[inline]
pub fn key_addr(seg: PmAddr, idx: u8) -> PmAddr {
    debug_assert!(idx < SLOTS_PER_SEG);
    PmAddr(seg.0 + idx as u64 * SLOT_SIZE)
}

/// Byte address of slot `idx`'s value word within segment `seg`.
#[inline]
pub fn value_addr(seg: PmAddr, idx: u8) -> PmAddr {
    PmAddr(key_addr(seg, idx).0 + 8)
}

/// The slot indexes of bucket `b`, in order.
#[inline]
pub fn bucket_slots(b: u8) -> core::ops::Range<u8> {
    let start = b * SLOTS_PER_BUCKET;
    start..start + SLOTS_PER_BUCKET
}

/// Buckets probed for a key whose main bucket is `b`, in circular order
/// (§III-A "starts the probing procedure from its main bucket and proceeds
/// in a circular order").
#[inline]
pub fn probe_order(b: u8) -> [u8; 4] {
    [b, (b + 1) % 4, (b + 2) % 4, (b + 3) % 4]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_word_roundtrip() {
        for k in [
            SlotKey::Empty,
            SlotKey::Inline { key: 0, fp: 0 },
            SlotKey::Inline {
                key: MAX_INLINE_KEY,
                fp: 0x3fff,
            },
            SlotKey::Ptr {
                addr: PmAddr(0xdead_beef),
                fp: 0x1234,
            },
        ] {
            assert_eq!(SlotKey::unpack(k.pack()), k);
        }
    }

    #[test]
    fn empty_is_zero_word() {
        assert_eq!(SlotKey::Empty.pack(), 0);
        assert!(SlotKey::unpack(0).is_empty());
    }

    #[test]
    fn value_word_payload_and_hint_are_independent() {
        let w = value_word::with_payload(0, 0x1234_5678);
        let w = value_word::with_hint(w, 0xabcd);
        assert_eq!(value_word::payload(w), 0x1234_5678);
        assert_eq!(value_word::hint(w), 0xabcd);
        let w2 = value_word::with_payload(w, 7);
        assert_eq!(value_word::hint(w2), 0xabcd, "hint preserved");
        assert_eq!(value_word::payload(w2), 7);
        let w3 = value_word::with_hint(w2, 0);
        assert_eq!(value_word::payload(w3), 7, "payload preserved");
    }

    #[test]
    fn hint_is_never_zero() {
        // A hash whose bits 3..15 are all zero still yields a non-zero fp.
        let h = 0u64;
        let hint = make_hint(h, 0);
        assert_ne!(hint, 0);
        assert_eq!(hint_matches(hint, h), Some(0));
    }

    #[test]
    fn hint_roundtrip_and_mismatch() {
        let h = 0xdead_beef_cafe_f00d;
        let hint = make_hint(h, 13);
        assert_eq!(hint_matches(hint, h), Some(13));
        // A different hash (different fp12) must not match.
        let other = 0x1111_2222_3333_4444;
        assert_ne!(fp12(h), fp12(other));
        assert_eq!(hint_matches(hint, other), None);
        assert_eq!(hint_matches(0, h), None, "no-hint never matches");
    }

    #[test]
    fn addresses_are_within_the_segment() {
        let seg = PmAddr(0x1000);
        assert_eq!(key_addr(seg, 0).0, 0x1000);
        assert_eq!(value_addr(seg, 0).0, 0x1008);
        assert_eq!(key_addr(seg, 15).0, 0x10f0);
        assert_eq!(value_addr(seg, 15).0, 0x10f8);
    }

    #[test]
    fn probe_order_is_circular() {
        assert_eq!(probe_order(0), [0, 1, 2, 3]);
        assert_eq!(probe_order(2), [2, 3, 0, 1]);
        assert_eq!(probe_order(3), [3, 0, 1, 2]);
    }

    #[test]
    fn bucket_slots_cover_the_segment() {
        let mut seen = [false; 16];
        for b in 0..BUCKETS_PER_SEG {
            for s in bucket_slots(b) {
                assert!(!seen[s as usize]);
                seen[s as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn fingerprints_use_disjoint_encoding_bits() {
        let h = u64::MAX;
        assert_eq!(fp14(h), 0x3fff);
        assert_eq!(fp12(h), 0xfff);
        assert_eq!(bucket_of(h), 3);
    }

    // The collide/wrong-tag hooks are process-global, so they are never
    // flipped inside this (parallel) unit-test binary — other tests
    // write and verify tags concurrently. Hook behaviour is exercised by
    // tests/fingerprint_oracle.rs, which owns its whole process.
    #[test]
    fn fp8_is_never_zero_and_uses_bits_17_to_24() {
        assert_eq!(fp8(0), 1, "zero tag remapped to 1");
        assert_eq!(fp8(0xab << 17), 0xab);
        // Bits below 17 (bucket, fp14, fp12) don't affect the tag.
        assert_eq!(fp8(0xab << 17 | 0x1_ffff), 0xab);
    }

    #[test]
    fn fp_word_tags_are_independent() {
        let mut w = 0u64;
        for j in 0..4 {
            w = fp_word::with_slot_tag(w, j, 0x10 + j);
            w = fp_word::with_hint_tag(w, j, 0x20 + j);
        }
        for j in 0..4 {
            assert_eq!(fp_word::slot_tag(w, j), 0x10 + j);
            assert_eq!(fp_word::hint_tag(w, j), 0x20 + j);
        }
        // Clearing one byte leaves the other seven intact.
        let w2 = fp_word::with_slot_tag(w, 2, 0);
        assert_eq!(fp_word::slot_tag(w2, 2), 0);
        assert_eq!(fp_word::slot_tag(w2, 1), 0x11);
        assert_eq!(fp_word::hint_tag(w2, 2), 0x22);
    }

    #[test]
    fn fp_word_candidate_masks() {
        let mut w = 0u64;
        w = fp_word::with_slot_tag(w, 0, 0x7f);
        w = fp_word::with_slot_tag(w, 3, 0x7f);
        w = fp_word::with_hint_tag(w, 1, 0x7f);
        assert_eq!(fp_word::slot_candidates(w, 0x7f), 0b1001);
        assert_eq!(fp_word::hint_candidates(w, 0x7f), 0b0010);
        assert!(fp_word::any_match(w, 0x7f));
        assert!(!fp_word::any_match(w, 0x42));
        // Tag 0 marks empties; an all-empty word has no zero "candidates"
        // in the probe sense because fp8 never returns 0.
        assert_eq!(fp_word::slot_candidates(0, fp8(0)), 0);
    }
}
