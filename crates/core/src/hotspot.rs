//! The lightweight hotspot detector (paper §III-B).
//!
//! The hash space is divided into `2^p` partitions by the highest `p` bits
//! of the key hash; each partition keeps `q` recently-accessed keys under
//! LRU replacement. A key is *hot* iff it is in its partition's list. The
//! union of per-partition lists approximates the global hot set because
//! the hash function spreads hot keys uniformly over partitions.
//!
//! The default 4096×2 = 8 K entries matches the paper's ablation ("a small
//! hot-key list with 8K entries (each partition has two hot-keys)").
//!
//! An [`OracleDetector`] with zero lookup cost is provided for the Fig 12a
//! comparison, fed by the workload generator's true access probabilities.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use spash_pmem::MemCtx;

/// Decides whether a key is hot. Implementations must be cheap: this runs
/// on every update.
pub trait HotnessOracle: Send + Sync {
    /// Record an access to a key with hash `h` and report whether the key
    /// is currently considered hot.
    fn access(&self, ctx: &mut MemCtx, h: u64) -> bool;
}

/// One partition entry: `[tick:16][sig:48]`, packed so access is a single
/// atomic op. `sig` is the hash's low 48 bits; tick is a per-partition
/// wrapping counter used as LRU age.
struct Partition {
    entries: [AtomicU64; 4],
    tick: AtomicU64,
}

/// The partitioned LRU hot-key list.
pub struct PartitionedDetector {
    partitions: Box<[Partition]>,
    p_bits: u32,
    q: usize,
}

impl PartitionedDetector {
    /// `p_bits` partitions exponent, `q` keys per partition (max 4).
    pub fn new(p_bits: u32, q: usize) -> Self {
        assert!((1..=4).contains(&q), "q must be 1..=4");
        let n = 1usize << p_bits;
        Self {
            partitions: (0..n)
                .map(|_| Partition {
                    entries: Default::default(),
                    tick: AtomicU64::new(0),
                })
                .collect(),
            p_bits,
            q,
        }
    }

    /// The paper's default configuration (8 K entries).
    pub fn paper_default() -> Self {
        Self::new(12, 2)
    }
}

const SIG_MASK: u64 = (1 << 48) - 1;

impl HotnessOracle for PartitionedDetector {
    fn access(&self, ctx: &mut MemCtx, h: u64) -> bool {
        // The list fits in cache; one cached access worth of cost.
        ctx.charge_dram_cached();
        let pi = if self.p_bits == 0 {
            0
        } else {
            (h >> (64 - self.p_bits)) as usize
        };
        let part = &self.partitions[pi];
        let sig = h & SIG_MASK;
        let tick = part.tick.fetch_add(1, Ordering::Relaxed) & 0xffff;

        for e in &part.entries[..self.q] {
            let w = e.load(Ordering::Relaxed);
            if w & SIG_MASK == sig && w != 0 {
                // Hit: refresh recency.
                e.store(tick << 48 | sig, Ordering::Relaxed);
                return true;
            }
        }
        // Miss: replace the LRU (or an empty) entry; the key becomes a
        // candidate but is NOT yet hot — it must be seen again while still
        // resident to count as hot.
        let mut victim = 0;
        let mut oldest = 0;
        for (i, e) in part.entries[..self.q].iter().enumerate() {
            let w = e.load(Ordering::Relaxed);
            if w == 0 {
                victim = i;
                break;
            }
            let age = tick.wrapping_sub(w >> 48) & 0xffff;
            if age >= oldest {
                oldest = age;
                victim = i;
            }
        }
        part.entries[victim].store(tick << 48 | sig, Ordering::Relaxed);
        false
    }
}

/// Zero-overhead oracle: hot iff the workload generator says so (Fig 12a's
/// "oracle hotspot detector ... gets its access probability from our
/// workload generator").
pub struct OracleDetector {
    hot: HashSet<u64>,
}

impl OracleDetector {
    /// Build from the true hot set (key *hashes*).
    pub fn new(hot_hashes: impl IntoIterator<Item = u64>) -> Self {
        Self {
            hot: hot_hashes.into_iter().collect(),
        }
    }
}

impl HotnessOracle for OracleDetector {
    fn access(&self, _ctx: &mut MemCtx, h: u64) -> bool {
        self.hot.contains(&h)
    }
}

/// Constant answer — used by the `AlwaysFlush` / `NeverFlush` update-policy
/// ablations, where hotness is irrelevant.
pub struct ConstDetector(pub bool);

impl HotnessOracle for ConstDetector {
    fn access(&self, _ctx: &mut MemCtx, _h: u64) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spash_pmem::{PmConfig, PmDevice};

    fn ctx() -> MemCtx {
        PmDevice::new(PmConfig::small_test()).ctx()
    }

    #[test]
    fn repeated_key_becomes_hot() {
        let mut c = ctx();
        let d = PartitionedDetector::new(4, 2);
        let h = 0xdead_beef;
        assert!(!d.access(&mut c, h), "first access: not hot yet");
        assert!(d.access(&mut c, h), "second access: hot");
        assert!(d.access(&mut c, h));
    }

    #[test]
    fn cold_stream_evicts_candidates() {
        let mut c = ctx();
        let d = PartitionedDetector::new(0, 2); // single partition
        let hot = 7u64;
        d.access(&mut c, hot);
        d.access(&mut c, hot);
        assert!(d.access(&mut c, hot));
        // A stream of distinct cold keys churns through the q=2 list...
        for k in 100..200u64 {
            d.access(&mut c, k);
        }
        // ...and the hot key has been evicted.
        assert!(!d.access(&mut c, hot));
    }

    #[test]
    fn hot_key_survives_sparse_cold_traffic() {
        let mut c = ctx();
        let d = PartitionedDetector::new(0, 2);
        let hot = 42u64;
        d.access(&mut c, hot);
        d.access(&mut c, hot);
        let mut hot_answers = 0;
        for i in 0..100u64 {
            // 1 cold access per 3 hot accesses: the hot key should keep
            // winning the LRU race.
            if i % 4 == 3 {
                d.access(&mut c, 1000 + i);
            } else if d.access(&mut c, hot) {
                hot_answers += 1;
            }
        }
        assert!(hot_answers > 60, "only {hot_answers} hot answers");
    }

    #[test]
    fn partitions_are_independent() {
        let mut c = ctx();
        let d = PartitionedDetector::new(8, 1);
        // Two keys in different partitions (different top bits).
        let a = 5;
        let b = 0xffu64 << 56 | 5;
        d.access(&mut c, a);
        d.access(&mut c, b);
        assert!(d.access(&mut c, a));
        assert!(d.access(&mut c, b));
    }

    #[test]
    fn zipfian_stream_hot_hit_rate() {
        // Under a skewed stream, the detector should call the top key hot
        // most of the time.
        let mut c = ctx();
        let d = PartitionedDetector::paper_default();
        let mut state = 12345u64;
        let mut hot_hits = 0;
        let mut hot_total = 0;
        for _ in 0..20_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            // ~50% of accesses to one of 4 hot keys, rest uniform cold.
            let k = if state >> 63 == 0 {
                state >> 32 & 3
            } else {
                1000 + (state >> 20 & 0xffff)
            };
            let h = spash_index_api::hash_key(k);
            let hot = d.access(&mut c, h);
            if k < 4 {
                hot_total += 1;
                if hot {
                    hot_hits += 1;
                }
            }
        }
        let rate = hot_hits as f64 / hot_total as f64;
        assert!(rate > 0.7, "hot detection rate only {rate:.2}");
    }

    #[test]
    fn oracle_and_const_detectors() {
        let mut c = ctx();
        let o = OracleDetector::new([1, 2, 3]);
        assert!(o.access(&mut c, 2));
        assert!(!o.access(&mut c, 9));
        assert!(ConstDetector(true).access(&mut c, 0));
        assert!(!ConstDetector(false).access(&mut c, 0));
    }
}
