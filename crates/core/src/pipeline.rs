//! Pipelined request execution (paper §III-D, Fig 5a).
//!
//! Each simulated core executes up to `pipeline_depth` requests
//! concurrently: the directory lookups (step 1) of a whole sub-batch run
//! first, issuing asynchronous prefetches for every request's main bucket;
//! when the requests then execute, their bucket loads (step 2) find the
//! data in flight and wait only for the *residual* latency. Requests with
//! out-of-place blobs get a second prefetch round for the blob lines
//! (step 4). Transaction phases (step 5) run serially within the batch —
//! HTM does not support overlapping transactions on one core (§IV-A).
//!
//! With PD=4 the four bucket misses overlap into roughly one PM read
//! latency, which is where the paper's ~2× read-throughput gain comes
//! from (Fig 7a, Fig 12d).

use spash_index_api::{hash_key, run_one, BatchOp, BatchResult};
use spash_pmem::MemCtx;

use crate::ops::Spash;
use crate::slot::{bucket_of, key_addr, SlotKey, SLOTS_PER_BUCKET};

impl Spash {
    /// Execute `ops` with pipeline overlap, appending one result per op.
    pub fn run_batch_pipelined(
        &self,
        ctx: &mut MemCtx,
        ops: &[BatchOp<'_>],
        out: &mut Vec<BatchResult>,
    ) {
        let depth = self.cfg.pipeline_depth.max(1);
        for chunk in ops.chunks(depth) {
            // Stage 1: route every request and prefetch its main bucket.
            let mut segs = Vec::with_capacity(chunk.len());
            for op in chunk {
                let key = match *op {
                    BatchOp::Insert(k, _)
                    | BatchOp::Update(k, _)
                    | BatchOp::Get(k)
                    | BatchOp::Remove(k) => k,
                };
                let h = hash_key(key);
                let routed = self.dir.lookup(ctx, h);
                let seg = routed.seg();
                let b = bucket_of(h);
                ctx.prefetch(key_addr(seg, b * SLOTS_PER_BUCKET));
                segs.push((seg, h, b));
            }
            // Stage 2: peek each main bucket and prefetch blob lines for
            // pointer entries (step 4 overlap).
            for &(seg, _h, b) in &segs {
                for s in crate::slot::bucket_slots(b) {
                    let kw = ctx.read_u64(key_addr(seg, s));
                    if let SlotKey::Ptr { addr, .. } = SlotKey::unpack(kw) {
                        ctx.prefetch(addr);
                    }
                }
            }
            // Stage 3: run the operations; preparation reads hit the
            // prefetched lines, transaction phases execute serially.
            for op in chunk {
                out.push(run_one(self, ctx, op));
            }
        }
    }
}
