//! Pipelined request execution (paper §III-D, Fig 5a).
//!
//! Each simulated core executes up to `pipeline_depth` requests
//! concurrently: the directory lookups (step 1) of a whole sub-batch run
//! first, issuing asynchronous prefetches; when the requests then execute,
//! their loads (step 2) find the data in flight and wait only for the
//! *residual* latency. Transaction phases (step 5) run serially within
//! the batch — HTM does not support overlapping transactions on one core
//! (§IV-A).
//!
//! The prefetch plan is fingerprint-aware, mirroring the probe path:
//!
//! * a `Get` that hits the DRAM overlay needs no PM bucket lines at all —
//!   only blob lines, whose addresses come from the *cached* key words;
//! * other `Get`s prefetch the fp sidecar word *and* the bucket line
//!   together, so the two fetches share one miss window; the stage-2 peek
//!   of the fp word then decides which candidate key words to read. A
//!   tag-clean negative still *reads* only the fp word — the speculative
//!   bucket fetch is discarded, trading a line of read bandwidth for not
//!   serializing two dependent PM round-trips per probe;
//! * mutations always read the bucket, so they prefetch both the fp word
//!   and the bucket line up front.
//!
//! With PD=4 the four misses overlap into roughly one PM read latency,
//! which is where the paper's ~2× read-throughput gain comes from
//! (Fig 7a, Fig 12d).

use spash_index_api::{hash_key, run_one, BatchOp, BatchResult};
use spash_pmem::{MemCtx, PmAddr};

use crate::ops::Spash;
use crate::slot::{bucket_of, fp8, fp_word, key_addr, SlotKey, SLOTS_PER_BUCKET};

/// Per-request prefetch plan produced by stage 1.
enum Plan {
    /// `Get` served from the overlay: nothing left to prefetch (blob
    /// lines were already issued from the cached key words).
    OverlayHit,
    /// `Get` that must probe PM: peek the fp word in stage 2 and fetch
    /// only matching candidates.
    Probe { seg: PmAddr, h: u64, b: u8 },
    /// Mutation: the bucket line is read unconditionally.
    Mutate { seg: PmAddr, b: u8 },
}

impl Spash {
    /// Execute `ops` with pipeline overlap, appending one result per op.
    pub fn run_batch_pipelined(
        &self,
        ctx: &mut MemCtx,
        ops: &[BatchOp<'_>],
        out: &mut Vec<BatchResult>,
    ) {
        let depth = self.cfg.pipeline_depth.max(1);
        for chunk in ops.chunks(depth) {
            // Stage 1: route every request and issue first-round
            // prefetches (fp word, and the bucket line for mutations).
            let mut plans = Vec::with_capacity(chunk.len());
            for op in chunk {
                let (key, is_get) = match *op {
                    BatchOp::Get(k) => (k, true),
                    BatchOp::Insert(k, _) | BatchOp::Update(k, _) | BatchOp::Remove(k) => {
                        (k, false)
                    }
                };
                let h = hash_key(key);
                if is_get {
                    if let Some(hit) = self.overlay.lookup(ctx, h) {
                        // Blob lines are the only PM the hit path reads;
                        // their addresses come from the cached key words.
                        let tag = fp8(h);
                        let mask = fp_word::slot_candidates(hit.fpw, tag);
                        for j in 0..SLOTS_PER_BUCKET {
                            if mask & (1 << j) == 0 {
                                continue;
                            }
                            if let SlotKey::Ptr { addr, .. } =
                                SlotKey::unpack(hit.words[j as usize].0)
                            {
                                ctx.prefetch(addr);
                            }
                        }
                        // A hint-tag match means the hit path will fall
                        // through to the PM probe (overflow slots are not
                        // cached): warm its lines now so that fall isn't
                        // a serialized pair of cold misses.
                        if fp_word::hint_candidates(hit.fpw, tag) != 0 {
                            let b = bucket_of(h);
                            ctx.prefetch(self.fptable.word_addr(hit.seg, b));
                            ctx.prefetch(key_addr(hit.seg, b * SLOTS_PER_BUCKET));
                        }
                        plans.push(Plan::OverlayHit);
                        continue;
                    }
                }
                let routed = self.dir.lookup(ctx, h);
                let seg = routed.seg();
                let b = bucket_of(h);
                ctx.prefetch(self.fptable.word_addr(seg, b));
                ctx.prefetch(key_addr(seg, b * SLOTS_PER_BUCKET));
                if is_get {
                    plans.push(Plan::Probe { seg, h, b });
                } else {
                    plans.push(Plan::Mutate { seg, b });
                }
            }
            // Stage 2a: peek each probe's fp word (its line and the
            // speculatively-fetched bucket line are both already in
            // flight from stage 1). Tag-clean negatives stop here — they
            // will resolve from the fp word alone.
            let mut masks = vec![0u8; plans.len()];
            for (i, plan) in plans.iter().enumerate() {
                if let Plan::Probe { seg, h, b } = *plan {
                    let fpw = self.fptable.read(ctx, seg, b);
                    let tag = fp8(h);
                    if fp_word::any_match(fpw, tag) {
                        masks[i] = fp_word::slot_candidates(fpw, tag);
                    }
                }
            }
            // Stage 2b: read candidate key words and prefetch blob lines
            // for pointer entries (step 4 overlap).
            for (i, plan) in plans.iter().enumerate() {
                match *plan {
                    Plan::OverlayHit => {}
                    Plan::Probe { seg, b, .. } => {
                        let mask = masks[i];
                        for j in 0..SLOTS_PER_BUCKET {
                            if mask & (1 << j) == 0 {
                                continue;
                            }
                            let kw = ctx.read_u64(key_addr(seg, b * SLOTS_PER_BUCKET + j));
                            if let SlotKey::Ptr { addr, .. } = SlotKey::unpack(kw) {
                                ctx.prefetch(addr);
                            }
                        }
                    }
                    Plan::Mutate { seg, b } => {
                        for s in crate::slot::bucket_slots(b) {
                            let kw = ctx.read_u64(key_addr(seg, s));
                            if let SlotKey::Ptr { addr, .. } = SlotKey::unpack(kw) {
                                ctx.prefetch(addr);
                            }
                        }
                    }
                }
            }
            // Stage 3: run the operations; preparation reads hit the
            // prefetched lines, transaction phases execute serially.
            for op in chunk {
                out.push(run_one(self, ctx, op));
            }
        }
    }
}
