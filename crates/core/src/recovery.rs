//! Post-crash recovery.
//!
//! Spash's directory is volatile and its segments are metadata-free, so
//! recovery reconstructs the index from two persistent sources that are
//! kept transactionally consistent with the data:
//!
//! 1. the allocator's chunk headers — which XPLines are live segments;
//! 2. the segment-info table — each segment's (local depth, prefix),
//!    written inside the same HTM transaction as every split/merge.
//!
//! Rebuild = scan live segments, read their records, allocate a directory
//! of `max(depth)` and fan each segment out over its `2^(D-d)` entries,
//! then count live slots for the entries counter. A segment whose chunk
//! header exists but whose info record is empty was allocated by a split
//! that never committed — it is unreachable, and recovery returns it to
//! the allocator (the only kind of leak a crash can produce here).
//!
//! Recovery also rebuilds every live segment's fingerprint sidecar words
//! from the authoritative slot contents ([`crate::fptable::rebuild_words`]).
//! Tags are hints, so a tag torn by an ADR crash between tag and slot
//! publication is *healed* here rather than repaired in place — which in
//! turn lets the integrity walker hold the live table to exact equality
//! with the rebuild rule.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use spash_alloc::PmAllocator;
use spash_htm::Htm;
use spash_pmem::MemCtx;

use crate::config::{ConcurrencyMode, SpashConfig};
use crate::dir::Directory;
use crate::fptable::FpTable;
use crate::ops::{SegLock, Spash};
use crate::overlay::Overlay;
use crate::seginfo::SegInfoTable;
use crate::slot::{key_addr, SlotKey, SLOTS_PER_SEG};

impl Spash {
    /// Rebuild the index from a crashed (or cleanly stopped) device.
    /// Returns `None` if the arena holds no formatted index.
    pub fn recover(ctx: &mut MemCtx, cfg: SpashConfig) -> Option<Self> {
        ctx.stats_span(spash_pmem::SPAN_LOG_REPLAY, |ctx| Self::recover_impl(ctx, cfg))
    }

    fn recover_impl(ctx: &mut MemCtx, cfg: SpashConfig) -> Option<Self> {
        let dev = Arc::clone(ctx.device());
        let rec = PmAllocator::recover(ctx)?;
        let alloc = Arc::new(rec.alloc);
        let l = *alloc.layout();
        let (res_base, res_len) = alloc.reserved();
        let seginfo = SegInfoTable::new(res_base, res_len, l.heap_start, l.n_chunks);
        let fptable = FpTable::new(
            spash_pmem::PmAddr(res_base.0 + l.n_chunks * 8),
            res_len - l.n_chunks * 8,
            l.heap_start,
            l.n_chunks,
        );

        let mut triples = Vec::with_capacity(rec.segments.len());
        let mut entries = 0u64;
        for seg in rec.segments {
            match seginfo.read(ctx, seg) {
                Some((depth, prefix)) => {
                    triples.push((seg, depth, prefix));
                    for idx in 0..SLOTS_PER_SEG {
                        if !SlotKey::unpack(ctx.read_u64(key_addr(seg, idx))).is_empty() {
                            entries += 1;
                        }
                    }
                    // Rebuild the fp sidecar from the slots (heals any
                    // tag torn between publication and the crash).
                    crate::fptable::rebuild_segment(&fptable, ctx, seg);
                }
                None => {
                    // Allocated by an uncommitted split: reclaim.
                    alloc.free_segment(ctx, seg);
                }
            }
        }
        if triples.is_empty() {
            return None;
        }
        // Sanity: prefixes must tile the hash space exactly once.
        let depth = triples.iter().map(|&(_, d, _)| d as u32).max().unwrap();
        let mut covered = 0u64;
        for &(_, d, _) in &triples {
            covered += 1u64 << (depth - d as u32);
        }
        if covered != 1u64 << depth {
            return None; // corrupt metadata
        }

        let dir = Directory::rebuild(&triples);
        let htm = Htm::new(cfg.htm.clone());
        let lock_ns = dev.config().cost.lock_ns;
        let n_segments = triples.len() as u64;
        let overlay = Overlay::new(
            if cfg.concurrency == ConcurrencyMode::Htm {
                cfg.overlay_entries
            } else {
                0
            },
            l.heap_start,
        );
        Some(Self {
            dev,
            alloc,
            htm,
            dir,
            seginfo,
            fptable,
            overlay,
            entries: AtomicU64::new(entries),
            n_segments: AtomicU64::new(n_segments),
            seg_locks: (0..crate::ops::SEG_LOCK_TABLE)
                .map(|_| SegLock {
                    rw: spash_pmem::VRwLock::new((), lock_ns),
                    ver: AtomicU64::new(0),
                })
                .collect(),
            fallbacks: AtomicU64::new(0),
            cfg,
        })
    }
}
