//! **Spash** — a scalable persistent hash index exploiting the persistent
//! CPU cache (reproduction of Zhang et al., ICDE 2024).
//!
//! Spash targets eADR platforms, where the CPU cache is inside the
//! persistence domain: whatever is *visible* is *durable*. That collapses
//! the visibility/durability gap that forces other persistent indexes
//! into flush-heavy, lock-heavy designs, and enables:
//!
//! * a fine-grained extendible hash over **metadata-free 256-byte
//!   segments** (one XPLine each) with compound slots, circular probing
//!   and overflow hints ([`slot`], §III-A);
//! * **adaptive in-place updates** that keep hot data in the persistent
//!   cache and only flush cold, multi-cacheline values ([`hotspot`],
//!   §III-B, Table I);
//! * **compacted-flush insertion** of small out-of-place values in XPLine
//!   chunks (§III-C, via `spash-alloc`);
//! * a **two-phase HTM concurrency protocol** — preparation outside the
//!   transaction, validate-then-process inside — with a lock fallback
//!   ([`ops`], §IV-A);
//! * **collaborative staged doubling** of the volatile directory
//!   ([`dir`], §IV-B);
//! * **pipelined execution** overlapping PM reads across requests
//!   ([`pipeline`], §III-D).
//!
//! # Quick start
//!
//! ```
//! use spash::{Spash, SpashConfig};
//! use spash_index_api::PersistentIndex;
//! use spash_pmem::{PmConfig, PmDevice};
//!
//! let dev = PmDevice::new(PmConfig::small_test());
//! let mut ctx = dev.ctx();
//! let index = Spash::format(&mut ctx, SpashConfig::test_default()).unwrap();
//! index.insert(&mut ctx, 42, b"hello!").unwrap();
//! let mut out = Vec::new();
//! assert!(index.get(&mut ctx, 42, &mut out));
//! assert_eq!(&out, b"hello!");
//! ```

pub mod config;
pub mod crash;
pub mod dir;
pub mod fptable;
pub mod hotspot;
pub mod integrity;
mod lockmode;
pub mod ops;
pub mod overlay;
pub mod pipeline;
pub mod recovery;
pub mod seginfo;
pub mod slot;
pub mod split;
pub mod testhooks;

pub use config::{ConcurrencyMode, InsertPolicy, SpashConfig, UpdatePolicy};
pub use hotspot::{ConstDetector, HotnessOracle, OracleDetector, PartitionedDetector};
pub use integrity::{IntegrityError, IntegrityReport};
pub use ops::Spash;

use spash_index_api::{BatchOp, BatchResult, IndexError, PersistentIndex};
use spash_pmem::MemCtx;

impl PersistentIndex for Spash {
    fn name(&self) -> &'static str {
        match self.cfg.concurrency {
            ConcurrencyMode::Htm => "Spash",
            ConcurrencyMode::WriteLock => "Spash(wlock)",
            ConcurrencyMode::WriteReadLock => "Spash(rwlock)",
        }
    }

    fn insert(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        match self.cfg.concurrency {
            ConcurrencyMode::Htm => self.insert_htm(ctx, key, value),
            _ => self.insert_lockmode(ctx, key, value),
        }
    }

    fn update(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        match self.cfg.concurrency {
            ConcurrencyMode::Htm => self.update_htm(ctx, key, value),
            _ => self.update_lockmode(ctx, key, value),
        }
    }

    fn get(&self, ctx: &mut MemCtx, key: u64, out: &mut Vec<u8>) -> bool {
        ctx.stats_span(spash_pmem::SPAN_PROBE, |ctx| match self.cfg.concurrency {
            ConcurrencyMode::Htm => self.get_htm(ctx, key, out),
            ConcurrencyMode::WriteLock => self.get_seqlock(ctx, key, out),
            ConcurrencyMode::WriteReadLock => self.get_readlock(ctx, key, out),
        })
    }

    fn remove(&self, ctx: &mut MemCtx, key: u64) -> bool {
        let removed = match self.cfg.concurrency {
            ConcurrencyMode::Htm => self.remove_htm(ctx, key),
            _ => self.remove_lockmode(ctx, key),
        };
        if removed
            && self.cfg.enable_merge
            && self.cfg.concurrency == ConcurrencyMode::Htm
        {
            // Merging is transactional; in the lock-mode ablations it
            // would race plain lock-holding writers, so it stays off.
            self.try_merge(ctx, spash_index_api::hash_key(key));
        }
        removed
    }

    fn entries(&self) -> u64 {
        self.len()
    }

    fn capacity_slots(&self) -> u64 {
        self.capacity()
    }

    fn run_batch(&self, ctx: &mut MemCtx, ops: &[BatchOp<'_>], out: &mut Vec<BatchResult>) {
        self.run_batch_pipelined(ctx, ops, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spash_index_api::PersistentIndex;
    use spash_pmem::{PmConfig, PmDevice};
    use std::sync::Arc;

    fn setup() -> (Arc<PmDevice>, Spash, MemCtx) {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        let idx = Spash::format(&mut ctx, SpashConfig::test_default()).unwrap();
        (dev, idx, ctx)
    }

    fn setup_with(cfg: SpashConfig) -> (Arc<PmDevice>, Spash, MemCtx) {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        let idx = Spash::format(&mut ctx, cfg).unwrap();
        (dev, idx, ctx)
    }

    #[test]
    fn inline_roundtrip() {
        let (_d, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 7, 700).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 7), Some(700));
        assert_eq!(idx.get_u64(&mut ctx, 8), None);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn byte_value_roundtrip() {
        let (_d, idx, mut ctx) = setup();
        let val = vec![0xabu8; 300];
        idx.insert(&mut ctx, 1, &val).unwrap();
        let mut out = Vec::new();
        assert!(idx.get(&mut ctx, 1, &mut out));
        assert_eq!(out, val);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let (_d, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 5, 1).unwrap();
        assert_eq!(
            idx.insert_u64(&mut ctx, 5, 2).unwrap_err(),
            IndexError::DuplicateKey
        );
        assert_eq!(idx.get_u64(&mut ctx, 5), Some(1), "original value intact");
    }

    #[test]
    fn update_inline() {
        let (_d, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 5, 1).unwrap();
        idx.update_u64(&mut ctx, 5, 99).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 5), Some(99));
        assert_eq!(
            idx.update_u64(&mut ctx, 6, 0).unwrap_err(),
            IndexError::NotFound
        );
    }

    #[test]
    fn update_blob_in_place_and_resize() {
        let (_d, idx, mut ctx) = setup();
        idx.insert(&mut ctx, 9, &[1u8; 100]).unwrap();
        // Same size class (96 < len <= 128): in place.
        idx.update(&mut ctx, 9, &[2u8; 100]).unwrap();
        let mut out = Vec::new();
        assert!(idx.get(&mut ctx, 9, &mut out));
        assert_eq!(out, vec![2u8; 100]);
        // Different class: replace.
        idx.update(&mut ctx, 9, &[3u8; 500]).unwrap();
        out.clear();
        assert!(idx.get(&mut ctx, 9, &mut out));
        assert_eq!(out, vec![3u8; 500]);
        // Shrink back to inline.
        idx.update(&mut ctx, 9, b"sixby!").unwrap();
        out.clear();
        assert!(idx.get(&mut ctx, 9, &mut out));
        assert_eq!(&out, b"sixby!");
    }

    #[test]
    fn remove_inline_and_blob() {
        let (_d, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 1, 10).unwrap();
        idx.insert(&mut ctx, 2, &[7u8; 200]).unwrap();
        assert!(idx.remove(&mut ctx, 1));
        assert!(idx.remove(&mut ctx, 2));
        assert!(!idx.remove(&mut ctx, 1), "double remove is a miss");
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.get_u64(&mut ctx, 1), None);
    }

    #[test]
    fn grows_through_many_splits() {
        let (_d, idx, mut ctx) = setup();
        let n = 5000u64;
        for k in 0..n {
            idx.insert_u64(&mut ctx, k, k * 2).unwrap();
        }
        assert_eq!(idx.len(), n);
        for k in 0..n {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k * 2), "key {k} lost");
        }
        assert!(idx.capacity() >= n, "capacity grew");
        let lf = idx.load_factor();
        assert!(lf > 0.4 && lf <= 1.0, "load factor {lf}");
    }

    #[test]
    fn delete_then_reinsert_over_overflowed_segments() {
        let (_d, idx, mut ctx) = setup();
        for k in 0..2000u64 {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        for k in (0..2000).step_by(2) {
            assert!(idx.remove(&mut ctx, k), "remove {k}");
        }
        for k in (0..2000).step_by(2) {
            idx.insert_u64(&mut ctx, k, k + 1).unwrap();
        }
        for k in 0..2000u64 {
            let want = if k % 2 == 0 { k + 1 } else { k };
            assert_eq!(idx.get_u64(&mut ctx, k), Some(want), "key {k}");
        }
    }

    #[test]
    fn mixed_inline_and_blob_workload() {
        let (_d, idx, mut ctx) = setup();
        for k in 0..800u64 {
            if k % 3 == 0 {
                idx.insert(&mut ctx, k, &vec![k as u8; 32 + (k % 200) as usize])
                    .unwrap();
            } else {
                idx.insert_u64(&mut ctx, k, k).unwrap();
            }
        }
        let mut out = Vec::new();
        for k in 0..800u64 {
            out.clear();
            assert!(idx.get(&mut ctx, k, &mut out), "key {k}");
            if k % 3 == 0 {
                assert_eq!(out.len(), 32 + (k % 200) as usize);
                assert!(out.iter().all(|&b| b == k as u8));
            }
        }
    }

    #[test]
    fn merge_shrinks_after_mass_delete() {
        let cfg = SpashConfig {
            initial_depth: 1,
            ..SpashConfig::test_default()
        };
        let (_d, idx, mut ctx) = setup_with(cfg);
        for k in 0..3000u64 {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        let peak = idx.capacity();
        for k in 0..3000u64 {
            idx.remove(&mut ctx, k);
        }
        assert_eq!(idx.len(), 0);
        assert!(
            idx.capacity() < peak,
            "capacity {} did not shrink from {peak}",
            idx.capacity()
        );
        // Still usable after merging.
        for k in 0..500u64 {
            idx.insert_u64(&mut ctx, k, 1).unwrap();
        }
        assert_eq!(idx.len(), 500);
    }

    #[test]
    fn pipelined_batch_equals_serial() {
        let (_d, idx, mut ctx) = setup();
        for k in 0..500u64 {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        let ops: Vec<BatchOp> = (0..500u64).map(BatchOp::Get).collect();
        let mut out = Vec::new();
        idx.run_batch(&mut ctx, &ops, &mut out);
        assert_eq!(out.len(), 500);
        for (k, r) in out.iter().enumerate() {
            match r {
                BatchResult::Got(Some(v)) => {
                    let mut le = [0u8; 8];
                    le[..6].copy_from_slice(&v[..6]);
                    assert_eq!(u64::from_le_bytes(le), k as u64);
                }
                other => panic!("unexpected {other:?} for key {k}"),
            }
        }
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let dev = PmDevice::new(PmConfig {
            arena_size: 64 << 20,
            ..PmConfig::small_test()
        });
        let mut ctx = dev.ctx();
        let idx = Arc::new(Spash::format(&mut ctx, SpashConfig::test_default()).unwrap());
        let n_threads = 4u64;
        let per = 2000u64;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let idx = Arc::clone(&idx);
                let dev = Arc::clone(&dev);
                s.spawn(move || {
                    let mut ctx = dev.ctx();
                    for i in 0..per {
                        let k = t * per + i;
                        idx.insert_u64(&mut ctx, k, k).unwrap();
                        // Read something already written by this thread.
                        let back = t * per + i / 2;
                        assert_eq!(idx.get_u64(&mut ctx, back), Some(back));
                    }
                });
            }
        });
        assert_eq!(idx.len(), n_threads * per);
        for k in 0..n_threads * per {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k), "key {k} lost");
        }
    }

    #[test]
    fn concurrent_updates_no_lost_values() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        let idx = Arc::new(Spash::format(&mut ctx, SpashConfig::test_default()).unwrap());
        for k in 0..16u64 {
            idx.insert_u64(&mut ctx, k, 0).unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let idx = Arc::clone(&idx);
                let dev = Arc::clone(&dev);
                s.spawn(move || {
                    let mut ctx = dev.ctx();
                    for i in 0..500u64 {
                        let k = i % 16;
                        idx.update_u64(&mut ctx, k, t * 1000 + i).unwrap();
                    }
                });
            }
        });
        // Every key must hold SOME thread's write, never garbage.
        for k in 0..16u64 {
            let v = idx.get_u64(&mut ctx, k).unwrap();
            let t = v / 1000;
            let i = v % 1000;
            assert!(t < 4 && i < 500, "corrupt value {v}");
        }
    }

    #[test]
    fn lock_modes_behave_identically() {
        for mode in [ConcurrencyMode::WriteLock, ConcurrencyMode::WriteReadLock] {
            let cfg = SpashConfig {
                concurrency: mode,
                ..SpashConfig::test_default()
            };
            let (_d, idx, mut ctx) = setup_with(cfg);
            for k in 0..1500u64 {
                idx.insert_u64(&mut ctx, k, k).unwrap();
            }
            idx.update_u64(&mut ctx, 7, 777).unwrap();
            assert!(idx.remove(&mut ctx, 8));
            for k in 0..1500u64 {
                let want = match k {
                    7 => Some(777),
                    8 => None,
                    _ => Some(k),
                };
                assert_eq!(idx.get_u64(&mut ctx, k), want, "mode {mode:?} key {k}");
            }
        }
    }

    #[test]
    fn concurrent_deletes_merges_and_halving() {
        // Deletes from many threads drive merges and directory halving
        // while readers verify surviving keys.
        let dev = PmDevice::new(PmConfig {
            arena_size: 64 << 20,
            ..PmConfig::small_test()
        });
        let mut ctx = dev.ctx();
        let idx = Arc::new(
            Spash::format(
                &mut ctx,
                SpashConfig {
                    initial_depth: 1,
                    ..SpashConfig::test_default()
                },
            )
            .unwrap(),
        );
        let n = 8_000u64;
        for k in 0..n {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let idx = Arc::clone(&idx);
                let dev = Arc::clone(&dev);
                s.spawn(move || {
                    let mut ctx = dev.ctx();
                    // Each thread deletes its own quarter except keys
                    // ending in 7 (survivors), reading survivors as it
                    // goes.
                    for i in 0..n / 4 {
                        let k = t * (n / 4) + i;
                        if k % 10 == 7 {
                            assert_eq!(idx.get_u64(&mut ctx, k), Some(k));
                        } else {
                            assert!(idx.remove(&mut ctx, k), "remove {k}");
                        }
                    }
                });
            }
        });
        for k in 0..n {
            let want = if k % 10 == 7 { Some(k) } else { None };
            assert_eq!(idx.get_u64(&mut ctx, k), want, "key {k}");
        }
        assert!(
            idx.capacity() < n * 2,
            "merges must have shrunk capacity ({})",
            idx.capacity()
        );
    }

    #[test]
    fn recovery_after_clean_eadr_crash() {
        let dev = PmDevice::new(PmConfig::eadr_test());
        let mut ctx = dev.ctx();
        let idx = Spash::format(&mut ctx, SpashConfig::test_default()).unwrap();
        for k in 0..3000u64 {
            idx.insert_u64(&mut ctx, k, k * 3).unwrap();
        }
        idx.remove(&mut ctx, 100);
        idx.update_u64(&mut ctx, 200, 9999).unwrap();
        let live = idx.len();
        drop(idx);
        dev.simulate_power_failure();

        let mut ctx2 = dev.ctx();
        let idx2 = Spash::recover(&mut ctx2, SpashConfig::test_default()).expect("recoverable");
        assert_eq!(idx2.len(), live);
        assert_eq!(idx2.get_u64(&mut ctx2, 100), None);
        assert_eq!(idx2.get_u64(&mut ctx2, 200), Some(9999));
        for k in 0..3000u64 {
            if k == 100 || k == 200 {
                continue;
            }
            assert_eq!(idx2.get_u64(&mut ctx2, k), Some(k * 3), "key {k}");
        }
        // And the recovered index keeps working.
        idx2.insert_u64(&mut ctx2, 1_000_000, 1).unwrap();
        assert_eq!(idx2.get_u64(&mut ctx2, 1_000_000), Some(1));
    }

    #[test]
    fn recovery_of_blob_values() {
        let dev = PmDevice::new(PmConfig::eadr_test());
        let mut ctx = dev.ctx();
        let idx = Spash::format(&mut ctx, SpashConfig::test_default()).unwrap();
        idx.insert(&mut ctx, 5, &[0x5au8; 777]).unwrap();
        drop(idx);
        dev.simulate_power_failure();
        let mut ctx2 = dev.ctx();
        let idx2 = Spash::recover(&mut ctx2, SpashConfig::test_default()).unwrap();
        let mut out = Vec::new();
        assert!(idx2.get(&mut ctx2, 5, &mut out));
        assert_eq!(out, vec![0x5au8; 777]);
    }

    #[test]
    fn recover_unformatted_is_none() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        assert!(Spash::recover(&mut ctx, SpashConfig::test_default()).is_none());
    }

    #[test]
    fn htm_commits_dominate_aborts_single_thread() {
        let (_d, idx, mut ctx) = setup();
        for k in 0..1000u64 {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        let s = idx.htm_stats();
        assert!(s.commits >= 1000);
        assert_eq!(s.conflict_aborts, 0, "no conflicts single-threaded");
        assert_eq!(idx.fallback_count(), 0);
    }
}
