//! The Spash index: five-step execution flow (§III-D) under the two-phase
//! concurrency protocol (§IV-A).
//!
//! Every base operation is split into:
//!
//! * a **preparation phase** outside any transaction — hash the key, route
//!   through the volatile directory (step 1), load the main bucket
//!   (step 2), locate the compound slot (step 3), dereference out-of-place
//!   blobs (step 4), and for inserts allocate + fill the new blob;
//! * a **transaction phase** (step 5) — a short HTM transaction that first
//!   *validates* the preparation snapshot (directory entry unchanged, slot
//!   unchanged) and then processes the entry. Stale snapshots abort
//!   explicitly and the operation retries from preparation; after
//!   `max_tx_retries` conflict aborts the operation falls back to a
//!   non-transactional lock on the routed directory partition (§IV-A's
//!   segment lock).
//!
//! Adaptive in-place update (§III-B, Table I) and compacted-flush
//! insertion (§III-C) run in the post-commit step: flushes are issued
//! *after* the transaction, never inside it (flushes abort real HTM).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spash_alloc::PmAllocator;
use spash_htm::{Abort, Htm, LineId, Tx};
use spash_index_api::{hash_key, IndexError};
use spash_pmem::{MemCtx, PmAddr, PmDevice, VRwLock};

use crate::config::{ConcurrencyMode, InsertPolicy, SpashConfig, UpdatePolicy};
use crate::dir::{Directory, Routed, VALIDATE_SLOT_CHANGED};
use crate::fptable::FpTable;
use crate::overlay::{CachedBucket, Overlay};
use crate::seginfo::SegInfoTable;
use crate::slot::{
    self, bucket_of, bucket_slots, fp14, fp8, fp_word, hint_matches, key_addr, make_hint,
    probe_order, value_addr, value_word, SlotKey, INLINE_VALUE_LEN, MAX_INLINE_KEY,
    SLOTS_PER_BUCKET,
};

/// Explicit-abort code: the key turned out to be present (insert) or
/// absent (update/delete) when re-checked transactionally.
pub(crate) const AB_STATE_CHANGED: u32 = VALIDATE_SLOT_CHANGED;

/// Number of lock-table entries for the lock-mode ablations.
pub(crate) const SEG_LOCK_TABLE: usize = 4096;

pub(crate) struct SegLock {
    pub rw: VRwLock<()>,
    /// Seqlock version for WriteLock-mode optimistic readers.
    pub ver: AtomicU64,
}

/// The Spash persistent hash index.
pub struct Spash {
    pub(crate) dev: Arc<PmDevice>,
    pub(crate) alloc: Arc<PmAllocator>,
    pub(crate) htm: Htm,
    pub(crate) dir: Directory,
    pub(crate) seginfo: SegInfoTable,
    pub(crate) fptable: FpTable,
    pub(crate) overlay: Overlay,
    pub(crate) cfg: SpashConfig,
    pub(crate) entries: AtomicU64,
    pub(crate) n_segments: AtomicU64,
    pub(crate) seg_locks: Box<[SegLock]>,
    /// Diagnostic: how many operations took the lock fallback.
    pub(crate) fallbacks: AtomicU64,
}

/// A slot located during preparation.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Found {
    pub idx: u8,
    pub kw: u64,
    pub vw: u64,
}

/// Where an insert will place its entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Placement {
    /// A free slot in the key's main bucket.
    Main(u8),
    /// A free slot in an overflow bucket plus the main-bucket slot whose
    /// value word will carry the overflow hint.
    Overflow { idx: u8, hint_slot: u8 },
    /// No placement possible: the segment must split.
    Full,
}

/// An insert payload prepared before the transaction phase.
pub(crate) enum Payload {
    Inline(u64),
    Blob {
        addr: PmAddr,
        val_len: u64,
        alloc_size: u64,
        flush_chunk: Option<PmAddr>,
    },
}

impl Spash {
    // =====================================================================
    // construction
    // =====================================================================

    /// Format the device's arena and build an empty index with
    /// `2^initial_depth` segments.
    pub fn format(ctx: &mut MemCtx, cfg: SpashConfig) -> Result<Self, IndexError> {
        let dev = Arc::clone(ctx.device());
        // Reserve one 8-byte segment-info record plus a 32-byte
        // fingerprint sidecar (4 packed per-bucket tag words) per
        // possible chunk.
        let reserved = dev.arena().size() / 32 + dev.arena().size() / 8;
        let alloc = Arc::new(PmAllocator::format(ctx, reserved));
        let l = *alloc.layout();
        let (res_base, res_len) = alloc.reserved();
        let seginfo = SegInfoTable::new(res_base, res_len, l.heap_start, l.n_chunks);
        let fptable = FpTable::new(
            PmAddr(res_base.0 + l.n_chunks * 8),
            res_len - l.n_chunks * 8,
            l.heap_start,
            l.n_chunks,
        );
        let overlay = Overlay::new(
            if cfg.concurrency == ConcurrencyMode::Htm {
                cfg.overlay_entries
            } else {
                0
            },
            l.heap_start,
        );

        let n = 1usize << cfg.initial_depth;
        let mut segs = Vec::with_capacity(n);
        for prefix in 0..n {
            let seg = alloc
                .alloc_segment(ctx)
                .map_err(|_| IndexError::OutOfMemory)?;
            // Fresh arena is zeroed; recycled chunks are not: clear.
            for w in 0..32 {
                ctx.write_u64(PmAddr(seg.0 + w * 8), 0);
            }
            for b in 0..slot::BUCKETS_PER_SEG {
                fptable.write_word(ctx, seg, b, 0);
            }
            seginfo.set(ctx, seg, cfg.initial_depth as u8, prefix as u64);
            segs.push(seg);
        }
        let dir = Directory::new(cfg.initial_depth, &segs);
        let htm = Htm::new(cfg.htm.clone());
        let lock_ns = dev.config().cost.lock_ns;
        Ok(Self {
            dev,
            alloc,
            htm,
            dir,
            seginfo,
            fptable,
            overlay,
            entries: AtomicU64::new(0),
            n_segments: AtomicU64::new(n as u64),
            seg_locks: (0..SEG_LOCK_TABLE)
                .map(|_| SegLock {
                    rw: VRwLock::new((), lock_ns),
                    ver: AtomicU64::new(0),
                })
                .collect(),
            fallbacks: AtomicU64::new(0),
            cfg,
        })
    }

    /// Shared handles used internally and by diagnostics.
    pub fn device(&self) -> &Arc<PmDevice> {
        &self.dev
    }

    /// The allocator (examples may co-allocate their own blobs).
    pub fn allocator(&self) -> &Arc<PmAllocator> {
        &self.alloc
    }

    /// HTM commit/abort statistics.
    pub fn htm_stats(&self) -> spash_htm::HtmStats {
        self.htm.stats()
    }

    /// Operations that took the lock fallback path.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Stages completed collaboratively by non-doubling threads (§IV-B).
    pub fn dir_assist_count(&self) -> u64 {
        self.dir.assist_count.load(Ordering::Relaxed)
    }

    /// Times an operation blocked behind the doubling thread (only in the
    /// blocking-doubling ablation).
    pub fn dir_await_count(&self) -> u64 {
        self.dir.await_count.load(Ordering::Relaxed)
    }

    /// Live entries.
    pub fn len(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocated slot capacity (for the load factor, Fig 9).
    pub fn capacity(&self) -> u64 {
        self.n_segments.load(Ordering::Relaxed) * slot::SLOTS_PER_SEG as u64
    }

    /// Diagnostic: where does `key` actually live? Scans every segment
    /// reachable from the directory plus the routed entry.
    pub fn debug_dump_key(&self, ctx: &mut MemCtx, key: u64) {
        use crate::slot::{key_addr, SlotKey, SLOTS_PER_SEG};
        let h = hash_key(key);
        let routed = self.dir.lookup(ctx, h);
        eprintln!(
            "  routed: seg={:#x} depth={} idx={} gen={}",
            routed.seg().0,
            routed.local_depth(),
            routed.idx,
            routed.dir.gen
        );
        // Scan every distinct segment in the directory.
        let mut seen = std::collections::HashSet::new();
        let (dir, _) = self.dir.write_target();
        for i in 0..dir.entries.len() {
            let (seg, d) = crate::dir::unpack_entry(
                dir.entries[i].load(std::sync::atomic::Ordering::Acquire),
            );
            if !seen.insert(seg) {
                continue;
            }
            for idx in 0..SLOTS_PER_SEG {
                // lint:allow(fp-probe): diagnostic dump deliberately scans every slot to find misrouted keys
                let kw = ctx.read_u64(key_addr(seg, idx));
                let hit = match SlotKey::unpack(kw) {
                    SlotKey::Inline { key: k, .. } => k == key,
                    SlotKey::Ptr { addr, .. } => ctx.read_u64(addr) == key,
                    SlotKey::Empty => false,
                };
                if hit {
                    eprintln!(
                        "  FOUND in seg={:#x} (dir idx {i}, depth {d}) slot {idx};                          key prefix route idx should be {}",
                        seg.0,
                        dir.index_of(h)
                    );
                }
            }
        }
        eprintln!("  (scan complete over {} distinct segments)", seen.len());
    }

    /// Fingerprint- and overlay-blind reference lookup for the
    /// differential oracle battery (`tests/fingerprint_oracle.rs`):
    /// routes through the directory, then *linearly scans all 16 slots*
    /// of the segment — no fp-word filter, no hint chasing, no DRAM
    /// cache. Single-threaded use only (no transaction, no locks); the
    /// battery compares every real probe against this on quiesced state.
    pub fn oracle_scan_get(&self, ctx: &mut MemCtx, key: u64, out: &mut Vec<u8>) -> bool {
        let h = hash_key(key);
        let seg = self.dir.lookup(ctx, h).seg();
        for idx in 0..slot::SLOTS_PER_SEG {
            // lint:allow(fp-probe): the oracle is fp-blind by contract -- it is the reference the fp path is differenced against
            let kw = ctx.read_u64(key_addr(seg, idx));
            if self.key_word_matches(ctx, kw, key, h) {
                let vw = ctx.read_u64(value_addr(seg, idx));
                self.read_value_plain(ctx, Found { idx, kw, vw }).append_to(out);
                return true;
            }
        }
        false
    }

    pub(crate) fn seg_lock(&self, seg: PmAddr) -> &SegLock {
        let i = (seg.0 / slot::SEG_SIZE) as usize;
        &self.seg_locks[i % SEG_LOCK_TABLE]
    }

    // =====================================================================
    // preparation-phase helpers (no transactions)
    // =====================================================================

    /// Read bucket `b` of `seg`: steps 2–3 of the execution flow. One
    /// cacheline of PM traffic.
    pub(crate) fn read_bucket(
        &self,
        ctx: &mut MemCtx,
        seg: PmAddr,
        b: u8,
    ) -> [(u64, u64); SLOTS_PER_BUCKET as usize] {
        let mut out = [(0u64, 0u64); SLOTS_PER_BUCKET as usize];
        for (i, s) in bucket_slots(b).enumerate() {
            out[i] = (
                // lint:allow(fp-probe): shared bucket reader; probe callers pre-filter via the fp word (find_in_segment), mutation prep reads the line unconditionally
                ctx.read_u64(key_addr(seg, s)),
                ctx.read_u64(value_addr(seg, s)),
            );
        }
        out
    }

    /// Does the key word match `key`? Dereferences the blob for pointer
    /// entries whose fingerprint matches (step 4).
    pub(crate) fn key_word_matches(&self, ctx: &mut MemCtx, kw: u64, key: u64, h: u64) -> bool {
        match SlotKey::unpack(kw) {
            SlotKey::Empty => false,
            SlotKey::Inline { key: k, .. } => k == key && key <= MAX_INLINE_KEY,
            SlotKey::Ptr { addr, fp } => fp == fp14(h) && ctx.read_u64(addr) == key,
        }
    }

    /// Locate `key` in `seg` (preparation), fingerprint-first: the
    /// bucket's sidecar tag word is read before anything else, and only a
    /// tag match earns a bucket-line read (§III-A plus the Dash-style
    /// 8-bit pre-filter). A key present in the segment is always visible
    /// in its main bucket's fp word — as a slot tag or, for overflow
    /// entries, a hint tag — so no tag match is a definitive miss.
    pub(crate) fn find_in_segment(
        &self,
        ctx: &mut MemCtx,
        seg: PmAddr,
        key: u64,
        h: u64,
    ) -> Option<Found> {
        let b = bucket_of(h);
        let fpw = self.fptable.read(ctx, seg, b);
        let tag = fp8(h);
        let smask = fp_word::slot_candidates(fpw, tag);
        let hmask = fp_word::hint_candidates(fpw, tag);
        if smask == 0 && hmask == 0 {
            return None;
        }
        let words = self.read_bucket(ctx, seg, b);
        for (i, &(kw, vw)) in words.iter().enumerate() {
            if smask & (1 << i) != 0 && self.key_word_matches(ctx, kw, key, h) {
                return Some(Found {
                    idx: b * SLOTS_PER_BUCKET + i as u8,
                    kw,
                    vw,
                });
            }
        }
        // Overflow hints: the value words of the main bucket carry
        // [fp12|slot] hints for entries that circular probing pushed into
        // other buckets of the segment (same XPLine: cheap to chase). The
        // hint-tag half of the fp word pre-filters which hints can match.
        for (i, &(_, vw)) in words.iter().enumerate() {
            if hmask & (1 << i) == 0 {
                continue;
            }
            if let Some(tidx) = hint_matches(value_word::hint(vw), h) {
                if tidx / SLOTS_PER_BUCKET == b {
                    continue; // hints never point into the main bucket
                }
                let kw = ctx.read_u64(key_addr(seg, tidx));
                if self.key_word_matches(ctx, kw, key, h) {
                    let vw = ctx.read_u64(value_addr(seg, tidx));
                    return Some(Found { idx: tidx, kw, vw });
                }
            }
        }
        None
    }

    /// Find a free slot for an insert (preparation).
    pub(crate) fn find_placement(&self, ctx: &mut MemCtx, seg: PmAddr, h: u64) -> Placement {
        let b = bucket_of(h);
        let words = self.read_bucket(ctx, seg, b);
        for (i, &(kw, _)) in words.iter().enumerate() {
            if SlotKey::unpack(kw).is_empty() {
                return Placement::Main(b * SLOTS_PER_BUCKET + i as u8);
            }
        }
        // Main bucket full: we need both a free overflow slot and a free
        // hint slot in the main bucket (every overflow entry must be
        // findable through a hint).
        let hint_slot = match words
            .iter()
            .position(|&(_, vw)| value_word::hint(vw) == 0)
        {
            Some(i) => b * SLOTS_PER_BUCKET + i as u8,
            None => return Placement::Full,
        };
        for &ob in &probe_order(b)[1..] {
            for s in bucket_slots(ob) {
                // lint:allow(fp-probe): placement hunts *empty* slots on the mutation path; fp tags pre-filter occupied matches, not free space
                let kw = ctx.read_u64(key_addr(seg, s));
                if SlotKey::unpack(kw).is_empty() {
                    return Placement::Overflow { idx: s, hint_slot };
                }
            }
        }
        Placement::Full
    }

    /// Build the insert payload: inline when possible, otherwise an
    /// out-of-place blob `[key][len][value]` written (write-nf) before the
    /// transaction — it is unreachable until the slot is linked, and under
    /// eADR everything visible is durable.
    pub(crate) fn make_payload(
        &self,
        ctx: &mut MemCtx,
        key: u64,
        value: &[u8],
    ) -> Result<Payload, IndexError> {
        if value.len() == INLINE_VALUE_LEN && key <= MAX_INLINE_KEY {
            let mut le = [0u8; 8];
            le[..INLINE_VALUE_LEN].copy_from_slice(value);
            return Ok(Payload::Inline(u64::from_le_bytes(le)));
        }
        let blob_len = 16 + value.len() as u64;
        let alloc_size = match self.cfg.insert_policy {
            // Scattered: defeat compaction by placing every small blob in
            // its own XPLine (conventional out-of-place insertion).
            InsertPolicy::Scattered if blob_len <= 128 => 256,
            _ => blob_len,
        };
        let a = self
            .alloc
            .alloc(ctx, alloc_size)
            .map_err(|_| IndexError::OutOfMemory)?;
        ctx.write_u64(a.addr, key);
        ctx.write_u64(PmAddr(a.addr.0 + 8), value.len() as u64);
        ctx.write_bytes(PmAddr(a.addr.0 + 16), value);
        if ctx.device().config().domain == spash_pmem::PersistenceDomain::Adr {
            // ADR downgrade: without a persistent CPU cache the blob must
            // be durable before the slot word can publish it. Under eADR
            // (the paper's platform) visibility is durability and this
            // block disappears. The range is registered as
            // publication-ordered so the sanitizer's Relaxed mode checks
            // exactly this obligation at the next visibility edge.
            if spash_pmem::san::site_enabled("spash.payload.flush") {
                ctx.flush_range(a.addr, blob_len);
            }
            if spash_pmem::san::site_enabled("spash.payload.fence") {
                ctx.fence();
            }
            ctx.san_ordered(a.addr, blob_len);
        }
        Ok(Payload::Blob {
            addr: a.addr,
            val_len: value.len() as u64,
            alloc_size,
            flush_chunk: a.exhausted_chunk,
        })
    }

    pub(crate) fn free_payload(&self, ctx: &mut MemCtx, p: &Payload) {
        if let Payload::Blob {
            addr, alloc_size, ..
        } = p
        {
            self.alloc.free(ctx, *addr, *alloc_size);
        }
    }

    // =====================================================================
    // transaction-phase helpers
    // =====================================================================

    /// Run `body` as the transaction phase with conflict-retry and lock
    /// fallback. `prep` re-runs the preparation phase; `body` gets the
    /// fresh preparation result. Returns `body`'s output.
    ///
    /// This is the §IV-A protocol: explicit (validation) aborts restart
    /// preparation immediately; conflict aborts retry up to
    /// `max_tx_retries` times and then take the directory-partition lock.
    // conc: region(htm) fn=run_two_phase
    pub(crate) fn run_two_phase<P, R>(
        &self,
        ctx: &mut MemCtx,
        mut prep: impl FnMut(&Spash, &mut MemCtx) -> P,
        mut body: impl FnMut(&Spash, &mut Tx<'_>, &mut MemCtx, &P) -> Result<R, Abort>,
        mut locked_body: impl FnMut(&Spash, &mut MemCtx, &P) -> R,
        lock_ids_of: impl Fn(&P) -> Vec<LineId>,
    ) -> R {
        let mut conflicts = 0;
        loop {
            let p = prep(self, ctx);
            match self.htm.try_transaction(ctx, |tx, ctx| body(self, tx, ctx, &p)) {
                Ok(r) => return r,
                Err(Abort::Explicit(_)) => continue,
                Err(a @ (Abort::Conflict(_) | Abort::Capacity)) => {
                    conflicts += 1;
                    if conflicts <= self.cfg.max_tx_retries {
                        // Wait for the conflicting owner in REAL time (no
                        // virtual charge beyond the abort penalty): the
                        // owner may be preempted on a host with fewer
                        // cores than simulated threads.
                        if let Abort::Conflict(slot) = a {
                            self.htm.wait_slot(slot);
                        } else {
                            spash_pmem::schedhook::spin_wait();
                        }
                        continue;
                    }
                    // Fallback: lock every directory partition covering
                    // the routed segment (ascending order, deadlock-free),
                    // which excludes every transaction that could touch
                    // the segment — they all read-guard one of these ids.
                    self.fallbacks.fetch_add(1, Ordering::Relaxed);
                    let ids = lock_ids_of(&p);
                    for &id in &ids {
                        self.htm.nontx_lock(ctx, id);
                    }
                    // Re-verify the routing is still the one we locked.
                    let p2 = prep(self, ctx);
                    if lock_ids_of(&p2) != ids {
                        for &id in ids.iter().rev() {
                            self.htm.nontx_unlock(ctx, id);
                        }
                        conflicts = 0;
                        continue;
                    }
                    let r = locked_body(self, ctx, &p2);
                    for &id in ids.iter().rev() {
                        self.htm.nontx_unlock(ctx, id);
                    }
                    return r;
                }
            }
        }
    }

    // =====================================================================
    // base operations (HTM mode; lock modes live in lockmode.rs)
    // =====================================================================

    pub(crate) fn insert_htm(
        &self,
        ctx: &mut MemCtx,
        key: u64,
        value: &[u8],
    ) -> Result<(), IndexError> {
        let h = hash_key(key);
        let payload = self.make_payload(ctx, key, value)?;
        let (kw_new, vw_payload) = match payload {
            Payload::Inline(v) => (
                SlotKey::Inline { key, fp: fp14(h) }.pack(),
                v,
            ),
            Payload::Blob { addr, val_len, .. } => (
                SlotKey::Ptr { addr, fp: fp14(h) }.pack(),
                val_len,
            ),
        };

        struct Prep {
            routed: Routed,
            dup: bool,
            placement: Placement,
        }

        let out: Result<bool, IndexError> = {
            let mut split_err: Option<IndexError> = None;
            loop {
                if let Some(e) = split_err {
                    break Err(e);
                }
                let r = self.run_two_phase(
                    ctx,
                    |s, ctx| {
                        let routed = s.dir.lookup(ctx, h);
                        let seg = routed.seg();
                        let dup = s.find_in_segment(ctx, seg, key, h).is_some();
                        let placement = if dup {
                            Placement::Full // unused
                        } else {
                            s.find_placement(ctx, seg, h)
                        };
                        Prep {
                            routed,
                            dup,
                            placement,
                        }
                    },
                    |s, tx, ctx, p| {
                        let seg = p.routed.seg();
                        s.dir.tx_validate(tx, ctx, h, seg)?;
                        // Re-check duplicates under the main-bucket guard:
                        // every insert of this key must touch this line.
                        if s.tx_find(tx, ctx, seg, key, h)?.is_some() {
                            return Ok(Some(false)); // duplicate
                        }
                        if p.dup {
                            // Prep saw it but it is gone now: retry prep to
                            // pick a placement.
                            return tx.abort(AB_STATE_CHANGED);
                        }
                        match p.placement {
                            Placement::Full => Ok(None), // split needed
                            Placement::Main(idx) => {
                                let vw = tx.read_u64(ctx, value_addr(seg, idx))?;
                                let kw = tx.read_u64(ctx, key_addr(seg, idx))?;
                                if !SlotKey::unpack(kw).is_empty() {
                                    return tx.abort(AB_STATE_CHANGED);
                                }
                                tx.write_u64(
                                    ctx,
                                    value_addr(seg, idx),
                                    value_word::with_payload(vw, vw_payload),
                                )?;
                                tx.write_u64(ctx, key_addr(seg, idx), kw_new)?;
                                s.fptable.tx_set_slot_tag(tx, ctx, seg, idx, fp8(h))?;
                                s.overlay.tx_bump(tx, ctx, seg)?;
                                Ok(Some(true))
                            }
                            Placement::Overflow { idx, hint_slot } => {
                                let kw = tx.read_u64(ctx, key_addr(seg, idx))?;
                                if !SlotKey::unpack(kw).is_empty() {
                                    return tx.abort(AB_STATE_CHANGED);
                                }
                                let hvw = tx.read_u64(ctx, value_addr(seg, hint_slot))?;
                                if value_word::hint(hvw) != 0 {
                                    return tx.abort(AB_STATE_CHANGED);
                                }
                                let vw = tx.read_u64(ctx, value_addr(seg, idx))?;
                                tx.write_u64(
                                    ctx,
                                    value_addr(seg, idx),
                                    value_word::with_payload(vw, vw_payload),
                                )?;
                                tx.write_u64(ctx, key_addr(seg, idx), kw_new)?;
                                tx.write_u64(
                                    ctx,
                                    value_addr(seg, hint_slot),
                                    value_word::with_hint(hvw, make_hint(h, idx)),
                                )?;
                                // Overflow entries are visible in two fp
                                // words: their own bucket's slot tag and
                                // the main bucket's hint tag.
                                s.fptable.tx_set_slot_tag(tx, ctx, seg, idx, fp8(h))?;
                                s.fptable.tx_set_hint_tag(tx, ctx, seg, hint_slot, fp8(h))?;
                                s.overlay.tx_bump(tx, ctx, seg)?;
                                Ok(Some(true))
                            }
                        }
                    },
                    |s, ctx, p| s.locked_insert(ctx, p.routed.seg(), key, h, kw_new, vw_payload),
                    |p| p.routed.fallback_lock_ids(),
                );
                match r {
                    Some(ok) => break Ok(ok),
                    None => {
                        // Segment full: split and retry.
                        if let Err(e) = self.split(ctx, h) {
                            split_err = Some(e);
                        }
                    }
                }
            }
        };

        match out {
            Ok(true) => {
                self.entries.fetch_add(1, Ordering::Relaxed);
                // Compacted-flush: the chunk this blob filled is flushed
                // asynchronously, in XPLine granularity (§III-C).
                if let Payload::Blob {
                    flush_chunk: Some(c),
                    ..
                } = payload
                {
                    // Under ADR the downgrade in `make_payload` already
                    // flushed + fenced every blob before it was published,
                    // so the whole chunk is clean here and the XPLine
                    // flush would be redundant (sanitizer diagnostic).
                    if self.cfg.insert_policy == InsertPolicy::CompactedFlush
                        && ctx.device().config().domain == spash_pmem::PersistenceDomain::Eadr
                    {
                        ctx.flush_range(c, spash_alloc::CHUNK);
                    }
                }
                Ok(())
            }
            Ok(false) => {
                self.free_payload(ctx, &payload);
                Err(IndexError::DuplicateKey)
            }
            Err(e) => {
                self.free_payload(ctx, &payload);
                Err(e)
            }
        }
    }

    /// Transactional find: fingerprint-first probe with read guards on
    /// every line consulted. See [`Self::tx_probe`].
    pub(crate) fn tx_find(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut MemCtx,
        seg: PmAddr,
        key: u64,
        h: u64,
    ) -> Result<Option<Found>, Abort> {
        Ok(self.tx_probe(tx, ctx, seg, key, h)?.0)
    }

    /// Fingerprint-first transactional probe. Reads the bucket's sidecar
    /// fp word first; only a tag match earns the bucket-line reads. The
    /// fp word joins the transaction's read set, and every mutation of
    /// the bucket writes it, so a probe that never touches a bucket line
    /// still conflicts with concurrent mutators — this is what keeps the
    /// duplicate-check coupling of inserts sound.
    ///
    /// Also returns the raw main-bucket state `(fp word, slot words)`
    /// when the bucket line was read (`None` = the fp word answered the
    /// probe alone) — the overlay installs from exactly this data.
    #[allow(clippy::type_complexity)]
    pub(crate) fn tx_probe(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut MemCtx,
        seg: PmAddr,
        key: u64,
        h: u64,
    ) -> Result<
        (
            Option<Found>,
            Option<(u64, [(u64, u64); SLOTS_PER_BUCKET as usize])>,
        ),
        Abort,
    > {
        let b = bucket_of(h);
        let fpw = self.fptable.tx_read(tx, ctx, seg, b)?;
        let tag = fp8(h);
        let smask = fp_word::slot_candidates(fpw, tag);
        let hmask = fp_word::hint_candidates(fpw, tag);
        if smask == 0 && hmask == 0 {
            return Ok((None, None));
        }
        let mut words = [(0u64, 0u64); SLOTS_PER_BUCKET as usize];
        for (i, s) in bucket_slots(b).enumerate() {
            words[i] = (
                tx.read_u64(ctx, key_addr(seg, s))?,
                tx.read_u64(ctx, value_addr(seg, s))?,
            );
        }
        for (i, &(kw, vw)) in words.iter().enumerate() {
            if smask & (1 << i) != 0 && self.tx_key_matches(tx, ctx, kw, key, h)? {
                return Ok((
                    Some(Found {
                        idx: b * SLOTS_PER_BUCKET + i as u8,
                        kw,
                        vw,
                    }),
                    Some((fpw, words)),
                ));
            }
        }
        for (i, &(_, vw)) in words.iter().enumerate() {
            if hmask & (1 << i) == 0 {
                continue;
            }
            if let Some(tidx) = hint_matches(value_word::hint(vw), h) {
                if tidx / SLOTS_PER_BUCKET == b {
                    continue;
                }
                let kw = tx.read_u64(ctx, key_addr(seg, tidx))?;
                if self.tx_key_matches(tx, ctx, kw, key, h)? {
                    let vw = tx.read_u64(ctx, value_addr(seg, tidx))?;
                    return Ok((Some(Found { idx: tidx, kw, vw }), Some((fpw, words))));
                }
            }
        }
        Ok((None, Some((fpw, words))))
    }

    fn tx_key_matches(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut MemCtx,
        kw: u64,
        key: u64,
        h: u64,
    ) -> Result<bool, Abort> {
        Ok(match SlotKey::unpack(kw) {
            SlotKey::Empty => false,
            SlotKey::Inline { key: k, .. } => k == key && key <= MAX_INLINE_KEY,
            SlotKey::Ptr { addr, fp } => fp == fp14(h) && tx.read_u64(ctx, addr)? == key,
        })
    }

    pub(crate) fn get_htm(&self, ctx: &mut MemCtx, key: u64, out: &mut Vec<u8>) -> bool {
        let h = hash_key(key);
        // DRAM overlay fast path: a route-matched entry, validated
        // against the segment generations inside a short transaction,
        // answers the probe without touching a PM bucket line (blob
        // payloads still read PM, read-guarded as usual). Any stale or
        // inconclusive outcome falls through to the PM probe below.
        if let Some(hit) = self.overlay.lookup(ctx, h) {
            match self
                .htm
                .try_transaction(ctx, |tx, ctx| self.get_from_overlay(tx, ctx, &hit, key, h))
            {
                Ok(OverlayProbe::Found(v)) => {
                    v.append_to(out);
                    return true;
                }
                Ok(OverlayProbe::Miss) => return false,
                // Stale entry, overflow-hint chase, or any abort: take
                // the PM path (no retry loop here — the slow path is the
                // retry). Prefetch the lines that probe will need from
                // the cached route so the fp-word and bucket fetches
                // overlap instead of serializing; a stale `seg` only
                // wastes the fetch.
                Ok(OverlayProbe::Fall) | Err(_) => {
                    let b = bucket_of(h);
                    ctx.prefetch(self.fptable.word_addr(hit.seg, b));
                    ctx.prefetch(key_addr(hit.seg, b * SLOTS_PER_BUCKET));
                }
            }
        }
        struct Install {
            depth: u32,
            seg: PmAddr,
            snap: (u64, u64),
            fpw: u64,
            words: [(u64, u64); SLOTS_PER_BUCKET as usize],
        }
        let (r, install): (Option<GetResult>, Option<Install>) = self.run_two_phase(
            ctx,
            |s, ctx| s.dir.lookup(ctx, h),
            |s, tx, ctx, routed| {
                let seg = routed.seg();
                s.dir.tx_validate(tx, ctx, h, seg)?;
                let (found, raw) = s.tx_probe(tx, ctx, seg, key, h)?;
                let res = match found {
                    None => None,
                    Some(f) => Some(s.tx_read_value(tx, ctx, f)?),
                };
                // Install only when the bucket line was read anyway: a
                // pure fp-word negative stays a one-line probe, and
                // negatives are not worth caching.
                let install = match raw {
                    Some((fpw, words)) if s.overlay.enabled() => {
                        let snap = s.overlay.tx_snapshot(tx, ctx, seg)?;
                        Some(Install {
                            depth: routed.local_depth() as u32,
                            seg,
                            snap,
                            fpw,
                            words,
                        })
                    }
                    _ => None,
                };
                Ok((res, install))
            },
            |s, ctx, routed| {
                let seg = routed.seg();
                (
                    s.find_in_segment(ctx, seg, key, h)
                        .map(|f| s.read_value_plain(ctx, f)),
                    None,
                )
            },
            |routed| routed.fallback_lock_ids(),
        );
        if let Some(i) = install {
            self.overlay
                .install(ctx, h, i.depth, i.seg, i.snap, i.fpw, i.words);
        }
        match r {
            None => false,
            Some(v) => {
                v.append_to(out);
                true
            }
        }
    }

    /// Serve a lookup from a validated overlay entry. All slot filtering
    /// goes through the *cached* fp tags (never a raw slot scan), so the
    /// wrong-tag canary stays observable on this path too.
    fn get_from_overlay(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut MemCtx,
        hit: &CachedBucket,
        key: u64,
        h: u64,
    ) -> Result<OverlayProbe, Abort> {
        if !self.overlay.tx_validate(tx, ctx, hit)? {
            return Ok(OverlayProbe::Fall);
        }
        let tag = fp8(h);
        let smask = fp_word::slot_candidates(hit.fpw, tag);
        let hmask = fp_word::hint_candidates(hit.fpw, tag);
        let b = bucket_of(h);
        for (j, &(kw, vw)) in hit.words.iter().enumerate() {
            if smask & (1 << j) != 0 && self.tx_key_matches(tx, ctx, kw, key, h)? {
                let f = Found {
                    idx: b * SLOTS_PER_BUCKET + j as u8,
                    kw,
                    vw,
                };
                return Ok(OverlayProbe::Found(self.tx_read_value(tx, ctx, f)?));
            }
        }
        if hmask != 0 {
            // A hint tag matches but overflow slots are not cached; the
            // PM probe chases it.
            return Ok(OverlayProbe::Fall);
        }
        Ok(OverlayProbe::Miss)
    }

    fn tx_read_value(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut MemCtx,
        f: Found,
    ) -> Result<GetResult, Abort> {
        match SlotKey::unpack(f.kw) {
            SlotKey::Inline { .. } => Ok(GetResult::Inline(value_word::payload(f.vw))),
            SlotKey::Ptr { addr, .. } => {
                let len = value_word::payload(f.vw) as usize;
                let mut buf = vec![0u8; len];
                // Guard every blob line, then bulk-copy.
                let first = addr.0 + 16;
                if len > 0 {
                    for line in first / 64..=(first + len as u64 - 1) / 64 {
                        tx.read_guard(LineId(line))?;
                    }
                }
                ctx.read_bytes(PmAddr(first), &mut buf);
                Ok(GetResult::Bytes(buf))
            }
            SlotKey::Empty => unreachable!("found slot cannot be empty"),
        }
    }

    pub(crate) fn read_value_plain_pub(&self, ctx: &mut MemCtx, f: Found) -> GetResult {
        self.read_value_plain(ctx, f)
    }

    fn read_value_plain(&self, ctx: &mut MemCtx, f: Found) -> GetResult {
        match SlotKey::unpack(f.kw) {
            SlotKey::Inline { .. } => GetResult::Inline(value_word::payload(f.vw)),
            SlotKey::Ptr { addr, .. } => {
                let len = value_word::payload(f.vw) as usize;
                let mut buf = vec![0u8; len];
                ctx.read_bytes(PmAddr(addr.0 + 16), &mut buf);
                GetResult::Bytes(buf)
            }
            SlotKey::Empty => unreachable!(),
        }
    }

    pub(crate) fn remove_htm(&self, ctx: &mut MemCtx, key: u64) -> bool {
        let h = hash_key(key);
        let removed: Option<(u64, u64)> = self.run_two_phase(
            ctx,
            |s, ctx| s.dir.lookup(ctx, h),
            |s, tx, ctx, routed| {
                let seg = routed.seg();
                s.dir.tx_validate(tx, ctx, h, seg)?;
                let f = match s.tx_find(tx, ctx, seg, key, h)? {
                    None => return Ok(None),
                    Some(f) => f,
                };
                // Clear the key word; the payload bits can stay (slot
                // emptiness is defined by the key word alone), but the
                // bucket-owned hint bits of this slot's value word must be
                // preserved.
                tx.write_u64(ctx, key_addr(seg, f.idx), 0)?;
                s.fptable.tx_set_slot_tag(tx, ctx, seg, f.idx, 0)?;
                // If the entry lived in an overflow bucket, drop its hint
                // (and hint tag) from the main bucket.
                let b = bucket_of(h);
                if f.idx / SLOTS_PER_BUCKET != b {
                    let target_hint = make_hint(h, f.idx);
                    for s_i in bucket_slots(b) {
                        let vw = tx.read_u64(ctx, value_addr(seg, s_i))?;
                        if value_word::hint(vw) == target_hint {
                            tx.write_u64(
                                ctx,
                                value_addr(seg, s_i),
                                value_word::with_hint(vw, 0),
                            )?;
                            s.fptable.tx_set_hint_tag(tx, ctx, seg, s_i, 0)?;
                            break;
                        }
                    }
                }
                s.overlay.tx_bump(tx, ctx, seg)?;
                Ok(Some((f.kw, f.vw)))
            },
            |s, ctx, routed| s.locked_remove(ctx, routed.seg(), key, h),
            |routed| routed.fallback_lock_ids(),
        );
        match removed {
            None => false,
            Some((kw, vw)) => {
                self.entries.fetch_sub(1, Ordering::Relaxed);
                if let SlotKey::Ptr { addr, .. } = SlotKey::unpack(kw) {
                    let len = value_word::payload(vw);
                    let alloc_size = self.blob_alloc_size(16 + len);
                    self.alloc.free(ctx, addr, alloc_size);
                }
                true
            }
        }
    }

    pub(crate) fn blob_alloc_size(&self, blob_len: u64) -> u64 {
        match self.cfg.insert_policy {
            InsertPolicy::Scattered if blob_len <= 128 => 256,
            _ => blob_len,
        }
    }

    pub(crate) fn update_htm(
        &self,
        ctx: &mut MemCtx,
        key: u64,
        value: &[u8],
    ) -> Result<(), IndexError> {
        let h = hash_key(key);
        // Adaptive policy decision (Table I): hot → no flush; cold ≤64 B →
        // no flush; cold >64 B → async flush after commit.
        let flush_after = match &self.cfg.update_policy {
            UpdatePolicy::Adaptive(det) => {
                let hot = det.access(ctx, h);
                !hot && value.len() > 64
            }
            UpdatePolicy::AlwaysFlush => true,
            UpdatePolicy::NeverFlush => false,
        };

        // Outcome of one attempt: what was written, for the flush step.
        enum Done {
            NotFound,
            Inline(PmAddr),
            InPlaceBlob(PmAddr, u64),
            Replaced {
                new: (PmAddr, u64),
                old: (PmAddr, u64),
            },
            MadeInline {
                slot: PmAddr,
                old: (PmAddr, u64),
            },
        }

        let inline_ok = value.len() == INLINE_VALUE_LEN && key <= MAX_INLINE_KEY;
        let mut inline_payload = 0u64;
        if inline_ok {
            let mut le = [0u8; 8];
            le[..INLINE_VALUE_LEN].copy_from_slice(value);
            inline_payload = u64::from_le_bytes(le);
        }

        // A replacement blob is (re)allocated lazily, at most once, and
        // reused across retries.
        let mut spare: Option<(PmAddr, u64)> = None;

        let result = loop {
            let routed = self.dir.lookup(ctx, h);
            let seg = routed.seg();
            let found = self.find_in_segment(ctx, seg, key, h);
            let plan: Option<UpdatePlan> = match found {
                None => None,
                Some(f) => Some(self.plan_update(ctx, f, key, value, inline_ok, &mut spare)?),
            };

            let attempt = self.htm.try_transaction(ctx, |tx, ctx| {
                self.dir.tx_validate(tx, ctx, h, seg)?;
                let f = match self.tx_find(tx, ctx, seg, key, h)? {
                    None => return Ok(Done::NotFound),
                    Some(f) => f,
                };
                let plan = match &plan {
                    // Prep missed but it exists now, or the slot moved:
                    // restart preparation.
                    None => return tx.abort(AB_STATE_CHANGED),
                    Some(p) => p,
                };
                if f.idx != plan.idx || f.kw != plan.kw {
                    return tx.abort(AB_STATE_CHANGED);
                }
                // Updates never touch fp tags (fp8, like fp14, depends
                // only on the key hash), but any slot-word write must
                // invalidate overlay entries caching this segment.
                match plan.kind {
                    UpdateKind::Inline => {
                        tx.write_u64(
                            ctx,
                            value_addr(seg, f.idx),
                            value_word::with_payload(f.vw, inline_payload),
                        )?;
                        self.overlay.tx_bump(tx, ctx, seg)?;
                        Ok(Done::Inline(value_addr(seg, f.idx)))
                    }
                    UpdateKind::MakeInline => {
                        // Blob → inline: rewrite both words atomically and
                        // report the blob for freeing.
                        let old = match SlotKey::unpack(f.kw) {
                            SlotKey::Ptr { addr, .. } => {
                                (addr, self.blob_alloc_size(16 + value_word::payload(f.vw)))
                            }
                            _ => return tx.abort(AB_STATE_CHANGED),
                        };
                        tx.write_u64(
                            ctx,
                            key_addr(seg, f.idx),
                            SlotKey::Inline { key, fp: fp14(h) }.pack(),
                        )?;
                        tx.write_u64(
                            ctx,
                            value_addr(seg, f.idx),
                            value_word::with_payload(f.vw, inline_payload),
                        )?;
                        self.overlay.tx_bump(tx, ctx, seg)?;
                        Ok(Done::MadeInline {
                            slot: value_addr(seg, f.idx),
                            old,
                        })
                    }
                    UpdateKind::InPlaceBlob { addr } => {
                        // Rewrite the value bytes in place, word by word
                        // (undo-logged, so the update is atomic).
                        let mut off = 0usize;
                        while off < value.len() {
                            let mut w = [0u8; 8];
                            let n = (value.len() - off).min(8);
                            w[..n].copy_from_slice(&value[off..off + n]);
                            tx.write_u64(
                                ctx,
                                PmAddr(addr.0 + 16 + off as u64),
                                u64::from_le_bytes(w),
                            )?;
                            off += 8;
                        }
                        if value_word::payload(f.vw) != value.len() as u64 {
                            tx.write_u64(
                                ctx,
                                value_addr(seg, f.idx),
                                value_word::with_payload(f.vw, value.len() as u64),
                            )?;
                            // The cached value word went stale (possible
                            // only under Scattered size classes). Pure
                            // in-place byte rewrites need no bump: blob
                            // bytes are never cached, and overlay readers
                            // guard the blob lines themselves.
                            self.overlay.tx_bump(tx, ctx, seg)?;
                        }
                        Ok(Done::InPlaceBlob(addr, value.len() as u64))
                    }
                    UpdateKind::Replace { new_addr, new_size } => {
                        tx.write_u64(
                            ctx,
                            key_addr(seg, f.idx),
                            SlotKey::Ptr {
                                addr: new_addr,
                                fp: fp14(h),
                            }
                            .pack(),
                        )?;
                        tx.write_u64(
                            ctx,
                            value_addr(seg, f.idx),
                            value_word::with_payload(f.vw, value.len() as u64),
                        )?;
                        let old = match SlotKey::unpack(f.kw) {
                            SlotKey::Ptr { addr, .. } => {
                                (addr, self.blob_alloc_size(16 + value_word::payload(f.vw)))
                            }
                            _ => (PmAddr::NULL, 0),
                        };
                        self.overlay.tx_bump(tx, ctx, seg)?;
                        Ok(Done::Replaced {
                            new: (new_addr, new_size),
                            old,
                        })
                    }
                }
            });

            match attempt {
                Ok(done) => break Ok(done),
                Err(Abort::Explicit(_)) => continue,
                Err(Abort::Conflict(slot)) => {
                    // Really wait for the conflicting owner (see
                    // run_two_phase); the virtual wait is the abort
                    // penalty already charged.
                    self.htm.wait_slot(slot);
                    continue;
                }
                Err(Abort::Capacity) => {
                    spash_pmem::schedhook::spin_wait();
                    continue;
                }
            }
        };

        match result {
            Err(e) => Err(e),
            Ok(Done::NotFound) => {
                if let Some((addr, size)) = spare {
                    self.alloc.free(ctx, addr, size);
                }
                Err(IndexError::NotFound)
            }
            Ok(done) => {
                // Post-commit adaptive flush (§III-B): asynchronous clwb,
                // no fence — eADR needs none for durability; the flush
                // exists purely to schedule tidy XPLine writebacks.
                match done {
                    Done::Inline(addr) => {
                        if flush_after {
                            ctx.flush(addr);
                        }
                    }
                    Done::InPlaceBlob(addr, len) => {
                        if flush_after {
                            ctx.flush_range(addr, 16 + len);
                        }
                    }
                    Done::Replaced { new, old } => {
                        if flush_after {
                            ctx.flush_range(new.0, 16 + value.len() as u64);
                        }
                        if !old.0.is_null() {
                            self.alloc.free(ctx, old.0, old.1);
                        }
                    }
                    Done::MadeInline { slot, old } => {
                        if flush_after {
                            ctx.flush(slot);
                        }
                        self.alloc.free(ctx, old.0, old.1);
                    }
                    Done::NotFound => unreachable!(),
                }
                Ok(())
            }
        }
    }

    fn plan_update(
        &self,
        ctx: &mut MemCtx,
        f: Found,
        key: u64,
        value: &[u8],
        inline_ok: bool,
        spare: &mut Option<(PmAddr, u64)>,
    ) -> Result<UpdatePlan, IndexError> {
        let kind = match SlotKey::unpack(f.kw) {
            SlotKey::Inline { .. } if inline_ok => UpdateKind::Inline,
            SlotKey::Ptr { addr, .. } if !inline_ok => {
                let old_len = value_word::payload(f.vw);
                let old_size = self.blob_alloc_size(16 + old_len);
                let new_size = self.blob_alloc_size(16 + value.len() as u64);
                if old_size == new_size {
                    UpdateKind::InPlaceBlob { addr }
                } else {
                    let (new_addr, sz) = self.take_spare(ctx, key, value, spare)?;
                    UpdateKind::Replace {
                        new_addr,
                        new_size: sz,
                    }
                }
            }
            // Representation change: blob → inline rewrites both words;
            // inline → blob goes through Replace with no old blob to free.
            SlotKey::Ptr { .. } => UpdateKind::MakeInline,
            SlotKey::Inline { .. } => {
                let (new_addr, sz) = self.take_spare(ctx, key, value, spare)?;
                UpdateKind::Replace {
                    new_addr,
                    new_size: sz,
                }
            }
            SlotKey::Empty => unreachable!("found slot cannot be empty"),
        };
        Ok(UpdatePlan {
            idx: f.idx,
            kw: f.kw,
            kind,
        })
    }

    fn take_spare(
        &self,
        ctx: &mut MemCtx,
        key: u64,
        value: &[u8],
        spare: &mut Option<(PmAddr, u64)>,
    ) -> Result<(PmAddr, u64), IndexError> {
        let need = self.blob_alloc_size(16 + value.len() as u64);
        if let Some((addr, size)) = *spare {
            if size == need {
                return Ok((addr, size));
            }
            self.alloc.free(ctx, addr, size);
            *spare = None;
        }
        let a = self
            .alloc
            .alloc(ctx, need)
            .map_err(|_| IndexError::OutOfMemory)?;
        ctx.write_u64(a.addr, key);
        ctx.write_u64(PmAddr(a.addr.0 + 8), value.len() as u64);
        ctx.write_bytes(PmAddr(a.addr.0 + 16), value);
        *spare = Some((a.addr, need));
        Ok((a.addr, need))
    }
}

/// A value extracted by a lookup.
pub(crate) enum GetResult {
    Inline(u64),
    Bytes(Vec<u8>),
}

/// Outcome of probing a validated overlay entry.
enum OverlayProbe {
    Found(GetResult),
    /// Definitive miss: no cached slot or hint tag matched.
    Miss,
    /// Inconclusive (stale entry or overflow-hint chase): use the PM
    /// probe.
    Fall,
}

impl GetResult {
    pub(crate) fn append_to(&self, out: &mut Vec<u8>) {
        match self {
            GetResult::Inline(v) => out.extend_from_slice(&v.to_le_bytes()[..INLINE_VALUE_LEN]),
            GetResult::Bytes(b) => out.extend_from_slice(b),
        }
    }
}

struct UpdatePlan {
    idx: u8,
    kw: u64,
    kind: UpdateKind,
}

enum UpdateKind {
    Inline,
    MakeInline,
    InPlaceBlob { addr: PmAddr },
    Replace { new_addr: PmAddr, new_size: u64 },
}

/// A fixed-wrong representation-change guard: updating an inline slot to a
/// blob value (or vice versa) rewrites both words, so the `Inline` kind
/// must only be chosen when the new value is inline-eligible.
#[cfg(test)]
mod invariants {
    #[test]
    fn inline_len_is_six() {
        assert_eq!(super::INLINE_VALUE_LEN, 6);
    }
}
