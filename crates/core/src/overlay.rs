//! DRAM read-through overlay cache for hot buckets, validated by
//! per-segment generation counters.
//!
//! A direct-mapped array of bucket images keyed by the *route* of a probe
//! (top hash bits + main bucket), not by segment address: after a split
//! the same route leads to a different segment, and a route-keyed entry
//! is exactly the unit that goes stale. Each entry caches one bucket's
//! four compound slots plus its fingerprint sidecar word, so a hit
//! answers most probes — including definitive negatives via the fp word —
//! from DRAM without touching a single PM line.
//!
//! Coherence is seqlock-style at two levels:
//!
//! * **entry level** — a version word guards installation (odd =
//!   installing); readers retry-free: an inconsistent read is just a
//!   miss;
//! * **segment level** — two tables of generation cells, indexed by
//!   chunk. `tx_seq` is bumped *only inside HTM transactions* (via the
//!   volatile undo log, so aborts roll it back); `nt_seq` is bumped
//!   *only by non-transactional paths* (lock modes, HTM lock fallback,
//!   locked splits). A hit is valid iff both cells still equal the
//!   values snapshotted when the entry was installed — and the `tx_seq`
//!   read happens *inside the reader's transaction*, so a concurrent
//!   mutator of the segment conflicts with the read at commit time even
//!   though no bucket line was touched.
//!
//! The overlay lives entirely outside the PM arena: the sanitizer and
//! crashpoint sweeps see it as volatile state that vanishes at a crash,
//! which is the correctness story — nothing here is ever authoritative.
//!
//! Cost model: entry and generation-cell accesses are counted as DRAM
//! traffic but priced at cache-hit latency
//! ([`spash_pmem::MemCtx::charge_dram_hot`]) — the same always-warm
//! simplification the directory uses. Charging full DRAM-miss latency
//! here would make the overlay slower than probing PM through a warm
//! device cache, which inverts the physics the paper measures (§II-A:
//! DRAM reads are ~3× cheaper than PM reads at equal hit rates).
//!
//! Under the [`crate::testhooks::overlay_stale`] mutation the split and
//! merge paths skip their generation bumps, so entries keep validating
//! against pre-split segments — the staleness canary the oracle battery
//! and the linearizability checker must catch.

use std::sync::atomic::{AtomicU64, Ordering};

use spash_htm::{Abort, LineId, Tx};
use spash_pmem::PmAddr;

use crate::slot::{bucket_of, SEG_SIZE};

/// Generation cells per table. Cells are shared by chunks `4096` apart;
/// sharing only causes spurious invalidation, never false validity.
const SEQ_CELLS: u64 = 4096;

/// Volatile-line-id namespace for the generation cells. The directory
/// uses ids `gen << 24 | partition` — a doubling generation would need to
/// exceed 2^32 to reach this namespace.
const SEQ_NS: u64 = 1 << 56;

/// One cached bucket image. `meta` packs `[bucket:8][depth+1:8]`; 0 means
/// empty. All fields are plain atomics guarded by the `ver` seqlock.
struct Entry {
    ver: AtomicU64,
    meta: AtomicU64,
    prefix: AtomicU64,
    seg: AtomicU64,
    snap_tx: AtomicU64,
    snap_nt: AtomicU64,
    fpw: AtomicU64,
    words: [AtomicU64; 8],
}

impl Entry {
    fn new() -> Self {
        Self {
            ver: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            prefix: AtomicU64::new(0),
            seg: AtomicU64::new(0),
            snap_tx: AtomicU64::new(0),
            snap_nt: AtomicU64::new(0),
            fpw: AtomicU64::new(0),
            words: Default::default(),
        }
    }
}

/// A consistent copy of an overlay entry whose route matched the probe.
/// Still unvalidated against the segment generations — pass it to
/// [`Overlay::tx_validate`] inside the reader's transaction.
#[derive(Clone, Copy, Debug)]
pub struct CachedBucket {
    pub seg: PmAddr,
    pub fpw: u64,
    /// `(key word, value word)` for the four slots of the cached bucket,
    /// in bucket-slot order (global slot index `4*bucket + j`).
    pub words: [(u64, u64); 4],
    snap_tx: u64,
    snap_nt: u64,
}

/// The overlay cache plus the two generation tables. Constructed once per
/// index; disabled (`entries` empty) when the config says 0 or the
/// concurrency mode is not HTM.
pub struct Overlay {
    entries: Box<[Entry]>,
    /// `log2(entries / 4)`: route bits taken from the top of the hash.
    route_bits: u32,
    tx_seq: Box<[AtomicU64]>,
    nt_seq: Box<[AtomicU64]>,
    heap_start: u64,
}

impl Overlay {
    /// `n` entries (power of two ≥ 8, or 0 to disable). `heap_start`
    /// anchors the chunk index of the generation tables.
    pub fn new(n: usize, heap_start: u64) -> Self {
        assert!(
            n == 0 || (n >= 8 && n.is_power_of_two()),
            "overlay_entries must be 0 or a power of two >= 8, got {n}"
        );
        Self {
            entries: (0..n).map(|_| Entry::new()).collect(),
            route_bits: if n == 0 { 0 } else { (n / 4).trailing_zeros() },
            tx_seq: (0..SEQ_CELLS).map(|_| AtomicU64::new(0)).collect(),
            nt_seq: (0..SEQ_CELLS).map(|_| AtomicU64::new(0)).collect(),
            heap_start,
        }
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        !self.entries.is_empty()
    }

    #[inline]
    fn cell(&self, seg: PmAddr) -> usize {
        debug_assert!(seg.0 >= self.heap_start);
        (((seg.0 - self.heap_start) / SEG_SIZE) & (SEQ_CELLS - 1)) as usize
    }

    #[inline]
    fn slot_of(&self, h: u64) -> &Entry {
        let route = h >> (64 - self.route_bits);
        let idx = (route << 2 | bucket_of(h) as u64) as usize & (self.entries.len() - 1);
        &self.entries[idx]
    }

    /// Transactionally bump a segment's `tx_seq` generation. Call from
    /// every HTM transaction that changes what any bucket of `seg` would
    /// return (content writes, split, merge). The write is undo-logged,
    /// so an aborted transaction leaves the generation untouched.
    pub fn tx_bump(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut spash_pmem::MemCtx,
        seg: PmAddr,
    ) -> Result<(), Abort> {
        if !self.enabled() {
            return Ok(());
        }
        let c = self.cell(seg);
        let id = LineId::volatile(SEQ_NS + c as u64);
        ctx.charge_dram_hot(2);
        let cur = tx.read_volatile_u64(id, &self.tx_seq[c])?;
        tx.write_volatile_u64(id, &self.tx_seq[c], cur.wrapping_add(1))
    }

    /// Non-transactional generation bump, for lock-mode mutations, the
    /// HTM lock fallback, and locked splits.
    pub fn nt_bump(&self, ctx: &mut spash_pmem::MemCtx, seg: PmAddr) {
        if !self.enabled() {
            return;
        }
        ctx.charge_dram_hot(1);
        self.nt_seq[self.cell(seg)].fetch_add(1, Ordering::AcqRel);
    }

    /// Snapshot both generations of `seg` from inside a transaction, for
    /// a subsequent [`Self::install`]. The `tx_seq` read joins the
    /// transaction's read set.
    pub fn tx_snapshot(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut spash_pmem::MemCtx,
        seg: PmAddr,
    ) -> Result<(u64, u64), Abort> {
        let c = self.cell(seg);
        ctx.charge_dram_hot(2);
        let t = tx.read_volatile_u64(LineId::volatile(SEQ_NS + c as u64), &self.tx_seq[c])?;
        Ok((t, self.nt_seq[c].load(Ordering::Acquire)))
    }

    /// Look up the route of `h`. Returns a consistent entry copy whose
    /// own route fields match the probe — validated *purely against the
    /// entry* (depth, prefix, bucket), never against a fresh directory
    /// route: a stale entry must stay *servable* so that generation
    /// validation (or, under the stale-overlay mutation, the oracle
    /// battery) is what rejects it.
    pub fn lookup(&self, ctx: &mut spash_pmem::MemCtx, h: u64) -> Option<CachedBucket> {
        if !self.enabled() {
            return None;
        }
        let e = self.slot_of(h);
        ctx.charge_dram_hot(4);
        let v1 = e.ver.load(Ordering::Acquire);
        if v1 & 1 != 0 {
            return None;
        }
        let meta = e.meta.load(Ordering::Acquire);
        let prefix = e.prefix.load(Ordering::Acquire);
        let seg = e.seg.load(Ordering::Acquire);
        let snap_tx = e.snap_tx.load(Ordering::Acquire);
        let snap_nt = e.snap_nt.load(Ordering::Acquire);
        let fpw = e.fpw.load(Ordering::Acquire);
        let mut words = [(0u64, 0u64); 4];
        for j in 0..4 {
            words[j] = (
                e.words[2 * j].load(Ordering::Acquire),
                e.words[2 * j + 1].load(Ordering::Acquire),
            );
        }
        if e.ver.load(Ordering::Acquire) != v1 {
            return None;
        }
        if meta == 0 {
            return None;
        }
        let depth = (meta & 0xff) as u32 - 1;
        let bucket = (meta >> 8) as u8;
        if bucket != bucket_of(h) {
            return None;
        }
        if depth > 0 && h >> (64 - depth) != prefix {
            return None;
        }
        Some(CachedBucket {
            seg: PmAddr(seg),
            fpw,
            words,
            snap_tx,
            snap_nt,
        })
    }

    /// Validate a [`CachedBucket`] against the current generations, from
    /// inside the reader's transaction. `Ok(false)` means stale — fall
    /// through to the PM probe.
    pub fn tx_validate(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut spash_pmem::MemCtx,
        hit: &CachedBucket,
    ) -> Result<bool, Abort> {
        let (t, n) = self.tx_snapshot(tx, ctx, hit.seg)?;
        Ok(t == hit.snap_tx && n == hit.snap_nt)
    }

    /// Install a bucket image gathered by a PM probe. All inputs must
    /// come from one transaction: the slot words, fp word, and
    /// generation snapshot were read together, so the image is a
    /// consistent cut. Racing installers skip (CAS on the version word);
    /// an install racing a validation is harmless because validation
    /// re-checks the generations.
    #[allow(clippy::too_many_arguments)]
    pub fn install(
        &self,
        ctx: &mut spash_pmem::MemCtx,
        h: u64,
        depth: u32,
        seg: PmAddr,
        snap: (u64, u64),
        fpw: u64,
        words: [(u64, u64); 4],
    ) {
        if !self.enabled() {
            return;
        }
        let e = self.slot_of(h);
        ctx.charge_dram_hot(4);
        let v = e.ver.load(Ordering::Acquire);
        if v & 1 != 0 {
            return;
        }
        if e.ver
            .compare_exchange(v, v + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        e.meta.store(
            (depth as u64 + 1) | (bucket_of(h) as u64) << 8,
            Ordering::Release,
        );
        e.prefix.store(
            if depth == 0 { 0 } else { h >> (64 - depth) },
            Ordering::Release,
        );
        e.seg.store(seg.0, Ordering::Release);
        e.snap_tx.store(snap.0, Ordering::Release);
        e.snap_nt.store(snap.1, Ordering::Release);
        e.fpw.store(fpw, Ordering::Release);
        for j in 0..4 {
            e.words[2 * j].store(words[j].0, Ordering::Release);
            e.words[2 * j + 1].store(words[j].1, Ordering::Release);
        }
        e.ver.store(v + 2, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spash_htm::{Htm, HtmConfig};
    use spash_pmem::{MemCtx, PmConfig, PmDevice};

    const HEAP: u64 = 1 << 20;

    fn seg(i: u64) -> PmAddr {
        PmAddr(HEAP + i * SEG_SIZE)
    }

    fn ctx() -> MemCtx {
        PmDevice::new(PmConfig::small_test()).ctx()
    }

    fn install_for(
        o: &Overlay,
        ctx: &mut MemCtx,
        htm: &Htm,
        h: u64,
        depth: u32,
        s: PmAddr,
        fpw: u64,
    ) {
        let snap = htm
            .try_transaction(ctx, |tx, ctx| o.tx_snapshot(tx, ctx, s))
            .unwrap();
        o.install(ctx, h, depth, s, snap, fpw, [(1, 2), (3, 4), (5, 6), (7, 8)]);
    }

    #[test]
    fn disabled_overlay_is_inert() {
        let o = Overlay::new(0, HEAP);
        let mut c = ctx();
        assert!(!o.enabled());
        assert!(o.lookup(&mut c, 0xdead).is_none());
        o.nt_bump(&mut c, seg(0)); // must not panic
    }

    #[test]
    fn route_match_requires_depth_prefix_and_bucket() {
        // 64 entries -> route_bits = 4: the top 4 hash bits pick the
        // direct-mapped slot (plus the 2 bucket bits).
        let o = Overlay::new(64, HEAP);
        let mut c = ctx();
        let htm = Htm::new(HtmConfig::default());
        let h = 0xC000_0000_0000_0002u64; // top nibble 0xC, bucket 2
        install_for(&o, &mut c, &htm, h, 2, seg(3), 0x42);
        let hit = o.lookup(&mut c, h).expect("same route hits");
        assert_eq!(hit.seg, seg(3));
        assert_eq!(hit.fpw, 0x42);
        assert_eq!(hit.words[1], (3, 4));
        // Same hash, wrong bucket: low bits differ, so the probe maps to
        // a *different* entry slot, which is empty.
        let wrong_bucket = (h & !0b11) | 0b01;
        assert!(o.lookup(&mut c, wrong_bucket).is_none());
        // Deeper entry (depth 8 > route_bits): a hash with the same top
        // nibble lands on the same slot, but its depth-8 prefix differs,
        // so the entry's own fields must reject it.
        install_for(&o, &mut c, &htm, h, 8, seg(5), 0x43);
        let same_slot_other_prefix = h ^ (1 << 58); // bit inside prefix, below route bits
        assert_eq!(same_slot_other_prefix >> 60, h >> 60, "same entry slot");
        assert!(o.lookup(&mut c, same_slot_other_prefix).is_none());
        // And the matching hash still hits the deeper entry.
        assert_eq!(o.lookup(&mut c, h).unwrap().seg, seg(5));
    }

    #[test]
    fn tx_bump_invalidates_and_rolls_back_on_abort() {
        let o = Overlay::new(64, HEAP);
        let mut c = ctx();
        let htm = Htm::new(HtmConfig::default());
        let h = 0u64;
        let s = seg(0);
        install_for(&o, &mut c, &htm, h, 0, s, 7);
        let hit = o.lookup(&mut c, h).unwrap();
        let ok = htm
            .try_transaction(&mut c, |tx, ctx| o.tx_validate(tx, ctx, &hit))
            .unwrap();
        assert!(ok, "fresh entry validates");
        // An aborted bump leaves the generation untouched.
        let r: Result<(), Abort> = htm.try_transaction(&mut c, |tx, ctx| {
            o.tx_bump(tx, ctx, s)?;
            tx.abort(0)
        });
        assert!(r.is_err());
        let ok = htm
            .try_transaction(&mut c, |tx, ctx| o.tx_validate(tx, ctx, &hit))
            .unwrap();
        assert!(ok, "aborted bump must not invalidate");
        // A committed bump invalidates.
        htm.try_transaction(&mut c, |tx, ctx| o.tx_bump(tx, ctx, s))
            .unwrap();
        let ok = htm
            .try_transaction(&mut c, |tx, ctx| o.tx_validate(tx, ctx, &hit))
            .unwrap();
        assert!(!ok, "committed bump invalidates");
    }

    #[test]
    fn nt_bump_invalidates() {
        let o = Overlay::new(64, HEAP);
        let mut c = ctx();
        let htm = Htm::new(HtmConfig::default());
        let h = 4u64; // bucket 0
        let s = seg(1);
        install_for(&o, &mut c, &htm, h, 0, s, 7);
        let hit = o.lookup(&mut c, h).unwrap();
        o.nt_bump(&mut c, s);
        let ok = htm
            .try_transaction(&mut c, |tx, ctx| o.tx_validate(tx, ctx, &hit))
            .unwrap();
        assert!(!ok);
    }

    #[test]
    fn seq_cells_alias_only_across_distant_chunks() {
        let o = Overlay::new(8, HEAP);
        assert_eq!(o.cell(seg(0)), o.cell(seg(SEQ_CELLS)));
        assert_ne!(o.cell(seg(0)), o.cell(seg(1)));
    }
}
