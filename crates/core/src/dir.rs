//! The volatile extendible-hash directory and collaborative staged
//! doubling (paper §III-A, §IV-B).
//!
//! The directory lives in DRAM (it is rebuilt on recovery) and maps the
//! highest `depth` bits of a key hash to a segment address. Entries pack
//! `[reserved:1][local_depth:7][segment address:56]` into one word.
//!
//! **Collaborative staged doubling.** Growing the directory under one HTM
//! transaction would be a guaranteed capacity abort, so doubling is split
//! into cacheline-sized *stages*: each stage copies one 8-entry partition
//! of the old directory into the new (each old entry fans out to two).
//! Stages are claimed with a CAS and executed inside small transactions
//! that `write_guard` the old partition — any concurrent split writing the
//! same partition conflicts and retries. Concurrent operations:
//!
//! * *reads* route through the old directory until their partition's stage
//!   is done, then through the new one;
//! * *splits* that must update a not-yet-copied partition first complete
//!   that stage themselves (that is the "collaborative" part), then write
//!   the new directory;
//! * the thread that finishes the last stage atomically swaps the current
//!   directory and retires the job.
//!
//! HTM line ids: partition `p` of the directory generation `g` has id
//! `volatile(g << 24 | p)`; transactions validate their routed entry
//! against that id, so a stage copy or a split that moves the entry always
//! fails their validation (§IV-A's validation step).

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use spash_pmem::sync::Mutex;
use spash_htm::{Abort, Htm, LineId, Tx};
use spash_pmem::{MemCtx, PmAddr};

/// Directory entries per doubling stage (one 64-byte cacheline of 8-byte
/// entries).
pub const PARTITION: usize = 8;

const DEPTH_SHIFT: u32 = 56;
const ADDR_MASK: u64 = (1 << 56) - 1;

/// Pack a directory entry.
#[inline]
pub fn pack_entry(seg: PmAddr, local_depth: u8) -> u64 {
    debug_assert!(seg.0 <= ADDR_MASK);
    debug_assert!(local_depth < 128);
    (local_depth as u64) << DEPTH_SHIFT | seg.0
}

/// Unpack a directory entry into (segment, local depth).
#[inline]
pub fn unpack_entry(e: u64) -> (PmAddr, u8) {
    (PmAddr(e & ADDR_MASK), ((e >> DEPTH_SHIFT) & 0x7f) as u8)
}

/// One immutable-size directory array.
pub struct DirInner {
    pub depth: u32,
    pub gen: u64,
    pub entries: Box<[AtomicU64]>,
}

impl DirInner {
    fn new(depth: u32, gen: u64) -> Self {
        let n = 1usize << depth;
        Self {
            depth,
            gen,
            entries: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Directory index for a hash.
    #[inline]
    pub fn index_of(&self, hash: u64) -> usize {
        if self.depth == 0 {
            0
        } else {
            (hash >> (64 - self.depth)) as usize
        }
    }

    /// HTM line id of the partition holding `idx`.
    #[inline]
    pub fn line_id(&self, idx: usize) -> LineId {
        LineId::volatile(self.gen << 24 | (idx / PARTITION) as u64)
    }
}

#[repr(u8)]
#[derive(Clone, Copy, PartialEq, Eq)]
enum Stage {
    Pending = 0,
    Busy = 1,
    Done = 2,
}

/// An in-flight doubling.
pub struct DoublingJob {
    pub old: Arc<DirInner>,
    pub new: Arc<DirInner>,
    stages: Box<[AtomicU8]>,
    /// Virtual completion time per stage (for blocking-mode waiters).
    stage_done_t: Box<[AtomicU64]>,
    remaining: AtomicUsize,
}

impl DoublingJob {
    fn stage_of(&self, old_idx: usize) -> usize {
        old_idx / PARTITION
    }

    fn stage_state(&self, s: usize) -> Stage {
        match self.stages[s].load(Ordering::Acquire) {
            0 => Stage::Pending,
            1 => Stage::Busy,
            _ => Stage::Done,
        }
    }
}

/// Where a lookup resolved.
pub struct Routed {
    /// The directory actually consulted (old or new during doubling).
    pub dir: Arc<DirInner>,
    /// Index within that directory.
    pub idx: usize,
    /// The raw entry value observed.
    pub entry: u64,
}

impl Routed {
    pub fn seg(&self) -> PmAddr {
        unpack_entry(self.entry).0
    }

    pub fn local_depth(&self) -> u8 {
        unpack_entry(self.entry).1
    }

    /// The HTM guard id of the routed partition.
    pub fn line_id(&self) -> LineId {
        self.dir.line_id(self.idx)
    }

    /// Every partition id covering the routed segment's directory range,
    /// in ascending order. The §IV-A lock fallback must take all of them:
    /// a shallow segment can be reachable through entries in several
    /// partitions, and locking only the routed one would let operations
    /// arriving through a sibling entry race the lock holder.
    pub fn fallback_lock_ids(&self) -> Vec<LineId> {
        let d = self.local_depth() as u32;
        let dd = self.dir.depth;
        let shift = dd.saturating_sub(d);
        let base = (self.idx >> shift) << shift;
        let last = base + (1usize << shift) - 1;
        (base / PARTITION..=last / PARTITION)
            .map(|p| self.dir.line_id(p * PARTITION))
            .collect()
    }
}

/// Coherent pair of (current directory, active doubling). Kept under one
/// mutex: reading them separately can pair a retired job with the newer
/// current directory and route reads to a stale generation.
struct DirState {
    current: Arc<DirInner>,
    job: Option<Arc<DoublingJob>>,
}

/// The directory.
pub struct Directory {
    state: Mutex<DirState>,
    next_gen: AtomicU64,
    /// Diagnostics: how often operations waited behind the doubling
    /// thread (blocking mode) vs completed stages themselves.
    pub await_count: AtomicU64,
    pub assist_count: AtomicU64,
}

impl Directory {
    /// Build a directory of `depth` with entries `segs[i]`, every segment
    /// at local depth `depth`.
    pub fn new(depth: u32, segs: &[PmAddr]) -> Self {
        assert_eq!(segs.len(), 1 << depth);
        let inner = DirInner::new(depth, 0);
        for (i, &s) in segs.iter().enumerate() {
            inner.entries[i].store(pack_entry(s, depth as u8), Ordering::Relaxed);
        }
        Self {
            state: Mutex::new(DirState {
                current: Arc::new(inner),
                job: None,
            }),
            next_gen: AtomicU64::new(1),
            await_count: AtomicU64::new(0),
            assist_count: AtomicU64::new(0),
        }
    }

    /// Rebuild from recovery data: (segment, local_depth, prefix) triples.
    pub fn rebuild(segments: &[(PmAddr, u8, u64)]) -> Self {
        let depth = segments.iter().map(|&(_, d, _)| d as u32).max().unwrap_or(0);
        let inner = DirInner::new(depth, 0);
        for &(seg, d, prefix) in segments {
            let span = 1usize << (depth - d as u32);
            let base = (prefix as usize) << (depth - d as u32);
            for i in 0..span {
                inner.entries[base + i].store(pack_entry(seg, d), Ordering::Relaxed);
            }
        }
        Self {
            state: Mutex::new(DirState {
                current: Arc::new(inner),
                job: None,
            }),
            next_gen: AtomicU64::new(1),
            await_count: AtomicU64::new(0),
            assist_count: AtomicU64::new(0),
        }
    }

    /// The current global depth.
    pub fn depth(&self) -> u32 {
        self.state.lock().current.depth
    }

    /// Coherently snapshot (current directory, active doubling job).
    fn snapshot(&self) -> (Arc<DirInner>, Option<Arc<DoublingJob>>) {
        let s = self.state.lock();
        (Arc::clone(&s.current), s.job.clone())
    }

    /// The routing decision for `hash`: which directory generation and
    /// index are authoritative right now. Does not load the entry.
    fn route(&self, hash: u64) -> Routed {
        let (cur, job) = self.snapshot();
        if let Some(job) = job {
            if job.old.gen == cur.gen {
                let old_idx = job.old.index_of(hash);
                if job.stage_state(job.stage_of(old_idx)) == Stage::Done {
                    let idx = job.new.index_of(hash);
                    return Routed {
                        dir: Arc::clone(&job.new),
                        idx,
                        entry: 0,
                    };
                }
                return Routed {
                    dir: Arc::clone(&job.old),
                    idx: old_idx,
                    entry: 0,
                };
            }
        }
        let idx = cur.index_of(hash);
        Routed { dir: cur, idx, entry: 0 }
    }

    /// Route a hash to its authoritative entry. Charges one cached DRAM
    /// access (the directory is hot).
    pub fn lookup(&self, ctx: &mut MemCtx, hash: u64) -> Routed {
        ctx.charge_dram_cached();
        let r = self.route(hash);
        let entry = r.dir.entries[r.idx].load(Ordering::Acquire);
        Routed { entry, ..r }
    }

    /// Transactionally re-resolve `hash` and verify the segment still is
    /// `expected_seg`. Adds the routed partition to the transaction's read
    /// set, so any concurrent split/stage-copy of that partition aborts us
    /// at commit (§IV-A validation). Returns the routed entry for further
    /// transactional writes.
    pub fn tx_validate(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut MemCtx,
        hash: u64,
        expected_seg: PmAddr,
    ) -> Result<Routed, Abort> {
        ctx.charge_dram_cached();
        let routed = self.route(hash);
        let cell = &routed.dir.entries[routed.idx];
        let entry = tx.read_volatile_u64(routed.dir.line_id(routed.idx), cell)?;
        // Re-check the routing now that the partition is in our read set:
        // a stage copy that completed between the routing decision and the
        // guarded read above would leave us holding a stale generation
        // whose version will never change again, so commit-time validation
        // alone would pass. Stage states are monotonic, so if the route is
        // unchanged *after* the guarded read, any later copy bumps the
        // version and aborts us at commit.
        let recheck = self.route(hash);
        if recheck.dir.gen != routed.dir.gen || recheck.idx != routed.idx {
            return tx.abort(VALIDATE_SEGMENT_MOVED);
        }
        if unpack_entry(entry).0 != expected_seg {
            return tx.abort(VALIDATE_SEGMENT_MOVED);
        }
        Ok(Routed { entry, ..routed })
    }

    /// Inside a transaction holding write guards on the partitions of
    /// `dir` covering `[first_idx, last_idx]`, check that writes there are
    /// still observable: either the generation is current, or an active
    /// doubling will propagate them (covering stages not yet copied), or
    /// they went to the new directory of a doubling whose covering stages
    /// are done. The held guards exclude concurrent stage copies (copies
    /// take the same per-partition locks), so the answer cannot change
    /// before commit.
    pub fn tx_write_safe(&self, dir: &DirInner, first_idx: usize, last_idx: usize) -> bool {
        let (cur, job) = self.snapshot();
        match job {
            None => dir.gen == cur.gen,
            Some(j) => {
                if dir.gen == j.old.gen {
                    (first_idx / PARTITION..=last_idx / PARTITION)
                        .all(|s| j.stage_state(s) != Stage::Done)
                } else if dir.gen == j.new.gen {
                    let of = first_idx / 2;
                    let ol = last_idx / 2;
                    (of / PARTITION..=ol / PARTITION).all(|s| j.stage_state(s) == Stage::Done)
                } else {
                    dir.gen == cur.gen
                }
            }
        }
    }

    /// Begin (or join) a doubling. Returns the job; the caller must drive
    /// [`Directory::complete_stage`] / [`Directory::drive_doubling`].
    pub fn begin_doubling(&self, _ctx: &mut MemCtx) -> Arc<DoublingJob> {
        let mut state = self.state.lock();
        if let Some(j) = state.job.as_ref() {
            return Arc::clone(j);
        }
        let cur = Arc::clone(&state.current);
        let gen = self.next_gen.fetch_add(1, Ordering::Relaxed);
        let new = Arc::new(DirInner::new(cur.depth + 1, gen));
        let n_stages = cur.entries.len().div_ceil(PARTITION);
        let j = Arc::new(DoublingJob {
            old: cur,
            new,
            stages: (0..n_stages).map(|_| AtomicU8::new(0)).collect(),
            stage_done_t: (0..n_stages).map(|_| AtomicU64::new(0)).collect(),
            remaining: AtomicUsize::new(n_stages),
        });
        state.job = Some(Arc::clone(&j));
        j
    }

    /// Wait (without helping) until stage `s` is done — the *blocking*
    /// doubling ablation: concurrent operations stall behind the doubling
    /// thread instead of assisting it. The wall-clock wait is converted to
    /// virtual time by syncing to the job's completion stamp.
    pub fn await_stage(&self, ctx: &mut MemCtx, job: &Arc<DoublingJob>, s: usize) {
        while job.stage_state(s) != Stage::Done {
            // Scheduler-aware wait (blocking ablation): deschedule until
            // the doubling thread finishes the stage.
            spash_pmem::schedhook::spin_wait();
        }
        ctx.clock_mut()
            .sync_to(job.stage_done_t[s].load(Ordering::Acquire));
    }

    /// Ensure stage `s` of `job` is done, executing it if it is pending
    /// (a concurrent split "collaboratively assists the doubling thread",
    /// §IV-B). Spins while another thread runs it.
    pub fn complete_stage(&self, ctx: &mut MemCtx, htm: &Htm, job: &Arc<DoublingJob>, s: usize) {
        loop {
            match job.stages[s]
                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                .map(|_| Stage::Pending)
                .unwrap_or_else(|v| if v == 1 { Stage::Busy } else { Stage::Done })
            {
                Stage::Done => return,
                Stage::Busy => spash_pmem::schedhook::spin_wait(),
                Stage::Pending => {
                    // We claimed it. The copy runs under the partition's
                    // non-transactional lock so that concurrent splits of
                    // the same partition either conflict-abort (while we
                    // hold the lock) or fail validation (the unlock bumps
                    // the version). Crucially, the Done flag is published
                    // *before* the unlock: no transaction can slip a write
                    // into the old partition after the copy but before
                    // routing switches to the new directory.
                    let first = s * PARTITION;
                    let id = job.old.line_id(first);
                    htm.nontx_lock(ctx, id);
                    ctx.charge_dram(2); // one cacheline read + write
                    let last = (first + PARTITION).min(job.old.entries.len());
                    for i in first..last {
                        let v = job.old.entries[i].load(Ordering::Acquire);
                        job.new.entries[2 * i].store(v, Ordering::Release);
                        job.new.entries[2 * i + 1].store(v, Ordering::Release);
                    }
                    job.stage_done_t[s].fetch_max(ctx.now(), Ordering::AcqRel);
                    job.stages[s].store(2, Ordering::Release);
                    if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        self.finish_doubling(job);
                    }
                    htm.nontx_unlock(ctx, id);
                    return;
                }
            }
        }
    }

    fn finish_doubling(&self, job: &Arc<DoublingJob>) {
        let mut s = self.state.lock();
        debug_assert_eq!(s.current.gen, job.old.gen);
        s.current = Arc::clone(&job.new);
        if s.job.as_ref().map(|x| x.old.gen) == Some(job.old.gen) {
            s.job = None;
        }
    }

    /// Drive every remaining stage of `job` (the "doubling thread" role).
    pub fn drive_doubling(&self, ctx: &mut MemCtx, htm: &Htm, job: &Arc<DoublingJob>) {
        for s in 0..job.stages.len() {
            self.complete_stage(ctx, htm, job, s);
        }
    }

    /// Ensure the stages covering old-directory indices `[first, last]`
    /// are complete. When `collaborative`, the caller executes pending
    /// stages itself (§IV-B); otherwise it blocks until the doubling
    /// thread gets there — the ablation that shows why collaboration
    /// matters.
    pub fn ensure_range_done(
        &self,
        ctx: &mut MemCtx,
        htm: &Htm,
        job: &Arc<DoublingJob>,
        first_old_idx: usize,
        last_old_idx: usize,
        collaborative: bool,
    ) {
        for s in job.stage_of(first_old_idx)..=job.stage_of(last_old_idx) {
            if collaborative {
                self.assist_count.fetch_add(1, Ordering::Relaxed);
                self.complete_stage(ctx, htm, job, s);
            } else {
                self.await_count.fetch_add(1, Ordering::Relaxed);
                self.await_stage(ctx, job, s);
            }
        }
    }

    /// The authoritative directory for *writing* right now: the doubling
    /// job's new directory if one is active, else current.
    pub fn write_target(&self) -> (Arc<DirInner>, Option<Arc<DoublingJob>>) {
        let (cur, job) = self.snapshot();
        match job {
            Some(j) => (Arc::clone(&j.new), Some(j)),
            None => (cur, None),
        }
    }

    /// Attempt to halve the directory (the paper handles halving
    /// "similarly" to doubling; merges call this opportunistically).
    /// Succeeds only when no doubling is active and every entry pair is
    /// identical (no segment needs the last prefix bit). In-flight
    /// transactions against the retired generation are safe: entry values
    /// are unchanged (reads validate fine), and splits abort through
    /// `tx_write_safe`'s generation check.
    pub fn try_halve(&self) -> bool {
        let mut st = self.state.lock();
        if st.job.is_some() || st.current.depth == 0 {
            return false;
        }
        let cur = &st.current;
        let half = cur.entries.len() / 2;
        for i in 0..half {
            if cur.entries[2 * i].load(Ordering::Acquire)
                != cur.entries[2 * i + 1].load(Ordering::Acquire)
            {
                return false;
            }
        }
        let gen = self.next_gen.fetch_add(1, Ordering::Relaxed);
        let new = DirInner::new(cur.depth - 1, gen);
        for i in 0..half {
            new.entries[i].store(cur.entries[2 * i].load(Ordering::Acquire), Ordering::Relaxed);
        }
        st.current = Arc::new(new);
        true
    }

    /// Total number of directory entries (diagnostics).
    pub fn len(&self) -> usize {
        self.state.lock().current.entries.len()
    }

    /// True when empty (never — directories always have ≥1 entry).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Explicit-abort code: the routed segment no longer matches the
/// preparation phase's snapshot.
pub const VALIDATE_SEGMENT_MOVED: u32 = 1;
/// Explicit-abort code: the target slot changed since preparation.
pub const VALIDATE_SLOT_CHANGED: u32 = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use spash_htm::HtmConfig;
    use spash_pmem::{PmConfig, PmDevice};

    fn seg(i: u64) -> PmAddr {
        PmAddr(0x1000 + i * 256)
    }

    #[test]
    fn entry_pack_roundtrip() {
        let e = pack_entry(PmAddr(0x1234_5600), 17);
        assert_eq!(unpack_entry(e), (PmAddr(0x1234_5600), 17));
    }

    #[test]
    fn lookup_routes_by_high_bits() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        let d = Directory::new(2, &[seg(0), seg(1), seg(2), seg(3)]);
        // hash with top bits 10... goes to entry 2.
        let h = 0b10u64 << 62;
        let r = d.lookup(&mut ctx, h);
        assert_eq!(r.idx, 2);
        assert_eq!(r.seg(), seg(2));
        assert_eq!(r.local_depth(), 2);
    }

    #[test]
    fn rebuild_fans_out_shallow_segments() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        // One segment at depth 1 prefix 0, two at depth 2 prefixes 10, 11.
        let d = Directory::rebuild(&[(seg(0), 1, 0), (seg(1), 2, 0b10), (seg(2), 2, 0b11)]);
        assert_eq!(d.depth(), 2);
        assert_eq!(d.lookup(&mut ctx, 0b00u64 << 62).seg(), seg(0));
        assert_eq!(d.lookup(&mut ctx, 0b01u64 << 62).seg(), seg(0));
        assert_eq!(d.lookup(&mut ctx, 0b10u64 << 62).seg(), seg(1));
        assert_eq!(d.lookup(&mut ctx, 0b11u64 << 62).seg(), seg(2));
    }

    #[test]
    fn doubling_preserves_routing() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        let htm = Htm::new(HtmConfig::default());
        let segs: Vec<PmAddr> = (0..4).map(seg).collect();
        let d = Directory::new(2, &segs);
        let job = d.begin_doubling(&mut ctx);
        // Mid-doubling (no stage done yet) lookups still work.
        for i in 0..4u64 {
            let h = i << 62;
            assert_eq!(d.lookup(&mut ctx, h).seg(), seg(i));
        }
        d.drive_doubling(&mut ctx, &htm, &job);
        assert_eq!(d.depth(), 3);
        // After doubling both children of entry i route to the old segment.
        for i in 0..8u64 {
            let h = i << 61;
            assert_eq!(d.lookup(&mut ctx, h).seg(), seg(i / 2));
            assert_eq!(d.lookup(&mut ctx, h).local_depth(), 2);
        }
    }

    #[test]
    fn collaborative_stage_completion() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        let htm = Htm::new(HtmConfig::default());
        let segs: Vec<PmAddr> = (0..32).map(seg).collect();
        let d = Directory::new(5, &segs);
        let job = d.begin_doubling(&mut ctx);
        // A "split" thread needs old index 17 done: completes just that
        // stage collaboratively.
        d.ensure_range_done(&mut ctx, &htm, &job, 17, 17, true);
        let h = 17u64 << (64 - 5);
        let r = d.lookup(&mut ctx, h);
        assert_eq!(r.dir.gen, job.new.gen, "routed through the new directory");
        assert_eq!(r.seg(), seg(17));
        // Another hash in a pending partition still routes through old.
        let h2 = 1u64 << (64 - 5);
        let r2 = d.lookup(&mut ctx, h2);
        assert_eq!(r2.dir.gen, job.old.gen);
        // Finish everything.
        d.drive_doubling(&mut ctx, &htm, &job);
        assert_eq!(d.depth(), 6);
    }

    #[test]
    fn tx_validate_detects_moved_segment() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        let htm = Htm::new(HtmConfig::default());
        let d = Directory::new(1, &[seg(0), seg(1)]);
        let h = 0u64;
        let r = d.lookup(&mut ctx, h);
        assert_eq!(r.seg(), seg(0));
        // Concurrently "split": repoint entry 0 to another segment.
        d.state.lock().current.entries[0].store(pack_entry(seg(9), 1), Ordering::Release);
        let res: Result<(), Abort> = htm.try_transaction(&mut ctx, |tx, ctx| {
            d.tx_validate(tx, ctx, h, seg(0)).map(|_| ())
        });
        assert_eq!(res, Err(Abort::Explicit(VALIDATE_SEGMENT_MOVED)));
    }

    #[test]
    fn tx_validate_aborts_when_stage_copies_under_it() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        let mut ctx2 = dev.ctx();
        let htm = Htm::new(HtmConfig::default());
        let segs: Vec<PmAddr> = (0..16).map(seg).collect();
        let d = Directory::new(4, &segs);
        let job = d.begin_doubling(&mut ctx);
        let h = 0u64;
        // Validate inside a transaction, and complete the stage for the
        // same partition before committing: the version bump must abort us.
        let res: Result<(), Abort> = htm.try_transaction(&mut ctx, |tx, ctx| {
            d.tx_validate(tx, ctx, h, seg(0))?;
            d.complete_stage(&mut ctx2, &htm, &job, 0);
            Ok(())
        });
        assert!(matches!(res, Err(Abort::Conflict(_))));
    }

    #[test]
    fn halving_reverses_doubling() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        let htm = Htm::new(HtmConfig::default());
        let segs: Vec<PmAddr> = (0..4).map(seg).collect();
        let d = Directory::new(2, &segs);
        let job = d.begin_doubling(&mut ctx);
        d.drive_doubling(&mut ctx, &htm, &job);
        assert_eq!(d.depth(), 3);
        // Post-doubling every pair is identical — halving must succeed
        // exactly once (back to depth 2, where entries differ again).
        assert!(d.try_halve());
        assert_eq!(d.depth(), 2);
        assert!(!d.try_halve(), "distinct entries must block halving");
        for i in 0..4u64 {
            assert_eq!(d.lookup(&mut ctx, i << 62).seg(), seg(i));
        }
    }

    #[test]
    fn halving_refuses_during_doubling() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        let d = Directory::new(1, &[seg(0), seg(0)]);
        let _job = d.begin_doubling(&mut ctx);
        assert!(!d.try_halve(), "active doubling must block halving");
    }

    #[test]
    fn concurrent_doubling_and_lookups() {
        use std::sync::Arc as StdArc;
        let dev = PmDevice::new(PmConfig::small_test());
        let htm = StdArc::new(Htm::new(HtmConfig::default()));
        let segs: Vec<PmAddr> = (0..256).map(seg).collect();
        let d = StdArc::new(Directory::new(8, &segs));
        std::thread::scope(|s| {
            let dd = StdArc::clone(&d);
            let hh = StdArc::clone(&htm);
            let devd = StdArc::clone(&dev);
            s.spawn(move || {
                let mut ctx = devd.ctx();
                let job = dd.begin_doubling(&mut ctx);
                dd.drive_doubling(&mut ctx, &hh, &job);
            });
            for _ in 0..3 {
                let dd = StdArc::clone(&d);
                let devd = StdArc::clone(&dev);
                s.spawn(move || {
                    let mut ctx = devd.ctx();
                    for i in 0..10_000u64 {
                        let want = i % 256;
                        let h = want << 56;
                        let r = dd.lookup(&mut ctx, h);
                        assert_eq!(r.seg(), seg(want), "routing broke mid-doubling");
                    }
                });
            }
        });
        assert_eq!(d.depth(), 9);
    }
}
