//! Test-only mutation switches for validating the fingerprint/overlay
//! verification stack.
//!
//! A differential battery that has never caught a planted bug proves
//! nothing. These process-wide switches deliberately break a known
//! invariant of the fingerprint probe layer or the DRAM overlay cache so
//! the oracle battery, the integrity walker, and the linearizability
//! checker can each demonstrate they *detect* the breakage. They are
//! compiled unconditionally (no cfg gymnastics across crates) but default
//! to off and are only flipped by `spash-bench sched` mutation runs and
//! the harness's own tests.

use std::sync::atomic::{AtomicBool, Ordering};

/// When set, every fingerprint tag *written* to the persistent fp table
/// is corrupted (XOR 0x55, remapped away from the empty encoding), while
/// probes keep computing the true tag. Fingerprint-filtered lookups then
/// skip slots that actually hold the key — false negatives the
/// fingerprint-blind oracle, the exact integrity tag check, and the
/// linearizability checker must all catch.
static FP_WRONG_TAG: AtomicBool = AtomicBool::new(false);

/// When set, [`crate::slot::fp8`] returns the constant tag 1 for every
/// hash: every slot of a bucket becomes a probe candidate. Results must
/// stay *identical* to the unfiltered path (the filter is only ever
/// allowed to produce candidate supersets), so the oracle battery runs
/// with this on to exercise maximal tag-collision pressure.
static FP_COLLIDE: AtomicBool = AtomicBool::new(false);

/// When set, segment split and merge paths skip bumping the per-segment
/// generation counters that invalidate the DRAM overlay cache. A cached
/// bucket then keeps serving its pre-split image: reads of keys that
/// moved (or changed after moving) return stale values — a staleness bug
/// the oracle battery and the linearizability checker must catch.
static OVERLAY_STALE: AtomicBool = AtomicBool::new(false);

/// Enable/disable the wrong-tag mutation (returns the previous value so
/// tests can restore it).
pub fn set_fp_wrong_tag(on: bool) -> bool {
    FP_WRONG_TAG.swap(on, Ordering::SeqCst)
}

/// Is the wrong-tag mutation active?
pub fn fp_wrong_tag() -> bool {
    FP_WRONG_TAG.load(Ordering::SeqCst)
}

/// Enable/disable the forced-collision mutation (returns the previous
/// value).
pub fn set_fp_collide(on: bool) -> bool {
    FP_COLLIDE.swap(on, Ordering::SeqCst)
}

/// Is the forced-collision mutation active?
pub fn fp_collide() -> bool {
    FP_COLLIDE.load(Ordering::SeqCst)
}

/// Enable/disable the stale-overlay mutation (returns the previous
/// value).
pub fn set_overlay_stale(on: bool) -> bool {
    OVERLAY_STALE.swap(on, Ordering::SeqCst)
}

/// Is the stale-overlay mutation active?
pub fn overlay_stale() -> bool {
    OVERLAY_STALE.load(Ordering::SeqCst)
}
