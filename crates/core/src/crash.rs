//! Spash's plug into the crash-point fault-injection sweep
//! (`spash_index_api::crashpoint`).
//!
//! The recover closure runs [`Spash::recover`], then audits the recovered
//! index two ways:
//!
//! 1. the full structural walk ([`Spash::verify_integrity`]) — any
//!    violation is a hard sweep failure;
//! 2. a heap census against reachability — every address the index can
//!    reach (segments from the directory, blobs from slots) must be a live
//!    allocation in the persistent heap's own books (anything else is
//!    use-after-free-grade corruption), while live allocations the index
//!    cannot reach are *counted* as leaks. Leaks are expected in bounded
//!    numbers: the DCMM frees small slots into volatile caches without
//!    clearing the persistent bits (DESIGN.md), and an in-flight operation
//!    can lose its freshly allocated blob to the crash.

use std::collections::HashSet;
use std::sync::atomic::Ordering;

use spash_alloc::PmAllocator;
use spash_index_api::crashpoint::{CrashTarget, Recovery};
use spash_pmem::MemCtx;

use crate::config::SpashConfig;
use crate::ops::Spash;
use crate::slot::{key_addr, SlotKey, SLOTS_PER_SEG};

impl Spash {
    /// Heap-census audit: returns `(leaked_allocations, corruption)`.
    pub fn audit_heap(&self, ctx: &mut MemCtx) -> (u64, Option<String>) {
        let census = match PmAllocator::census(ctx) {
            Some(c) => c,
            None => return (0, Some("no formatted heap found".into())),
        };
        let mut allocated: HashSet<u64> = HashSet::new();
        for &(a, _) in &census.small_slots {
            allocated.insert(a.0);
        }
        for &a in &census.segments {
            allocated.insert(a.0);
        }
        for &(a, _) in &census.large {
            allocated.insert(a.0);
        }
        for &(a, _) in &census.regions {
            allocated.insert(a.0);
        }

        // Reachable: every distinct segment in the directory, plus every
        // blob a slot points at.
        let mut reachable: HashSet<u64> = HashSet::new();
        let (dir, _) = self.dir.write_target();
        // Deduplicate in directory order (not via a HashSet): the walk
        // below reads PM per segment, and a hash-ordered walk would make
        // the modelled cache's hit/miss pattern nondeterministic.
        let mut segs: Vec<_> = dir
            .entries
            .iter()
            .map(|e| crate::dir::unpack_entry(e.load(Ordering::Acquire)).0)
            .collect();
        segs.sort_unstable();
        segs.dedup();
        for &seg in &segs {
            reachable.insert(seg.0);
            for idx in 0..SLOTS_PER_SEG {
                if let SlotKey::Ptr { addr, .. } =
                    // lint:allow(fp-probe): reachability audit walks the raw durable image; it must see every slot, fp-filtered or not
                    SlotKey::unpack(ctx.read_u64(key_addr(seg, idx)))
                {
                    reachable.insert(addr.0);
                }
            }
        }

        for &r in &reachable {
            if !allocated.contains(&r) {
                return (
                    0,
                    Some(format!(
                        "reachable address {r:#x} is not a live allocation in the heap census"
                    )),
                );
            }
        }
        let leaked = allocated.difference(&reachable).count() as u64;
        (leaked, None)
    }

    /// Spash as a [`CrashTarget`] for the crash-point sweep.
    pub fn crash_target(cfg: SpashConfig) -> CrashTarget {
        let fmt_cfg = cfg.clone();
        CrashTarget {
            name: "Spash".into(),
            // `fresh_volatile`: every replay (and every recovery — a real
            // crash wipes volatile state) starts with an untrained hot-key
            // detector, keeping the media-write sequence reproducible.
            format: Box::new(move |ctx| {
                Box::new(Spash::format(ctx, fmt_cfg.fresh_volatile()).expect("format Spash"))
            }),
            recover: Box::new(move |ctx| {
                let idx = Spash::recover(ctx, cfg.fresh_volatile())?;
                let mut audit_error = idx.verify_integrity(ctx).err().map(|e| e.to_string());
                let (leaked_allocs, census_err) = idx.audit_heap(ctx);
                if audit_error.is_none() {
                    audit_error = census_err;
                }
                Some(Recovery {
                    index: Box::new(idx),
                    leaked_allocs,
                    audit_error,
                })
            }),
        }
    }
}
