//! Structural integrity verification for a quiescent Spash index.
//!
//! [`Spash::verify_integrity`] walks the whole structure — directory,
//! segments, slots, overflow hints, blobs, and the persistent segment-info
//! table — and checks every invariant the operations rely on. It is meant
//! for tests, post-recovery validation, and debugging, not for the hot
//! path: it takes no locks and assumes no concurrent writers.
//!
//! Invariants checked (the section numbers are the paper's):
//!
//! 1. **Directory coherence** — every entry points at a segment; local
//!    depth ≤ global depth; each segment owns exactly one contiguous,
//!    size-aligned run of `2^(gd-ld)` entries (extendible hashing, §III-A).
//! 2. **Segment-info agreement** — the persistent recovery table records
//!    exactly the `(local depth, prefix)` the directory implies (our
//!    recovery substrate, DESIGN.md §7).
//! 3. **Slot well-formedness** — fingerprints match the key hash, inline
//!    keys fit 48 bits, blob pointers land inside the arena.
//! 4. **Routing** — every stored key hashes back into the segment that
//!    holds it.
//! 5. **Hint reachability** — every entry living outside its main bucket
//!    is reachable through a matching overflow hint in the main bucket
//!    (what makes a search miss authoritative, §III-A).
//! 6. **Uniqueness and accounting** — no key is stored twice; the entry
//!    and segment counters match a full count.
//! 7. **Fingerprint sidecar exactness** — every bucket's fp word equals
//!    what [`crate::fptable::rebuild_words`] derives from the slots.
//!    Tags are only *hints* on the probe path, but recovery rebuilds
//!    them and every mutation maintains them, so a quiescent index can
//!    (and must) be held to exact equality — this is what makes the
//!    wrong-tag mutation canary detectable.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;

use spash_index_api::hash_key;
use spash_pmem::{MemCtx, PmAddr};

use crate::ops::Spash;
use crate::slot::{
    self, bucket_of, bucket_slots, fp14, hint_matches, key_addr, value_addr, value_word, SlotKey,
    SLOTS_PER_BUCKET, SLOTS_PER_SEG,
};

/// Aggregate statistics produced by a successful integrity walk.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrityReport {
    /// Global directory depth.
    pub directory_depth: u32,
    /// Number of distinct segments reachable from the directory.
    pub segments: u64,
    /// Total live entries.
    pub entries: u64,
    /// Entries stored outside their main bucket (hint-reachable).
    pub overflow_entries: u64,
    /// Entries whose value lives in an out-of-place blob.
    pub blob_entries: u64,
    /// Nonzero hint fields observed in main-bucket value words.
    pub hints_in_use: u64,
    /// Hints whose target slot no longer holds a matching entry. These are
    /// legal leftovers (a hint is only force-cleared when the entry it
    /// covers is removed through it) but should stay rare.
    pub stale_hints: u64,
    /// `(local depth, segment count)` pairs, ascending by depth.
    pub depth_histogram: Vec<(u8, u64)>,
    /// entries / (segments × 16 slots).
    pub load_factor: f64,
}

/// A violated invariant, with enough context to locate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityError {
    /// A directory entry holds a null segment pointer.
    NullDirEntry { idx: usize },
    /// A directory entry claims a local depth above the global depth.
    DepthExceedsGlobal { idx: usize, local: u8, global: u32 },
    /// A segment's directory run is not contiguous, not `2^(gd-ld)` long,
    /// or not aligned to its own length.
    BadDirRun { seg: PmAddr, first: usize, len: usize, expected_len: usize },
    /// A segment appears under two different local depths.
    InconsistentDepth { seg: PmAddr },
    /// The segment-info table disagrees with the directory.
    SegInfoMismatch {
        seg: PmAddr,
        expected: (u8, u64),
        found: Option<(u8, u64)>,
    },
    /// A slot's fingerprint does not match its key's hash.
    FingerprintMismatch { seg: PmAddr, slot: u8 },
    /// An inline slot stores a key above the 48-bit inline maximum.
    OversizedInlineKey { seg: PmAddr, slot: u8 },
    /// A blob pointer is null or outside the arena.
    BlobOutOfBounds { seg: PmAddr, slot: u8, addr: PmAddr },
    /// A stored key's hash routes to a different segment.
    MisroutedKey { seg: PmAddr, slot: u8, key: u64 },
    /// An overflow entry has no matching hint in its main bucket.
    UnreachableOverflow { seg: PmAddr, slot: u8, key: u64 },
    /// The same key is stored in two slots.
    DuplicateKey { key: u64 },
    /// A bucket's fingerprint sidecar word differs from the rebuild rule.
    FpWordMismatch { seg: PmAddr, bucket: u8, expected: u64, found: u64 },
    /// The `len()` counter disagrees with a full count.
    EntryCountDrift { counted: u64, recorded: u64 },
    /// The segment counter disagrees with the directory walk.
    SegmentCountDrift { counted: u64, recorded: u64 },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NullDirEntry { idx } => write!(f, "directory[{idx}] is null"),
            Self::DepthExceedsGlobal { idx, local, global } => {
                write!(f, "directory[{idx}] local depth {local} > global {global}")
            }
            Self::BadDirRun { seg, first, len, expected_len } => write!(
                f,
                "segment {seg:?}: directory run at {first} has length {len}, expected aligned {expected_len}"
            ),
            Self::InconsistentDepth { seg } => {
                write!(f, "segment {seg:?} listed under two local depths")
            }
            Self::SegInfoMismatch { seg, expected, found } => write!(
                f,
                "seginfo for {seg:?}: expected {expected:?}, found {found:?}"
            ),
            Self::FingerprintMismatch { seg, slot } => {
                write!(f, "segment {seg:?} slot {slot}: fingerprint mismatch")
            }
            Self::OversizedInlineKey { seg, slot } => {
                write!(f, "segment {seg:?} slot {slot}: inline key exceeds 48 bits")
            }
            Self::BlobOutOfBounds { seg, slot, addr } => {
                write!(f, "segment {seg:?} slot {slot}: blob pointer {addr:?} out of bounds")
            }
            Self::MisroutedKey { seg, slot, key } => {
                write!(f, "segment {seg:?} slot {slot}: key {key} routes elsewhere")
            }
            Self::UnreachableOverflow { seg, slot, key } => write!(
                f,
                "segment {seg:?} slot {slot}: overflow key {key} has no hint in its main bucket"
            ),
            Self::DuplicateKey { key } => write!(f, "key {key} stored twice"),
            Self::FpWordMismatch { seg, bucket, expected, found } => write!(
                f,
                "segment {seg:?} bucket {bucket}: fp word {found:#018x}, rebuild rule says {expected:#018x}"
            ),
            Self::EntryCountDrift { counted, recorded } => {
                write!(f, "counted {counted} entries but len() reports {recorded}")
            }
            Self::SegmentCountDrift { counted, recorded } => {
                write!(f, "counted {counted} segments but counter reports {recorded}")
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

impl Spash {
    /// Verify every structural invariant of a quiescent index.
    ///
    /// Returns an [`IntegrityReport`] on success and the first violated
    /// invariant otherwise. Must not run concurrently with writers.
    pub fn verify_integrity(&self, ctx: &mut MemCtx) -> Result<IntegrityReport, IntegrityError> {
        let (dir, _) = self.dir.write_target();
        let gd = dir.depth;
        let n = dir.entries.len();

        // Pass 1: directory coherence — collect (seg → (first idx, local
        // depth)) and validate run shape.
        let mut runs: HashMap<PmAddr, (usize, u8, usize)> = HashMap::new(); // seg → (first, ld, len)
        let mut prev_seg = PmAddr::NULL;
        for idx in 0..n {
            let (seg, ld) = crate::dir::unpack_entry(dir.entries[idx].load(Ordering::Acquire));
            if seg.is_null() {
                return Err(IntegrityError::NullDirEntry { idx });
            }
            if u32::from(ld) > gd {
                return Err(IntegrityError::DepthExceedsGlobal { idx, local: ld, global: gd });
            }
            match runs.get_mut(&seg) {
                None => {
                    runs.insert(seg, (idx, ld, 1));
                }
                Some((first, ld0, len)) => {
                    if *ld0 != ld {
                        return Err(IntegrityError::InconsistentDepth { seg });
                    }
                    if seg != prev_seg {
                        // Reappearing after a gap: not contiguous.
                        return Err(IntegrityError::BadDirRun {
                            seg,
                            first: *first,
                            len: *len + 1,
                            expected_len: 1 << (gd - u32::from(ld)),
                        });
                    }
                    *len += 1;
                }
            }
            prev_seg = seg;
        }
        // Later passes read PM per segment; iterate in directory order so
        // the access sequence (and thus the modelled cache's hit/miss
        // pattern) is deterministic, not HashMap-order.
        let mut run_list: Vec<(PmAddr, (usize, u8, usize))> =
            runs.iter().map(|(&s, &r)| (s, r)).collect();
        run_list.sort_unstable_by_key(|&(_, (first, _, _))| first);
        for &(seg, (first, ld, len)) in &run_list {
            let expected = 1usize << (gd - u32::from(ld));
            if len != expected || first % expected != 0 {
                return Err(IntegrityError::BadDirRun { seg, first, len, expected_len: expected });
            }
            // Pass 2: segment-info agreement. The table records the high
            // `ld` bits every hash in this run shares.
            let expected_prefix = if ld == 0 { 0 } else { (first >> (gd - u32::from(ld))) as u64 };
            match self.seginfo.read(ctx, seg) {
                Some((d, p)) if d == ld && p == expected_prefix => {}
                found => {
                    return Err(IntegrityError::SegInfoMismatch {
                        seg,
                        expected: (ld, expected_prefix),
                        found,
                    })
                }
            }
        }

        // Pass 3: slots, routing, hints, duplicates.
        let arena_size = self.dev.arena().size();
        let mut seen_keys: HashSet<u64> = HashSet::new();
        let mut entries = 0u64;
        let mut overflow_entries = 0u64;
        let mut blob_entries = 0u64;
        let mut hints_in_use = 0u64;
        let mut stale_hints = 0u64;
        for &(seg, (first, ld, _)) in &run_list {
            let run_len = 1usize << (gd - u32::from(ld));
            for idx in 0..SLOTS_PER_SEG {
                let kw = ctx.read_u64(key_addr(seg, idx));
                let (key, fp) = match SlotKey::unpack(kw) {
                    SlotKey::Empty => continue,
                    SlotKey::Inline { key, fp } => {
                        if key > slot::MAX_INLINE_KEY {
                            return Err(IntegrityError::OversizedInlineKey { seg, slot: idx });
                        }
                        (key, fp)
                    }
                    SlotKey::Ptr { addr, fp } => {
                        if addr.is_null() || addr.0 + 8 > arena_size {
                            return Err(IntegrityError::BlobOutOfBounds { seg, slot: idx, addr });
                        }
                        blob_entries += 1;
                        (ctx.read_u64(addr), fp)
                    }
                };
                let h = hash_key(key);
                if fp != fp14(h) {
                    return Err(IntegrityError::FingerprintMismatch { seg, slot: idx });
                }
                let route = dir.index_of(h);
                if route < first || route >= first + run_len {
                    return Err(IntegrityError::MisroutedKey { seg, slot: idx, key });
                }
                if !seen_keys.insert(key) {
                    return Err(IntegrityError::DuplicateKey { key });
                }
                entries += 1;

                let home = bucket_of(h);
                if idx / SLOTS_PER_BUCKET != home {
                    overflow_entries += 1;
                    let mut reachable = false;
                    for s in bucket_slots(home) {
                        let hvw = ctx.read_u64(value_addr(seg, s));
                        if hint_matches(value_word::hint(hvw), h) == Some(idx) {
                            reachable = true;
                            break;
                        }
                    }
                    if !reachable {
                        return Err(IntegrityError::UnreachableOverflow { seg, slot: idx, key });
                    }
                }
            }
            // Pass 3b: fingerprint sidecar exactness. Recompute the four
            // fp words from the slots and require the stored words to
            // match bit for bit.
            let mut words = [(0u64, 0u64); 16];
            for idx in 0..SLOTS_PER_SEG {
                words[idx as usize] = (
                    ctx.read_u64(key_addr(seg, idx)),
                    ctx.read_u64(value_addr(seg, idx)),
                );
            }
            let expected_fp = crate::fptable::rebuild_words(&words, |kw| match SlotKey::unpack(kw)
            {
                SlotKey::Empty => None,
                SlotKey::Inline { key, .. } => Some(hash_key(key)),
                SlotKey::Ptr { addr, .. } => Some(hash_key(ctx.read_u64(addr))),
            });
            for b in 0..slot::BUCKETS_PER_SEG {
                let found = self.fptable.read(ctx, seg, b);
                if found != expected_fp[b as usize] {
                    return Err(IntegrityError::FpWordMismatch {
                        seg,
                        bucket: b,
                        expected: expected_fp[b as usize],
                        found,
                    });
                }
            }

            // Hint hygiene (informational): a hint is stale when its
            // target slot no longer holds an entry with a matching
            // fingerprint.
            for b in 0..slot::BUCKETS_PER_SEG {
                for s in bucket_slots(b) {
                    let hint = value_word::hint(ctx.read_u64(value_addr(seg, s)));
                    if hint == 0 {
                        continue;
                    }
                    hints_in_use += 1;
                    let target = (hint & 0xf) as u8;
                    let tkw = ctx.read_u64(key_addr(seg, target));
                    let fresh = match SlotKey::unpack(tkw) {
                        SlotKey::Empty => false,
                        SlotKey::Inline { key, .. } => {
                            let h = hash_key(key);
                            hint_matches(hint, h) == Some(target) && bucket_of(h) == b
                        }
                        SlotKey::Ptr { addr, .. } => {
                            let h = hash_key(ctx.read_u64(addr));
                            hint_matches(hint, h) == Some(target) && bucket_of(h) == b
                        }
                    };
                    if !fresh {
                        stale_hints += 1;
                    }
                }
            }
        }

        // Pass 4: accounting.
        let recorded = self.len();
        if entries != recorded {
            return Err(IntegrityError::EntryCountDrift { counted: entries, recorded });
        }
        let seg_recorded = self.n_segments.load(Ordering::Relaxed);
        if runs.len() as u64 != seg_recorded {
            return Err(IntegrityError::SegmentCountDrift {
                counted: runs.len() as u64,
                recorded: seg_recorded,
            });
        }

        let mut hist: HashMap<u8, u64> = HashMap::new();
        for &(_, ld, _) in runs.values() {
            *hist.entry(ld).or_insert(0) += 1;
        }
        let mut depth_histogram: Vec<(u8, u64)> = hist.into_iter().collect();
        depth_histogram.sort_unstable();

        let segments = runs.len() as u64;
        Ok(IntegrityReport {
            directory_depth: gd,
            segments,
            entries,
            overflow_entries,
            blob_entries,
            hints_in_use,
            stale_hints,
            depth_histogram,
            load_factor: entries as f64 / (segments * u64::from(SLOTS_PER_SEG)) as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConcurrencyMode, SpashConfig};
    use spash_index_api::PersistentIndex;
    use spash_pmem::{PmConfig, PmDevice};
    use std::sync::Arc;

    fn device() -> Arc<PmDevice> {
        PmDevice::new(PmConfig {
            arena_size: 64 << 20,
            ..PmConfig::small_test()
        })
    }

    #[test]
    fn fresh_index_is_sound() {
        let dev = device();
        let mut ctx = dev.ctx();
        let idx = Spash::format(&mut ctx, SpashConfig::test_default()).unwrap();
        let r = idx.verify_integrity(&mut ctx).unwrap();
        assert_eq!(r.entries, 0);
        assert_eq!(r.segments, 1 << idx.cfg.initial_depth);
        assert_eq!(r.load_factor, 0.0);
        assert_eq!(r.stale_hints, 0);
    }

    #[test]
    fn survives_randomized_churn_with_splits_and_merges() {
        let dev = device();
        let mut ctx = dev.ctx();
        let idx = Spash::format(&mut ctx, SpashConfig::test_default()).unwrap();
        let mut state = 0x5eed_u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 11
        };
        // Grow through several splits, with blob values mixed in.
        for i in 0..6_000u64 {
            let v = if i % 7 == 0 { vec![3u8; 100] } else { i.to_le_bytes().to_vec() };
            idx.insert(&mut ctx, i + 1, &v).unwrap();
        }
        let grown = idx.verify_integrity(&mut ctx).unwrap();
        assert!(grown.segments > 64, "only {} segments", grown.segments);
        assert!(grown.overflow_entries > 0, "churn must exercise hints");
        assert!(grown.blob_entries > 0);
        // Churn: random deletes/reinserts/updates trigger merges too.
        for _ in 0..20_000 {
            let k = 1 + rng() % 6_000;
            match rng() % 3 {
                0 => {
                    idx.remove(&mut ctx, k);
                }
                1 => {
                    let _ = idx.update(&mut ctx, k, &[9u8; 40]);
                }
                _ => {
                    let _ = idx.insert(&mut ctx, k, &k.to_le_bytes());
                }
            }
        }
        let r = idx.verify_integrity(&mut ctx).unwrap();
        assert_eq!(r.entries, idx.len());
    }

    #[test]
    fn lock_modes_are_sound_too() {
        for mode in [ConcurrencyMode::WriteLock, ConcurrencyMode::WriteReadLock] {
            let dev = device();
            let mut ctx = dev.ctx();
            let idx = Spash::format(
                &mut ctx,
                SpashConfig { concurrency: mode, ..SpashConfig::test_default() },
            )
            .unwrap();
            for i in 0..3_000u64 {
                idx.insert(&mut ctx, i + 1, &i.to_le_bytes()).unwrap();
            }
            for i in 0..1_500u64 {
                idx.remove(&mut ctx, i * 2 + 1);
            }
            idx.verify_integrity(&mut ctx).unwrap();
        }
    }

    #[test]
    fn detects_a_corrupted_fingerprint() {
        let dev = device();
        let mut ctx = dev.ctx();
        let idx = Spash::format(&mut ctx, SpashConfig::test_default()).unwrap();
        for i in 0..500u64 {
            idx.insert(&mut ctx, i + 1, &i.to_le_bytes()).unwrap();
        }
        // Find an occupied slot and flip a fingerprint bit behind the
        // index's back.
        let (dir, _) = idx.dir.write_target();
        'outer: for e in dir.entries.iter() {
            let (seg, _) = crate::dir::unpack_entry(e.load(Ordering::Acquire));
            for s in 0..SLOTS_PER_SEG {
                let kw = ctx.read_u64(key_addr(seg, s));
                if !SlotKey::unpack(kw).is_empty() {
                    ctx.write_u64(key_addr(seg, s), kw ^ (1 << 50)); // fp bit
                    break 'outer;
                }
            }
        }
        match idx.verify_integrity(&mut ctx) {
            Err(IntegrityError::FingerprintMismatch { .. }) => {}
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
    }

    #[test]
    fn detects_a_corrupted_fp_word() {
        let dev = device();
        let mut ctx = dev.ctx();
        let idx = Spash::format(&mut ctx, SpashConfig::test_default()).unwrap();
        for i in 0..500u64 {
            idx.insert(&mut ctx, i + 1, &i.to_le_bytes()).unwrap();
        }
        // Corrupt one occupied slot's sidecar tag behind the index's back.
        let (dir, _) = idx.dir.write_target();
        'outer: for e in dir.entries.iter() {
            let (seg, _) = crate::dir::unpack_entry(e.load(Ordering::Acquire));
            for s in 0..SLOTS_PER_SEG {
                if !SlotKey::unpack(ctx.read_u64(key_addr(seg, s))).is_empty() {
                    let old = idx.fptable.read(&mut ctx, seg, s / SLOTS_PER_BUCKET);
                    idx.fptable.set_slot_tag(&mut ctx, seg, s, 0xEE);
                    assert_ne!(idx.fptable.read(&mut ctx, seg, s / SLOTS_PER_BUCKET), old);
                    break 'outer;
                }
            }
        }
        match idx.verify_integrity(&mut ctx) {
            Err(IntegrityError::FpWordMismatch { .. }) => {}
            other => panic!("expected FpWordMismatch, got {other:?}"),
        }
    }

    #[test]
    fn detects_a_lost_entry_as_count_drift() {
        let dev = device();
        let mut ctx = dev.ctx();
        let idx = Spash::format(&mut ctx, SpashConfig::test_default()).unwrap();
        for i in 0..200u64 {
            idx.insert(&mut ctx, i + 1, &i.to_le_bytes()).unwrap();
        }
        let (dir, _) = idx.dir.write_target();
        'outer: for e in dir.entries.iter() {
            let (seg, _) = crate::dir::unpack_entry(e.load(Ordering::Acquire));
            for s in 0..SLOTS_PER_SEG {
                let kw = ctx.read_u64(key_addr(seg, s));
                if !SlotKey::unpack(kw).is_empty() {
                    // Clear the entry but preserve any hint the value word
                    // carries for a neighbour, and keep the fp sidecar
                    // consistent: a cleanly lost entry, so only the count
                    // drift can fire.
                    let vw = ctx.read_u64(value_addr(seg, s));
                    ctx.write_u64(key_addr(seg, s), 0);
                    ctx.write_u64(value_addr(seg, s), value_word::with_payload(vw, 0));
                    idx.fptable.set_slot_tag(&mut ctx, seg, s, 0);
                    break 'outer;
                }
            }
        }
        match idx.verify_integrity(&mut ctx) {
            Err(IntegrityError::EntryCountDrift { counted, recorded }) => {
                assert_eq!(counted + 1, recorded);
            }
            other => panic!("expected EntryCountDrift, got {other:?}"),
        }
    }

    #[test]
    fn detects_a_duplicated_key() {
        let dev = device();
        let mut ctx = dev.ctx();
        let idx = Spash::format(&mut ctx, SpashConfig::test_default()).unwrap();
        for i in 0..200u64 {
            idx.insert(&mut ctx, i + 1, &i.to_le_bytes()).unwrap();
        }
        // Copy one occupied slot over an empty slot in the same bucket of
        // the same segment (routing and fingerprint stay valid, so the
        // duplicate check must be what fires).
        let (dir, _) = idx.dir.write_target();
        'outer: for e in dir.entries.iter() {
            let (seg, _) = crate::dir::unpack_entry(e.load(Ordering::Acquire));
            for b in 0..slot::BUCKETS_PER_SEG {
                let slots: Vec<u8> = bucket_slots(b).collect();
                let occupied: Vec<u8> = slots
                    .iter()
                    .copied()
                    .filter(|&s| !SlotKey::unpack(ctx.read_u64(key_addr(seg, s))).is_empty())
                    .collect();
                let empty: Vec<u8> = slots
                    .iter()
                    .copied()
                    .filter(|&s| SlotKey::unpack(ctx.read_u64(key_addr(seg, s))).is_empty())
                    .collect();
                if let (Some(&src), Some(&dst)) = (occupied.first(), empty.first()) {
                    let kw = ctx.read_u64(key_addr(seg, src));
                    let vw = ctx.read_u64(value_addr(seg, src));
                    ctx.write_u64(key_addr(seg, dst), kw);
                    ctx.write_u64(value_addr(seg, dst), vw);
                    break 'outer;
                }
            }
        }
        match idx.verify_integrity(&mut ctx) {
            Err(
                IntegrityError::DuplicateKey { .. } | IntegrityError::EntryCountDrift { .. },
            ) => {}
            other => panic!("expected DuplicateKey/EntryCountDrift, got {other:?}"),
        }
    }

    #[test]
    fn recovery_heals_a_torn_fp_word() {
        let dev = PmDevice::new(PmConfig {
            arena_size: 64 << 20,
            ..PmConfig::eadr_test()
        });
        let mut ctx = dev.ctx();
        let idx = Spash::format(&mut ctx, SpashConfig::test_default()).unwrap();
        for i in 0..1_000u64 {
            idx.insert(&mut ctx, i + 1, &i.to_le_bytes()).unwrap();
        }
        // Simulate a crash that tore fp words mid-publication: garbage in
        // several segments' sidecars.
        let (dir, _) = idx.dir.write_target();
        for (n, e) in dir.entries.iter().enumerate().take(4) {
            let (seg, _) = crate::dir::unpack_entry(e.load(Ordering::Acquire));
            idx.fptable.write_word(&mut ctx, seg, (n % 4) as u8, 0xDEAD_BEEF_DEAD_BEEF);
        }
        drop(idx);
        dev.simulate_power_failure();
        // Recovery rebuilds every fp word from the slots; the walker's
        // exact-equality pass proves the heal.
        let mut ctx2 = dev.ctx();
        let rec = Spash::recover(&mut ctx2, SpashConfig::test_default()).unwrap();
        rec.verify_integrity(&mut ctx2)
            .unwrap_or_else(|e| panic!("torn fp word survived recovery: {e}"));
        let mut out = Vec::new();
        for i in 0..1_000u64 {
            out.clear();
            assert!(rec.get(&mut ctx2, i + 1, &mut out), "key {} lost", i + 1);
        }
    }

    #[test]
    fn sound_after_crash_recovery() {
        let dev = PmDevice::new(PmConfig {
            arena_size: 64 << 20,
            ..PmConfig::eadr_test()
        });
        let mut ctx = dev.ctx();
        let idx = Spash::format(&mut ctx, SpashConfig::test_default()).unwrap();
        for i in 0..4_000u64 {
            idx.insert(&mut ctx, i + 1, &i.to_le_bytes()).unwrap();
        }
        for i in 0..1_000u64 {
            idx.remove(&mut ctx, i * 3 + 1);
        }
        let before = idx.len();
        drop(idx);
        dev.simulate_power_failure();
        let mut ctx2 = dev.ctx();
        let rec = Spash::recover(&mut ctx2, SpashConfig::test_default()).unwrap();
        assert_eq!(rec.len(), before);
        let r = rec.verify_integrity(&mut ctx2).unwrap();
        assert_eq!(r.entries, before);
    }
}
