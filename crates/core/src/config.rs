//! Spash configuration, including the ablation switches used by the
//! paper's in-depth analysis (§VI-D, Fig 12).

use std::sync::Arc;

use spash_htm::HtmConfig;

use crate::hotspot::HotnessOracle;

/// How updates decide whether to issue flush instructions (Table I /
/// Fig 12a).
#[derive(Clone)]
pub enum UpdatePolicy {
    /// The paper's adaptive strategy: hot → write-nf; cold ≤64 B →
    /// write-nf; cold >64 B → asynchronous write-f.
    Adaptive(Arc<dyn HotnessOracle>),
    /// "in-place update (w/ flush)": flush after every update.
    AlwaysFlush,
    /// "in-place update (w/o flush)": never flush.
    NeverFlush,
}

impl std::fmt::Debug for UpdatePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdatePolicy::Adaptive(_) => write!(f, "Adaptive"),
            UpdatePolicy::AlwaysFlush => write!(f, "AlwaysFlush"),
            UpdatePolicy::NeverFlush => write!(f, "NeverFlush"),
        }
    }
}

/// Insertion allocation/flush strategy for out-of-place values (Fig 12b).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertPolicy {
    /// Compact small blobs into per-thread XPLine chunks and actively
    /// flush each chunk when it fills (the paper's mechanism, §III-C).
    CompactedFlush,
    /// Compact, but never actively flush (rely on random eviction) —
    /// the "w/o active flush" ablation bar.
    CompactedNoFlush,
    /// No compaction: small blobs are scattered (each insertion goes to a
    /// different XPLine), modelling conventional out-of-place insertion.
    Scattered,
}

/// Concurrency-control variants (Fig 12c).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConcurrencyMode {
    /// The paper's protocol: two-phase HTM with lock fallback.
    Htm,
    /// "Spash (w/ write lock)": per-segment lock serializes writes,
    /// reads stay lock-free (Dash-style).
    WriteLock,
    /// "Spash (w/ write & read lock)": per-segment lock for both reads
    /// and writes (Level-hashing-style).
    WriteReadLock,
}

/// Spash configuration.
#[derive(Clone, Debug)]
pub struct SpashConfig {
    /// Initial directory/segment depth: the table starts with
    /// `2^initial_depth` one-XPLine segments.
    pub initial_depth: u32,
    /// Update flush policy (Table I).
    pub update_policy: UpdatePolicy,
    /// Insertion policy (§III-C).
    pub insert_policy: InsertPolicy,
    /// Concurrency-control variant (§IV).
    pub concurrency: ConcurrencyMode,
    /// Requests executed in a pipelined batch per core (§III-D; the paper
    /// settles on 4).
    pub pipeline_depth: usize,
    /// Transaction conflict retries before falling back to the segment
    /// lock (§IV-A).
    pub max_tx_retries: u32,
    /// Merge a segment into its buddy when it empties (§III-A: "segment
    /// merging is the reverse process of segment splitting").
    pub enable_merge: bool,
    /// Collaborative staged doubling (§IV-B). When disabled, concurrent
    /// splits block behind the doubling thread instead of completing
    /// pending stages themselves — the tail-latency ablation.
    pub collaborative_doubling: bool,
    /// Entries in the DRAM read-through overlay cache in front of hot
    /// buckets (power of two ≥ 8; 0 disables it). The overlay is only
    /// consulted under [`ConcurrencyMode::Htm`] — the lock modes keep
    /// their seqlock/read-lock protocols untouched.
    pub overlay_entries: usize,
    /// Software-HTM geometry.
    pub htm: HtmConfig,
}

impl Default for SpashConfig {
    fn default() -> Self {
        Self {
            initial_depth: 6,
            update_policy: UpdatePolicy::Adaptive(Arc::new(
                crate::hotspot::PartitionedDetector::paper_default(),
            )),
            insert_policy: InsertPolicy::CompactedFlush,
            concurrency: ConcurrencyMode::Htm,
            pipeline_depth: 4,
            max_tx_retries: 8,
            enable_merge: true,
            collaborative_doubling: true,
            overlay_entries: 16384,
            htm: HtmConfig::default(),
        }
    }
}

impl SpashConfig {
    /// A small table for unit tests.
    pub fn test_default() -> Self {
        Self {
            initial_depth: 2,
            ..Self::default()
        }
    }

    /// A copy whose shared *volatile* state is re-created. A plain
    /// `clone()` shares the adaptive hot-key detector through its `Arc`,
    /// so two indexes built from clones train one detector. Crash-sweep
    /// replays (and post-crash recovery, where all volatile state is by
    /// definition lost) must instead start untrained, or hotness-driven
    /// flush decisions — and with them the media-write sequence — diverge
    /// between runs. Custom `Adaptive` detectors are replaced by the
    /// paper-default geometry.
    pub fn fresh_volatile(&self) -> Self {
        let mut c = self.clone();
        if let UpdatePolicy::Adaptive(_) = c.update_policy {
            c.update_policy = UpdatePolicy::Adaptive(Arc::new(
                crate::hotspot::PartitionedDetector::paper_default(),
            ));
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_choices() {
        let c = SpashConfig::default();
        assert_eq!(c.pipeline_depth, 4, "paper §VI-D settles on PD=4");
        assert_eq!(c.concurrency, ConcurrencyMode::Htm);
        assert_eq!(c.insert_policy, InsertPolicy::CompactedFlush);
        assert!(matches!(c.update_policy, UpdatePolicy::Adaptive(_)));
    }

    #[test]
    fn debug_formatting_of_policy() {
        assert_eq!(format!("{:?}", UpdatePolicy::AlwaysFlush), "AlwaysFlush");
        assert_eq!(
            format!(
                "{:?}",
                UpdatePolicy::Adaptive(Arc::new(crate::hotspot::ConstDetector(true)))
            ),
            "Adaptive"
        );
    }
}
