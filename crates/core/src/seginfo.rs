//! The persistent segment-info table that makes metadata-free segments
//! recoverable.
//!
//! Segments carry no header (§III-A), and the directory is volatile, so
//! after a crash *something* persistent must say which prefix/depth each
//! live segment covers. The paper does not spell out its recovery path; we
//! keep one 8-byte record per segment-capable chunk in the allocator's
//! reserved region: `[depth+1:8][prefix:48]`. Records are written inside
//! the same HTM transaction as the split/merge that changes them, so under
//! eADR they are always consistent with the segment contents.
//!
//! This is allocator-side metadata (like the chunk headers), not segment
//! metadata: the hot path never reads it — it costs one extra cacheline
//! write per split/merge, which is already XPLine-bounded.

use spash_htm::{Abort, Tx};
use spash_pmem::{MemCtx, PmAddr};

const DEPTH_SHIFT: u32 = 48;
const PREFIX_MASK: u64 = (1 << 48) - 1;

/// The table. Lives in the allocator's reserved region.
pub struct SegInfoTable {
    base: PmAddr,
    heap_start: u64,
    n_chunks: u64,
}

impl SegInfoTable {
    /// `base`/`len` from [`spash_alloc::PmAllocator::reserved`];
    /// `heap_start`/`n_chunks` from the allocator layout.
    pub fn new(base: PmAddr, len: u64, heap_start: u64, n_chunks: u64) -> Self {
        assert!(
            len >= n_chunks * 8,
            "reserved region too small: need {} bytes for {} chunks, have {len}",
            n_chunks * 8,
            n_chunks
        );
        Self {
            base,
            heap_start,
            n_chunks,
        }
    }

    fn record_addr(&self, seg: PmAddr) -> PmAddr {
        debug_assert!(seg.0 >= self.heap_start);
        let chunk = (seg.0 - self.heap_start) / 256;
        debug_assert!(chunk < self.n_chunks);
        PmAddr(self.base.0 + chunk * 8)
    }

    #[inline]
    fn pack(depth: u8, prefix: u64) -> u64 {
        debug_assert!(prefix <= PREFIX_MASK);
        ((depth as u64) + 1) << DEPTH_SHIFT | prefix
    }

    /// Record `seg` covering `prefix` at `depth`, inside a transaction.
    pub fn tx_set(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut MemCtx,
        seg: PmAddr,
        depth: u8,
        prefix: u64,
    ) -> Result<(), Abort> {
        tx.write_u64(ctx, self.record_addr(seg), Self::pack(depth, prefix))
    }

    /// Clear `seg`'s record (merge/free), inside a transaction.
    pub fn tx_clear(&self, tx: &mut Tx<'_>, ctx: &mut MemCtx, seg: PmAddr) -> Result<(), Abort> {
        tx.write_u64(ctx, self.record_addr(seg), 0)
    }

    /// Non-transactional write (initial format, before concurrency).
    pub fn set(&self, ctx: &mut MemCtx, seg: PmAddr, depth: u8, prefix: u64) {
        ctx.write_u64(self.record_addr(seg), Self::pack(depth, prefix));
    }

    /// Read a segment's record. `None` if the record is absent (the chunk
    /// is not a live segment).
    pub fn read(&self, ctx: &mut MemCtx, seg: PmAddr) -> Option<(u8, u64)> {
        let w = ctx.read_u64(self.record_addr(seg));
        if w == 0 {
            return None;
        }
        Some((((w >> DEPTH_SHIFT) - 1) as u8, w & PREFIX_MASK))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spash_htm::{Htm, HtmConfig};
    use spash_pmem::{PmConfig, PmDevice};

    fn setup() -> (SegInfoTable, MemCtx) {
        let dev = PmDevice::new(PmConfig::small_test());
        let ctx = dev.ctx();
        // Pretend region: base 4096, heap at 1 MiB, 1000 chunks.
        let t = SegInfoTable::new(PmAddr(4096), 8000, 1 << 20, 1000);
        (t, ctx)
    }

    #[test]
    fn set_read_roundtrip() {
        let (t, mut ctx) = setup();
        let seg = PmAddr((1 << 20) + 7 * 256);
        assert_eq!(t.read(&mut ctx, seg), None);
        t.set(&mut ctx, seg, 0, 0);
        assert_eq!(t.read(&mut ctx, seg), Some((0, 0)), "depth 0 distinguishable from empty");
        t.set(&mut ctx, seg, 9, 0b1_0110_1001);
        assert_eq!(t.read(&mut ctx, seg), Some((9, 0b1_0110_1001)));
    }

    #[test]
    fn tx_set_rolls_back_on_abort() {
        let (t, mut ctx) = setup();
        let htm = Htm::new(HtmConfig::default());
        let seg = PmAddr((1 << 20) + 3 * 256);
        t.set(&mut ctx, seg, 2, 0b11);
        let r: Result<(), Abort> = htm.try_transaction(&mut ctx, |tx, ctx| {
            t.tx_set(tx, ctx, seg, 3, 0b110)?;
            tx.abort(0)
        });
        assert!(r.is_err());
        assert_eq!(t.read(&mut ctx, seg), Some((2, 0b11)));
        htm.try_transaction(&mut ctx, |tx, ctx| t.tx_set(tx, ctx, seg, 3, 0b110))
            .unwrap();
        assert_eq!(t.read(&mut ctx, seg), Some((3, 0b110)));
    }

    #[test]
    fn clear_removes_record() {
        let (t, mut ctx) = setup();
        let htm = Htm::new(HtmConfig::default());
        let seg = PmAddr(1 << 20);
        t.set(&mut ctx, seg, 4, 0b1010);
        htm.try_transaction(&mut ctx, |tx, ctx| t.tx_clear(tx, ctx, seg))
            .unwrap();
        assert_eq!(t.read(&mut ctx, seg), None);
    }

    #[test]
    #[should_panic(expected = "reserved region too small")]
    fn rejects_undersized_region() {
        let _ = SegInfoTable::new(PmAddr(4096), 100, 1 << 20, 1000);
    }
}
