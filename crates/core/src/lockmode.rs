//! Lock-based operation paths.
//!
//! Two distinct things live here:
//!
//! 1. **Fallback bodies** for the HTM mode (§IV-A): when an operation
//!    exceeds its conflict-retry budget it takes the routed directory
//!    partition's non-transactional lock and runs these plain versions.
//!    Mutual exclusion holds because every transaction read-guards its
//!    routed partition.
//!
//! 2. **Ablation protocols** for Fig 12c: `WriteLock` serializes writers
//!    per segment but keeps optimistic (seqlock) readers — Dash's
//!    protocol; `WriteReadLock` takes the per-segment lock for reads too —
//!    Level hashing's protocol. Both use virtual-time locks so contention
//!    scales the way the paper's lock-based baselines do.

use std::sync::atomic::Ordering;

use spash_index_api::{hash_key, IndexError};
use spash_pmem::{MemCtx, PmAddr};

use crate::config::UpdatePolicy;
use crate::ops::{Found, Payload, Placement, Spash};
use crate::slot::{
    bucket_of, bucket_slots, fp14, fp8, key_addr, make_hint, value_addr, value_word, SlotKey,
    INLINE_VALUE_LEN, SLOTS_PER_BUCKET,
};

impl Spash {
    // =====================================================================
    // plain bodies used under a held lock (HTM fallback path)
    // =====================================================================

    /// Insert body under a held partition lock. `None` = segment full
    /// (split required), `Some(false)` = duplicate, `Some(true)` = done.
    pub(crate) fn locked_insert(
        &self,
        ctx: &mut MemCtx,
        seg: PmAddr,
        key: u64,
        h: u64,
        kw_new: u64,
        vw_payload: u64,
    ) -> Option<bool> {
        if self.find_in_segment(ctx, seg, key, h).is_some() {
            return Some(false);
        }
        match self.find_placement(ctx, seg, h) {
            Placement::Full => None,
            Placement::Main(idx) => {
                let vw = ctx.read_u64(value_addr(seg, idx));
                ctx.write_u64(value_addr(seg, idx), value_word::with_payload(vw, vw_payload));
                ctx.write_u64(key_addr(seg, idx), kw_new);
                self.fptable.set_slot_tag(ctx, seg, idx, fp8(h));
                self.overlay.nt_bump(ctx, seg);
                Some(true)
            }
            Placement::Overflow { idx, hint_slot } => {
                let vw = ctx.read_u64(value_addr(seg, idx));
                ctx.write_u64(value_addr(seg, idx), value_word::with_payload(vw, vw_payload));
                ctx.write_u64(key_addr(seg, idx), kw_new);
                let hvw = ctx.read_u64(value_addr(seg, hint_slot));
                ctx.write_u64(
                    value_addr(seg, hint_slot),
                    value_word::with_hint(hvw, make_hint(h, idx)),
                );
                self.fptable.set_slot_tag(ctx, seg, idx, fp8(h));
                self.fptable.set_hint_tag(ctx, seg, hint_slot, fp8(h));
                self.overlay.nt_bump(ctx, seg);
                Some(true)
            }
        }
    }

    /// Remove body under a held lock. Returns the removed words.
    pub(crate) fn locked_remove(
        &self,
        ctx: &mut MemCtx,
        seg: PmAddr,
        key: u64,
        h: u64,
    ) -> Option<(u64, u64)> {
        let f = self.find_in_segment(ctx, seg, key, h)?;
        ctx.write_u64(key_addr(seg, f.idx), 0);
        self.fptable.set_slot_tag(ctx, seg, f.idx, 0);
        let b = bucket_of(h);
        if f.idx / SLOTS_PER_BUCKET != b {
            let target_hint = make_hint(h, f.idx);
            for s in bucket_slots(b) {
                let vw = ctx.read_u64(value_addr(seg, s));
                if value_word::hint(vw) == target_hint {
                    ctx.write_u64(value_addr(seg, s), value_word::with_hint(vw, 0));
                    self.fptable.set_hint_tag(ctx, seg, s, 0);
                    break;
                }
            }
        }
        self.overlay.nt_bump(ctx, seg);
        Some((f.kw, f.vw))
    }

    // =====================================================================
    // Fig 12c ablation protocols
    // =====================================================================

    /// Insert under the per-segment write lock (both lock modes).
    pub(crate) fn insert_lockmode(
        &self,
        ctx: &mut MemCtx,
        key: u64,
        value: &[u8],
    ) -> Result<(), IndexError> {
        let h = hash_key(key);
        let payload = self.make_payload(ctx, key, value)?;
        let (kw_new, vw_payload) = match payload {
            Payload::Inline(v) => (SlotKey::Inline { key, fp: fp14(h) }.pack(), v),
            Payload::Blob { addr, val_len, .. } => {
                (SlotKey::Ptr { addr, fp: fp14(h) }.pack(), val_len)
            }
        };
        loop {
            let routed = self.dir.lookup(ctx, h);
            let seg = routed.seg();
            let lock = self.seg_lock(seg);
            let outcome = lock.rw.write(ctx, |ctx, _| {
                // Re-route under the lock: a concurrent split may have
                // moved the keys.
                let routed2 = self.dir.lookup(ctx, h);
                if routed2.seg() != seg {
                    return Err(()); // retry
                }
                lock.ver.fetch_add(1, Ordering::AcqRel); // seqlock: odd
                let r = self.locked_insert(ctx, seg, key, h, kw_new, vw_payload);
                lock.ver.fetch_add(1, Ordering::AcqRel); // even
                Ok(r)
            });
            match outcome {
                Err(()) => continue,
                Ok(None) => {
                    self.split(ctx, h)?;
                    continue;
                }
                Ok(Some(false)) => {
                    self.free_payload(ctx, &payload);
                    return Err(IndexError::DuplicateKey);
                }
                Ok(Some(true)) => {
                    self.entries.fetch_add(1, Ordering::Relaxed);
                    if let Payload::Blob {
                        flush_chunk: Some(c),
                        ..
                    } = payload
                    {
                        // Same ADR elision as `tx_insert`: the downgrade in
                        // `make_payload` already persisted the blobs, the
                        // chunk is clean.
                        if self.cfg.insert_policy == crate::config::InsertPolicy::CompactedFlush
                            && ctx.device().config().domain
                                == spash_pmem::PersistenceDomain::Eadr
                        {
                            ctx.flush_range(c, spash_alloc::CHUNK);
                        }
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Lookup with optimistic seqlock readers (`WriteLock` mode).
    pub(crate) fn get_seqlock(&self, ctx: &mut MemCtx, key: u64, out: &mut Vec<u8>) -> bool {
        let h = hash_key(key);
        loop {
            let routed = self.dir.lookup(ctx, h);
            let seg = routed.seg();
            let lock = self.seg_lock(seg);
            let v1 = lock.ver.load(Ordering::Acquire);
            if v1 % 2 == 1 {
                // Writer in progress: scheduler-aware wait.
                spash_pmem::schedhook::spin_wait();
                continue;
            }
            let found = self.find_in_segment(ctx, seg, key, h);
            let val = found.map(|f| self.read_value_plain_pub(ctx, f));
            let v2 = lock.ver.load(Ordering::Acquire);
            if v1 != v2 {
                ctx.charge_compute(20); // retry penalty
                continue;
            }
            // Validate routing too (split may have moved the segment).
            if self.dir.lookup(ctx, h).seg() != seg {
                continue;
            }
            return match val {
                None => false,
                Some(v) => {
                    v.append_to(out);
                    true
                }
            };
        }
    }

    /// Lookup under the shared read lock (`WriteReadLock` mode).
    pub(crate) fn get_readlock(&self, ctx: &mut MemCtx, key: u64, out: &mut Vec<u8>) -> bool {
        let h = hash_key(key);
        loop {
            let routed = self.dir.lookup(ctx, h);
            let seg = routed.seg();
            let lock = self.seg_lock(seg);
            let r = lock.rw.read(ctx, |ctx, _| {
                if self.dir.lookup(ctx, h).seg() != seg {
                    return Err(());
                }
                Ok(self.find_in_segment(ctx, seg, key, h).map(|f| self.read_value_plain_pub(ctx, f)))
            });
            match r {
                Err(()) => continue,
                Ok(None) => return false,
                Ok(Some(v)) => {
                    v.append_to(out);
                    return true;
                }
            }
        }
    }

    /// Update under the per-segment write lock.
    pub(crate) fn update_lockmode(
        &self,
        ctx: &mut MemCtx,
        key: u64,
        value: &[u8],
    ) -> Result<(), IndexError> {
        let h = hash_key(key);
        let flush_after = match &self.cfg.update_policy {
            UpdatePolicy::Adaptive(det) => {
                let hot = det.access(ctx, h);
                !hot && value.len() > 64
            }
            UpdatePolicy::AlwaysFlush => true,
            UpdatePolicy::NeverFlush => false,
        };
        let inline_ok = value.len() == INLINE_VALUE_LEN && key <= crate::slot::MAX_INLINE_KEY;
        loop {
            let routed = self.dir.lookup(ctx, h);
            let seg = routed.seg();
            let lock = self.seg_lock(seg);
            enum Out {
                Retry,
                NotFound,
                Done { flush: Option<(PmAddr, u64)>, free: Option<(PmAddr, u64)> },
            }
            let r = lock.rw.write(ctx, |ctx, _| {
                if self.dir.lookup(ctx, h).seg() != seg {
                    return Out::Retry;
                }
                let f = match self.find_in_segment(ctx, seg, key, h) {
                    None => return Out::NotFound,
                    Some(f) => f,
                };
                lock.ver.fetch_add(1, Ordering::AcqRel);
                let out = self.locked_apply_update(ctx, seg, f, key, h, value, inline_ok);
                lock.ver.fetch_add(1, Ordering::AcqRel);
                match out {
                    Ok((flush, free)) => Out::Done { flush, free },
                    Err(_) => Out::Retry,
                }
            });
            match r {
                Out::Retry => continue,
                Out::NotFound => return Err(IndexError::NotFound),
                Out::Done { flush, free } => {
                    if flush_after {
                        if let Some((a, l)) = flush {
                            ctx.flush_range(a, l);
                        }
                    }
                    if let Some((a, s)) = free {
                        self.alloc.free(ctx, a, s);
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Apply an update in place under a held write lock. Returns
    /// (flush range, blob to free).
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn locked_apply_update(
        &self,
        ctx: &mut MemCtx,
        seg: PmAddr,
        f: Found,
        key: u64,
        h: u64,
        value: &[u8],
        inline_ok: bool,
    ) -> Result<(Option<(PmAddr, u64)>, Option<(PmAddr, u64)>), IndexError> {
        let mut inline_payload = 0u64;
        if inline_ok {
            let mut le = [0u8; 8];
            le[..INLINE_VALUE_LEN].copy_from_slice(value);
            inline_payload = u64::from_le_bytes(le);
        }
        match SlotKey::unpack(f.kw) {
            SlotKey::Inline { .. } if inline_ok => {
                ctx.write_u64(
                    value_addr(seg, f.idx),
                    value_word::with_payload(f.vw, inline_payload),
                );
                self.overlay.nt_bump(ctx, seg);
                Ok((Some((value_addr(seg, f.idx), 8)), None))
            }
            SlotKey::Ptr { addr, .. } if inline_ok => {
                let old_size = self.blob_alloc_size(16 + value_word::payload(f.vw));
                ctx.write_u64(key_addr(seg, f.idx), SlotKey::Inline { key, fp: fp14(h) }.pack());
                ctx.write_u64(
                    value_addr(seg, f.idx),
                    value_word::with_payload(f.vw, inline_payload),
                );
                self.overlay.nt_bump(ctx, seg);
                Ok((Some((value_addr(seg, f.idx), 8)), Some((addr, old_size))))
            }
            SlotKey::Ptr { addr, .. } => {
                let old_len = value_word::payload(f.vw);
                let old_size = self.blob_alloc_size(16 + old_len);
                let new_size = self.blob_alloc_size(16 + value.len() as u64);
                if old_size == new_size {
                    ctx.write_bytes(PmAddr(addr.0 + 16), value);
                    if old_len != value.len() as u64 {
                        ctx.write_u64(PmAddr(addr.0 + 8), value.len() as u64);
                        ctx.write_u64(
                            value_addr(seg, f.idx),
                            value_word::with_payload(f.vw, value.len() as u64),
                        );
                        // Cached value word went stale (blob bytes are
                        // never cached, so same-length rewrites skip this).
                        self.overlay.nt_bump(ctx, seg);
                    }
                    Ok((Some((addr, 16 + value.len() as u64)), None))
                } else {
                    let a = self
                        .alloc
                        .alloc(ctx, new_size)
                        .map_err(|_| IndexError::OutOfMemory)?;
                    ctx.write_u64(a.addr, key);
                    ctx.write_u64(PmAddr(a.addr.0 + 8), value.len() as u64);
                    ctx.write_bytes(PmAddr(a.addr.0 + 16), value);
                    ctx.write_u64(
                        key_addr(seg, f.idx),
                        SlotKey::Ptr {
                            addr: a.addr,
                            fp: fp14(h),
                        }
                        .pack(),
                    );
                    ctx.write_u64(
                        value_addr(seg, f.idx),
                        value_word::with_payload(f.vw, value.len() as u64),
                    );
                    self.overlay.nt_bump(ctx, seg);
                    Ok((
                        Some((a.addr, 16 + value.len() as u64)),
                        Some((addr, old_size)),
                    ))
                }
            }
            SlotKey::Inline { .. } => {
                let a = self
                    .alloc
                    .alloc(ctx, self.blob_alloc_size(16 + value.len() as u64))
                    .map_err(|_| IndexError::OutOfMemory)?;
                ctx.write_u64(a.addr, key);
                ctx.write_u64(PmAddr(a.addr.0 + 8), value.len() as u64);
                ctx.write_bytes(PmAddr(a.addr.0 + 16), value);
                ctx.write_u64(
                    key_addr(seg, f.idx),
                    SlotKey::Ptr {
                        addr: a.addr,
                        fp: fp14(h),
                    }
                    .pack(),
                );
                ctx.write_u64(
                    value_addr(seg, f.idx),
                    value_word::with_payload(f.vw, value.len() as u64),
                );
                self.overlay.nt_bump(ctx, seg);
                Ok((Some((a.addr, 16 + value.len() as u64)), None))
            }
            SlotKey::Empty => unreachable!("found slot cannot be empty"),
        }
    }

    /// Remove under the per-segment write lock.
    pub(crate) fn remove_lockmode(&self, ctx: &mut MemCtx, key: u64) -> bool {
        let h = hash_key(key);
        loop {
            let routed = self.dir.lookup(ctx, h);
            let seg = routed.seg();
            let lock = self.seg_lock(seg);
            enum Out {
                Retry,
                Miss,
                Hit(u64, u64),
            }
            let r = lock.rw.write(ctx, |ctx, _| {
                if self.dir.lookup(ctx, h).seg() != seg {
                    return Out::Retry;
                }
                lock.ver.fetch_add(1, Ordering::AcqRel);
                let out = self.locked_remove(ctx, seg, key, h);
                lock.ver.fetch_add(1, Ordering::AcqRel);
                match out {
                    None => Out::Miss,
                    Some((kw, vw)) => Out::Hit(kw, vw),
                }
            });
            match r {
                Out::Retry => continue,
                Out::Miss => return false,
                Out::Hit(kw, vw) => {
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    if let SlotKey::Ptr { addr, .. } = SlotKey::unpack(kw) {
                        let size = self.blob_alloc_size(16 + value_word::payload(vw));
                        self.alloc.free(ctx, addr, size);
                    }
                    return true;
                }
            }
        }
    }
}
