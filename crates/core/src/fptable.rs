//! The persistent per-bucket fingerprint sidecar table.
//!
//! Segments are headerless 256-byte XPLines with no spare bits, so the
//! 8-bit probe tags live in a sidecar in the allocator's reserved region,
//! right after the [`crate::seginfo`] records: four packed
//! [`crate::slot::fp_word`] words (32 bytes) per segment-capable chunk,
//! one word per bucket. A probe reads exactly one sidecar word — half a
//! cacheline shared with the buddy chunk — and only touches the bucket
//! line when a tag byte matches.
//!
//! Tags are *hints*: the slot key words stay authoritative, every tag
//! match is re-verified against the slot, and recovery rebuilds the whole
//! table from the slots ([`rebuild_words`]), healing any tag torn by a
//! crash. That is also why the live paths may keep the table *exactly*
//! equal to the rebuild rule (checked by the integrity walker): a torn
//! tag can only exist transiently between a crash and recovery.
//!
//! Under the [`crate::testhooks::fp_wrong_tag`] mutation every tag
//! *stored* through this table is corrupted while probes keep computing
//! the true tag — the canary the oracle battery must catch.

use crate::slot::{
    self, bucket_of, bucket_slots, fp8, fp_word, hint_matches, value_word, SlotKey,
    BUCKETS_PER_SEG, SEG_SIZE,
};
use spash_htm::{Abort, Tx};
use spash_pmem::{MemCtx, PmAddr};

/// Sidecar bytes per segment-capable chunk: one u64 per bucket.
pub const FP_BYTES_PER_SEG: u64 = BUCKETS_PER_SEG as u64 * 8;

/// Corrupt a tag on its way into the table when the wrong-tag mutation is
/// armed. XOR 0x55 remapped away from 0 so an occupied slot still looks
/// occupied — the breakage is a *wrong* tag (false negatives), not a
/// spuriously empty one. Also applied by the split planner's image
/// builder so the canary covers tag writes on every path.
#[inline]
pub(crate) fn stored_tag(tag: u8) -> u8 {
    if tag != 0 && crate::testhooks::fp_wrong_tag() {
        let t = tag ^ 0x55;
        if t == 0 {
            0xff
        } else {
            t
        }
    } else {
        tag
    }
}

/// The table. Lives in the allocator's reserved region, after the
/// seginfo records.
pub struct FpTable {
    base: PmAddr,
    heap_start: u64,
    n_chunks: u64,
}

impl FpTable {
    /// `base` is the first byte after the seginfo records; `len` the
    /// remaining reserved bytes.
    pub fn new(base: PmAddr, len: u64, heap_start: u64, n_chunks: u64) -> Self {
        assert!(
            len >= n_chunks * FP_BYTES_PER_SEG,
            "reserved region too small for fp sidecar: need {} bytes for {} chunks, have {len}",
            n_chunks * FP_BYTES_PER_SEG,
            n_chunks
        );
        Self {
            base,
            heap_start,
            n_chunks,
        }
    }

    /// Address of bucket `b`'s fp word for segment `seg`.
    #[inline]
    pub fn word_addr(&self, seg: PmAddr, b: u8) -> PmAddr {
        debug_assert!(seg.0 >= self.heap_start && b < BUCKETS_PER_SEG);
        let chunk = (seg.0 - self.heap_start) / SEG_SIZE;
        debug_assert!(chunk < self.n_chunks);
        PmAddr(self.base.0 + chunk * FP_BYTES_PER_SEG + b as u64 * 8)
    }

    /// Plain read of bucket `b`'s fp word.
    #[inline]
    pub fn read(&self, ctx: &mut MemCtx, seg: PmAddr, b: u8) -> u64 {
        ctx.read_u64(self.word_addr(seg, b))
    }

    /// Transactional read of bucket `b`'s fp word. Joining the read set
    /// here is load-bearing: every insert/remove touching the bucket
    /// writes this word, so a fingerprint-filtered lookup that never
    /// reads a bucket line still conflicts with concurrent mutators.
    #[inline]
    pub fn tx_read(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut MemCtx,
        seg: PmAddr,
        b: u8,
    ) -> Result<u64, Abort> {
        tx.read_u64(ctx, self.word_addr(seg, b))
    }

    /// Transactionally set the slot tag of slot `idx` (clearing: `tag`
    /// 0). The bucket is implied by the slot index.
    pub fn tx_set_slot_tag(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut MemCtx,
        seg: PmAddr,
        idx: u8,
        tag: u8,
    ) -> Result<(), Abort> {
        let (b, j) = (idx / 4, idx % 4);
        let w = tx.read_u64(ctx, self.word_addr(seg, b))?;
        tx.write_u64(
            ctx,
            self.word_addr(seg, b),
            fp_word::with_slot_tag(w, j, stored_tag(tag)),
        )
    }

    /// Transactionally set the hint tag riding value word `idx` of bucket
    /// `idx/4` (clearing: `tag` 0).
    pub fn tx_set_hint_tag(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut MemCtx,
        seg: PmAddr,
        idx: u8,
        tag: u8,
    ) -> Result<(), Abort> {
        let (b, j) = (idx / 4, idx % 4);
        let w = tx.read_u64(ctx, self.word_addr(seg, b))?;
        tx.write_u64(
            ctx,
            self.word_addr(seg, b),
            fp_word::with_hint_tag(w, j, stored_tag(tag)),
        )
    }

    /// Plain (non-transactional) slot-tag write, for the lock-mode and
    /// HTM-fallback paths that mutate under a partition/segment lock.
    ///
    /// A tag torn by an ADR crash here is provably benign, so the write
    /// is declared a recovery don't-care for the ordering sanitizer:
    /// tags are probe *hints* — the slot key word stays authoritative
    /// for every membership decision — and recovery rebuilds the whole
    /// fp sidecar from the slots before the index serves a request.
    pub fn set_slot_tag(&self, ctx: &mut MemCtx, seg: PmAddr, idx: u8, tag: u8) {
        let (b, j) = (idx / 4, idx % 4);
        let a = self.word_addr(seg, b);
        let w = ctx.read_u64(a);
        ctx.write_u64(a, fp_word::with_slot_tag(w, j, stored_tag(tag)));
        // lint:allow(flow-flush-fence): slot tag bytes are rebuilt from the segment scan on recovery; dynamically forgiven at this site. san=fptable::set_slot_tag
        ctx.san_forgive(a, 8);
    }

    /// Plain hint-tag write (see [`Self::set_slot_tag`], including the
    /// torn-tag benignity argument behind the `san_forgive`).
    pub fn set_hint_tag(&self, ctx: &mut MemCtx, seg: PmAddr, idx: u8, tag: u8) {
        let (b, j) = (idx / 4, idx % 4);
        let a = self.word_addr(seg, b);
        let w = ctx.read_u64(a);
        ctx.write_u64(a, fp_word::with_hint_tag(w, j, stored_tag(tag)));
        // lint:allow(flow-flush-fence): hint tag bytes are rebuilt from the segment scan on recovery; dynamically forgiven at this site. san=fptable::set_hint_tag
        ctx.san_forgive(a, 8);
    }

    /// Plain whole-word write (format, split image installation,
    /// recovery rebuild). Same torn-tag benignity argument as
    /// [`Self::set_slot_tag`].
    pub fn write_word(&self, ctx: &mut MemCtx, seg: PmAddr, b: u8, word: u64) {
        ctx.write_u64(self.word_addr(seg, b), word);
        // lint:allow(flow-flush-fence): the fingerprint word is a DRAM-overlay-backed cache rebuilt on recovery; dynamically forgiven at this site. san=fptable::write_word
        ctx.san_forgive(self.word_addr(seg, b), 8);
    }

    /// Transactional whole-word write (HTM split installing a child
    /// image's fp words).
    pub fn tx_write_word(
        &self,
        tx: &mut Tx<'_>,
        ctx: &mut MemCtx,
        seg: PmAddr,
        b: u8,
        word: u64,
    ) -> Result<(), Abort> {
        tx.write_u64(ctx, self.word_addr(seg, b), word)
    }
}

/// The rebuild rule: the four fp words a segment's slots imply. This pure
/// function is the single source of truth shared by recovery (which
/// applies it) and the integrity walker (which checks the live table
/// against it exactly).
///
/// `hash_of_kw` resolves a key word to its key hash — inline keys hash
/// directly; `Ptr` keys need the blob's key read from PM, which the
/// caller owns (it also lets the walker reuse hashes it already read).
/// The rule ignores the wrong-tag mutation by construction (tags are
/// *computed*, not copied), which is exactly why recovery heals the
/// canary's corruption and the walker catches it.
pub fn rebuild_words(
    words: &[(u64, u64); 16],
    mut hash_of_kw: impl FnMut(u64) -> Option<u64>,
) -> [u64; 4] {
    let mut fp = [0u64; 4];
    for b in 0..BUCKETS_PER_SEG {
        for (j, idx) in bucket_slots(b).enumerate() {
            let (kw, vw) = words[idx as usize];
            // Slot tag: fp8 of the resident key.
            if !SlotKey::unpack(kw).is_empty() {
                if let Some(h) = hash_of_kw(kw) {
                    fp[b as usize] = fp_word::with_slot_tag(fp[b as usize], j as u8, fp8(h));
                }
            }
            // Hint tag: fp8 of the overflow key this bucket's hint points
            // at, provided the hint is live — target occupied, fp12
            // match, main bucket is `b`, and the target actually overflows
            // (sits outside `b`). Anything else is a stale hint slot.
            let hint = value_word::hint(vw);
            if hint == 0 {
                continue;
            }
            let t = (hint & 0xf) as u8;
            let (tkw, _) = words[t as usize];
            if SlotKey::unpack(tkw).is_empty() || t / 4 == b {
                continue;
            }
            if let Some(th) = hash_of_kw(tkw) {
                if hint_matches(hint, th) == Some(t) && bucket_of(th) == b {
                    fp[b as usize] = fp_word::with_hint_tag(fp[b as usize], j as u8, fp8(th));
                }
            }
        }
    }
    fp
}

/// Convenience: rebuild and install one segment's fp words from its
/// current slot contents, reading blob keys through `ctx`. Used by
/// recovery and by the locked split path.
pub fn rebuild_segment(table: &FpTable, ctx: &mut MemCtx, seg: PmAddr) {
    let mut words = [(0u64, 0u64); 16];
    for idx in 0..slot::SLOTS_PER_SEG {
        words[idx as usize] = (
            ctx.read_u64(slot::key_addr(seg, idx)),
            ctx.read_u64(slot::value_addr(seg, idx)),
        );
    }
    let fp = rebuild_words(&words, |kw| match SlotKey::unpack(kw) {
        SlotKey::Empty => None,
        SlotKey::Inline { key, .. } => Some(spash_index_api::hash_key(key)),
        SlotKey::Ptr { addr, .. } => Some(spash_index_api::hash_key(ctx.read_u64(addr))),
    });
    for b in 0..BUCKETS_PER_SEG {
        table.write_word(ctx, seg, b, fp[b as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spash_index_api::hash_key;

    fn seg_words_with(entries: &[(u8, u64)]) -> [(u64, u64); 16] {
        // entries: (slot idx, inline key)
        let mut words = [(0u64, 0u64); 16];
        for &(idx, key) in entries {
            let h = hash_key(key);
            words[idx as usize].0 = SlotKey::Inline { key, fp: slot::fp14(h) }.pack();
        }
        words
    }

    fn inline_hash(kw: u64) -> Option<u64> {
        match SlotKey::unpack(kw) {
            SlotKey::Empty => None,
            SlotKey::Inline { key, .. } => Some(hash_key(key)),
            SlotKey::Ptr { .. } => unreachable!("test uses inline keys only"),
        }
    }

    /// An inline key whose hash lands in bucket `b`.
    fn key_in_bucket(b: u8, salt: u64) -> u64 {
        (0..).map(|i| salt * 1000 + i).find(|&k| bucket_of(hash_key(k)) == b).unwrap()
    }

    #[test]
    fn rebuild_sets_slot_tags_for_occupied_slots() {
        let k0 = key_in_bucket(0, 1);
        let k2 = key_in_bucket(2, 2);
        let words = seg_words_with(&[(0, k0), (9, k2)]);
        let fp = rebuild_words(&words, inline_hash);
        assert_eq!(fp_word::slot_tag(fp[0], 0), fp8(hash_key(k0)));
        assert_eq!(fp_word::slot_tag(fp[2], 1), fp8(hash_key(k2)));
        assert_eq!(fp[1], 0);
        assert_eq!(fp[3], 0);
    }

    #[test]
    fn rebuild_sets_hint_tags_for_live_overflow_hints() {
        // Overflow key with main bucket 0, stored in slot 6 (bucket 1);
        // the hint rides value word 2 of bucket 0.
        let ko = key_in_bucket(0, 3);
        let ho = hash_key(ko);
        let mut words = seg_words_with(&[(6, ko)]);
        words[2].1 = value_word::with_hint(0, slot::make_hint(ho, 6));
        let fp = rebuild_words(&words, inline_hash);
        assert_eq!(fp_word::hint_tag(fp[0], 2), fp8(ho), "live hint tagged");
        assert_eq!(fp_word::slot_tag(fp[1], 2), fp8(ho), "overflow slot tagged too");
    }

    #[test]
    fn rebuild_ignores_stale_hints() {
        let ko = key_in_bucket(0, 4);
        let ho = hash_key(ko);
        // Hint to an *empty* slot.
        let mut words = [(0u64, 0u64); 16];
        words[1].1 = value_word::with_hint(0, slot::make_hint(ho, 6));
        assert_eq!(rebuild_words(&words, inline_hash)[0], 0);
        // Hint whose target sits in the main bucket itself (not overflow).
        let mut words = seg_words_with(&[(2, ko)]);
        words[1].1 = value_word::with_hint(0, slot::make_hint(ho, 2));
        assert_eq!(fp_word::hint_tag(rebuild_words(&words, inline_hash)[0], 1), 0);
    }

    #[test]
    fn membership_filter_is_complete_for_rebuilt_words() {
        // Every key reachable in the segment (main slot or hint) must
        // match its main bucket's fp word.
        let k_main = key_in_bucket(1, 5);
        let k_over = key_in_bucket(1, 6);
        let mut words = seg_words_with(&[(5, k_main), (10, k_over)]);
        let ho = hash_key(k_over);
        words[4].1 = value_word::with_hint(words[4].1, slot::make_hint(ho, 10));
        let fp = rebuild_words(&words, inline_hash);
        assert!(fp_word::any_match(fp[1], fp8(hash_key(k_main))));
        assert!(fp_word::any_match(fp[1], fp8(ho)));
    }
}
