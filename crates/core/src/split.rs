//! Fine-grained segment split and merge (paper §III-A, Fig 3).
//!
//! A split rehashes one 256-byte segment into two (occasionally more, see
//! below) children one prefix bit deeper, rewrites the parent in place as
//! the first child, repoints the covering directory entries, and records
//! the children in the segment-info table — all inside **one** HTM
//! transaction, so concurrent operations either see the old segment or the
//! new ones, never a mixture. The footprint is a handful of cachelines:
//! exactly why fine-grained (XPLine-sized) segments are HTM-compatible
//! where CCEH's 16 KiB segments are not (§III-A).
//!
//! **Recursive planning.** A child may itself be unplaceable (e.g. ≥5
//! entries of one bucket would need more overflow hints than a bucket can
//! hold); the planner then splits that child again, producing children of
//! unequal depth. Plans are computed in DRAM during preparation; the
//! transaction only writes the final images.
//!
//! **Merge** is the reverse: a segment that empties is folded into its
//! buddy (same parent, same depth) by repointing its directory entries.

use std::sync::atomic::Ordering;

use spash_htm::Abort;
use spash_index_api::{hash_key, IndexError};
use spash_pmem::{MemCtx, PmAddr};

use crate::dir::{pack_entry, unpack_entry};
use crate::ops::{Spash, AB_STATE_CHANGED};
use crate::slot::{
    bucket_of, bucket_slots, fp8, fp_word, key_addr, make_hint, probe_order, value_word,
    SlotKey, BUCKETS_PER_SEG, SLOTS_PER_SEG,
};

/// One live entry being rehashed: (key word, value payload, key hash).
pub(crate) type SplitEntry = (u64, u64, u64);

/// A 256-byte segment image built in DRAM, together with the fingerprint
/// sidecar words its slots imply (installed alongside the image, so a
/// freshly split child's fp table is exact from the first probe).
#[derive(Clone)]
pub(crate) struct SegImage {
    pub words: [u64; 32],
    pub fp: [u64; BUCKETS_PER_SEG as usize],
}

impl SegImage {
    pub fn empty() -> Self {
        Self {
            words: [0; 32],
            fp: [0; BUCKETS_PER_SEG as usize],
        }
    }

    fn kw(&self, idx: u8) -> u64 {
        self.words[idx as usize * 2]
    }

    fn set_kw(&mut self, idx: u8, w: u64) {
        self.words[idx as usize * 2] = w;
    }

    fn vw(&self, idx: u8) -> u64 {
        self.words[idx as usize * 2 + 1]
    }

    fn set_vw(&mut self, idx: u8, w: u64) {
        self.words[idx as usize * 2 + 1] = w;
    }

    /// Place an entry using the same rules as a live insert: main bucket
    /// first, else circular probing plus an overflow hint. Returns false
    /// when the entry cannot be placed (forces a deeper split).
    pub fn place(&mut self, kw: u64, vw_payload: u64, h: u64) -> bool {
        let b = bucket_of(h);
        let tag = crate::fptable::stored_tag(fp8(h));
        for s in bucket_slots(b) {
            if SlotKey::unpack(self.kw(s)).is_empty() {
                self.set_kw(s, kw);
                self.set_vw(s, value_word::with_payload(self.vw(s), vw_payload));
                self.fp[b as usize] = fp_word::with_slot_tag(self.fp[b as usize], s % 4, tag);
                return true;
            }
        }
        let hint_slot = match bucket_slots(b).find(|&s| value_word::hint(self.vw(s)) == 0) {
            Some(s) => s,
            None => return false,
        };
        for &ob in &probe_order(b)[1..] {
            for s in bucket_slots(ob) {
                if SlotKey::unpack(self.kw(s)).is_empty() {
                    self.set_kw(s, kw);
                    self.set_vw(s, value_word::with_payload(self.vw(s), vw_payload));
                    let hv = self.vw(hint_slot);
                    self.set_vw(hint_slot, value_word::with_hint(hv, make_hint(h, s)));
                    self.fp[ob as usize] =
                        fp_word::with_slot_tag(self.fp[ob as usize], s % 4, tag);
                    self.fp[b as usize] =
                        fp_word::with_hint_tag(self.fp[b as usize], hint_slot % 4, tag);
                    return true;
                }
            }
        }
        false
    }

    /// Number of live entries in the image (used by tests/diagnostics).
    #[allow(dead_code)]
    pub fn live(&self) -> u32 {
        (0..SLOTS_PER_SEG)
            .filter(|&s| !SlotKey::unpack(self.kw(s)).is_empty())
            .count() as u32
    }
}

/// A planned child segment.
pub(crate) struct ChildPlan {
    pub depth: u8,
    pub prefix: u64,
    pub image: SegImage,
}

/// How many extra prefix bits a single split may consume before giving up
/// (astronomically unlikely to be hit with a bijective hash).
const MAX_EXTRA_DEPTH: u8 = 10;

/// Plan the split of a segment at `depth` covering `prefix`.
pub(crate) fn plan_split(
    entries: &[SplitEntry],
    depth: u8,
    prefix: u64,
) -> Result<Vec<ChildPlan>, IndexError> {
    let mut out = Vec::with_capacity(2);
    plan_rec(entries, depth, prefix, depth + MAX_EXTRA_DEPTH, &mut out)?;
    Ok(out)
}

fn plan_rec(
    entries: &[SplitEntry],
    depth: u8,
    prefix: u64,
    cap: u8,
    out: &mut Vec<ChildPlan>,
) -> Result<(), IndexError> {
    if depth >= cap || depth >= 56 {
        return Err(IndexError::OutOfMemory);
    }
    let bit = |h: u64| (h >> (63 - depth)) & 1;
    for side in 0..2u64 {
        let subset: Vec<SplitEntry> = entries
            .iter()
            .copied()
            .filter(|&(_, _, h)| bit(h) == side)
            .collect();
        let child_prefix = prefix << 1 | side;
        match try_pack(&subset) {
            Some(image) => out.push(ChildPlan {
                depth: depth + 1,
                prefix: child_prefix,
                image,
            }),
            None => plan_rec(&subset, depth + 1, child_prefix, cap, out)?,
        }
    }
    Ok(())
}

fn try_pack(entries: &[SplitEntry]) -> Option<SegImage> {
    let mut img = SegImage::empty();
    for &(kw, vwp, h) in entries {
        if !img.place(kw, vwp, h) {
            return None;
        }
    }
    Some(img)
}

impl Spash {
    /// Read the 32 words of `seg` once (preparation phase) and parse the
    /// live entries out of that single snapshot, dereferencing blob keys
    /// to recompute hashes. The transaction later validates the *same*
    /// words, so the plan and the validation baseline can never diverge.
    pub(crate) fn snapshot_segment(
        &self,
        ctx: &mut MemCtx,
        seg: PmAddr,
    ) -> ([u64; 32], Vec<SplitEntry>) {
        let mut words = [0u64; 32];
        for (w, word) in words.iter_mut().enumerate() {
            *word = ctx.read_u64(PmAddr(seg.0 + w as u64 * 8));
        }
        let mut out = Vec::with_capacity(SLOTS_PER_SEG as usize);
        for idx in 0..SLOTS_PER_SEG {
            let kw = words[idx as usize * 2];
            let vw = words[idx as usize * 2 + 1];
            let h = match SlotKey::unpack(kw) {
                SlotKey::Empty => continue,
                SlotKey::Inline { key, .. } => hash_key(key),
                SlotKey::Ptr { addr, .. } => hash_key(ctx.read_u64(addr)),
            };
            out.push((kw, value_word::payload(vw), h));
        }
        (words, out)
    }

    /// Parse the live entries of `seg` (used by merge emptiness checks).
    pub(crate) fn collect_segment(&self, ctx: &mut MemCtx, seg: PmAddr) -> Vec<SplitEntry> {
        self.snapshot_segment(ctx, seg).1
    }

    /// Split the segment currently routed for hash `h`.
    ///
    /// In the lock-mode ablations every writer synchronizes on the
    /// per-segment lock, so the split must hold it too while it rewrites
    /// the parent in place (HTM guards do not exclude plain lock-mode
    /// writers).
    pub(crate) fn split(&self, ctx: &mut MemCtx, h: u64) -> Result<(), IndexError> {
        ctx.stats_span(spash_pmem::SPAN_SPLIT, |ctx| self.split_locked_or_htm(ctx, h))
    }

    fn split_locked_or_htm(&self, ctx: &mut MemCtx, h: u64) -> Result<(), IndexError> {
        if self.cfg.concurrency == crate::ConcurrencyMode::Htm {
            return self.split_htm(ctx, h);
        }
        loop {
            let routed = self.dir.lookup(ctx, h);
            let seg = routed.seg();
            let lock = self.seg_lock(seg);
            enum Out {
                Retry,
                Done(Result<(), IndexError>),
            }
            let out = lock.rw.write(ctx, |ctx, _| {
                if self.dir.lookup(ctx, h).seg() != seg {
                    return Out::Retry;
                }
                lock.ver.fetch_add(1, Ordering::AcqRel);
                let r = self.split_htm(ctx, h);
                lock.ver.fetch_add(1, Ordering::AcqRel);
                Out::Done(r)
            });
            match out {
                Out::Retry => continue,
                Out::Done(r) => return r,
            }
        }
    }

    /// HTM-protected split path; see `split`. Retries internally on
    /// conflicts; returns once *a* split happened or the routing changed
    /// (the caller re-runs its insert either way).
    fn split_htm(&self, ctx: &mut MemCtx, h: u64) -> Result<(), IndexError> {
        loop {
            let routed = self.dir.lookup(ctx, h);
            let seg = routed.seg();
            let d = routed.local_depth();

            // Grow the directory until the split fits. The initiating
            // thread drives every stage ("doubling thread"); concurrent
            // splits complete the stages they need collaboratively.
            let (target, job) = self.dir.write_target();
            if (d as u32) >= target.depth {
                let job = self.dir.begin_doubling(ctx);
                self.dir.drive_doubling(ctx, &self.htm, &job);
                continue;
            }
            // If a doubling is active, make sure the stages covering this
            // segment's old-directory range are complete so the split can
            // write the new directory.
            if let Some(job) = &job {
                let d_old = job.old.depth;
                if (d as u32) <= d_old {
                    let prefix = if d == 0 { 0 } else { h >> (64 - d as u32) };
                    let first = (prefix << (d_old - d as u32)) as usize;
                    let last = (((prefix + 1) << (d_old - d as u32)) - 1) as usize;
                    self.dir.ensure_range_done(
                        ctx,
                        &self.htm,
                        job,
                        first,
                        last,
                        self.cfg.collaborative_doubling,
                    );
                }
            }

            let (entries_snapshot, entries) = self.snapshot_segment(ctx, seg);
            let prefix = if d == 0 { 0 } else { h >> (64 - d as u32) };
            let plan = plan_split(&entries, d, prefix)?;
            let max_child_depth = plan.iter().map(|c| c.depth).max().unwrap_or(d + 1);
            if (max_child_depth as u32) > self.dir.write_target().0.depth {
                let job = self.dir.begin_doubling(ctx);
                self.dir.drive_doubling(ctx, &self.htm, &job);
                continue;
            }

            // Child 0 reuses the parent XPLine; the rest are fresh.
            let mut addrs = vec![seg];
            for _ in 1..plan.len() {
                match self.alloc.alloc_segment(ctx) {
                    Ok(a) => addrs.push(a),
                    Err(_) => {
                        for &a in &addrs[1..] {
                            self.alloc.free_segment(ctx, a);
                        }
                        return Err(IndexError::OutOfMemory);
                    }
                }
            }

            let r = self.htm.try_transaction(ctx, |tx, ctx| {
                let routed2 = self.dir.tx_validate(tx, ctx, h, seg)?;
                if routed2.local_depth() != d {
                    return tx.abort(AB_STATE_CHANGED);
                }
                let dir_depth = routed2.dir.depth;
                if (max_child_depth as u32) > dir_depth {
                    return tx.abort(AB_STATE_CHANGED);
                }
                // Validate the snapshot: any concurrent mutation of the
                // segment must restart the planning.
                for w in 0..32u64 {
                    if tx.read_u64(ctx, PmAddr(seg.0 + w * 8))? != entries_snapshot[w as usize] {
                        return tx.abort(AB_STATE_CHANGED);
                    }
                }
                // Write the child images (parent rewritten in place),
                // together with each child's fingerprint sidecar so the
                // fp table is exact the instant the split commits.
                for (ci, child) in plan.iter().enumerate() {
                    let base = addrs[ci];
                    for w in 0..32u64 {
                        tx.write_u64(ctx, PmAddr(base.0 + w * 8), child.image.words[w as usize])?;
                    }
                    for b in 0..BUCKETS_PER_SEG {
                        self.fptable
                            .tx_write_word(tx, ctx, base, b, child.image.fp[b as usize])?;
                    }
                    self.seginfo
                        .tx_set(tx, ctx, base, child.depth, child.prefix)?;
                }
                // Invalidate overlay entries for the parent and every
                // child: their cached bucket images are stale the moment
                // the repoint below commits. (The stale-cache mutation
                // skips this — lookups would then serve pre-split data.)
                if !crate::testhooks::overlay_stale() {
                    for &a in &addrs {
                        self.overlay.tx_bump(tx, ctx, a)?;
                    }
                }
                // Repoint the directory entries of each child's range.
                let mut first_idx = usize::MAX;
                let mut last_idx = 0usize;
                for (ci, child) in plan.iter().enumerate() {
                    let span = 1usize << (dir_depth - child.depth as u32);
                    let base_idx = (child.prefix as usize) << (dir_depth - child.depth as u32);
                    for i in 0..span {
                        let idx = base_idx + i;
                        let cell = &routed2.dir.entries[idx];
                        tx.write_volatile_u64(
                            routed2.dir.line_id(idx),
                            cell,
                            pack_entry(addrs[ci], child.depth),
                        )?;
                        first_idx = first_idx.min(idx);
                        last_idx = last_idx.max(idx);
                    }
                    ctx.charge_dram(span.div_ceil(8) as u64);
                }
                // With the write guards held, make sure every written
                // partition is still authoritative (a stage copy finishing
                // just before we took the guards would otherwise strand
                // these writes in a dead generation).
                if !self.dir.tx_write_safe(&routed2.dir, first_idx, last_idx) {
                    return tx.abort(AB_STATE_CHANGED);
                }
                Ok(())
            });

            match r {
                Ok(()) => {
                    self.n_segments
                        .fetch_add(plan.len() as u64 - 1, Ordering::Relaxed);
                    return Ok(());
                }
                Err(abort) => {
                    for &a in &addrs[1..] {
                        self.alloc.free_segment(ctx, a);
                    }
                    match abort {
                        Abort::Explicit(_) => continue, // plan went stale
                        Abort::Conflict(slot) => {
                            self.htm.wait_slot(slot);
                            continue;
                        }
                        Abort::Capacity => {
                            // A very wide directory range; fall back to
                            // partition locks.
                            self.split_locked(ctx, h)?;
                            return Ok(());
                        }
                    }
                }
            }
        }
    }

    /// Capacity-abort fallback: redo the split under non-transactional
    /// partition locks (ordered, to avoid deadlock between two fallback
    /// splits).
    fn split_locked(&self, ctx: &mut MemCtx, h: u64) -> Result<(), IndexError> {
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        loop {
            // No doubling may be active for the simple locked path; drive
            // any active job to completion first.
            {
                let (_, job) = self.dir.write_target();
                if let Some(job) = &job {
                    self.dir.drive_doubling(ctx, &self.htm, job);
                }
            }
            let routed = self.dir.lookup(ctx, h);
            let seg = routed.seg();
            let d = routed.local_depth();
            let (target, job) = self.dir.write_target();
            if job.is_some() {
                continue;
            }
            if (d as u32) >= target.depth {
                let job = self.dir.begin_doubling(ctx);
                self.dir.drive_doubling(ctx, &self.htm, &job);
                continue;
            }
            let dir_depth = target.depth;
            let prefix = if d == 0 { 0 } else { h >> (64 - d as u32) };
            let first = (prefix << (dir_depth - d as u32)) as usize;
            let last = (((prefix + 1) << (dir_depth - d as u32)) - 1) as usize;
            let first_part = first / crate::dir::PARTITION;
            let last_part = last / crate::dir::PARTITION;
            let ids: Vec<_> = (first_part..=last_part).map(|p| target.line_id(p * 8)).collect();
            for &id in &ids {
                self.htm.nontx_lock(ctx, id);
            }
            // Re-verify routing under the locks.
            let routed2 = self.dir.lookup(ctx, h);
            let still = routed2.seg() == seg
                && routed2.local_depth() == d
                && routed2.dir.gen == target.gen;
            if !still {
                for &id in ids.iter().rev() {
                    self.htm.nontx_unlock(ctx, id);
                }
                continue;
            }
            let entries = self.collect_segment(ctx, seg);
            let plan = match plan_split(&entries, d, prefix) {
                Ok(p) => p,
                Err(e) => {
                    for &id in ids.iter().rev() {
                        self.htm.nontx_unlock(ctx, id);
                    }
                    return Err(e);
                }
            };
            let max_child_depth = plan.iter().map(|c| c.depth).max().unwrap_or(d + 1);
            if (max_child_depth as u32) > dir_depth {
                for &id in ids.iter().rev() {
                    self.htm.nontx_unlock(ctx, id);
                }
                continue; // need doubling; restart
            }
            let mut addrs = vec![seg];
            let mut oom = false;
            for _ in 1..plan.len() {
                match self.alloc.alloc_segment(ctx) {
                    Ok(a) => addrs.push(a),
                    Err(_) => {
                        oom = true;
                        break;
                    }
                }
            }
            if oom {
                for &a in &addrs[1..] {
                    self.alloc.free_segment(ctx, a);
                }
                for &id in ids.iter().rev() {
                    self.htm.nontx_unlock(ctx, id);
                }
                return Err(IndexError::OutOfMemory);
            }
            for (ci, child) in plan.iter().enumerate() {
                let base = addrs[ci];
                for w in 0..32u64 {
                    ctx.write_u64(PmAddr(base.0 + w * 8), child.image.words[w as usize]);
                }
                for b in 0..BUCKETS_PER_SEG {
                    self.fptable.write_word(ctx, base, b, child.image.fp[b as usize]);
                }
                self.seginfo.set(ctx, base, child.depth, child.prefix);
                let span = 1usize << (dir_depth - child.depth as u32);
                let base_idx = (child.prefix as usize) << (dir_depth - child.depth as u32);
                for i in 0..span {
                    target.entries[base_idx + i]
                        .store(pack_entry(addrs[ci], child.depth), Ordering::Release);
                }
                ctx.charge_dram(span.div_ceil(8) as u64);
            }
            if !crate::testhooks::overlay_stale() {
                for &a in &addrs {
                    self.overlay.nt_bump(ctx, a);
                }
            }
            self.n_segments
                .fetch_add(plan.len() as u64 - 1, Ordering::Relaxed);
            for &id in ids.iter().rev() {
                self.htm.nontx_unlock(ctx, id);
            }
            return Ok(());
        }
    }

    /// Merge `seg` (just emptied by a delete) into its buddy if both sit
    /// at the same local depth. Best-effort: any conflict or shape
    /// mismatch silently skips the merge.
    pub(crate) fn try_merge(&self, ctx: &mut MemCtx, h: u64) {
        if !self.cfg.enable_merge {
            return;
        }
        ctx.stats_span(spash_pmem::SPAN_COMPACTION, |ctx| self.try_merge_impl(ctx, h))
    }

    fn try_merge_impl(&self, ctx: &mut MemCtx, h: u64) {
        let routed = self.dir.lookup(ctx, h);
        let seg = routed.seg();
        let d = routed.local_depth();
        if (d as u32) == 0 || (d as u32) <= self.cfg.initial_depth {
            return; // never shrink below the initial table
        }
        // During a doubling, skip (merge is an optimization).
        let (target, job) = self.dir.write_target();
        if job.is_some() || target.depth < d as u32 {
            return;
        }
        let prefix = h >> (64 - d as u32);
        let buddy_prefix = prefix ^ 1;
        let dir_depth = target.depth;
        let buddy_idx = (buddy_prefix as usize) << (dir_depth - d as u32);
        let (buddy_seg, buddy_depth) =
            unpack_entry(target.entries[buddy_idx].load(Ordering::Acquire));
        if buddy_depth != d || buddy_seg == seg {
            return;
        }
        let parent_prefix = prefix >> 1;

        let _ = self.htm.try_transaction(ctx, |tx, ctx| {
            let routed2 = self.dir.tx_validate(tx, ctx, h, seg)?;
            if routed2.local_depth() != d || routed2.dir.gen != target.gen {
                return tx.abort(AB_STATE_CHANGED);
            }
            // The segment must still be empty.
            for idx in 0..SLOTS_PER_SEG {
                // lint:allow(fp-probe): transactional emptiness re-check before merge; every slot must be observed, not a probe
                if tx.read_u64(ctx, key_addr(seg, idx))? != 0 {
                    return tx.abort(AB_STATE_CHANGED);
                }
            }
            // Buddy must still be at depth d.
            let bcell = &target.entries[buddy_idx];
            let bentry = tx.read_volatile_u64(target.line_id(buddy_idx), bcell)?;
            let (bseg, bd) = unpack_entry(bentry);
            if bd != d || bseg != buddy_seg {
                return tx.abort(AB_STATE_CHANGED);
            }
            // Repoint the parent's whole range at the buddy, depth d-1.
            let span = 1usize << (dir_depth - (d as u32 - 1));
            let base_idx = (parent_prefix as usize) << (dir_depth - (d as u32 - 1));
            for i in 0..span {
                let idx = base_idx + i;
                tx.write_volatile_u64(
                    target.line_id(idx),
                    &target.entries[idx],
                    pack_entry(buddy_seg, d - 1),
                )?;
            }
            if !self.dir.tx_write_safe(&target, base_idx, base_idx + span - 1) {
                return tx.abort(AB_STATE_CHANGED);
            }
            ctx.charge_dram(span.div_ceil(8) as u64);
            self.seginfo.tx_clear(tx, ctx, seg)?;
            self.seginfo
                .tx_set(tx, ctx, buddy_seg, d - 1, parent_prefix)?;
            // The freed segment's cached (empty) bucket images must die
            // with it: its address may be reallocated and refilled while
            // a stale overlay entry still claims its buckets are empty.
            if !crate::testhooks::overlay_stale() {
                self.overlay.tx_bump(tx, ctx, seg)?;
            }
            Ok(())
        })
        .map(|()| {
            self.alloc.free_segment(ctx, seg);
            self.n_segments.fetch_sub(1, Ordering::Relaxed);
            // Directory halving, the reverse of doubling (§IV-B): shrink
            // the table once no segment needs the deepest prefix bit.
            while self.dir.try_halve() {}
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inline_entry(key: u64) -> SplitEntry {
        let h = hash_key(key);
        (
            SlotKey::Inline {
                key,
                fp: crate::slot::fp14(h),
            }
            .pack(),
            key * 10,
            h,
        )
    }

    #[test]
    fn image_places_in_main_bucket_first() {
        let mut img = SegImage::empty();
        let h = 0u64; // bucket 0
        assert!(img.place(SlotKey::Inline { key: 1, fp: 0 }.pack(), 7, h));
        assert!(!SlotKey::unpack(img.kw(0)).is_empty());
        assert_eq!(value_word::payload(img.vw(0)), 7);
    }

    #[test]
    fn image_overflow_sets_hint() {
        let mut img = SegImage::empty();
        // Fill bucket 2 (hash & 3 == 2).
        for k in 0..4 {
            assert!(img.place(SlotKey::Inline { key: k, fp: 0 }.pack(), k, 0b10));
        }
        // Fifth entry overflows into bucket 3 slot 12 with a hint in
        // bucket 2.
        assert!(img.place(SlotKey::Inline { key: 99, fp: 0 }.pack(), 99, 0b10));
        let hints: Vec<u16> = bucket_slots(2).map(|s| value_word::hint(img.vw(s))).collect();
        assert_eq!(hints.iter().filter(|&&x| x != 0).count(), 1);
        assert!(!SlotKey::unpack(img.kw(12)).is_empty());
    }

    #[test]
    fn image_full_bucket_without_hint_space_fails() {
        let mut img = SegImage::empty();
        for k in 0..4 {
            assert!(img.place(SlotKey::Inline { key: k, fp: 0 }.pack(), k, 0b01));
        }
        // 4 overflows exhaust the 4 hint slots...
        for k in 4..8 {
            assert!(img.place(SlotKey::Inline { key: k, fp: 0 }.pack(), k, 0b01));
        }
        // ...the 9th same-bucket entry cannot be placed.
        assert!(!img.place(SlotKey::Inline { key: 8, fp: 0 }.pack(), 8, 0b01));
    }

    #[test]
    fn plan_split_partitions_by_prefix_bit() {
        // Keys whose hashes differ in bit `d` must land in different
        // children.
        let d = 0u8;
        let entries: Vec<SplitEntry> = (0..10).map(inline_entry).collect();
        let plan = plan_split(&entries, d, 0).unwrap();
        assert!(plan.len() >= 2);
        let total: u32 = plan.iter().map(|c| c.image.live()).sum();
        assert_eq!(total, 10, "no entry may be lost");
        for child in &plan {
            assert!(child.depth > d);
            // Every entry in the child matches the child's prefix.
            for s in 0..SLOTS_PER_SEG {
                let kw = child.image.kw(s);
                if let SlotKey::Inline { key, .. } = SlotKey::unpack(kw) {
                    let h = hash_key(key);
                    assert_eq!(
                        h >> (64 - child.depth as u32),
                        child.prefix,
                        "entry in wrong child"
                    );
                }
            }
        }
    }

    #[test]
    fn plan_split_handles_empty_segment() {
        let plan = plan_split(&[], 2, 0).unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0].image.live() + plan[1].image.live(), 0);
    }
}
