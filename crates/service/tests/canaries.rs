//! The reclamation use-after-free canary (DESIGN.md §11): the epoch
//! pool's invariant is that a slot retired at epoch `e` recycles only
//! once `e < min(active pins)`. The `reclaim_early` hook makes the pool
//! ignore pins — exactly the use-after-free window the generation check
//! in `BatchPool::resolve` exists to catch.

use spash_service::pool::BatchPool;
use spash_service::testhooks;

/// Serializes hook-arming tests: the canary hooks are process-global.
fn hook_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[test]
fn reclamation_window_canary_is_caught() {
    let _guard = hook_lock();

    // Clean run: a pinned consumer's reference survives retirement — the
    // pin blocks recycling, so the resolve sees the original bytes.
    {
        let pool = BatchPool::new(1, 1);
        pool.pin(0);
        let buf = pool.acquire().expect("fresh pool must have a free slot");
        let r = pool.append(&buf, b"pinned bytes");
        pool.retire(buf);
        assert!(
            pool.acquire().is_none(),
            "recycling must stall while a pin covers the retired epoch"
        );
        let mut out = Vec::new();
        pool.resolve(&r, &mut out).expect("pin-protected ref must resolve");
        assert_eq!(out, b"pinned bytes");
        pool.unpin(0);
    }

    // Armed run: reclamation ignores the pin, the slot recycles under
    // the reader's feet, and the generation check must report the
    // violation instead of silently serving recycled bytes.
    assert!(!testhooks::set_reclaim_early(true), "hook already armed");
    let outcome = std::panic::catch_unwind(|| {
        let pool = BatchPool::new(1, 1);
        pool.pin(0);
        let buf = pool.acquire().unwrap();
        let r = pool.append(&buf, b"pinned bytes");
        pool.retire(buf);
        let stolen = pool.acquire();
        (stolen.is_some(), pool.resolve(&r, &mut Vec::new()))
    });
    testhooks::set_reclaim_early(false);

    let (recycled_despite_pin, resolve) = outcome.expect("armed pool run panicked");
    assert!(
        recycled_despite_pin,
        "canary armed but the retired slot was not recycled early"
    );
    let violation = resolve.expect_err("use-after-reclaim went undetected");
    assert_eq!(violation.slot, 0);
    assert!(
        violation.slot_gen > violation.ref_gen,
        "violation must show the slot moved past the reference's generation"
    );
}
