//! Epoch-based reclamation for batch buffers.
//!
//! Every committed batch borrows one buffer slot from a fixed pool; the
//! `get` responses of that batch carry [`ValueRef`]s into the slot
//! instead of owned allocations. The slot is **retired** (not freed)
//! when the batch's consumer is done with it, and **recycled** only once
//! no pinned consumer could still dereference it:
//!
//! * The pool keeps a global epoch counter, advanced at every retire.
//! * A consumer **pins** before dequeuing delivered batches and unpins
//!   after its last resolve; its pin records the epoch at pin time.
//! * A slot retired at epoch `e` is recycled only when `e < min(active
//!   pins)` — every consumer that could have seen a reference to it
//!   (references become unreachable at retire; see
//!   [`crate::BatchReplies::retire`]) has since unpinned or re-pinned.
//!
//! Recycling bumps the slot's generation and clears its bytes, so a
//! reference that *does* outlive its slot (only possible when the
//! invariant is broken) fails its generation check in
//! [`BatchPool::resolve`] instead of silently reading recycled bytes.
//! The `reclaim_early` canary ([`crate::testhooks::set_reclaim_early`])
//! breaks exactly this invariant — reclamation ignores pins — and the
//! named canary test must observe the resulting [`ReclaimViolation`].

use std::sync::atomic::{AtomicU64, Ordering};

use spash_pmem::sync::Mutex;

use crate::testhooks;

/// A pin slot value meaning "not pinned".
const QUIESCENT: u64 = u64::MAX;

struct Slot {
    /// Bumped on every recycle; [`ValueRef`]s carry the generation they
    /// were created under.
    gen: u64,
    bytes: Vec<u8>,
}

/// Exclusive handle to an acquired slot. Not `Clone`: exactly one owner
/// (the executor, then the delivered batch) until retirement.
#[derive(Debug)]
pub struct BatchBuf {
    idx: usize,
    gen: u64,
}

/// A reference into a batch buffer: resolvable while the buffer is live
/// or retired-but-pinned; a resolve after recycling reports a
/// [`ReclaimViolation`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValueRef {
    slot: usize,
    gen: u64,
    off: u32,
    len: u32,
}

impl ValueRef {
    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The reclamation invariant was violated: a reference outlived its
/// buffer slot (the slot was recycled under the reader's feet).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReclaimViolation {
    pub slot: usize,
    /// Generation the reference was created under.
    pub ref_gen: u64,
    /// Generation the slot is at now.
    pub slot_gen: u64,
}

impl std::fmt::Display for ReclaimViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "use-after-reclaim: slot {} recycled (gen {} -> {}) while a reference was live",
            self.slot, self.ref_gen, self.slot_gen
        )
    }
}

struct Retired {
    idx: usize,
    epoch: u64,
}

/// Fixed pool of epoch-reclaimed batch buffers. All internal locks are
/// the cooperative [`spash_pmem::sync`] primitives, so every contended
/// pool access is a scheduler decision point and the reclamation races
/// the canary test provokes replay deterministically.
pub struct BatchPool {
    slots: Vec<Mutex<Slot>>,
    free: Mutex<Vec<usize>>,
    retired: Mutex<Vec<Retired>>,
    epoch: AtomicU64,
    pins: Vec<AtomicU64>,
}

impl BatchPool {
    /// `slots` buffer slots, `participants` pin slots for cross-task
    /// consumers (executors that deliver-and-retire inline need none).
    pub fn new(slots: usize, participants: usize) -> Self {
        assert!(slots >= 1);
        Self {
            slots: (0..slots)
                .map(|_| {
                    Mutex::new(Slot {
                        gen: 0,
                        bytes: Vec::new(),
                    })
                })
                .collect(),
            // LIFO free list, lowest index last so slot 0 is handed out
            // first — allocation order is deterministic.
            free: Mutex::new((0..slots).rev().collect()),
            retired: Mutex::new(Vec::new()),
            epoch: AtomicU64::new(0),
            pins: (0..participants).map(|_| AtomicU64::new(QUIESCENT)).collect(),
        }
    }

    /// Pin participant `who` at the current epoch. Must precede taking
    /// any delivered batch the participant intends to resolve refs from.
    pub fn pin(&self, who: usize) {
        let e = self.epoch.load(Ordering::SeqCst);
        self.pins[who].store(e, Ordering::SeqCst);
    }

    /// Clear participant `who`'s pin (it holds no more references).
    pub fn unpin(&self, who: usize) {
        self.pins[who].store(QUIESCENT, Ordering::SeqCst);
    }

    /// The reclamation frontier: retired slots with `epoch < min_pin`
    /// are unreachable by every pinned consumer. The armed
    /// `reclaim_early` canary ignores pins — the use-after-free window
    /// the named canary test must catch.
    fn min_pin(&self) -> u64 {
        if testhooks::reclaim_early() {
            return QUIESCENT;
        }
        self.pins
            .iter()
            .map(|p| p.load(Ordering::SeqCst))
            .min()
            .unwrap_or(QUIESCENT)
    }

    /// Take a free slot, recycling eligible retired slots first.
    /// `None` = every slot is live or still protected by a pin; the
    /// caller must wait for consumers to retire/unpin.
    pub fn acquire(&self) -> Option<BatchBuf> {
        let recycled = {
            let min = self.min_pin();
            let mut retired = self.retired.lock();
            let mut ready = Vec::new();
            retired.retain(|r| {
                if r.epoch < min {
                    ready.push(r.idx);
                    false
                } else {
                    true
                }
            });
            ready
        };
        if !recycled.is_empty() {
            for &idx in &recycled {
                let mut s = self.slots[idx].lock();
                s.gen += 1;
                s.bytes.clear();
            }
            let mut free = self.free.lock();
            for idx in recycled {
                free.push(idx);
            }
        }
        let idx = self.free.lock().pop()?;
        let gen = self.slots[idx].lock().gen;
        Some(BatchBuf { idx, gen })
    }

    /// Append `bytes` to the buffer, returning a reference to them.
    pub fn append(&self, buf: &BatchBuf, bytes: &[u8]) -> ValueRef {
        let mut s = self.slots[buf.idx].lock();
        debug_assert_eq!(s.gen, buf.gen, "append to a recycled buffer");
        let off = s.bytes.len();
        s.bytes.extend_from_slice(bytes);
        ValueRef {
            slot: buf.idx,
            gen: buf.gen,
            off: off as u32,
            len: bytes.len() as u32,
        }
    }

    /// Retire a buffer at the current epoch (and advance the epoch).
    /// References into it stay resolvable until recycling.
    pub fn retire(&self, buf: BatchBuf) {
        let e = self.epoch.fetch_add(1, Ordering::SeqCst);
        self.retired.lock().push(Retired { idx: buf.idx, epoch: e });
    }

    /// Copy the referenced bytes into `out`. Fails iff the slot was
    /// recycled since the reference was created — which the pool's
    /// invariant rules out for readers following the pin discipline, so
    /// any `Err` is a reclamation bug (or the armed canary).
    pub fn resolve(&self, r: &ValueRef, out: &mut Vec<u8>) -> Result<(), ReclaimViolation> {
        let s = self.slots[r.slot].lock();
        if s.gen != r.gen {
            return Err(ReclaimViolation {
                slot: r.slot,
                ref_gen: r.gen,
                slot_gen: s.gen,
            });
        }
        out.extend_from_slice(&s.bytes[r.off as usize..(r.off + r.len) as usize]);
        Ok(())
    }

    /// Slots currently on the free list (diagnostics/leak tests).
    pub fn free_slots(&self) -> usize {
        self.free.lock().len()
    }

    /// Slots in the retired (epoch limbo) list.
    pub fn retired_slots(&self) -> usize {
        self.retired.lock().len()
    }

    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refs_survive_retirement_until_recycling() {
        let pool = BatchPool::new(1, 1);
        pool.pin(0);
        let buf = pool.acquire().unwrap();
        let r = pool.append(&buf, b"hello");
        pool.retire(buf);
        // Pinned at epoch 0, slot retired at epoch 0: protected.
        assert!(pool.acquire().is_none(), "pin must block recycling");
        let mut out = Vec::new();
        pool.resolve(&r, &mut out).unwrap();
        assert_eq!(out, b"hello");
        pool.unpin(0);
        // Unpinned: the slot recycles and the stale ref is detected.
        let buf2 = pool.acquire().expect("unpinned slot must recycle");
        assert!(pool.resolve(&r, &mut Vec::new()).is_err());
        pool.retire(buf2);
    }

    #[test]
    fn acquire_order_is_deterministic() {
        let pool = BatchPool::new(3, 0);
        let a = pool.acquire().unwrap();
        let b = pool.acquire().unwrap();
        assert_eq!((a.idx, b.idx), (0, 1));
        pool.retire(a);
        pool.retire(b);
        // No pins: retired slots recycle immediately; they are re-pushed
        // in retire order, so the LIFO free list hands back the most
        // recently retired slot first, then the untouched slot 2.
        let c = pool.acquire().unwrap();
        assert_eq!(c.idx, 1);
        let d = pool.acquire().unwrap();
        assert_eq!(d.idx, 0);
        pool.retire(c);
        pool.retire(d);
    }

    #[test]
    fn appends_pack_into_one_slot() {
        let pool = BatchPool::new(1, 0);
        let buf = pool.acquire().unwrap();
        let r1 = pool.append(&buf, b"abc");
        let r2 = pool.append(&buf, b"defg");
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        pool.resolve(&r1, &mut o1).unwrap();
        pool.resolve(&r2, &mut o2).unwrap();
        assert_eq!((o1.as_slice(), o2.as_slice()), (&b"abc"[..], &b"defg"[..]));
        pool.retire(buf);
    }
}
