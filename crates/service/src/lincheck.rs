//! Service-level linearizability: every client operation is recorded
//! *through the batching layer* and checked with the Wing–Gong search.
//!
//! The index lin-checks (`spash-sched`'s explore scenarios, the scale
//! driver's own check) validate direct trait calls; this one validates
//! the front-end — routing, batch formation, `run_batch` execution and
//! batch-at-a-time delivery — because the service adds exactly the kinds
//! of bugs a per-op check cannot see: responses attached to the wrong
//! request, batches replayed or dropped, get payloads resolved from a
//! recycled buffer.
//!
//! Timestamps: a request's Wing–Gong invocation is stamped at batch
//! formation (after dequeue, before execution — carried in
//! [`ClientReq::stamp`]) and its response at delivery, after the batch's
//! coalesced journal fence. That window strictly contains the real
//! linearization point inside the index's batch execution, so the check
//! is sound: any violation it reports is a real one.

use std::collections::HashMap;
use std::sync::Arc;

use spash_index_api::crashpoint::{CrashTarget, SweepOp};
use spash_index_api::history::{self, fingerprint, HistOp, OpResult, Recorder};
use spash_index_api::PersistentIndex;
use spash_pmem::{CrashFidelity, MemCtx, PersistenceDomain, PmConfig, PmDevice};
use spash_sched::batch::run_batch;
use spash_sched::SchedConfig;
use spash_workloads::{load_keys, Distribution, Mix, OpStream, ValueSize, WorkOp, WorkloadConfig};

use crate::pool::BatchPool;
use crate::{BatchReplies, ClientReq, JournalSpec, Reply, Service, ServiceConfig};

/// Service lin-check parameters. Totals stay under the checker's 128-op
/// cap; the key space is tiny so shards' clients collide on hot keys.
pub struct ServiceLinConfig {
    pub shards: usize,
    pub batch_max: usize,
    /// Total client operations per schedule (the whole history).
    pub ops: u64,
    pub keys: u64,
    /// Keys inserted sequentially before the run (checker initial state).
    pub prefill: u64,
    pub seed: u64,
    pub preemptions: u32,
    /// Distinct scheduler seeds checked per index.
    pub schedules: u64,
}

impl Default for ServiceLinConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            batch_max: 3,
            ops: 24,
            keys: 10,
            prefill: 5,
            seed: 0x5eaf1ce,
            preemptions: 24,
            schedules: 3,
        }
    }
}

fn lin_pm() -> PmConfig {
    let mut pm = PmConfig::small_test();
    // Big enough for every registered crash target (the bench suite's
    // Halo formats a 64 MB log), same sizing as the scale lin-check.
    pm.arena_size = 256 << 20;
    pm.cache_capacity = 256 << 10;
    pm.domain = PersistenceDomain::Eadr;
    pm.fidelity = CrashFidelity::Full;
    pm
}

/// Classify a service reply as the Wing–Gong outcome of its operation.
/// `get` payloads are resolved from the batch buffer *here*, inside the
/// delivery window — a [`crate::pool::ReclaimViolation`] at this point
/// would be a real premature-reclamation bug, so it panics the check.
pub fn reply_result(pool: &BatchPool, op: &SweepOp, reply: &Reply) -> OpResult {
    match (op, reply) {
        (SweepOp::Insert(..), Reply::Done(r)) => OpResult::of_insert(*r),
        (SweepOp::Update(..), Reply::Done(r)) => OpResult::of_update(*r),
        (SweepOp::Get(_), Reply::Value(v)) => OpResult::of_get(v.as_ref().map(|r| {
            let mut buf = Vec::new();
            pool.resolve(r, &mut buf)
                .unwrap_or_else(|e| panic!("lin-check delivery: {e}"));
            fingerprint(&buf)
        })),
        (SweepOp::Remove(_), Reply::Removed(hit)) => OpResult::of_remove(*hit),
        (op, reply) => panic!("reply {reply:?} does not answer {op:?}"),
    }
}

/// Run the service lin-check for one index target at one scheduler seed:
/// prefill sequentially, enqueue a colliding zipfian client mix, drain
/// every shard as a cooperative task, then Wing–Gong-check the recorded
/// history. Returns the history length on success.
pub fn lin_check_target(
    target: &CrashTarget,
    cfg: &ServiceLinConfig,
    schedule_seed: u64,
) -> Result<usize, String> {
    assert!(cfg.ops <= 128, "history beyond the checker's cap");
    let pm = lin_pm();
    let dev = PmDevice::new(pm.clone());
    let mut ctx = dev.ctx();
    let index: Arc<dyn PersistentIndex> = Arc::from((target.format)(&mut ctx));

    let mix = Mix {
        search_pct: 25,
        update_pct: 25,
        insert_pct: 25,
        delete_pct: 25,
    };
    let wcfg = WorkloadConfig {
        seed: cfg.seed,
        ..WorkloadConfig::new(cfg.keys, Distribution::Zipfian, mix, ValueSize::Inline)
    };

    // Sequential prefill builds the checker's initial model state.
    let mut initial: HashMap<u64, u64> = HashMap::new();
    let keys = load_keys(&wcfg);
    let mut vals = OpStream::new(&wcfg, 0);
    for &k in keys.iter().take(cfg.prefill as usize) {
        let v = vals.expected_value(k);
        if index.insert(&mut ctx, k, &v).is_ok() {
            initial.insert(k, fingerprint(&v));
        }
    }
    drop(ctx);

    let svc = Service::new(
        Arc::clone(&index),
        ServiceConfig {
            shards: cfg.shards,
            batch_max: cfg.batch_max,
            journal: JournalSpec::at_top(pm.arena_size, cfg.shards, cfg.ops.max(4)),
            pool_slots: cfg.shards + 1,
            pool_participants: 0,
        },
    );

    // All client requests up front, arrival 0: batching pressure is
    // maximal and formation order is the enqueue order per shard.
    let mut stream = OpStream::new(&wcfg, 7);
    for i in 0..cfg.ops {
        let op = match stream.next_op() {
            WorkOp::Search(k) => SweepOp::Get(k),
            WorkOp::Update(k, v) => SweepOp::Update(k, v),
            WorkOp::Insert(k, v) => SweepOp::Insert(k, v),
            WorkOp::Delete(k) => SweepOp::Remove(k),
        };
        svc.enqueue(ClientReq::new(i, 0, op));
    }

    let recorder = Recorder::new();
    // lint:allow(std-sync): host-side history buffer; never held across a
    // sync point (same discipline as spash-sched's lin driver).
    let hist = Arc::new(std::sync::Mutex::new(Vec::<HistOp>::new()));
    dev.quiesce();
    let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = (0..cfg.shards)
        .map(|shard| {
            let svc = &svc;
            let rec = recorder.clone();
            let hist = Arc::clone(&hist);
            let mut ctx = dev.ctx();
            ctx.reset_clock();
            let t: Box<dyn FnOnce() -> u64 + Send + '_> = Box::new(move || {
                let mut on_invoke = |reqs: &mut [ClientReq]| {
                    for r in reqs.iter_mut() {
                        r.stamp = rec.tick();
                    }
                };
                let mut deliver = |_ctx: &mut MemCtx, pool: &BatchPool, replies: BatchReplies| {
                    for resp in &replies.responses {
                        let result = reply_result(pool, &resp.op, &resp.reply);
                        let done = HistOp {
                            thread: shard,
                            op: resp.op.clone(),
                            result,
                            inv: resp.stamp,
                            resp: rec.tick(),
                        };
                        // Published immediately so completed ops survive
                        // any valve stop; never held across a sync point.
                        hist.lock().unwrap().push(done);
                    }
                    replies.retire(pool);
                };
                let stats = svc.run_shard(&mut ctx, shard, &mut on_invoke, &mut deliver);
                assert_eq!(stats.misroutes, 0, "routing audit tripped in lin-check");
                stats.ops
            });
            t
        })
        .collect();
    let sched = SchedConfig::random(schedule_seed, cfg.preemptions);
    let per_task = run_batch(&sched, None, tasks).into_complete()?;
    assert_eq!(
        per_task.iter().sum::<u64>(),
        cfg.ops,
        "service lin-check lost or duplicated client ops"
    );

    let hist = Arc::try_unwrap(hist)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_default();
    let n = hist.len();
    if n as u64 != cfg.ops {
        return Err(format!("history holds {n} ops, expected {}", cfg.ops));
    }
    history::check_linearizable(&hist, &initial)
        .map_err(|v| format!("service history not linearizable: {v}"))?;
    Ok(n)
}
