//! Spash-as-a-service: a sharded, batched KV front-end over any
//! [`PersistentIndex`] (DESIGN.md §11, "Sharded batched service layer").
//!
//! The index crates prove single-operation durability and
//! linearizability; production PM stores (Dash's end-to-end concurrency
//! machinery, Halo's batched log) win or lose on the *service* layer
//! around the index. This crate models that layer deterministically:
//!
//! * **Shard-per-core dispatch** — client requests are hash-partitioned
//!   over `shards` executor queues by [`route`] (one executor task per
//!   shard under the cooperative scheduler). Per-key order is preserved
//!   because a key's requests always land on the same shard.
//! * **Per-shard batching with group fence coalescing** — an executor
//!   drains up to `batch_max` *arrived* requests, runs them through
//!   [`PersistentIndex::run_batch`], then publishes **one** journal
//!   record covering the whole batch with a single flush+fence — the ack
//!   durability barrier amortized across the batch, the way Halo batches
//!   its log. A response is acked only after that fence, so "acked ⇒
//!   durable" is checkable per batch ([`JournalSpec`], `sweep`).
//! * **Epoch-based reclamation for batch buffers** — `get` responses
//!   return [`pool::ValueRef`]s into a pooled batch buffer instead of
//!   owned allocations; buffers are retired into an epoch list and only
//!   recycled once every pinned consumer has moved past the retire epoch
//!   ([`pool::BatchPool`]).
//! * **Open-loop arrival control** — requests carry virtual arrival
//!   times (`spash_workloads::openloop`); an executor idles on its
//!   virtual clock (`charge_compute`) until the head request has
//!   arrived, so tail latency under a 10⁶-session open-loop workload is
//!   a deterministic function of the seed.
//!
//! Verification hooks ship with the layer, not after it: every mutation
//! canary in [`testhooks`] (dropped batch fence, cross-shard misroute,
//! premature reclamation) is caught by a named test or gate — see
//! `sweep`, `lincheck`, and `crates/bench/tests/service.rs`.

pub mod lincheck;
pub mod pool;
pub mod sweep;
pub mod testhooks;

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spash_index_api::crashpoint::SweepOp;
use spash_index_api::history::fingerprint;
use spash_index_api::{hash_key, BatchOp, BatchResult, IndexError, PersistentIndex};
use spash_pmem::sync::Mutex;
use spash_pmem::{schedhook, MemCtx, PersistenceDomain, PmAddr};

use pool::{BatchBuf, BatchPool, ValueRef};

/// Magic stamped (xor shard id) into every journal record line.
pub const JOURNAL_MAGIC: u64 = 0x5350_4153_484a_4c31; // "SPASHJL1"

/// Bytes per journal record: one XPLine, so an ADR record publication is
/// a single-line flush and the record is torn-write-free (a power cut
/// either reverts or persists the whole line).
pub const RECORD_BYTES: u64 = 64;

/// Hash-partitioned routing: which shard owns `key`. Uses the shared
/// avalanche mixer, folded from a different bit range than the indexes'
/// own bucket/directory bits so shard choice and bucket choice stay
/// independent. The `misroute` canary (when armed) consistently shifts
/// the route by one shard — per-key order survives (the check the
/// linearizability test can NOT catch), which is exactly why the
/// executor-side routing audit exists ([`ShardRunStats::misroutes`]).
pub fn route(key: u64, shards: usize) -> usize {
    let clean = route_clean(key, shards);
    if testhooks::misroute() {
        (clean + 1) % shards
    } else {
        clean
    }
}

/// The canonical route, ignoring the misroute canary. The executor
/// re-derives this for every dequeued request: a request observed on a
/// shard it does not route to is a dispatch bug, counted (and gated)
/// rather than silently served.
pub fn route_clean(key: u64, shards: usize) -> usize {
    debug_assert!(shards >= 1);
    ((hash_key(key) >> 17) % shards as u64) as usize
}

/// One client request: an operation plus its open-loop metadata.
#[derive(Clone, Debug)]
pub struct ClientReq {
    /// Client session id (the open-loop driver samples these from a
    /// 2²⁰+ space; the service treats them as opaque).
    pub session: u64,
    /// Virtual arrival time, relative to the executor phase start. The
    /// owning executor will not serve this request before its arrival.
    pub arrival_ns: u64,
    /// Harness-owned stamp (the lin-check stores the Wing–Gong
    /// invocation timestamp here); the service never reads it.
    pub stamp: u64,
    pub op: SweepOp,
}

impl ClientReq {
    pub fn new(session: u64, arrival_ns: u64, op: SweepOp) -> Self {
        Self {
            session,
            arrival_ns,
            stamp: 0,
            op,
        }
    }
}

/// The service-level outcome of one request. `get` payloads are
/// [`ValueRef`]s into the batch buffer — valid until the batch is
/// retired, enforcing the epoch-reclamation contract on every reader.
#[derive(Clone, Debug)]
pub enum Reply {
    /// Insert/update outcome.
    Done(Result<(), IndexError>),
    /// Get outcome: a reference into the batch buffer on hit.
    Value(Option<ValueRef>),
    /// Remove outcome: was the key present?
    Removed(bool),
}

/// One acked response, delivered batch-at-a-time via [`BatchReplies`].
#[derive(Clone, Debug)]
pub struct Response {
    pub session: u64,
    pub shard: usize,
    /// The batch (= journal record) this response was acked under.
    pub seq: u64,
    pub arrival_ns: u64,
    /// Executor virtual clock at the ack point (after the batch fence).
    pub ack_ns: u64,
    /// Echo of [`ClientReq::stamp`].
    pub stamp: u64,
    pub op: SweepOp,
    pub reply: Reply,
}

/// A whole batch of acked responses plus the buffer that backs its
/// value refs. Delivered as one unit so the consumer that takes it owns
/// the retire: once every [`ValueRef`] has been resolved (or abandoned),
/// call [`BatchReplies::retire`] — the buffer enters the epoch limbo
/// list and is recycled only when no pinned consumer could still hold a
/// reference ([`BatchPool`] invariants).
#[derive(Debug)]
pub struct BatchReplies {
    pub shard: usize,
    pub seq: u64,
    pub responses: Vec<Response>,
    buf: BatchBuf,
}

impl BatchReplies {
    /// Release the batch buffer into the epoch reclamation list. Every
    /// delivered batch must eventually be retired or its buffer slot
    /// leaks (the pool's accounting makes that visible in tests).
    pub fn retire(self, pool: &BatchPool) {
        pool.retire(self.buf);
    }
}

/// The per-shard PM journal: a ring of one-line batch records. Record
/// `seq` of shard `s` lives at slot `seq % slots_per_shard` in shard
/// `s`'s region. Publishing a record is the service's *only* durability
/// barrier — one flush+fence per batch, not per operation — so a crash
/// sweep that finds an acked record missing has caught a real lost-ack
/// window (see [`testhooks::set_fence_dropped`]).
#[derive(Clone, Copy, Debug)]
pub struct JournalSpec {
    /// Base PM address; the caller must hand the service a region
    /// disjoint from the index's heap. Records are self-validating
    /// (magic + checksum), so an overlap is *detected* by the sweep
    /// rather than silently accepted.
    pub base: PmAddr,
    pub shards: usize,
    /// Ring capacity per shard. Size it above the run's batch count when
    /// the sweep must audit every acked record (no wrap).
    pub slots_per_shard: u64,
}

impl JournalSpec {
    /// Place the journal at the top of an arena of `arena_size` bytes —
    /// far above the allocator frontier for every configured workload.
    pub fn at_top(arena_size: u64, shards: usize, slots_per_shard: u64) -> Self {
        let bytes = shards as u64 * slots_per_shard * RECORD_BYTES;
        assert!(bytes < arena_size / 4, "journal would swallow the arena");
        Self {
            base: PmAddr((arena_size - bytes) & !(RECORD_BYTES - 1)),
            shards,
            slots_per_shard,
        }
    }

    pub fn bytes(&self) -> u64 {
        self.shards as u64 * self.slots_per_shard * RECORD_BYTES
    }

    fn slot_addr(&self, shard: usize, seq: u64) -> PmAddr {
        debug_assert!(shard < self.shards);
        let slot = self.shards as u64 * (seq % self.slots_per_shard) + shard as u64;
        PmAddr(self.base.0 + slot * RECORD_BYTES)
    }

    fn csum(shard: usize, seq: u64, count: u64, digest: u64) -> u64 {
        hash_key(
            (JOURNAL_MAGIC ^ shard as u64)
                .wrapping_add(hash_key(seq))
                .wrapping_add(hash_key(count).rotate_left(17))
                .wrapping_add(hash_key(digest).rotate_left(34)),
        )
    }

    /// Write and publish the record for batch `seq`: the group-commit
    /// edge. The record line is written, then made durable with a single
    /// flush+fence — one barrier for however many operations the batch
    /// carried. The armed `fence_dropped` canary skips the barrier
    /// (modelling a forgotten group-commit fence): under ADR the acked
    /// record then sits in the volatile cache and a power cut loses it,
    /// which the crash sweep must flag.
    pub fn publish(&self, ctx: &mut MemCtx, shard: usize, seq: u64, count: u64, digest: u64) {
        let a = self.slot_addr(shard, seq);
        ctx.write_u64(a, JOURNAL_MAGIC ^ shard as u64);
        ctx.write_u64(PmAddr(a.0 + 8), seq);
        ctx.write_u64(PmAddr(a.0 + 16), count);
        ctx.write_u64(PmAddr(a.0 + 24), digest);
        ctx.write_u64(PmAddr(a.0 + 32), Self::csum(shard, seq, count, digest));
        if !testhooks::fence_dropped() {
            // One line, one flush, one fence — for the whole batch.
            ctx.flush(a);
            ctx.fence();
        }
    }

    /// Read back record `seq` of `shard`, validating magic, sequence and
    /// checksum. `None` = the slot never became durable (or was torn):
    /// for an *acked* batch that is a lost-ack violation.
    pub fn read_record(&self, ctx: &mut MemCtx, shard: usize, seq: u64) -> Option<(u64, u64)> {
        let a = self.slot_addr(shard, seq);
        let magic = ctx.read_u64(a);
        let got_seq = ctx.read_u64(PmAddr(a.0 + 8));
        let count = ctx.read_u64(PmAddr(a.0 + 16));
        let digest = ctx.read_u64(PmAddr(a.0 + 24));
        let csum = ctx.read_u64(PmAddr(a.0 + 32));
        if magic != JOURNAL_MAGIC ^ shard as u64 || got_seq != seq {
            return None;
        }
        if csum != Self::csum(shard, seq, count, digest) {
            return None;
        }
        Some((count, digest))
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    pub shards: usize,
    /// Max requests coalesced under one batch fence.
    pub batch_max: usize,
    pub journal: JournalSpec,
    /// Batch buffer slots in the epoch-reclaimed pool. With consumers
    /// that retire inline (bench, sweep) `shards + 1` never blocks;
    /// cross-task consumers need head-room for their pin windows.
    pub pool_slots: usize,
    /// Pin slots for cross-task consumers ([`BatchPool::pin`]).
    pub pool_participants: usize,
}

struct ShardState {
    queue: Mutex<VecDeque<ClientReq>>,
    seq: AtomicU64,
    /// Requests acked by this shard across its lifetime (conservation:
    /// the suite checks `sum(acked) == requests enqueued`).
    acked: AtomicU64,
}

/// Per-`run_shard` executor statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardRunStats {
    /// Requests acked.
    pub ops: u64,
    /// Batches published (= journal records written).
    pub batches: u64,
    /// Durability barriers issued — equals `batches` unless the
    /// `fence_dropped` canary is armed.
    pub fences: u64,
    /// Requests observed whose canonical route is NOT this shard: the
    /// routing audit. Always 0 in a healthy service; the bench cell
    /// turns any nonzero count into a hard error (the misroute gate).
    pub misroutes: u64,
}

/// A dequeued, not-yet-executed batch (see [`Service::begin_batch`]).
pub struct PreparedBatch {
    pub reqs: Vec<ClientReq>,
}

/// The sharded batched front-end. One instance serves one index; shard
/// executors are driven externally (as cooperative tasks, or stepwise by
/// the crash sweep) so the harness owns scheduling and crash timing.
pub struct Service {
    index: Arc<dyn PersistentIndex>,
    cfg: ServiceConfig,
    shards: Vec<ShardState>,
    pool: BatchPool,
}

impl Service {
    pub fn new(index: Arc<dyn PersistentIndex>, cfg: ServiceConfig) -> Self {
        assert!(cfg.shards >= 1 && cfg.batch_max >= 1);
        assert_eq!(cfg.journal.shards, cfg.shards, "journal/shard mismatch");
        let shards = (0..cfg.shards)
            .map(|_| ShardState {
                queue: Mutex::new(VecDeque::new()),
                seq: AtomicU64::new(0),
                acked: AtomicU64::new(0),
            })
            .collect();
        let pool = BatchPool::new(cfg.pool_slots, cfg.pool_participants);
        Self {
            index,
            cfg,
            shards,
            pool,
        }
    }

    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    pub fn pool(&self) -> &BatchPool {
        &self.pool
    }

    pub fn index(&self) -> &Arc<dyn PersistentIndex> {
        &self.index
    }

    /// Route and enqueue one request; returns the shard it landed on.
    /// Queues are arrival-ordered by construction when the caller
    /// enqueues in nondecreasing `arrival_ns` order (the open-loop
    /// generator emits arrivals monotonically).
    pub fn enqueue(&self, req: ClientReq) -> usize {
        let shard = route(req.op.key(), self.cfg.shards);
        self.shards[shard].queue.lock().push_back(req);
        shard
    }

    /// Requests acked by shard `s` so far.
    pub fn acked(&self, shard: usize) -> u64 {
        self.shards[shard].acked.load(Ordering::SeqCst)
    }

    /// Form the next batch for `shard`: wait (in virtual time) for the
    /// head request's arrival, then take every already-arrived request
    /// up to `batch_max`. Returns `None` when the queue is empty. `t0`
    /// is the executor's phase-start clock — arrivals are relative to it.
    pub fn begin_batch(&self, ctx: &mut MemCtx, shard: usize, t0: u64) -> Option<PreparedBatch> {
        testhooks::maybe_inflate_dispatch(ctx);
        let mut q = self.shards[shard].queue.lock();
        let head_due = t0.saturating_add(q.front()?.arrival_ns);
        if head_due > ctx.now() {
            // Open-loop idle: the executor sleeps on its virtual clock
            // until the next request arrives.
            ctx.charge_compute(head_due - ctx.now());
        }
        let mut reqs = Vec::with_capacity(self.cfg.batch_max);
        while reqs.len() < self.cfg.batch_max {
            match q.front() {
                Some(r) if t0.saturating_add(r.arrival_ns) <= ctx.now() => {
                    reqs.push(q.pop_front().unwrap());
                }
                _ => break,
            }
        }
        debug_assert!(!reqs.is_empty());
        Some(PreparedBatch { reqs })
    }

    /// Execute a prepared batch and ack it: run the operations through
    /// the index's batch entry point, copy `get` payloads into a pooled
    /// batch buffer, publish **one** journal record under **one**
    /// flush+fence, and hand the acked responses to `deliver` (which
    /// owns the buffer's retirement — see [`BatchReplies::retire`]).
    pub fn commit_batch(
        &self,
        ctx: &mut MemCtx,
        shard: usize,
        batch: PreparedBatch,
        stats: &mut ShardRunStats,
        deliver: &mut dyn FnMut(&mut MemCtx, &BatchPool, BatchReplies),
    ) {
        let state = &self.shards[shard];
        // Routing audit: every request must canonically route here.
        for r in &batch.reqs {
            if route_clean(r.op.key(), self.cfg.shards) != shard {
                stats.misroutes += 1;
            }
        }

        let buf = self.acquire_buf();
        let ops: Vec<BatchOp<'_>> = batch
            .reqs
            .iter()
            .map(|r| match &r.op {
                SweepOp::Insert(k, v) => BatchOp::Insert(*k, v.as_slice()),
                SweepOp::Update(k, v) => BatchOp::Update(*k, v.as_slice()),
                SweepOp::Get(k) => BatchOp::Get(*k),
                SweepOp::Remove(k) => BatchOp::Remove(*k),
            })
            .collect();
        let mut out = Vec::with_capacity(ops.len());
        self.index.run_batch(ctx, &ops, &mut out);
        assert_eq!(out.len(), ops.len(), "index run_batch dropped results");

        // Digest the acked results (the journal binds them durably) and
        // move get payloads into the epoch-managed batch buffer.
        let mut enc: Vec<u8> = Vec::with_capacity(out.len() * 16);
        let mut replies = Vec::with_capacity(out.len());
        for (req, res) in batch.reqs.iter().zip(out.into_iter()) {
            enc.extend_from_slice(&req.op.key().to_le_bytes());
            let reply = match res {
                BatchResult::Inserted(r) => {
                    enc.push(0x10 | err_tag(&r));
                    Reply::Done(r)
                }
                BatchResult::Updated(r) => {
                    enc.push(0x20 | err_tag(&r));
                    Reply::Done(r)
                }
                BatchResult::Got(Some(bytes)) => {
                    enc.push(0x31);
                    enc.extend_from_slice(&fingerprint(&bytes).to_le_bytes());
                    Reply::Value(Some(self.pool.append(&buf, &bytes)))
                }
                BatchResult::Got(None) => {
                    enc.push(0x30);
                    Reply::Value(None)
                }
                BatchResult::Removed(hit) => {
                    enc.push(0x40 | u64::from(hit) as u8);
                    Reply::Removed(hit)
                }
            };
            replies.push(reply);
        }
        let digest = fingerprint(&enc);
        let count = batch.reqs.len() as u64;
        let seq = state.seq.fetch_add(1, Ordering::SeqCst);

        // The coalesced publication: one record, one flush, one fence —
        // the whole batch's ack durability in a single barrier.
        self.cfg.journal.publish(ctx, shard, seq, count, digest);
        if !testhooks::fence_dropped() {
            stats.fences += 1;
        }

        // Ack: responses exist only after the publication barrier.
        let ack_ns = ctx.now();
        let responses: Vec<Response> = batch
            .reqs
            .into_iter()
            .zip(replies)
            .map(|(req, reply)| Response {
                session: req.session,
                shard,
                seq,
                arrival_ns: req.arrival_ns,
                ack_ns,
                stamp: req.stamp,
                op: req.op,
                reply,
            })
            .collect();
        state.acked.fetch_add(count, Ordering::SeqCst);
        stats.ops += count;
        stats.batches += 1;
        deliver(
            ctx,
            &self.pool,
            BatchReplies {
                shard,
                seq,
                responses,
                buf,
            },
        );
    }

    fn acquire_buf(&self) -> BatchBuf {
        let mut spins = 0u64;
        loop {
            if let Some(b) = self.pool.acquire() {
                return b;
            }
            // Cooperative wait for a consumer to retire a batch. Without
            // a scheduler nothing can retire concurrently, so a long
            // spin is a sizing bug, not a transient.
            spins += 1;
            assert!(
                schedhook::active() || spins < 1_000_000,
                "batch buffer pool exhausted with no scheduler to run consumers"
            );
            schedhook::spin_wait();
        }
    }

    /// One executor iteration: form and commit the next batch. Returns
    /// `false` when the shard's queue is empty. `on_invoke` runs after
    /// batch formation, before execution (the lin-check stamps Wing–Gong
    /// invocation times there); `deliver` receives the acked batch.
    pub fn run_shard_step(
        &self,
        ctx: &mut MemCtx,
        shard: usize,
        t0: u64,
        stats: &mut ShardRunStats,
        on_invoke: &mut dyn FnMut(&mut [ClientReq]),
        deliver: &mut dyn FnMut(&mut MemCtx, &BatchPool, BatchReplies),
    ) -> bool {
        let Some(mut batch) = self.begin_batch(ctx, shard, t0) else {
            return false;
        };
        on_invoke(&mut batch.reqs);
        self.commit_batch(ctx, shard, batch, stats, deliver);
        true
    }

    /// Drain `shard`'s queue to completion (the executor task body):
    /// repeated [`Self::run_shard_step`] with `t0` captured at entry.
    pub fn run_shard(
        &self,
        ctx: &mut MemCtx,
        shard: usize,
        on_invoke: &mut dyn FnMut(&mut [ClientReq]),
        deliver: &mut dyn FnMut(&mut MemCtx, &BatchPool, BatchReplies),
    ) -> ShardRunStats {
        let t0 = ctx.now();
        let mut stats = ShardRunStats::default();
        while self.run_shard_step(ctx, shard, t0, &mut stats, on_invoke, deliver) {}
        stats
    }
}

fn err_tag(r: &Result<(), IndexError>) -> u8 {
    match r {
        Ok(()) => 0,
        Err(IndexError::DuplicateKey) => 1,
        Err(IndexError::NotFound) => 2,
        Err(IndexError::OutOfMemory) => 3,
        Err(IndexError::ValueTooLarge) => 4,
    }
}

/// Persistence-domain helper: does this device require explicit flushes
/// for ack durability? (Kept for documentation symmetry; the journal
/// issues the flush unconditionally — redundant under eADR, required
/// under ADR — so the publication discipline is domain-independent.)
pub fn ack_needs_flush(domain: PersistenceDomain) -> bool {
    domain == PersistenceDomain::Adr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_covers_all_shards() {
        let shards = 4;
        let mut seen = [false; 4];
        for k in 1..=256u64 {
            let s = route_clean(k, shards);
            assert!(s < shards);
            assert_eq!(s, route_clean(k, shards));
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "some shard owns no keys");
    }

    #[test]
    fn journal_records_roundtrip_and_reject_corruption() {
        let dev = spash_pmem::PmDevice::new(spash_pmem::PmConfig {
            arena_size: 8 << 20,
            ..spash_pmem::PmConfig::small_test()
        });
        let mut ctx = dev.ctx();
        let j = JournalSpec::at_top(8 << 20, 2, 16);
        j.publish(&mut ctx, 1, 7, 3, 0xfeed);
        assert_eq!(j.read_record(&mut ctx, 1, 7), Some((3, 0xfeed)));
        // Wrong shard, wrong seq: self-validation refuses.
        assert_eq!(j.read_record(&mut ctx, 0, 7), None);
        assert_eq!(j.read_record(&mut ctx, 1, 8), None);
    }

    #[test]
    fn at_top_slots_stay_inside_the_arena_and_distinct() {
        let j = JournalSpec::at_top(64 << 20, 4, 32);
        let mut seen = std::collections::HashSet::new();
        for s in 0..4 {
            for q in 0..32u64 {
                let a = j.slot_addr(s, q);
                assert!(a.0 >= j.base.0 && a.0 + RECORD_BYTES <= 64 << 20);
                assert!(seen.insert(a.0), "overlapping journal slots");
            }
        }
    }
}
