//! Crash-point sweep through the batched service path.
//!
//! The index-level sweep (`spash_index_api::crashpoint`) proves per-op
//! durability; this sweep proves the *service contract*: a response is
//! acked only after its batch's coalesced journal fence, so
//!
//! 1. **acked ⇒ durable** — for every batch whose responses were
//!    delivered before the crash, the journal record must validate on
//!    the post-crash image, in *both* persistence domains (the
//!    publication barrier is domain-robust: one flush+fence per batch).
//!    The `fence_dropped` canary breaks exactly this — the acked record
//!    sits dirty in the volatile cache and an ADR power cut reverts it —
//!    and the named test `fence_dropped_canary_is_caught_by_the_adr_sweep`
//!    requires this audit to flag it.
//! 2. **un-acked ⇒ atomic** — under eADR ([`CheckLevel::Exact`]) every
//!    key outside the single in-flight batch must recover exactly to the
//!    acked prefix; a key touched by the in-flight batch may be observed
//!    at any *batch-prefix* state (the underlying index's per-op
//!    atomicity, widened batch-wise because a crash can land between any
//!    two operations of the batch, or during the publication itself).
//!
//! Mechanically it is the same record-then-sweep procedure as the index
//! sweep, with the workload driven through [`crate::Service`]: enqueue
//! everything with arrival 0, drain the shards round-robin (one batch
//! per shard per turn), crash at media write `k`, recover, audit.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use spash_index_api::crashpoint::{
    apply_shadow, gen_workload, panic_text, schedule, CheckLevel, CrashPointStat, CrashTarget,
    SweepOp, SweepReport,
};
use spash_pmem::{CrashPointHit, MemCtx, PersistenceDomain, PmConfig, PmDevice};

use crate::{ClientReq, JournalSpec, Service, ServiceConfig, ShardRunStats};

/// Service sweep parameters.
pub struct ServiceSweepConfig {
    /// Platform config; `fidelity` must be `Full`.
    pub pm: PmConfig,
    pub seed: u64,
    pub n_ops: u64,
    pub key_space: u64,
    pub shards: usize,
    /// Max requests coalesced under one batch fence.
    pub batch_max: usize,
    pub exhaustive_limit: u64,
    pub max_points: u64,
    pub check: CheckLevel,
}

impl ServiceSweepConfig {
    /// CI-scale config: same platform knobs as the index sweep's
    /// `SweepConfig::ci` (small cache so evictions happen early), a
    /// slightly smaller workload because every injected point replays
    /// the whole batched run.
    pub fn ci(domain: PersistenceDomain) -> Self {
        use spash_pmem::CrashFidelity;
        let mut pm = PmConfig::small_test();
        pm.arena_size = 48 << 20;
        pm.cache_capacity = 256 << 10;
        pm.domain = domain;
        pm.fidelity = CrashFidelity::Full;
        Self {
            pm,
            seed: 0xC0FFEE,
            n_ops: 400,
            key_space: 160,
            shards: 2,
            batch_max: 4,
            exhaustive_limit: 4_000,
            max_points: 120,
            check: match domain {
                PersistenceDomain::Eadr => CheckLevel::Exact,
                PersistenceDomain::Adr => CheckLevel::NoCorruption,
            },
        }
    }

    /// Debug-test-scale config (the canary tests run three full sweeps
    /// in one `cargo test` binary).
    pub fn test_small(domain: PersistenceDomain) -> Self {
        Self {
            n_ops: 160,
            key_space: 64,
            exhaustive_limit: 48,
            max_points: 48,
            ..Self::ci(domain)
        }
    }

    fn service_config(&self) -> ServiceConfig {
        ServiceConfig {
            shards: self.shards,
            batch_max: self.batch_max,
            // One ring slot per workload op: the run can never wrap, so
            // every acked record of the run stays auditable.
            journal: JournalSpec::at_top(self.pm.arena_size, self.shards, self.n_ops),
            pool_slots: self.shards + 1,
            pool_participants: 0,
        }
    }
}

/// One acked batch, as observed at the delivery point.
struct AckedBatch {
    shard: usize,
    seq: u64,
    /// Workload op indices the batch carried (the driver stores the op
    /// index in [`ClientReq::session`]).
    ops: Vec<usize>,
}

/// What one (possibly crashed) service run observed.
#[derive(Default)]
struct RunLog {
    acked: Vec<AckedBatch>,
    /// The batch formed but not yet delivered when the run ended — the
    /// single in-flight batch.
    in_flight: Option<Vec<usize>>,
}

fn fail(report: &mut SweepReport, msg: String) {
    if report.failures.len() < SweepReport::MAX_FAILURES {
        report.failures.push(msg);
    }
    report.failure_count += 1;
}

/// Drive the whole workload through a fresh service on `ctx`, recording
/// acked batches and the in-flight batch into `log`. Panics with
/// [`CrashPointHit`] when the armed fault plan fires.
fn drive(svc: &Service, ctx: &mut MemCtx, ops: &[SweepOp], log: &RefCell<RunLog>) {
    for (i, op) in ops.iter().enumerate() {
        svc.enqueue(ClientReq::new(i as u64, 0, op.clone()));
    }
    let t0 = ctx.now();
    let mut stats = vec![ShardRunStats::default(); svc.config().shards];
    let mut on_invoke = |reqs: &mut [ClientReq]| {
        log.borrow_mut().in_flight = Some(reqs.iter().map(|r| r.session as usize).collect());
    };
    let shards = svc.config().shards;
    let mut active = true;
    while active {
        active = false;
        for shard in 0..shards {
            let mut deliver = |_ctx: &mut MemCtx, pool: &crate::pool::BatchPool, replies: crate::BatchReplies| {
                let mut l = log.borrow_mut();
                l.acked.push(AckedBatch {
                    shard: replies.shard,
                    seq: replies.seq,
                    ops: replies.responses.iter().map(|r| r.session as usize).collect(),
                });
                l.in_flight = None;
                replies.retire(pool);
            };
            if svc.run_shard_step(ctx, shard, t0, &mut stats[shard], &mut on_invoke, &mut deliver)
            {
                active = true;
            }
        }
    }
    // A healthy sweep run must never observe a misroute.
    assert!(
        stats.iter().all(|s| s.misroutes == 0),
        "routing audit tripped during sweep run"
    );
}

/// Run the record-then-sweep procedure through the service layer for one
/// index target.
pub fn run_service_sweep(target: &CrashTarget, cfg: &ServiceSweepConfig) -> SweepReport {
    spash_pmem::fault::silence_crash_point_panics();
    let ops = gen_workload(cfg.seed, cfg.n_ops, cfg.key_space);
    let mut report = SweepReport {
        target: format!("service/{}", target.name),
        domain: cfg.pm.domain,
        total_writes: 0,
        points: Vec::new(),
        unrecovered: 0,
        failures: Vec::new(),
        failure_count: 0,
    };

    // Record pass: count the batched run's media writes (index writes
    // plus one journal line per batch) and gate the sanitizer over the
    // uninjected run.
    let name = report.target.clone();
    let total_writes = {
        let dev = PmDevice::new(cfg.pm.clone());
        let mut ctx = dev.ctx();
        let idx: Arc<dyn spash_index_api::PersistentIndex> = Arc::from((target.format)(&mut ctx));
        let svc = Service::new(idx, cfg.service_config());
        dev.faults().reset();
        let log = RefCell::new(RunLog::default());
        drive(&svc, &mut ctx, &ops, &log);
        let l = log.borrow();
        assert!(l.in_flight.is_none(), "uninjected run left a batch in flight");
        let acked_ops: usize = l.acked.iter().map(|b| b.ops.len()).sum();
        if acked_ops as u64 != cfg.n_ops {
            fail(
                &mut report,
                format!("{name}: record pass acked {acked_ops} of {} ops", cfg.n_ops),
            );
        }
        if let Some(san) = dev.san() {
            san.final_check();
            let r = san.report();
            for v in &r.violations {
                fail(&mut report, format!("{name}: sanitizer (record pass): {v}"));
            }
            if r.dropped > 0 {
                fail(
                    &mut report,
                    format!(
                        "{name}: sanitizer (record pass): {} further violation(s) dropped",
                        r.dropped
                    ),
                );
            }
        }
        dev.faults().media_writes()
    };
    report.total_writes = total_writes;

    for k in schedule(total_writes, cfg.exhaustive_limit, cfg.max_points) {
        sweep_one(target, cfg, &ops, k, &mut report);
    }
    report
}

/// Inject a crash at media write `k` of the batched run, recover, audit.
fn sweep_one(
    target: &CrashTarget,
    cfg: &ServiceSweepConfig,
    ops: &[SweepOp],
    k: u64,
    report: &mut SweepReport,
) {
    let name = report.target.clone();
    let dev = PmDevice::new(cfg.pm.clone());
    let mut ctx = dev.ctx();
    let idx: Arc<dyn spash_index_api::PersistentIndex> = Arc::from((target.format)(&mut ctx));
    let svc = Service::new(idx, cfg.service_config());
    dev.faults().reset();
    dev.faults().arm(k);

    let log = RefCell::new(RunLog::default());
    let outcome = catch_unwind(AssertUnwindSafe(|| drive(&svc, &mut ctx, ops, &log)));
    dev.faults().disarm();
    drop(svc); // volatile service + index state dies with the "machine"

    match outcome {
        Ok(()) => {
            report.points.push(CrashPointStat {
                write_k: k,
                committed_ops: 0,
                recovered: false,
                recovery_ns: 0,
                reverted_lines: 0,
                flushed_lines: 0,
                leaked_allocs: 0,
                audit_ok: true,
            });
            fail(
                report,
                format!(
                    "{name}: write {k} never fired on replay ({} of {} writes) — \
                     non-deterministic batched run",
                    dev.faults().media_writes(),
                    report.total_writes,
                ),
            );
            return;
        }
        Err(payload) if payload.downcast_ref::<CrashPointHit>().is_some() => {}
        Err(payload) => {
            let msg = panic_text(payload.as_ref());
            fail(
                report,
                format!("{name}: replay at write {k} panicked outside the fault plan: {msg}"),
            );
            return;
        }
    }

    let crash = dev.simulate_power_failure();
    if let Some(san) = dev.san() {
        san.clear_violations();
    }
    let run = log.into_inner();
    let committed: u64 = run.acked.iter().map(|b| b.ops.len() as u64).sum();
    let mut stat = CrashPointStat {
        write_k: k,
        committed_ops: committed,
        recovered: false,
        recovery_ns: 0,
        reverted_lines: crash.reverted_lines.len() as u64,
        flushed_lines: crash.flushed_lines.len() as u64,
        leaked_allocs: 0,
        audit_ok: true,
    };

    // Audit 1, both domains: every acked batch's journal record must
    // validate on the post-crash image — acked ⇒ durable. This needs no
    // index recovery, so a declined recovery cannot mask a lost ack.
    let journal = cfg.service_config().journal;
    {
        let mut rctx = dev.ctx();
        for b in &run.acked {
            match journal.read_record(&mut rctx, b.shard, b.seq) {
                Some((count, _digest)) if count == b.ops.len() as u64 => {}
                got => {
                    fail(
                        report,
                        format!(
                            "{name}: acked batch (shard {}, seq {}) not durable after crash at \
                             write {k}: journal record is {:?}, expected count {}",
                            b.shard,
                            b.seq,
                            got.map(|(c, _)| c),
                            b.ops.len(),
                        ),
                    );
                }
            }
        }
    }

    // Audit 2: recover the index and (under Exact) check contents.
    let mut rctx = dev.ctx();
    let recovery = catch_unwind(AssertUnwindSafe(|| (target.recover)(&mut rctx)));
    let recovery = match recovery {
        Ok(r) => r,
        Err(payload) => {
            let msg = panic_text(payload.as_ref());
            fail(
                report,
                format!("{name}: recovery panicked at write {k} ({committed} ops acked): {msg}"),
            );
            report.points.push(stat);
            return;
        }
    };

    match recovery {
        None => {
            if cfg.check == CheckLevel::Exact {
                fail(
                    report,
                    format!("{name}: unrecoverable image at write {k} ({committed} ops acked)"),
                );
            }
            report.unrecovered += 1;
        }
        Some(rec) => {
            stat.recovered = true;
            stat.leaked_allocs = rec.leaked_allocs;
            if let Some(err) = rec.audit_error {
                stat.audit_ok = false;
                if cfg.check == CheckLevel::Exact {
                    fail(report, format!("{name}: audit failed at write {k}: {err}"));
                }
            }
            if cfg.check == CheckLevel::Exact {
                check_recovered(&name, cfg, ops, &run, k, rec.index.as_ref(), &mut rctx, report);
            }
            if let Some(san) = dev.san() {
                san.final_check();
                let r = san.report();
                for v in &r.violations {
                    fail(report, format!("{name}: sanitizer (recovery at write {k}): {v}"));
                }
            }
        }
    }
    report.points.push(stat);
}

/// The eADR content check: acked prefix exact, in-flight batch allowed at
/// any batch-prefix state.
#[allow(clippy::too_many_arguments)]
fn check_recovered(
    name: &str,
    cfg: &ServiceSweepConfig,
    ops: &[SweepOp],
    run: &RunLog,
    k: u64,
    rec: &dyn spash_index_api::PersistentIndex,
    ctx: &mut MemCtx,
    report: &mut SweepReport,
) {
    // Per-key effects are single-shard (hash routing) and each shard
    // serves its queue in enqueue order, so applying the acked ops in
    // workload order reproduces every key's acked state.
    let mut acked_idx: Vec<usize> = run.acked.iter().flat_map(|b| b.ops.iter().copied()).collect();
    acked_idx.sort_unstable();
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    for &i in &acked_idx {
        apply_shadow(&mut model, &ops[i]);
    }

    // The in-flight batch widens the per-key allowance: a crash can land
    // between any two of its operations (or during the publication, when
    // all of them have applied), so a touched key may be observed at the
    // state after any prefix of the batch.
    let in_flight = run.in_flight.as_deref().unwrap_or(&[]);
    let mut allowed: HashMap<u64, Vec<Option<Vec<u8>>>> = HashMap::new();
    {
        let mut cursor = model.clone();
        for &i in in_flight {
            apply_shadow(&mut cursor, &ops[i]);
            let key = ops[i].key();
            allowed
                .entry(key)
                .or_default()
                .push(cursor.get(&key).cloned());
        }
    }

    let mut buf = Vec::new();
    for key in 1..=cfg.key_space + 3 {
        buf.clear();
        let actual = rec.get(ctx, key, &mut buf).then(|| buf.clone());
        let expect = model.get(&key);
        let ok = actual.as_ref() == expect
            || allowed
                .get(&key)
                .is_some_and(|states| states.iter().any(|s| s.as_ref() == actual.as_ref()));
        if !ok {
            fail(
                report,
                format!(
                    "{name}: write {k} ({} ops acked): key {key} recovered as {:?}B, expected \
                     acked state {:?}B{}",
                    run.acked.iter().map(|b| b.ops.len()).sum::<usize>(),
                    actual.as_ref().map(Vec::len),
                    expect.map(Vec::len),
                    if allowed.contains_key(&key) {
                        " (or an in-flight batch prefix state)"
                    } else {
                        ""
                    },
                ),
            );
        }
    }
}
