//! Mutation canaries for the service layer. Each hook deliberately
//! breaks one invariant the verification stack claims to enforce; a
//! named test or gate must deterministically catch each one, proving the
//! harness still detects that class of real bug. All hooks are
//! process-global and default-off: tests that arm one must serialize on
//! a shared lock and restore the previous state.

use std::sync::atomic::{AtomicBool, Ordering};

use spash_pmem::{MemCtx, PmAddr};

/// Drop the batch publication barrier: the journal record is written but
/// neither flushed nor fenced — the forgotten group-commit fence. Under
/// ADR the acked record can sit dirty in the volatile cache and a power
/// cut reverts it: acked-but-lost responses, which the service crash
/// sweep's journal audit must flag (`sweep::run_service_sweep`, and the
/// named test `fence_dropped_canary_is_caught_by_the_adr_sweep`).
static FENCE_DROPPED: AtomicBool = AtomicBool::new(false);

/// Shift every route by one shard: requests land on a shard that does
/// not own their key. Per-key order is *preserved* (the shift is
/// consistent), so linearizability cannot catch this — the executor's
/// routing audit ([`crate::ShardRunStats::misroutes`]) must, and the
/// bench cell turns a nonzero audit into a hard gate failure.
static MISROUTE: AtomicBool = AtomicBool::new(false);

/// Ignore consumer pins when recycling retired batch buffers: the
/// classic premature-reclamation window. A pinned reader's `ValueRef`
/// gets recycled under its feet; [`crate::pool::BatchPool::resolve`]'s
/// generation check must report the violation
/// (`reclamation_window_canary_is_caught`).
static RECLAIM_EARLY: AtomicBool = AtomicBool::new(false);

/// Burst identity RMWs on one shared PM line in the dispatch path:
/// no data changes, but each RMW is a modelled line-ownership transfer —
/// the signature of accidental cross-shard contention. Virtual time and
/// counters inflate, so the exact `spash-bench compare` gate against
/// `bench/baseline_service.json` must flip
/// (`latency_inflation_canary_flips_the_compare_gate`).
static INFLATE_DISPATCH: AtomicBool = AtomicBool::new(false);

/// Arm/disarm the dropped-batch-fence canary; returns the old state.
pub fn set_fence_dropped(on: bool) -> bool {
    FENCE_DROPPED.swap(on, Ordering::SeqCst)
}

pub fn fence_dropped() -> bool {
    FENCE_DROPPED.load(Ordering::SeqCst)
}

/// Arm/disarm the cross-shard misroute canary; returns the old state.
pub fn set_misroute(on: bool) -> bool {
    MISROUTE.swap(on, Ordering::SeqCst)
}

pub fn misroute() -> bool {
    MISROUTE.load(Ordering::SeqCst)
}

/// Arm/disarm the premature-reclamation canary; returns the old state.
pub fn set_reclaim_early(on: bool) -> bool {
    RECLAIM_EARLY.swap(on, Ordering::SeqCst)
}

pub fn reclaim_early() -> bool {
    RECLAIM_EARLY.load(Ordering::SeqCst)
}

/// Arm/disarm the dispatch latency-inflation canary; returns the old state.
pub fn set_inflate_dispatch(on: bool) -> bool {
    INFLATE_DISPATCH.swap(on, Ordering::SeqCst)
}

pub fn inflate_dispatch() -> bool {
    INFLATE_DISPATCH.load(Ordering::SeqCst)
}

/// The dispatch-path injection point for the inflation canary (called
/// from [`crate::Service::begin_batch`]). The or-with-0 leaves the data
/// untouched; the cost is pure modelled contention.
pub fn maybe_inflate_dispatch(ctx: &mut MemCtx) {
    if inflate_dispatch() {
        for _ in 0..16 {
            ctx.fetch_or_u64(PmAddr(64), 0);
        }
    }
}
