//! CCEH — Cacheline-Conscious Extendible Hashing (Nam et al., FAST'19),
//! as characterized by the Spash paper's evaluation (§VI):
//!
//! * extendible hashing with **coarse 16 KiB segments** (vs Spash's 256 B):
//!   a split rehashes a thousand slots, which is why resizing hurts;
//! * linear probing within a 4-cacheline (16-slot) window, which caps the
//!   achievable load factor (paper Fig 9 shows CCEH lowest);
//! * a **per-segment reader-writer lock maintained in PM** — even search
//!   operations dirty the lock's cacheline ("CCEH performs poorly in
//!   read-intensive workloads as it employs the read-write locks",
//!   "produce PM writes to maintain read locks");
//! * lazy deletion via tombstones.
//!
//! Per the paper's methodology, persistence flushes are removed (eADR) and
//! variable-size values go out-of-place behind pointers. One deviation:
//! the directory lives in DRAM here (like every other index in this
//! repository) so that directory traffic does not confound the
//! segment-level comparison.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spash_pmem::sync::RwLock;
use spash_alloc::PmAllocator;
use spash_index_api::crashpoint::{CrashTarget, Recovery};
use spash_index_api::{hash_key, IndexError, PersistentIndex};
use spash_pmem::{MemCtx, PmAddr};
#[cfg(test)]
use spash_pmem::PmDevice;

use crate::common::{self, PmRwLock, EMPTY_KEY, TOMBSTONE};

/// Segment size: 64 B header + 1020 16-byte slots.
const SEG_BYTES: u64 = 16384;
const SLOTS: u64 = (SEG_BYTES - 64) / 16;
/// Linear-probing window: 4 cachelines of slots.
const PROBE: u64 = 16;
/// Root-block magic ("CCEHDir1"): says "this heap holds a CCEH".
const ROOT_MAGIC: u64 = 0x4343_4548_4469_7231;
const ROOT_LEN: u64 = 64;
/// Segment header, in the 64-byte area before the slots. Word 0 is the PM
/// read-write lock; words 1 and 2 carry the segment's identity:
/// `meta = MAGIC1:16 | local_depth:8 | prefix:40` and a second full-word
/// magic. Both must match for recovery to accept a region as a committed
/// segment, so a torn header (or a recycled region) reads as uncommitted.
const SEG_MAGIC1: u64 = 0xCCE4;
const SEG_MAGIC2: u64 = 0x4343_4548_5365_6732;
const PREFIX_MASK: u64 = (1 << 40) - 1;

struct Seg {
    addr: PmAddr,
    lock: PmRwLock,
}

#[inline]
fn pack_seg_meta(ld: u8, prefix: u64) -> u64 {
    debug_assert!(prefix <= PREFIX_MASK);
    SEG_MAGIC1 << 48 | u64::from(ld) << 40 | prefix
}

/// Publish (or re-stamp) a segment's identity header.
fn write_seg_header(ctx: &mut MemCtx, seg: PmAddr, ld: u8, prefix: u64) {
    ctx.write_u64(PmAddr(seg.0 + 8), pack_seg_meta(ld, prefix));
    ctx.write_u64(PmAddr(seg.0 + 16), SEG_MAGIC2);
    ctx.flush_range(PmAddr(seg.0 + 8), 16);
    ctx.fence();
}

impl Seg {
    fn slot_addr(&self, i: u64) -> PmAddr {
        PmAddr(self.addr.0 + 64 + (i % SLOTS) * 16)
    }
}

struct Dir {
    depth: u32,
    /// One entry per directory slot: (segment, local depth).
    entries: Vec<(Arc<Seg>, u8)>,
}

/// The CCEH baseline.
pub struct Cceh {
    alloc: Arc<PmAllocator>,
    dir: RwLock<Dir>,
    entries: AtomicU64,
    n_segs: AtomicU64,
}

impl Cceh {
    /// Build with `2^depth` initial segments on an already-formatted
    /// allocator.
    pub fn new(
        ctx: &mut MemCtx,
        alloc: Arc<PmAllocator>,
        depth: u32,
    ) -> Result<Self, IndexError> {
        let lock_ns = ctx.device().config().cost.lock_ns;
        let n = 1usize << depth;
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let seg = Self::alloc_seg(ctx, &alloc, lock_ns)?;
            write_seg_header(ctx, seg.addr, depth as u8, i as u64);
            entries.push((seg, depth as u8));
        }
        // Root magic last: a crash mid-format recovers as "no CCEH here".
        let (root, root_len) = alloc.reserved();
        if root_len >= ROOT_LEN {
            ctx.write_u64(root, ROOT_MAGIC);
            ctx.flush(root);
            ctx.fence();
        }
        Ok(Self {
            alloc,
            dir: RwLock::new(Dir { depth, entries }),
            entries: AtomicU64::new(0),
            n_segs: AtomicU64::new(n as u64),
        })
    }

    /// Convenience: format a fresh device.
    pub fn format(ctx: &mut MemCtx, depth: u32) -> Result<Self, IndexError> {
        let alloc = Arc::new(PmAllocator::format(ctx, ROOT_LEN));
        Self::new(ctx, alloc, depth)
    }

    fn alloc_seg(
        ctx: &mut MemCtx,
        alloc: &PmAllocator,
        lock_ns: u64,
    ) -> Result<Arc<Seg>, IndexError> {
        let addr = alloc
            .alloc_region(ctx, SEG_BYTES)
            .map_err(|_| IndexError::OutOfMemory)?;
        // Zero the slot array (fresh regions may be recycled space).
        let zeros = [0u8; 256];
        for off in (0..SEG_BYTES).step_by(256) {
            ctx.ntstore_bytes(PmAddr(addr.0 + off), &zeros);
        }
        Ok(Arc::new(Seg {
            addr,
            lock: PmRwLock::new(addr, lock_ns),
        }))
    }

    fn route(&self, ctx: &mut MemCtx, h: u64) -> (Arc<Seg>, u8, u32) {
        ctx.charge_dram_cached();
        let d = self.dir.read();
        let idx = if d.depth == 0 {
            0
        } else {
            (h >> (64 - d.depth)) as usize
        };
        let (seg, ld) = &d.entries[idx];
        (Arc::clone(seg), *ld, d.depth)
    }

    /// Probe for `key`; returns (slot index, value word).
    fn probe_find(&self, ctx: &mut MemCtx, seg: &Seg, h: u64, key: u64) -> Option<(u64, u64)> {
        let start = h % SLOTS;
        for i in 0..PROBE {
            let s = start + i;
            let k = ctx.read_u64(seg.slot_addr(s));
            if k == EMPTY_KEY {
                return None;
            }
            if k == key {
                let v = ctx.read_u64(PmAddr(seg.slot_addr(s).0 + 8));
                return Some((s, v));
            }
        }
        None
    }

    /// Probe for a free (empty or tombstoned) slot.
    fn probe_free(&self, ctx: &mut MemCtx, seg: &Seg, h: u64) -> Option<u64> {
        let start = h % SLOTS;
        (0..PROBE)
            .map(|i| start + i)
            .find(|&s| matches!(ctx.read_u64(seg.slot_addr(s)), EMPTY_KEY | TOMBSTONE))
    }

    /// Split the segment currently routed for `h`.
    ///
    /// Lock order is always segment-then-directory (the same order every
    /// base operation uses), so there is no ABBA deadlock: the doubling
    /// path takes only the directory lock.
    fn split(&self, ctx: &mut MemCtx, h: u64) -> Result<(), IndexError> {
        ctx.stats_span(spash_pmem::SPAN_SPLIT, |ctx| self.split_impl(ctx, h))
    }

    fn split_impl(&self, ctx: &mut MemCtx, h: u64) -> Result<(), IndexError> {
        let lock_ns = ctx.device().config().cost.lock_ns;
        loop {
            let (seg, ld, depth) = self.route(ctx, h);
            if u32::from(ld) == depth {
                // Directory doubling (directory lock only).
                let mut dw = self.dir.write();
                if dw.depth == depth {
                    let doubled: Vec<(Arc<Seg>, u8)> = dw
                        .entries
                        .iter()
                        .flat_map(|e| [e.clone(), e.clone()])
                        .collect();
                    dw.entries = doubled;
                    dw.depth += 1;
                    // The whole (DRAM) directory is rewritten.
                    ctx.charge_dram((dw.entries.len() as u64 * 8) / 64 + 1);
                }
                continue;
            }
            let new_seg = Self::alloc_seg(ctx, &self.alloc, lock_ns)?;
            let mut homeless: Vec<(u64, u64, u64)> = Vec::new();
            // lint:allow(flow-flush-fence): raced-split early return releases the seg lock while alloc_seg's zero-fill is unfenced; the fresh region is unreachable until write_seg_header's flush+fence commits it. san=none(zeros of an uncommitted region are recovery no-ops)
            let done = seg.lock.write(ctx, |ctx| {
                let mut d = self.dir.write();
                let depth_now = d.depth;
                let idx = (h >> (64 - depth_now)) as usize;
                let (cur, ld_now) = d.entries[idx].clone();
                if !Arc::ptr_eq(&cur, &seg) || ld_now != ld || u32::from(ld_now) >= depth_now {
                    return false; // raced; retry from routing
                }
                // Crash-safe split order: (1) copy upper-half keys into the
                // fresh segment WITHOUT disturbing the old one, (2) publish
                // the new segment's header, (3) re-stamp the old header at
                // depth+1, (4) tombstone the moved keys. A crash inside
                // (1) recovers as a pre-split table plus one leaked
                // uncommitted region; after (2) or (3) the deeper header
                // wins the directory range and recovery's orphan sweep
                // tombstones the un-moved duplicates.
                let mut placed: Vec<u64> = Vec::new();
                for s in 0..SLOTS {
                    let ka = seg.slot_addr(s);
                    let k = ctx.read_u64(ka);
                    if k == EMPTY_KEY || k == TOMBSTONE {
                        continue;
                    }
                    let kh = hash_key(k);
                    if (kh >> (63 - u32::from(ld))) & 1 == 1 {
                        let v = ctx.read_u64(PmAddr(ka.0 + 8));
                        match self.probe_free(ctx, &new_seg, kh) {
                            Some(ns) => {
                                ctx.write_u64(PmAddr(new_seg.slot_addr(ns).0 + 8), v);
                                ctx.write_u64(new_seg.slot_addr(ns), k);
                                ctx.flush_range(new_seg.slot_addr(ns), 16);
                                placed.push(s);
                            }
                            None => homeless.push((s, k, v)),
                        }
                    }
                }
                ctx.fence();
                let p = (idx >> (depth_now - u32::from(ld))) as u64;
                write_seg_header(ctx, new_seg.addr, ld + 1, p * 2 + 1);
                write_seg_header(ctx, seg.addr, ld + 1, p * 2);
                for s in placed {
                    ctx.write_u64(seg.slot_addr(s), TOMBSTONE);
                    ctx.flush(seg.slot_addr(s));
                }
                ctx.fence();
                // Repoint the upper half of the range at the new segment.
                let span = 1usize << (depth_now - u32::from(ld));
                let base = (idx >> (depth_now - u32::from(ld))) << (depth_now - u32::from(ld));
                for i in 0..span {
                    let target = if i >= span / 2 {
                        (Arc::clone(&new_seg), ld + 1)
                    } else {
                        (Arc::clone(&seg), ld + 1)
                    };
                    d.entries[base + i] = target;
                }
                ctx.charge_dram(span as u64 / 8 + 1);
                true
            });
            if done {
                self.n_segs.fetch_add(1, Ordering::Relaxed);
                // Probe-window overflow during rehash is vanishingly rare
                // (17 of ~1020 keys in one window); reinsert through the
                // normal path, then tombstone the stranded copy (which no
                // longer routes to the old segment, so the insert cannot
                // see it as a duplicate).
                for (s, k, v) in homeless {
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    self.insert_word(ctx, k, v)?;
                    // lint:allow(conc-lockset): the stranded copy no longer routes to this segment after the directory swing, so no concurrent probe can address it; tombstoning it unlocked is benign and the sweep explores it sched=CCEH
                    ctx.write_u64(seg.slot_addr(s), TOMBSTONE);
                    ctx.flush(seg.slot_addr(s));
                    ctx.fence();
                }
                return Ok(());
            }
            self.alloc.free_region(ctx, new_seg.addr);
        }
    }

    /// Insert a pre-built value word.
    fn insert_word(&self, ctx: &mut MemCtx, key: u64, vw: u64) -> Result<(), IndexError> {
        let h = hash_key(key);
        loop {
            let (seg, _ld, depth) = self.route(ctx, h);
            enum Out {
                Done,
                Dup,
                Full,
                Moved,
            }
            // lint:allow(flow-flush-fence): slot flush+fence are mutation-canary gated (cceh.insert.*), always enabled outside tests/sanitizer.rs. san=none(canary gate is on outside sanitizer canary tests)
            let out = seg.lock.write(ctx, |ctx| {
                // Re-route under the lock: the segment may have split.
                let d = self.dir.read();
                let idx = (h >> (64 - d.depth)) as usize;
                if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                    return Out::Moved;
                }
                drop(d);
                if self.probe_find(ctx, &seg, h, key).is_some() {
                    return Out::Dup;
                }
                match self.probe_free(ctx, &seg, h) {
                    None => Out::Full,
                    Some(s) => {
                        ctx.write_u64(PmAddr(seg.slot_addr(s).0 + 8), vw);
                        ctx.write_u64(seg.slot_addr(s), key);
                        // Mutation-canary sites (tests/sanitizer.rs):
                        // always enabled outside the canary tests.
                        if spash_pmem::san::site_enabled("cceh.insert.flush") {
                            ctx.flush_range(seg.slot_addr(s), 16);
                        }
                        if spash_pmem::san::site_enabled("cceh.insert.fence") {
                            ctx.fence();
                        }
                        Out::Done
                    }
                }
            });
            match out {
                Out::Done => {
                    self.entries.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Out::Dup => return Err(IndexError::DuplicateKey),
                Out::Moved => continue,
                Out::Full => self.split(ctx, h)?,
            }
        }
    }

    /// Rebuild the directory from committed segment headers after a crash.
    ///
    /// Global depth is the deepest local depth found; each segment claims
    /// the directory range its `(local_depth, prefix)` names, deeper
    /// segments overriding shallower ones (exactly the half-split overlap
    /// a crash between the two header re-stamps leaves behind). An orphan
    /// sweep then reinserts keys stranded in a segment they no longer
    /// route to — the copies a crash prevented the splitter from
    /// tombstoning — and tombstones the stale copy.
    pub fn recover(ctx: &mut MemCtx) -> Option<Self> {
        ctx.stats_span(spash_pmem::SPAN_LOG_REPLAY, Self::recover_impl)
    }

    fn recover_impl(ctx: &mut MemCtx) -> Option<Self> {
        let rec = PmAllocator::recover(ctx)?;
        let (root, root_len) = rec.alloc.reserved();
        if root_len < ROOT_LEN || ctx.read_u64(root) != ROOT_MAGIC {
            return None;
        }
        let lock_ns = ctx.device().config().cost.lock_ns;
        // Committed segments: region of the right size, both magics intact.
        let mut segs: Vec<(Arc<Seg>, u8, u64)> = Vec::new();
        for &(a, len) in &rec.regions {
            if len != SEG_BYTES || ctx.read_u64(PmAddr(a.0 + 16)) != SEG_MAGIC2 {
                continue;
            }
            let meta = ctx.read_u64(PmAddr(a.0 + 8));
            if meta >> 48 != SEG_MAGIC1 {
                continue;
            }
            let ld = ((meta >> 40) & 0xff) as u8;
            let prefix = meta & PREFIX_MASK;
            if u64::from(ld) > 40 || prefix >> ld != 0 {
                return None; // a committed header can never be malformed
            }
            segs.push((
                Arc::new(Seg {
                    addr: a,
                    lock: PmRwLock::new(a, lock_ns),
                }),
                ld,
                prefix,
            ));
        }
        if segs.is_empty() {
            return None;
        }
        let depth = u32::from(segs.iter().map(|&(_, ld, _)| ld).max().unwrap());
        let mut entries: Vec<Option<(Arc<Seg>, u8)>> = vec![None; 1 << depth];
        let mut by_depth = segs.clone();
        by_depth.sort_by_key(|&(ref s, ld, prefix)| (ld, prefix, s.addr.0));
        for (seg, ld, prefix) in by_depth {
            let shift = depth - u32::from(ld);
            let base = (prefix << shift) as usize;
            for e in entries.iter_mut().skip(base).take(1 << shift) {
                *e = Some((Arc::clone(&seg), ld));
            }
        }
        // A directory hole means the image is torn/foreign.
        let entries: Vec<(Arc<Seg>, u8)> = entries.into_iter().collect::<Option<_>>()?;

        let idx = Self {
            alloc: Arc::new(rec.alloc),
            dir: RwLock::new(Dir { depth, entries }),
            entries: AtomicU64::new(0),
            n_segs: AtomicU64::new(segs.len() as u64),
        };
        // Count routable keys; collect stranded ones.
        let mut routable = 0u64;
        let mut orphans: Vec<(Arc<Seg>, u64, u64, u64)> = Vec::new();
        for (seg, _, _) in &segs {
            for s in 0..SLOTS {
                let k = ctx.read_u64(seg.slot_addr(s));
                if k == EMPTY_KEY || k == TOMBSTONE {
                    continue;
                }
                let (routed, _, _) = idx.route(ctx, hash_key(k));
                if Arc::ptr_eq(&routed, seg) {
                    routable += 1;
                } else {
                    let v = ctx.read_u64(PmAddr(seg.slot_addr(s).0 + 8));
                    orphans.push((Arc::clone(seg), s, k, v));
                }
            }
        }
        idx.entries.store(routable, Ordering::Relaxed);
        for (seg, s, k, v) in orphans {
            match idx.insert_word(ctx, k, v) {
                Ok(()) | Err(IndexError::DuplicateKey) => {}
                Err(_) => return None,
            }
            ctx.write_u64(seg.slot_addr(s), TOMBSTONE);
            ctx.flush(seg.slot_addr(s));
            ctx.fence();
        }
        Some(idx)
    }

    /// CCEH as a [`CrashTarget`] for the crash-point sweep.
    pub fn crash_target(depth: u32) -> CrashTarget {
        CrashTarget {
            name: "CCEH".into(),
            format: Box::new(move |ctx| {
                Box::new(Cceh::format(ctx, depth).expect("format CCEH"))
            }),
            recover: Box::new(|ctx| {
                let idx = Cceh::recover(ctx)?;
                // Committed segments plus every blob a live slot points at.
                let mut reachable: HashSet<u64> = HashSet::new();
                let d = idx.dir.read();
                let segs: Vec<Arc<Seg>> = {
                    let mut v: Vec<Arc<Seg>> = Vec::new();
                    for (seg, _) in d.entries.iter() {
                        if !v.iter().any(|s| Arc::ptr_eq(s, seg)) {
                            v.push(Arc::clone(seg));
                        }
                    }
                    v
                };
                drop(d);
                for seg in &segs {
                    reachable.insert(seg.addr.0);
                    for s in 0..SLOTS {
                        let k = ctx.read_u64(seg.slot_addr(s));
                        if k == EMPTY_KEY || k == TOMBSTONE {
                            continue;
                        }
                        let vw = ctx.read_u64(PmAddr(seg.slot_addr(s).0 + 8));
                        if let common::ValWord::Blob(a) = common::unpack_val(vw) {
                            reachable.insert(a.0);
                        }
                    }
                }
                let (leaked_allocs, audit_error) = common::audit_census(ctx, &reachable);
                Some(Recovery {
                    index: Box::new(idx),
                    leaked_allocs,
                    audit_error,
                })
            }),
        }
    }
}

impl PersistentIndex for Cceh {
    fn name(&self) -> &'static str {
        "CCEH"
    }

    fn insert(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        debug_assert!(key != EMPTY_KEY && key != TOMBSTONE);
        let vw = common::make_val(&self.alloc, ctx, key, value)?;
        match self.insert_word(ctx, key, vw) {
            Ok(()) => Ok(()),
            Err(e) => {
                // lint:allow(flow-flush-fence): free_val's allocator header CAS flips its own metadata word (flushed+fenced inside header_set under ADR); the entering residue is the canary-gated slot traffic of the failed insert. san=none(allocator metadata word on its own cacheline)
                common::free_val(&self.alloc, ctx, vw);
                Err(e)
            }
        }
    }

    fn update(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        let h = hash_key(key);
        let vw = common::make_val(&self.alloc, ctx, key, value)?;
        loop {
            let (seg, _, depth) = self.route(ctx, h);
            enum Out {
                Done(u64),
                Miss,
                Moved,
            }
            let out = seg.lock.write(ctx, |ctx| {
                let d = self.dir.read();
                let idx = (h >> (64 - d.depth)) as usize;
                if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                    return Out::Moved;
                }
                drop(d);
                match self.probe_find(ctx, &seg, h, key) {
                    None => Out::Miss,
                    Some((s, old)) => {
                        // Out-of-place update: install the new word.
                        ctx.write_u64(PmAddr(seg.slot_addr(s).0 + 8), vw);
                        ctx.flush(PmAddr(seg.slot_addr(s).0 + 8));
                        ctx.fence();
                        Out::Done(old)
                    }
                }
            });
            match out {
                Out::Moved => continue,
                Out::Miss => {
                    common::free_val(&self.alloc, ctx, vw);
                    return Err(IndexError::NotFound);
                }
                Out::Done(old) => {
                    common::free_val(&self.alloc, ctx, old);
                    return Ok(());
                }
            }
        }
    }

    fn get(&self, ctx: &mut MemCtx, key: u64, out: &mut Vec<u8>) -> bool {
        ctx.stats_span(spash_pmem::SPAN_PROBE, |ctx| {
            let h = hash_key(key);
            loop {
                let (seg, _, depth) = self.route(ctx, h);
                enum Out {
                    Hit(u64),
                    Miss,
                    Moved,
                }
                // The PM read-write lock: this is the PM write on the read
                // path the paper measures.
                let r = seg.lock.read(ctx, |ctx| {
                    let d = self.dir.read();
                    let idx = (h >> (64 - d.depth)) as usize;
                    if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                        return Out::Moved;
                    }
                    drop(d);
                    match self.probe_find(ctx, &seg, h, key) {
                        Some((_, vw)) => Out::Hit(vw),
                        None => Out::Miss,
                    }
                });
                match r {
                    Out::Moved => continue,
                    Out::Miss => return false,
                    Out::Hit(vw) => {
                        common::append_value(ctx, vw, out);
                        return true;
                    }
                }
            }
        })
    }

    fn remove(&self, ctx: &mut MemCtx, key: u64) -> bool {
        let h = hash_key(key);
        loop {
            let (seg, _, depth) = self.route(ctx, h);
            enum Out {
                Hit(u64),
                Miss,
                Moved,
            }
            let r = seg.lock.write(ctx, |ctx| {
                let d = self.dir.read();
                let idx = (h >> (64 - d.depth)) as usize;
                if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                    return Out::Moved;
                }
                drop(d);
                match self.probe_find(ctx, &seg, h, key) {
                    None => Out::Miss,
                    Some((s, vw)) => {
                        // Lazy deletion: tombstone the key word.
                        ctx.write_u64(seg.slot_addr(s), TOMBSTONE);
                        ctx.flush(seg.slot_addr(s));
                        ctx.fence();
                        Out::Hit(vw)
                    }
                }
            });
            match r {
                Out::Moved => continue,
                Out::Miss => return false,
                Out::Hit(vw) => {
                    common::free_val(&self.alloc, ctx, vw);
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    return true;
                }
            }
        }
    }

    fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    fn capacity_slots(&self) -> u64 {
        self.n_segs.load(Ordering::Relaxed) * SLOTS
    }
}

/// Shared helper for baseline constructors: format a device and return
/// (device, allocator-backed index, ctx). Used by tests.
#[cfg(test)]
pub(crate) fn test_device() -> (Arc<PmDevice>, MemCtx) {
    let dev = PmDevice::new(spash_pmem::PmConfig {
        arena_size: 64 << 20,
        ..spash_pmem::PmConfig::small_test()
    });
    let ctx = dev.ctx();
    (dev, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<PmDevice>, Cceh, MemCtx) {
        let (dev, mut ctx) = test_device();
        let idx = Cceh::format(&mut ctx, 1).unwrap();
        (dev, idx, ctx)
    }

    #[test]
    fn basic_crud() {
        let (_d, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 1, 10).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(10));
        idx.update_u64(&mut ctx, 1, 20).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(20));
        assert!(idx.remove(&mut ctx, 1));
        assert_eq!(idx.get_u64(&mut ctx, 1), None);
        assert_eq!(idx.insert_u64(&mut ctx, 2, 1), Ok(()));
        assert_eq!(
            idx.insert_u64(&mut ctx, 2, 1).unwrap_err(),
            IndexError::DuplicateKey
        );
    }

    #[test]
    fn grows_through_segment_splits() {
        let (_d, idx, mut ctx) = setup();
        let n = 4000u64;
        for k in 1..=n {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        for k in 1..=n {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k), "key {k}");
        }
        assert!(idx.capacity_slots() > SLOTS * 2, "must have split");
    }

    #[test]
    fn tombstone_slots_are_reused() {
        let (_d, idx, mut ctx) = setup();
        for k in 1..=100u64 {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        let cap = idx.capacity_slots();
        for k in 1..=100u64 {
            idx.remove(&mut ctx, k);
        }
        for k in 101..=200u64 {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        assert_eq!(idx.capacity_slots(), cap, "reuse, no growth");
    }

    #[test]
    fn blob_values() {
        let (_d, idx, mut ctx) = setup();
        let v = vec![3u8; 400];
        idx.insert(&mut ctx, 9, &v).unwrap();
        let mut out = Vec::new();
        assert!(idx.get(&mut ctx, 9, &mut out));
        assert_eq!(out, v);
    }

    #[test]
    fn reads_produce_pm_lock_writes() {
        let (dev, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 7, 7).unwrap();
        dev.flush_cache_all();
        let before = dev.snapshot();
        for _ in 0..100 {
            idx.get_u64(&mut ctx, 7).unwrap();
        }
        dev.flush_cache_all();
        let d = dev.snapshot().since(&before);
        assert!(
            d.cl_writes > 0,
            "CCEH reads must dirty the PM lock word"
        );
    }

    #[test]
    fn recover_roundtrip_across_splits() {
        let (dev, idx, mut ctx) = setup();
        let blob = vec![0x2cu8; 90];
        idx.insert(&mut ctx, 55_555, &blob).unwrap();
        for k in 1..=4000u64 {
            if k != 55_555 {
                idx.insert_u64(&mut ctx, k, k).unwrap(); // forces splits
            }
        }
        for k in 1..=50u64 {
            idx.update_u64(&mut ctx, k, k + 9).unwrap();
        }
        for k in 300..=320u64 {
            assert!(idx.remove(&mut ctx, k));
        }
        let live = idx.entries();
        dev.flush_cache_all();
        drop(idx);

        let mut ctx2 = dev.ctx();
        let r = Cceh::recover(&mut ctx2).expect("recover CCEH");
        assert_eq!(r.entries(), live);
        for k in 1..=50u64 {
            assert_eq!(r.get_u64(&mut ctx2, k), Some(k + 9), "updated key {k}");
        }
        for k in 300..=320u64 {
            assert_eq!(r.get_u64(&mut ctx2, k), None, "removed key {k}");
        }
        assert_eq!(r.get_u64(&mut ctx2, 4000), Some(4000));
        let mut out = Vec::new();
        assert!(r.get(&mut ctx2, 55_555, &mut out));
        assert_eq!(out, blob);
        r.insert_u64(&mut ctx2, 70_000, 2).unwrap();
        assert_eq!(r.get_u64(&mut ctx2, 70_000), Some(2));
    }

    #[test]
    fn recover_refuses_unformatted_image() {
        let (_d, mut ctx) = test_device();
        assert!(Cceh::recover(&mut ctx).is_none());
        let _ = PmAllocator::format(&mut ctx, 0);
        assert!(Cceh::recover(&mut ctx).is_none());
    }

    #[test]
    fn concurrent_inserts() {
        let (dev, mut ctx) = test_device();
        let idx = Arc::new(Cceh::format(&mut ctx, 1).unwrap());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let idx = Arc::clone(&idx);
                let dev = Arc::clone(&dev);
                s.spawn(move || {
                    let mut ctx = dev.ctx();
                    for i in 0..1000u64 {
                        let k = 1 + t * 1000 + i;
                        idx.insert_u64(&mut ctx, k, k).unwrap();
                    }
                });
            }
        });
        for k in 1..=4000u64 {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k), "key {k}");
        }
    }
}
