//! CCEH — Cacheline-Conscious Extendible Hashing (Nam et al., FAST'19),
//! as characterized by the Spash paper's evaluation (§VI):
//!
//! * extendible hashing with **coarse 16 KiB segments** (vs Spash's 256 B):
//!   a split rehashes a thousand slots, which is why resizing hurts;
//! * linear probing within a 4-cacheline (16-slot) window, which caps the
//!   achievable load factor (paper Fig 9 shows CCEH lowest);
//! * a **per-segment reader-writer lock maintained in PM** — even search
//!   operations dirty the lock's cacheline ("CCEH performs poorly in
//!   read-intensive workloads as it employs the read-write locks",
//!   "produce PM writes to maintain read locks");
//! * lazy deletion via tombstones.
//!
//! Per the paper's methodology, persistence flushes are removed (eADR) and
//! variable-size values go out-of-place behind pointers. One deviation:
//! the directory lives in DRAM here (like every other index in this
//! repository) so that directory traffic does not confound the
//! segment-level comparison.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use spash_alloc::PmAllocator;
use spash_index_api::{hash_key, IndexError, PersistentIndex};
use spash_pmem::{MemCtx, PmAddr};
#[cfg(test)]
use spash_pmem::PmDevice;

use crate::common::{self, PmRwLock, EMPTY_KEY, TOMBSTONE};

/// Segment size: 64 B header + 1020 16-byte slots.
const SEG_BYTES: u64 = 16384;
const SLOTS: u64 = (SEG_BYTES - 64) / 16;
/// Linear-probing window: 4 cachelines of slots.
const PROBE: u64 = 16;

struct Seg {
    addr: PmAddr,
    lock: PmRwLock,
}

impl Seg {
    fn slot_addr(&self, i: u64) -> PmAddr {
        PmAddr(self.addr.0 + 64 + (i % SLOTS) * 16)
    }
}

struct Dir {
    depth: u32,
    /// One entry per directory slot: (segment, local depth).
    entries: Vec<(Arc<Seg>, u8)>,
}

/// The CCEH baseline.
pub struct Cceh {
    alloc: Arc<PmAllocator>,
    dir: RwLock<Dir>,
    entries: AtomicU64,
    n_segs: AtomicU64,
}

impl Cceh {
    /// Build with `2^depth` initial segments on an already-formatted
    /// allocator.
    pub fn new(
        ctx: &mut MemCtx,
        alloc: Arc<PmAllocator>,
        depth: u32,
    ) -> Result<Self, IndexError> {
        let lock_ns = ctx.device().config().cost.lock_ns;
        let n = 1usize << depth;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let seg = Self::alloc_seg(ctx, &alloc, lock_ns)?;
            entries.push((seg, depth as u8));
        }
        Ok(Self {
            alloc,
            dir: RwLock::new(Dir { depth, entries }),
            entries: AtomicU64::new(0),
            n_segs: AtomicU64::new(n as u64),
        })
    }

    /// Convenience: format a fresh device.
    pub fn format(ctx: &mut MemCtx, depth: u32) -> Result<Self, IndexError> {
        let alloc = Arc::new(PmAllocator::format(ctx, 0));
        Self::new(ctx, alloc, depth)
    }

    fn alloc_seg(
        ctx: &mut MemCtx,
        alloc: &PmAllocator,
        lock_ns: u64,
    ) -> Result<Arc<Seg>, IndexError> {
        let addr = alloc
            .alloc_region(ctx, SEG_BYTES)
            .map_err(|_| IndexError::OutOfMemory)?;
        // Zero the slot array (fresh regions may be recycled space).
        let zeros = [0u8; 256];
        for off in (0..SEG_BYTES).step_by(256) {
            ctx.ntstore_bytes(PmAddr(addr.0 + off), &zeros);
        }
        Ok(Arc::new(Seg {
            addr,
            lock: PmRwLock::new(addr, lock_ns),
        }))
    }

    fn route(&self, ctx: &mut MemCtx, h: u64) -> (Arc<Seg>, u8, u32) {
        ctx.charge_dram_cached();
        let d = self.dir.read();
        let idx = if d.depth == 0 {
            0
        } else {
            (h >> (64 - d.depth)) as usize
        };
        let (seg, ld) = &d.entries[idx];
        (Arc::clone(seg), *ld, d.depth)
    }

    /// Probe for `key`; returns (slot index, value word).
    fn probe_find(&self, ctx: &mut MemCtx, seg: &Seg, h: u64, key: u64) -> Option<(u64, u64)> {
        let start = h % SLOTS;
        for i in 0..PROBE {
            let s = start + i;
            let k = ctx.read_u64(seg.slot_addr(s));
            if k == EMPTY_KEY {
                return None;
            }
            if k == key {
                let v = ctx.read_u64(PmAddr(seg.slot_addr(s).0 + 8));
                return Some((s, v));
            }
        }
        None
    }

    /// Probe for a free (empty or tombstoned) slot.
    fn probe_free(&self, ctx: &mut MemCtx, seg: &Seg, h: u64) -> Option<u64> {
        let start = h % SLOTS;
        (0..PROBE)
            .map(|i| start + i)
            .find(|&s| matches!(ctx.read_u64(seg.slot_addr(s)), EMPTY_KEY | TOMBSTONE))
    }

    /// Split the segment currently routed for `h`.
    ///
    /// Lock order is always segment-then-directory (the same order every
    /// base operation uses), so there is no ABBA deadlock: the doubling
    /// path takes only the directory lock.
    fn split(&self, ctx: &mut MemCtx, h: u64) -> Result<(), IndexError> {
        let lock_ns = ctx.device().config().cost.lock_ns;
        loop {
            let (seg, ld, depth) = self.route(ctx, h);
            if u32::from(ld) == depth {
                // Directory doubling (directory lock only).
                let mut dw = self.dir.write();
                if dw.depth == depth {
                    let doubled: Vec<(Arc<Seg>, u8)> = dw
                        .entries
                        .iter()
                        .flat_map(|e| [e.clone(), e.clone()])
                        .collect();
                    dw.entries = doubled;
                    dw.depth += 1;
                    // The whole (DRAM) directory is rewritten.
                    ctx.charge_dram((dw.entries.len() as u64 * 8) / 64 + 1);
                }
                continue;
            }
            let new_seg = Self::alloc_seg(ctx, &self.alloc, lock_ns)?;
            let mut homeless: Vec<(u64, u64)> = Vec::new();
            let done = seg.lock.write(ctx, |ctx| {
                let mut d = self.dir.write();
                let depth_now = d.depth;
                let idx = (h >> (64 - depth_now)) as usize;
                let (cur, ld_now) = d.entries[idx].clone();
                if !Arc::ptr_eq(&cur, &seg) || ld_now != ld || u32::from(ld_now) >= depth_now {
                    return false; // raced; retry from routing
                }
                // Rehash: move upper-half keys to the new segment.
                for s in 0..SLOTS {
                    let ka = seg.slot_addr(s);
                    let k = ctx.read_u64(ka);
                    if k == EMPTY_KEY || k == TOMBSTONE {
                        continue;
                    }
                    let kh = hash_key(k);
                    if (kh >> (63 - u32::from(ld))) & 1 == 1 {
                        let v = ctx.read_u64(PmAddr(ka.0 + 8));
                        match self.probe_free(ctx, &new_seg, kh) {
                            Some(ns) => {
                                ctx.write_u64(PmAddr(new_seg.slot_addr(ns).0 + 8), v);
                                ctx.write_u64(new_seg.slot_addr(ns), k);
                            }
                            None => homeless.push((k, v)),
                        }
                        ctx.write_u64(ka, TOMBSTONE);
                    }
                }
                // Repoint the upper half of the range at the new segment.
                let span = 1usize << (depth_now - u32::from(ld));
                let base = (idx >> (depth_now - u32::from(ld))) << (depth_now - u32::from(ld));
                for i in 0..span {
                    let target = if i >= span / 2 {
                        (Arc::clone(&new_seg), ld + 1)
                    } else {
                        (Arc::clone(&seg), ld + 1)
                    };
                    d.entries[base + i] = target;
                }
                ctx.charge_dram(span as u64 / 8 + 1);
                true
            });
            if done {
                self.n_segs.fetch_add(1, Ordering::Relaxed);
                // Probe-window overflow during rehash is vanishingly rare
                // (17 of ~1020 keys in one window); reinsert through the
                // normal path. Those keys were tombstoned above, so the
                // count is adjusted by insert_word.
                for (k, v) in homeless {
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    self.insert_word(ctx, k, v)?;
                }
                return Ok(());
            }
            self.alloc.free_region(ctx, new_seg.addr);
        }
    }

    /// Insert a pre-built value word.
    fn insert_word(&self, ctx: &mut MemCtx, key: u64, vw: u64) -> Result<(), IndexError> {
        let h = hash_key(key);
        loop {
            let (seg, _ld, depth) = self.route(ctx, h);
            enum Out {
                Done,
                Dup,
                Full,
                Moved,
            }
            let out = seg.lock.write(ctx, |ctx| {
                // Re-route under the lock: the segment may have split.
                let d = self.dir.read();
                let idx = (h >> (64 - d.depth)) as usize;
                if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                    return Out::Moved;
                }
                drop(d);
                if self.probe_find(ctx, &seg, h, key).is_some() {
                    return Out::Dup;
                }
                match self.probe_free(ctx, &seg, h) {
                    None => Out::Full,
                    Some(s) => {
                        ctx.write_u64(PmAddr(seg.slot_addr(s).0 + 8), vw);
                        ctx.write_u64(seg.slot_addr(s), key);
                        Out::Done
                    }
                }
            });
            match out {
                Out::Done => {
                    self.entries.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Out::Dup => return Err(IndexError::DuplicateKey),
                Out::Moved => continue,
                Out::Full => self.split(ctx, h)?,
            }
        }
    }
}

impl PersistentIndex for Cceh {
    fn name(&self) -> &'static str {
        "CCEH"
    }

    fn insert(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        debug_assert!(key != EMPTY_KEY && key != TOMBSTONE);
        let vw = common::make_val(&self.alloc, ctx, key, value)?;
        match self.insert_word(ctx, key, vw) {
            Ok(()) => Ok(()),
            Err(e) => {
                common::free_val(&self.alloc, ctx, vw);
                Err(e)
            }
        }
    }

    fn update(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        let h = hash_key(key);
        let vw = common::make_val(&self.alloc, ctx, key, value)?;
        loop {
            let (seg, _, depth) = self.route(ctx, h);
            enum Out {
                Done(u64),
                Miss,
                Moved,
            }
            let out = seg.lock.write(ctx, |ctx| {
                let d = self.dir.read();
                let idx = (h >> (64 - d.depth)) as usize;
                if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                    return Out::Moved;
                }
                drop(d);
                match self.probe_find(ctx, &seg, h, key) {
                    None => Out::Miss,
                    Some((s, old)) => {
                        // Out-of-place update: install the new word.
                        ctx.write_u64(PmAddr(seg.slot_addr(s).0 + 8), vw);
                        Out::Done(old)
                    }
                }
            });
            match out {
                Out::Moved => continue,
                Out::Miss => {
                    common::free_val(&self.alloc, ctx, vw);
                    return Err(IndexError::NotFound);
                }
                Out::Done(old) => {
                    common::free_val(&self.alloc, ctx, old);
                    return Ok(());
                }
            }
        }
    }

    fn get(&self, ctx: &mut MemCtx, key: u64, out: &mut Vec<u8>) -> bool {
        let h = hash_key(key);
        loop {
            let (seg, _, depth) = self.route(ctx, h);
            enum Out {
                Hit(u64),
                Miss,
                Moved,
            }
            // The PM read-write lock: this is the PM write on the read
            // path the paper measures.
            let r = seg.lock.read(ctx, |ctx| {
                let d = self.dir.read();
                let idx = (h >> (64 - d.depth)) as usize;
                if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                    return Out::Moved;
                }
                drop(d);
                match self.probe_find(ctx, &seg, h, key) {
                    Some((_, vw)) => Out::Hit(vw),
                    None => Out::Miss,
                }
            });
            match r {
                Out::Moved => continue,
                Out::Miss => return false,
                Out::Hit(vw) => {
                    common::append_value(ctx, vw, out);
                    return true;
                }
            }
        }
    }

    fn remove(&self, ctx: &mut MemCtx, key: u64) -> bool {
        let h = hash_key(key);
        loop {
            let (seg, _, depth) = self.route(ctx, h);
            enum Out {
                Hit(u64),
                Miss,
                Moved,
            }
            let r = seg.lock.write(ctx, |ctx| {
                let d = self.dir.read();
                let idx = (h >> (64 - d.depth)) as usize;
                if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                    return Out::Moved;
                }
                drop(d);
                match self.probe_find(ctx, &seg, h, key) {
                    None => Out::Miss,
                    Some((s, vw)) => {
                        // Lazy deletion: tombstone the key word.
                        ctx.write_u64(seg.slot_addr(s), TOMBSTONE);
                        Out::Hit(vw)
                    }
                }
            });
            match r {
                Out::Moved => continue,
                Out::Miss => return false,
                Out::Hit(vw) => {
                    common::free_val(&self.alloc, ctx, vw);
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    return true;
                }
            }
        }
    }

    fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    fn capacity_slots(&self) -> u64 {
        self.n_segs.load(Ordering::Relaxed) * SLOTS
    }
}

/// Shared helper for baseline constructors: format a device and return
/// (device, allocator-backed index, ctx). Used by tests.
#[cfg(test)]
pub(crate) fn test_device() -> (Arc<PmDevice>, MemCtx) {
    let dev = PmDevice::new(spash_pmem::PmConfig {
        arena_size: 64 << 20,
        ..spash_pmem::PmConfig::small_test()
    });
    let ctx = dev.ctx();
    (dev, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<PmDevice>, Cceh, MemCtx) {
        let (dev, mut ctx) = test_device();
        let idx = Cceh::format(&mut ctx, 1).unwrap();
        (dev, idx, ctx)
    }

    #[test]
    fn basic_crud() {
        let (_d, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 1, 10).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(10));
        idx.update_u64(&mut ctx, 1, 20).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(20));
        assert!(idx.remove(&mut ctx, 1));
        assert_eq!(idx.get_u64(&mut ctx, 1), None);
        assert_eq!(idx.insert_u64(&mut ctx, 2, 1), Ok(()));
        assert_eq!(
            idx.insert_u64(&mut ctx, 2, 1).unwrap_err(),
            IndexError::DuplicateKey
        );
    }

    #[test]
    fn grows_through_segment_splits() {
        let (_d, idx, mut ctx) = setup();
        let n = 4000u64;
        for k in 1..=n {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        for k in 1..=n {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k), "key {k}");
        }
        assert!(idx.capacity_slots() > SLOTS * 2, "must have split");
    }

    #[test]
    fn tombstone_slots_are_reused() {
        let (_d, idx, mut ctx) = setup();
        for k in 1..=100u64 {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        let cap = idx.capacity_slots();
        for k in 1..=100u64 {
            idx.remove(&mut ctx, k);
        }
        for k in 101..=200u64 {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        assert_eq!(idx.capacity_slots(), cap, "reuse, no growth");
    }

    #[test]
    fn blob_values() {
        let (_d, idx, mut ctx) = setup();
        let v = vec![3u8; 400];
        idx.insert(&mut ctx, 9, &v).unwrap();
        let mut out = Vec::new();
        assert!(idx.get(&mut ctx, 9, &mut out));
        assert_eq!(out, v);
    }

    #[test]
    fn reads_produce_pm_lock_writes() {
        let (dev, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 7, 7).unwrap();
        dev.flush_cache_all();
        let before = dev.snapshot();
        for _ in 0..100 {
            idx.get_u64(&mut ctx, 7).unwrap();
        }
        dev.flush_cache_all();
        let d = dev.snapshot().since(&before);
        assert!(
            d.cl_writes > 0,
            "CCEH reads must dirty the PM lock word"
        );
    }

    #[test]
    fn concurrent_inserts() {
        let (dev, mut ctx) = test_device();
        let idx = Arc::new(Cceh::format(&mut ctx, 1).unwrap());
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let idx = Arc::clone(&idx);
                let dev = Arc::clone(&dev);
                s.spawn(move |_| {
                    let mut ctx = dev.ctx();
                    for i in 0..1000u64 {
                        let k = 1 + t * 1000 + i;
                        idx.insert_u64(&mut ctx, k, k).unwrap();
                    }
                });
            }
        })
        .unwrap();
        for k in 1..=4000u64 {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k), "key {k}");
        }
    }
}
