//! CLevel — lock-free concurrent level hashing (Chen et al., ATC'20), as
//! characterized by the Spash paper (§VI):
//!
//! * slots are 8-byte CAS-able words holding pointers to out-of-place
//!   `[key][len][value]` items — **every** key-value, however small, costs
//!   a pointer dereference ("the performance of CLevel is still impeded by
//!   excessive PM reads and writes");
//! * **out-of-place updates for all entries**, so hot updates cannot be
//!   absorbed by the CPU cache (Fig 10's write-intensive gap);
//! * lock-free inserts/updates/deletes via CAS, growth by prepending a
//!   double-sized level and cooperatively migrating the oldest level.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spash_pmem::sync::RwLock;
use spash_alloc::PmAllocator;
use spash_index_api::crashpoint::{CrashTarget, Recovery};
use spash_index_api::{hash_key, IndexError, PersistentIndex};
use spash_pmem::{MemCtx, PmAddr};

use crate::common;

const BUCKET_BYTES: u64 = 64;
const SLOTS: u64 = 8;
/// Migration freeze bit: a frozen slot is being moved; readers may follow
/// the pointer, writers must wait for the copy in the newest level.
const FROZEN: u64 = 1 << 62;
const ADDR_MASK: u64 = (1 << 48) - 1;
/// An 8-bit key tag kept in the free pointer bits (48..56). CLevel's
/// lookups deliberately do NOT use it as a filter (the original has no
/// fingerprints — its pointer chases are the PM-read cost the paper
/// measures); it only disambiguates words for the migration CAS protocol.
const TAG_SHIFT: u32 = 48;

#[inline]
fn tag_of_key(key: u64) -> u64 {
    (hash_key(key) >> 24) & 0xff
}
const HASH_SALT: u64 = 0xc2b2_ae3d_27d4_eb4f;
/// Buckets each insert helps migrate from the oldest level.
const MIGRATE_STEP: u64 = 2;
/// Root-block magic ("CLvl" append-only layout, v1).
const MAGIC: u64 = 0x434c_766c_4c6f_6731;
/// Reserved root: `[magic][first_live][n_levels][log_base][log_len]`, then
/// a birth-ordered, append-only array of level descriptors
/// `[addr][n_buckets]` starting at +64. Levels are only ever appended
/// (grow) or dropped from the front (retire bumps `first_live`), so both
/// transitions commit with one atomic word.
const ROOT_LEN: u64 = 4096;
const MAX_LEVELS: u64 = (ROOT_LEN - 64) / 16;

struct LevelArr {
    addr: PmAddr,
    n_buckets: u64,
    /// Next bucket to migrate (levels drain oldest-first).
    cursor: AtomicU64,
    /// Buckets whose migration has fully completed.
    done: AtomicU64,
}

impl LevelArr {
    fn bucket(&self, i: u64) -> PmAddr {
        PmAddr(self.addr.0 + (i % self.n_buckets) * BUCKET_BYTES)
    }

    fn slot(&self, b: u64, s: u64) -> PmAddr {
        PmAddr(self.bucket(b).0 + s * 8)
    }
}

/// The CLevel baseline.
pub struct CLevel {
    alloc: Arc<PmAllocator>,
    /// Newest level first.
    levels: RwLock<Vec<Arc<LevelArr>>>,
    entries: AtomicU64,
    /// Bumped on every grow/pop; a failed lookup only counts as a miss if
    /// the level list was stable across the whole scan (otherwise
    /// migration may have moved the key into a level the scan's snapshot
    /// did not contain).
    structure_gen: AtomicU64,
    /// Append-only item log: CLevel allocates every key-value item at a
    /// fresh location (its persistent allocator hands out new space), so
    /// hot updates can never be absorbed by the CPU cache — the exact
    /// behaviour the paper contrasts with Spash's in-place updates.
    log_base: PmAddr,
    log_len: u64,
    log_head: AtomicU64,
    /// Root block in the allocator's reserved region (0 when the heap was
    /// formatted without room for one — recovery is unavailable then).
    root: PmAddr,
    /// Persistent level-array mirrors (birth-ordered indexes).
    pm_first_live: AtomicU64,
    pm_n_levels: AtomicU64,
}

impl CLevel {
    pub fn new(ctx: &mut MemCtx, alloc: Arc<PmAllocator>, pow: u32) -> Result<Self, IndexError> {
        let lvl = Self::alloc_level(ctx, &alloc, 1 << pow)?;
        let log_len = ctx.device().arena().size() / 2;
        let log_base = alloc
            // lint:allow(flow-flush-fence): format-time allocator header CAS; alloc_level's zero-fill is fenced below before the root magic publishes the table. san=none(region unreachable until root magic is flushed+fenced)
            .alloc_region(ctx, log_len)
            .map_err(|_| IndexError::OutOfMemory)?;
        // Publish the root last (magic after everything it governs).
        let (r, r_len) = alloc.reserved();
        let root = if r_len >= ROOT_LEN { r } else { PmAddr(0) };
        if root.0 != 0 {
            ctx.write_u64(PmAddr(root.0 + 8), 0); // first_live
            ctx.write_u64(PmAddr(root.0 + 16), 1); // n_levels
            ctx.write_u64(PmAddr(root.0 + 24), log_base.0);
            ctx.write_u64(PmAddr(root.0 + 32), log_len);
            ctx.write_u64(PmAddr(root.0 + 64), lvl.addr.0);
            ctx.write_u64(PmAddr(root.0 + 72), lvl.n_buckets);
            ctx.flush_range(PmAddr(root.0 + 8), 80);
            ctx.fence();
            ctx.write_u64(root, MAGIC);
            ctx.flush(root);
            ctx.fence();
        }
        Ok(Self {
            alloc,
            levels: RwLock::new(vec![lvl]),
            entries: AtomicU64::new(0),
            structure_gen: AtomicU64::new(0),
            log_base,
            log_len,
            log_head: AtomicU64::new(0),
            root,
            pm_first_live: AtomicU64::new(0),
            pm_n_levels: AtomicU64::new(1),
        })
    }

    /// Append an `[key][len][value]` item at a fresh log position.
    ///
    /// The key word is persisted LAST: recovery's log scan treats a zero
    /// key as end-of-log, so a torn item stays invisible.
    fn append_item(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<PmAddr, IndexError> {
        let need = (16 + value.len() as u64).div_ceil(16) * 16;
        let off = self.log_head.fetch_add(need, Ordering::Relaxed);
        if off + need > self.log_len {
            return Err(IndexError::OutOfMemory);
        }
        let a = PmAddr(self.log_base.0 + off);
        ctx.write_u64(PmAddr(a.0 + 8), value.len() as u64);
        ctx.write_bytes(PmAddr(a.0 + 16), value);
        ctx.flush_range(PmAddr(a.0 + 8), 8 + value.len() as u64);
        ctx.fence();
        ctx.write_u64(a, key);
        ctx.flush(a);
        ctx.fence();
        Ok(a)
    }

    pub fn format(ctx: &mut MemCtx, pow: u32) -> Result<Self, IndexError> {
        let alloc = Arc::new(PmAllocator::format(ctx, ROOT_LEN));
        Self::new(ctx, alloc, pow)
    }

    fn alloc_level(
        ctx: &mut MemCtx,
        alloc: &PmAllocator,
        n_buckets: u64,
    ) -> Result<Arc<LevelArr>, IndexError> {
        let addr = alloc
            .alloc_region(ctx, n_buckets * BUCKET_BYTES)
            .map_err(|_| IndexError::OutOfMemory)?;
        let zeros = [0u8; 256];
        let len = n_buckets * BUCKET_BYTES;
        let mut off = 0;
        while off < len {
            let n = 256.min(len - off) as usize;
            ctx.ntstore_bytes(PmAddr(addr.0 + off), &zeros[..n]);
            off += n as u64;
        }
        Ok(Arc::new(LevelArr {
            addr,
            n_buckets,
            cursor: AtomicU64::new(0),
            done: AtomicU64::new(0),
        }))
    }

    #[inline]
    fn hashes(key: u64) -> (u64, u64) {
        (hash_key(key), hash_key(key ^ HASH_SALT))
    }

    fn snapshot(&self) -> Vec<Arc<LevelArr>> {
        self.levels.read().clone()
    }

    /// Find `key`, dereferencing every occupied slot of the candidate
    /// buckets — CLevel items carry no fingerprints, so each lookup pays
    /// the pointer chases the paper measures ("impeded by excessive PM
    /// reads"). Returns (slot address, raw slot word — which may carry the
    /// FROZEN bit).
    ///
    /// Levels are scanned OLDEST first: migration moves items old-to-new
    /// and keeps the old copy visible (frozen) until the new one is
    /// placed, so an old-first scan can never miss a key mid-migration.
    /// (Keys are unique across levels, so scan order does not affect
    /// freshness.)
    /// Busy-wait on migration progress — but yield to the migrating peer
    /// only if the table structure hasn't advanced past `gen`. If a
    /// grow/retire already landed, the condition we would spin on may
    /// already be gone, so retry immediately instead: a blocking yield
    /// emitted after the migrator exited reads as a deadlock under the
    /// cooperative scheduler (`SyncEvent::SpinWait` promises another task
    /// must run for this one to progress).
    fn backoff_on_migration(&self, gen: u64) {
        if self.structure_gen.load(Ordering::Acquire) == gen {
            spash_pmem::schedhook::spin_wait();
        }
    }

    fn find(&self, ctx: &mut MemCtx, key: u64) -> Option<(PmAddr, u64)> {
        let (h1, h2) = Self::hashes(key);
        loop {
            let g1 = self.structure_gen.load(Ordering::Acquire);
            for lvl in self.snapshot().iter().rev() {
                for h in [h1, h2] {
                    let b = h % lvl.n_buckets;
                    for s in 0..SLOTS {
                        let w = ctx.read_u64(lvl.slot(b, s));
                        if w & ADDR_MASK != 0
                            && ctx.read_u64(PmAddr(w & ADDR_MASK)) == key
                        {
                            return Some((lvl.slot(b, s), w));
                        }
                    }
                }
            }
            // A miss is authoritative only if no level was added or
            // retired while we scanned; otherwise migration may have
            // carried the key into a level our snapshot lacked.
            if self.structure_gen.load(Ordering::Acquire) == g1 {
                return None;
            }
            ctx.charge_compute(20);
        }
    }

    /// CAS a tagged item word into a free slot of the newest level.
    ///
    /// The snapshot's "newest" may already be stale — concurrent grows can
    /// have prepended fresher levels and migration may already be draining
    /// the one we placed into. If the drain cursor has passed our bucket,
    /// the migrator will never see the item and the level could be retired
    /// with it inside; take the item back and retry against a fresher
    /// snapshot.
    fn try_place(&self, ctx: &mut MemCtx, word: u64, key: u64) -> bool {
        let (h1, h2) = Self::hashes(key);
        let mut word = word & !FROZEN;
        loop {
            let gen = self.structure_gen.load(Ordering::Acquire);
            let levels = self.snapshot();
            let newest = &levels[0];
            let mut placed: Option<(PmAddr, u64)> = None;
            'outer: for h in [h1, h2] {
                let b = h % newest.n_buckets;
                for s in 0..SLOTS {
                    let sa = newest.slot(b, s);
                    if ctx.read_u64(sa) == 0 && ctx.cas_u64(sa, 0, word).is_ok() {
                        // Mutation-canary sites (tests/sanitizer.rs):
                        // always enabled outside the canary tests.
                        if spash_pmem::san::site_enabled("clevel.insert.flush") {
                            ctx.flush(sa);
                        }
                        if spash_pmem::san::site_enabled("clevel.insert.fence") {
                            ctx.fence();
                        }
                        placed = Some((sa, b));
                        break 'outer;
                    }
                }
            }
            let (sa, b) = match placed {
                None => return false,
                Some(p) => p,
            };
            if newest.cursor.load(Ordering::Acquire) <= b {
                return true; // a future drain pass will see the item
            }
            // The bucket was already claimed by a drainer, which may have
            // scanned past our slot: take the item back and retry on a
            // fresher snapshot. Three outcomes per attempt:
            //   * retract succeeds           → re-place (possibly a value
            //     a concurrent update swapped in — carry it forward);
            //   * slot is 0 or FROZEN        → a drainer owns the item and
            //     re-places it itself;
            //   * slot holds an updated word → retract *that* word.
            loop {
                match ctx.cas_u64(sa, word, 0) {
                    Ok(_) => {
                        ctx.flush(sa);
                        ctx.fence();
                        self.backoff_on_migration(gen);
                        break; // retry outer placement with `word`
                    }
                    Err(actual) => {
                        if actual & ADDR_MASK == 0 || actual & FROZEN != 0 {
                            return true;
                        }
                        // A concurrent update replaced the value in place;
                        // the new word is now ours to rescue.
                        word = actual;
                    }
                }
            }
        }
    }

    /// Prepend a level twice the size of the newest. `expected_newest`
    /// guards against concurrent growers stacking levels.
    fn grow(&self, ctx: &mut MemCtx, expected_newest: u64) -> Result<(), IndexError> {
        ctx.stats_span(spash_pmem::SPAN_COMPACTION, |ctx| {
            self.grow_impl(ctx, expected_newest)
        })
    }

    fn grow_impl(&self, ctx: &mut MemCtx, expected_newest: u64) -> Result<(), IndexError> {
        let mut levels = self.levels.write();
        if levels[0].n_buckets != expected_newest {
            return Ok(()); // someone else already grew
        }
        let idx = self.pm_n_levels.load(Ordering::Acquire);
        if self.root.0 != 0 && idx >= MAX_LEVELS {
            return Err(IndexError::OutOfMemory);
        }
        let lvl = Self::alloc_level(ctx, &self.alloc, expected_newest * 2)?;
        if self.root.0 != 0 {
            // Append the descriptor, then publish it with the n_levels
            // bump — the grow's single-word commit point. A crash before
            // the bump leaks the new region (counted by the audit).
            let e = self.root.0 + 64 + idx * 16;
            ctx.write_u64(PmAddr(e), lvl.addr.0);
            ctx.write_u64(PmAddr(e + 8), lvl.n_buckets);
            ctx.flush_range(PmAddr(e), 16);
            ctx.fence();
            ctx.write_u64(PmAddr(self.root.0 + 16), idx + 1);
            ctx.flush(PmAddr(self.root.0 + 16));
            ctx.fence();
        }
        self.pm_n_levels.store(idx + 1, Ordering::Release);
        levels.insert(0, lvl);
        self.structure_gen.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Cooperatively migrate a few buckets from the oldest level into the
    /// newest (every writer chips in, like CLevel's background helpers).
    fn help_migrate(&self, ctx: &mut MemCtx) {
        let levels = self.snapshot();
        if levels.len() < 2 {
            return;
        }
        let oldest = levels.last().unwrap();
        let start = oldest.cursor.fetch_add(MIGRATE_STEP, Ordering::Relaxed);
        if start >= oldest.n_buckets {
            // Every bucket has been claimed; retire the level only when
            // every claimant has finished (items are visible in the new
            // level before the old copy is cleared). The region is
            // deliberately not returned to the allocator — CLevel proper
            // reclaims with epochs; the leak is one drained level.
            if oldest.done.load(Ordering::Acquire) >= oldest.n_buckets {
                let mut l = self.levels.write();
                if l.len() >= 2 && Arc::ptr_eq(l.last().unwrap(), oldest) {
                    l.pop();
                    if self.root.0 != 0 {
                        // Retirement's commit point: bump first_live.
                        let fl = self.pm_first_live.fetch_add(1, Ordering::AcqRel) + 1;
                        ctx.write_u64(PmAddr(self.root.0 + 8), fl);
                        ctx.flush(PmAddr(self.root.0 + 8));
                        ctx.fence();
                    }
                    self.structure_gen.fetch_add(1, Ordering::AcqRel);
                }
            }
            return;
        }
        let claimed = (start + MIGRATE_STEP).min(oldest.n_buckets) - start;
        for b in start..start + claimed {
            let mut bucket_drained = true;
            for s in 0..SLOTS {
                let sa = oldest.slot(b, s);
                loop {
                    let w = ctx.read_u64(sa);
                    if w & ADDR_MASK == 0 {
                        break;
                    }
                    // Freeze the slot: writers now wait for the new copy,
                    // readers may still follow the pointer.
                    // lint:allow(flow-flush-fence): the freeze CAS may carry the unflushed unfreeze store of a prior migration round; the FROZEN bit is a recovery don't-care (both copies stay visible). san=clevel::help_migrate
                    if w & FROZEN == 0 && ctx.cas_u64(sa, w, w | FROZEN).is_err() {
                        continue; // raced with an update; re-read
                    }
                    // The FROZEN bit is a recovery don't-care: recovery
                    // strips it from every slot before the table is used.
                    ctx.san_forgive(sa, 8);
                    let item = w & ADDR_MASK;
                    let key = ctx.read_u64(PmAddr(item));
                    if self.try_place(ctx, w & !FROZEN, key) {
                        // The new copy is durable; retire the old slot.
                        ctx.write_u64(sa, 0);
                        ctx.flush(sa);
                        ctx.fence();
                    } else {
                        // Newest level full mid-migration: unfreeze and
                        // leave the item. The bucket does not count as
                        // done, so the level is never retired with the
                        // item still inside.
                        ctx.write_u64(sa, w & !FROZEN);
                        ctx.san_forgive(sa, 8);
                        bucket_drained = false;
                    }
                    break;
                }
            }
            if bucket_drained {
                oldest.done.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Rebuild from the persistent root after a crash.
    ///
    /// Besides re-reading the level array, recovery repairs the two
    /// artifacts a crash mid-migration can leave behind: FROZEN bits on
    /// slots (stripped — no migration is in progress any more) and a key
    /// present in two levels (the copy with the lower item address — the
    /// older log position — is cleared, so a restarted migration can never
    /// duplicate it into the newest level).
    pub fn recover(ctx: &mut MemCtx) -> Option<Self> {
        ctx.stats_span(spash_pmem::SPAN_LOG_REPLAY, Self::recover_impl)
    }

    fn recover_impl(ctx: &mut MemCtx) -> Option<Self> {
        let rec = PmAllocator::recover(ctx)?;
        let (root, root_len) = rec.alloc.reserved();
        if root_len < ROOT_LEN || ctx.read_u64(root) != MAGIC {
            return None;
        }
        let first_live = ctx.read_u64(PmAddr(root.0 + 8));
        let n_levels = ctx.read_u64(PmAddr(root.0 + 16));
        let log_base = PmAddr(ctx.read_u64(PmAddr(root.0 + 24)));
        let log_len = ctx.read_u64(PmAddr(root.0 + 32));
        let regions: HashSet<u64> = rec.regions.iter().map(|&(a, _)| a.0).collect();
        if n_levels == 0
            || n_levels > MAX_LEVELS
            || first_live >= n_levels
            || !regions.contains(&log_base.0)
        {
            return None;
        }
        let mut birth: Vec<Arc<LevelArr>> = Vec::new();
        for i in first_live..n_levels {
            let e = root.0 + 64 + i * 16;
            let addr = PmAddr(ctx.read_u64(PmAddr(e)));
            let n_buckets = ctx.read_u64(PmAddr(e + 8));
            if !regions.contains(&addr.0) || !n_buckets.is_power_of_two() {
                return None;
            }
            birth.push(Arc::new(LevelArr {
                addr,
                n_buckets,
                cursor: AtomicU64::new(0),
                done: AtomicU64::new(0),
            }));
        }
        let levels: Vec<Arc<LevelArr>> = birth.into_iter().rev().collect();

        // Deterministic slot walk, newest level first: key -> kept slot.
        let mut seen: HashMap<u64, (PmAddr, u64)> = HashMap::new();
        for lvl in &levels {
            for b in 0..lvl.n_buckets {
                for s in 0..SLOTS {
                    let sa = lvl.slot(b, s);
                    let mut w = ctx.read_u64(sa);
                    if w & ADDR_MASK == 0 {
                        continue;
                    }
                    if w & FROZEN != 0 {
                        w &= !FROZEN;
                        ctx.write_u64(sa, w);
                        ctx.flush(sa);
                        ctx.fence();
                    }
                    let key = ctx.read_u64(PmAddr(w & ADDR_MASK));
                    match seen.entry(key) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert((sa, w));
                        }
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            // Higher item address = appended later = newer.
                            let (kept_sa, kept_w) = *e.get();
                            let loser = if w & ADDR_MASK > kept_w & ADDR_MASK {
                                e.insert((sa, w));
                                kept_sa
                            } else {
                                sa
                            };
                            ctx.write_u64(loser, 0);
                            ctx.flush(loser);
                            ctx.fence();
                        }
                    }
                }
            }
        }
        let entries = seen.len() as u64;

        // The log head is the end of the committed item prefix.
        let mut off = 0u64;
        while off + 16 <= log_len {
            if ctx.read_u64(PmAddr(log_base.0 + off)) == 0 {
                break;
            }
            let len = ctx.read_u64(PmAddr(log_base.0 + off + 8));
            let need = (16 + len).div_ceil(16) * 16;
            if off + need > log_len {
                break;
            }
            off += need;
        }

        Some(Self {
            alloc: Arc::new(rec.alloc),
            levels: RwLock::new(levels),
            entries: AtomicU64::new(entries),
            structure_gen: AtomicU64::new(0),
            log_base,
            log_len,
            log_head: AtomicU64::new(off),
            root,
            pm_first_live: AtomicU64::new(first_live),
            pm_n_levels: AtomicU64::new(n_levels),
        })
    }

    /// CLevel as a [`CrashTarget`] for the crash-point sweep.
    pub fn crash_target(pow: u32) -> CrashTarget {
        CrashTarget {
            name: "CLevel".into(),
            format: Box::new(move |ctx| {
                Box::new(CLevel::format(ctx, pow).expect("format CLevel"))
            }),
            recover: Box::new(|ctx| {
                let idx = CLevel::recover(ctx)?;
                // Live regions: the item log and every non-retired level.
                // Retired-but-never-freed levels (CLevel proper reclaims
                // with epochs) show up as counted leaks, as do levels lost
                // to a crash before their grow committed.
                let mut reachable: HashSet<u64> = idx
                    .snapshot()
                    .iter()
                    .map(|l| l.addr.0)
                    .collect();
                reachable.insert(idx.log_base.0);
                let (leaked_allocs, audit_error) = common::audit_census(ctx, &reachable);
                Some(Recovery {
                    index: Box::new(idx),
                    leaked_allocs,
                    audit_error,
                })
            }),
        }
    }
}

impl PersistentIndex for CLevel {
    fn name(&self) -> &'static str {
        "CLevel"
    }

    fn insert(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        if self.find(ctx, key).is_some() {
            return Err(IndexError::DuplicateKey);
        }
        // Everything is out-of-place in CLevel, even tiny values.
        let item = self.append_item(ctx, key, value)?;
        let word = item.0 | tag_of_key(key) << TAG_SHIFT;
        loop {
            let newest_n = self.snapshot()[0].n_buckets;
            // lint:allow(flow-flush-fence): grow's alloc_level zero-fill residue; the persistent path fences it before the n_levels commit point, the transient (root==0) path has no recovery. san=none(zeros of a level unreachable until the fenced n_levels bump)
            if self.try_place(ctx, word, key) {
                self.entries.fetch_add(1, Ordering::Relaxed);
                // lint:allow(conc-atomicity): rides the unguarded duplicate probe at the top of insert — CLevel's lock-free protocol admits the duplicate-insert window by design (dedup happens on lookup/migration); explored sched=CLevel
                self.help_migrate(ctx);
                return Ok(());
            }
            // lint:allow(flow-flush-fence): grow's alloc_level zero-fill residue; the persistent path fences it before the n_levels commit point, the transient (root==0) path has no recovery. san=none(zeros of a level unreachable until the fenced n_levels bump)
            // lint:allow(conc-atomicity): try_place's failure snapshot can be invalidated by a concurrent grow; grow itself revalidates n_buckets under the freeze CAS before committing, so the stale retry is only wasted work; explored sched=CLevel
            self.grow(ctx, newest_n)?;
        }
    }

    fn update(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        let new_item = self.append_item(ctx, key, value)?;
        let new_word = new_item.0 | tag_of_key(key) << TAG_SHIFT;
        loop {
            let gen = self.structure_gen.load(Ordering::Acquire);
            match self.find(ctx, key) {
                None => {
                    // Abandoned log space (reclaimed by CLevel's GC, which
                    // is out of scope here).
                    return Err(IndexError::NotFound);
                }
                Some((_, w)) if w & FROZEN != 0 => {
                    // Mid-migration: the copy in the newest level is about
                    // to appear; wait for it.
                    self.backoff_on_migration(gen);
                    ctx.charge_compute(20);
                }
                Some((slot, w)) => {
                    if ctx.cas_u64(slot, w, new_word).is_ok() {
                        ctx.flush(slot);
                        ctx.fence();
                        // The old item becomes log garbage.
                        return Ok(());
                    }
                    ctx.charge_compute(20); // CAS retry
                }
            }
        }
    }

    fn get(&self, ctx: &mut MemCtx, key: u64, out: &mut Vec<u8>) -> bool {
        ctx.stats_span(spash_pmem::SPAN_PROBE, |ctx| match self.find(ctx, key) {
            None => false,
            Some((_, w)) => {
                common::read_blob_value(ctx, PmAddr(w & ADDR_MASK), out);
                true
            }
        })
    }

    fn remove(&self, ctx: &mut MemCtx, key: u64) -> bool {
        loop {
            let gen = self.structure_gen.load(Ordering::Acquire);
            match self.find(ctx, key) {
                None => return false,
                Some((_, w)) if w & FROZEN != 0 => {
                    self.backoff_on_migration(gen);
                    ctx.charge_compute(20);
                }
                Some((slot, w)) => {
                    if ctx.cas_u64(slot, w, 0).is_ok() {
                        ctx.flush(slot);
                        ctx.fence();
                        self.entries.fetch_sub(1, Ordering::Relaxed);
                        return true;
                    }
                    ctx.charge_compute(20);
                }
            }
        }
    }

    fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    fn capacity_slots(&self) -> u64 {
        self.snapshot().iter().map(|l| l.n_buckets * SLOTS).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cceh::test_device;

    fn setup() -> (Arc<spash_pmem::PmDevice>, CLevel, MemCtx) {
        let (dev, mut ctx) = test_device();
        let idx = CLevel::format(&mut ctx, 4).unwrap();
        (dev, idx, ctx)
    }

    #[test]
    fn basic_crud() {
        let (_d, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 1, 10).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(10));
        idx.update_u64(&mut ctx, 1, 20).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(20));
        assert!(idx.remove(&mut ctx, 1));
        assert_eq!(idx.get_u64(&mut ctx, 1), None);
    }

    #[test]
    fn grows_and_migrates() {
        let (_d, idx, mut ctx) = setup();
        let n = 3000u64;
        for k in 1..=n {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        for k in 1..=n {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k), "key {k}");
        }
    }

    #[test]
    fn every_value_is_out_of_place() {
        // Even a 6-byte value costs a pointer dereference: two PM reads
        // minimum per get (slot + item).
        let (dev, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 5, 50).unwrap();
        dev.invalidate_cache();
        let before = dev.snapshot();
        idx.get_u64(&mut ctx, 5).unwrap();
        let d = dev.snapshot().since(&before);
        assert!(d.cl_reads >= 2, "slot read + item read, got {}", d.cl_reads);
    }

    #[test]
    fn recover_roundtrip_across_growth() {
        let (dev, idx, mut ctx) = setup();
        let blob = vec![0x6bu8; 200];
        idx.insert(&mut ctx, 7777, &blob).unwrap();
        for k in 1..=1200u64 {
            idx.insert_u64(&mut ctx, k, k).unwrap(); // forces grows + migration
        }
        for k in 1..=30u64 {
            idx.update_u64(&mut ctx, k, k + 5).unwrap();
        }
        for k in 200..=210u64 {
            assert!(idx.remove(&mut ctx, k));
        }
        let live = idx.entries();
        dev.flush_cache_all();
        drop(idx);

        let mut ctx2 = dev.ctx();
        let r = CLevel::recover(&mut ctx2).expect("recover CLevel");
        assert_eq!(r.entries(), live);
        for k in 1..=30u64 {
            assert_eq!(r.get_u64(&mut ctx2, k), Some(k + 5), "updated key {k}");
        }
        for k in 200..=210u64 {
            assert_eq!(r.get_u64(&mut ctx2, k), None, "removed key {k}");
        }
        assert_eq!(r.get_u64(&mut ctx2, 1200), Some(1200));
        let mut out = Vec::new();
        assert!(r.get(&mut ctx2, 7777, &mut out));
        assert_eq!(out, blob);
        r.insert_u64(&mut ctx2, 90_000, 3).unwrap();
        assert_eq!(r.get_u64(&mut ctx2, 90_000), Some(3));
    }

    #[test]
    fn recover_refuses_unformatted_image() {
        let (_d, mut ctx) = test_device();
        assert!(CLevel::recover(&mut ctx).is_none());
        let _ = PmAllocator::format(&mut ctx, 0);
        assert!(CLevel::recover(&mut ctx).is_none());
    }

    #[test]
    fn concurrent_mixed_ops() {
        let (dev, mut ctx) = test_device();
        let idx = Arc::new(CLevel::format(&mut ctx, 4).unwrap());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let idx = Arc::clone(&idx);
                let dev = Arc::clone(&dev);
                s.spawn(move || {
                    let mut ctx = dev.ctx();
                    for i in 0..600u64 {
                        let k = 1 + t * 600 + i;
                        idx.insert_u64(&mut ctx, k, k).unwrap();
                        idx.update_u64(&mut ctx, k, k + 1).unwrap();
                        assert_eq!(idx.get_u64(&mut ctx, k), Some(k + 1));
                    }
                });
            }
        });
        for k in 1..=2400u64 {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k + 1), "key {k}");
        }
    }
}
