//! Test-only mutation switches for checker validation.
//!
//! A linearizability checker that has never caught a bug proves nothing.
//! These process-wide switches deliberately break a known atomicity
//! property of one baseline so the schedule explorer can demonstrate it
//! *finds* the resulting violation and that the printed seed replays it.
//! They are compiled unconditionally (no cfg gymnastics across crates)
//! but default to off and are only flipped by `spash-bench sched
//! --mutate` and the harness's own tests.

use std::sync::atomic::{AtomicBool, Ordering};

/// When set, [`crate::Halo::insert`] performs its duplicate check under a
/// *read* lock, yields at a [`spash_pmem::SyncEvent::TestRace`] sync
/// point, then blindly appends under the write lock — breaking the
/// check-then-append atomicity the real implementation maintains. Two
/// concurrent inserts of the same key can then both return `Ok`, which no
/// sequential execution of a map allows: a guaranteed-reachable
/// linearizability violation.
static HALO_RACY_INSERT: AtomicBool = AtomicBool::new(false);

/// Enable or disable the Halo racy-insert mutation (returns the previous
/// value so tests can restore it).
pub fn set_halo_racy_insert(on: bool) -> bool {
    HALO_RACY_INSERT.swap(on, Ordering::SeqCst)
}

/// Is the Halo racy-insert mutation active?
pub fn halo_racy_insert() -> bool {
    HALO_RACY_INSERT.load(Ordering::SeqCst)
}
