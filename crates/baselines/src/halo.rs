//! Halo — a hybrid DRAM/PM hash index with a log-structured value store
//! (Hu et al., SIGMOD'22), as characterized by the Spash paper (§VI):
//!
//! * the **entire hash table lives in DRAM** (fast traversal, fast
//!   recovery via snapshots) — which is also why "Halo ... crashes during
//!   the executions [of the 20 M-key micro-benchmark]: Halo needs to
//!   maintain a complete hash table in DRAM ... resulting in the
//!   exhaustion of DRAM space". A configurable DRAM budget
//!   reproduces that failure mode as a clean `OutOfMemory`;
//! * values are **appended to a PM log**; updates append a new version and
//!   *invalidate* the old one with a PM write; deletes likewise —
//!   "notable PM writes for ... the creation, invalidation, and
//!   reclamation of log entries";
//! * periodic **snapshots** of the DRAM index to PM add background write
//!   traffic;
//! * writes are **lock-based** (per-shard), reads lock-free from DRAM.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spash_alloc::PmAllocator;
use spash_index_api::crashpoint::{CrashTarget, Recovery};
use spash_index_api::{hash_key, IndexError, PersistentIndex};
use spash_pmem::{MemCtx, PmAddr, VRwLock};

use crate::common;

const SHARDS: usize = 64;
/// Log extent handed to a thread at a time.
const EXTENT: u64 = 4096;
/// Mutations per shard between incremental index snapshots.
const SNAP_EVERY: u64 = 4096;
/// Log-entry header: [key: u64][len+flags: u64].
const HDR: u64 = 16;
const DEAD_FLAG: u64 = 1 << 63;
/// Root-block magic ("Halo" log layout, v1) in the allocator's reserved
/// region: `[magic][log_base][log_len][snap_base][snap_len]`.
const MAGIC: u64 = 0x4861_6c6f_4c67_3176;
/// Reserved bytes for the root block.
const ROOT_LEN: u64 = 256;

struct ShardMap {
    map: HashMap<u64, (u64, u32)>, // key -> (log offset, value len)
    muts: u64,
}

/// The Halo baseline.
pub struct Halo {
    #[allow(dead_code)] // kept: owns the region backing the log
    alloc: Arc<PmAllocator>,
    shards: Vec<VRwLock<ShardMap>>,
    log_base: PmAddr,
    log_len: u64,
    log_head: AtomicU64,
    /// Snapshot area (ring).
    snap_base: PmAddr,
    snap_len: u64,
    garbage_bytes: AtomicU64,
    entries: AtomicU64,
    /// Max entries before simulated DRAM exhaustion.
    dram_budget: u64,
}

impl Halo {
    pub fn new(
        ctx: &mut MemCtx,
        alloc: Arc<PmAllocator>,
        log_bytes: u64,
        dram_budget: u64,
    ) -> Result<Self, IndexError> {
        let lock_ns = ctx.device().config().cost.lock_ns;
        let log_base = alloc
            .alloc_region(ctx, log_bytes)
            .map_err(|_| IndexError::OutOfMemory)?;
        let snap_len = log_bytes / 4;
        let snap_base = alloc
            .alloc_region(ctx, snap_len)
            .map_err(|_| IndexError::OutOfMemory)?;
        // Publish the root block last: a half-formatted image recovers as
        // "no Halo here" rather than as garbage.
        let (root, root_len) = alloc.reserved();
        if root_len >= ROOT_LEN {
            // Persist the layout fields before the magic publishes them:
            // recovery trusts every field once it sees MAGIC.
            ctx.write_u64(PmAddr(root.0 + 8), log_base.0);
            ctx.write_u64(PmAddr(root.0 + 16), log_bytes);
            ctx.write_u64(PmAddr(root.0 + 24), snap_base.0);
            ctx.write_u64(PmAddr(root.0 + 32), snap_len);
            ctx.flush_range(PmAddr(root.0 + 8), 32);
            ctx.fence();
            ctx.write_u64(root, MAGIC);
            ctx.flush(root);
            ctx.fence();
        }
        Ok(Self {
            alloc,
            shards: (0..SHARDS)
                .map(|_| {
                    VRwLock::new(
                        ShardMap {
                            map: HashMap::new(),
                            muts: 0,
                        },
                        lock_ns,
                    )
                })
                .collect(),
            log_base,
            log_len: log_bytes,
            log_head: AtomicU64::new(0),
            snap_base,
            snap_len,
            garbage_bytes: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            dram_budget,
        })
    }

    pub fn format(ctx: &mut MemCtx, log_bytes: u64, dram_budget: u64) -> Result<Self, IndexError> {
        let alloc = Arc::new(PmAllocator::format(ctx, ROOT_LEN));
        Self::new(ctx, alloc, log_bytes, dram_budget)
    }

    #[inline]
    fn shard_of(h: u64) -> usize {
        (h >> 58) as usize % SHARDS
    }

    /// Append `[key][len][value]` to the log; returns the entry offset.
    ///
    /// The key word is written LAST: recovery's log replay treats a
    /// zero key as end-of-log, so an entry torn by a crash mid-append
    /// stays invisible instead of surfacing with a partial value.
    fn log_append(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<u64, IndexError> {
        let need = HDR + value.len() as u64;
        let off = self.log_head.fetch_add(need.div_ceil(16) * 16, Ordering::Relaxed);
        if off + need > self.log_len {
            return Err(IndexError::OutOfMemory);
        }
        let a = self.log_base.0 + off;
        ctx.write_bytes(PmAddr(a + 16), value);
        ctx.write_u64(PmAddr(a + 8), value.len() as u64);
        ctx.flush_range(PmAddr(a + 8), 8 + value.len() as u64);
        ctx.fence();
        ctx.write_u64(PmAddr(a), key);
        // Mutation-canary sites (tests/sanitizer.rs): always enabled
        // outside the canary tests.
        if spash_pmem::san::site_enabled("halo.insert.flush") {
            ctx.flush(PmAddr(a));
        }
        if spash_pmem::san::site_enabled("halo.insert.fence") {
            ctx.fence();
        }
        let _ = EXTENT; // extent-grained allocation folded into the head bump
        Ok(off)
    }

    /// Invalidate the log entry at `off` (the PM write the paper counts).
    fn log_invalidate(&self, ctx: &mut MemCtx, off: u64, len: u32) {
        let a = self.log_base.0 + off + 8;
        let w = ctx.read_u64(PmAddr(a));
        // lint:allow(conc-lockset): the header read-or-DEAD_FLAG write is idempotent and the entry is already unreachable from the DRAM index when invalidated (update/remove hold the shard lock over the index swing); the sweep explores it sched=Halo
        ctx.write_u64(PmAddr(a), w | DEAD_FLAG);
        ctx.flush(PmAddr(a));
        ctx.fence();
        self.garbage_bytes
            .fetch_add(HDR + len as u64, Ordering::Relaxed);
    }

    /// Incremental snapshot: dump one shard's index to the snapshot ring
    /// (sequential ntstores) — Halo's background persistence traffic.
    fn maybe_snapshot(&self, ctx: &mut MemCtx, sh: &ShardMap) {
        if !sh.muts.is_multiple_of(SNAP_EVERY) || sh.muts == 0 {
            return;
        }
        let bytes = (sh.map.len() as u64 * 16).min(self.snap_len / 2);
        let mut buf = vec![0u8; 256];
        let mut off = (sh.muts * 7919) % (self.snap_len / 2); // ring position
        let mut remaining = bytes;
        while remaining > 0 {
            let n = 256.min(remaining) as usize;
            buf.truncate(n);
            ctx.ntstore_bytes(PmAddr(self.snap_base.0 + off), &buf);
            off = (off + n as u64) % (self.snap_len / 2);
            remaining -= n as u64;
        }
        ctx.fence();
    }

    /// Rebuild the DRAM table from the PM log after a crash.
    ///
    /// Replay walks the log in append order until the first zero key
    /// (appends write the key word last, so a torn tail entry reads as
    /// end-of-log). Dead-flagged entries are skipped; for a key with
    /// several live entries — a crash can land between appending a new
    /// version and invalidating the old — the later offset wins.
    pub fn recover(ctx: &mut MemCtx, dram_budget: u64) -> Option<Self> {
        ctx.stats_span(spash_pmem::SPAN_LOG_REPLAY, |ctx| {
            Self::recover_impl(ctx, dram_budget)
        })
    }

    fn recover_impl(ctx: &mut MemCtx, dram_budget: u64) -> Option<Self> {
        let rec = PmAllocator::recover(ctx)?;
        let (root, root_len) = rec.alloc.reserved();
        if root_len < ROOT_LEN || ctx.read_u64(root) != MAGIC {
            return None;
        }
        let log_base = PmAddr(ctx.read_u64(PmAddr(root.0 + 8)));
        let log_len = ctx.read_u64(PmAddr(root.0 + 16));
        let snap_base = PmAddr(ctx.read_u64(PmAddr(root.0 + 24)));
        let snap_len = ctx.read_u64(PmAddr(root.0 + 32));

        let mut map: HashMap<u64, (u64, u32)> = HashMap::new();
        let mut garbage = 0u64;
        let mut off = 0u64;
        while off + HDR <= log_len {
            let key = ctx.read_u64(PmAddr(log_base.0 + off));
            if key == 0 {
                break;
            }
            let lenw = ctx.read_u64(PmAddr(log_base.0 + off + 8));
            let len = lenw & !DEAD_FLAG;
            if off + HDR + len > log_len {
                break; // torn length; nothing committed can live past it
            }
            if lenw & DEAD_FLAG != 0 {
                garbage += HDR + len;
            } else {
                map.insert(key, (off, len as u32));
            }
            off += (HDR + len).div_ceil(16) * 16;
        }

        let lock_ns = ctx.device().config().cost.lock_ns;
        let mut shards: Vec<HashMap<u64, (u64, u32)>> =
            (0..SHARDS).map(|_| HashMap::new()).collect();
        for (k, v) in map {
            shards[Self::shard_of(hash_key(k))].insert(k, v);
        }
        let entries: u64 = shards.iter().map(|m| m.len() as u64).sum();
        Some(Self {
            alloc: Arc::new(rec.alloc),
            shards: shards
                .into_iter()
                .map(|map| VRwLock::new(ShardMap { map, muts: 0 }, lock_ns))
                .collect(),
            log_base,
            log_len,
            log_head: AtomicU64::new(off),
            snap_base,
            snap_len,
            garbage_bytes: AtomicU64::new(garbage),
            entries: AtomicU64::new(entries),
            dram_budget,
        })
    }

    /// Halo as a [`CrashTarget`] for the crash-point sweep.
    pub fn crash_target(log_bytes: u64, dram_budget: u64) -> CrashTarget {
        CrashTarget {
            name: "Halo".into(),
            format: Box::new(move |ctx| {
                Box::new(Halo::format(ctx, log_bytes, dram_budget).expect("format Halo"))
            }),
            recover: Box::new(move |ctx| {
                let idx = Halo::recover(ctx, dram_budget)?;
                // Everything Halo owns is two regions; live/dead log
                // entries are sub-region state the census cannot see.
                let reachable: HashSet<u64> =
                    [idx.log_base.0, idx.snap_base.0].into_iter().collect();
                let (leaked_allocs, audit_error) = common::audit_census(ctx, &reachable);
                Some(Recovery {
                    index: Box::new(idx),
                    leaked_allocs,
                    audit_error,
                })
            }),
        }
    }
}

impl PersistentIndex for Halo {
    fn name(&self) -> &'static str {
        "Halo"
    }

    fn insert(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        if self.entries.load(Ordering::Relaxed) >= self.dram_budget {
            // The paper's observed failure mode: DRAM exhaustion.
            return Err(IndexError::OutOfMemory);
        }
        let h = hash_key(key);
        let len = value.len() as u32;
        // lint:allow(conc-atomicity): deliberately split dup-check/append critical sections — checker-validation variant gated off in production, pinned to its witness sched=halo_racy_insert
        if crate::testhooks::halo_racy_insert() {
            // Deliberately broken variant (checker validation only): the
            // duplicate check and the append are in separate critical
            // sections with a schedulable window between them, so two
            // concurrent inserts of one key can both return `Ok`.
            let present = self.shards[Self::shard_of(h)].read(ctx, |ctx, sh| {
                ctx.charge_dram(1);
                sh.map.contains_key(&key)
            });
            if present {
                return Err(IndexError::DuplicateKey);
            }
            spash_pmem::schedhook::sync_point(spash_pmem::SyncEvent::TestRace);
            // lint:allow(flow-flush-fence): log_append's commit-word flush+fence are canary-gated (halo.insert.*), always enabled outside tests/sanitizer.rs. san=none(canary gate is on outside sanitizer canary tests)
            let r = self.shards[Self::shard_of(h)].write(ctx, |ctx, sh| {
                let off = self.log_append(ctx, key, value)?;
                sh.map.insert(key, (off, len));
                sh.muts += 1;
                self.maybe_snapshot(ctx, sh);
                Ok(())
            });
            return r.map(|()| {
                self.entries.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Check-then-append under the shard lock: appending a doomed
        // entry first (and invalidating it on failure) would let a crash
        // between the two resurrect a value the operation never committed.
        // lint:allow(flow-flush-fence): log_append's commit-word flush+fence are canary-gated (halo.insert.*), always enabled outside tests/sanitizer.rs. san=none(canary gate is on outside sanitizer canary tests)
        let r = self.shards[Self::shard_of(h)].write(ctx, |ctx, sh| {
            ctx.charge_dram(1);
            if sh.map.contains_key(&key) {
                return Err(IndexError::DuplicateKey);
            }
            let off = self.log_append(ctx, key, value)?;
            sh.map.insert(key, (off, len));
            sh.muts += 1;
            self.maybe_snapshot(ctx, sh);
            Ok(())
        });
        r.map(|()| {
            self.entries.fetch_add(1, Ordering::Relaxed);
        })
    }

    fn update(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        let h = hash_key(key);
        let len = value.len() as u32;
        // lint:allow(flow-flush-fence): log_append's commit-word flush+fence are canary-gated (halo.insert.*), always enabled outside tests/sanitizer.rs. san=none(canary gate is on outside sanitizer canary tests)
        let old = self.shards[Self::shard_of(h)].write(ctx, |ctx, sh| {
            ctx.charge_dram(1);
            if !sh.map.contains_key(&key) {
                return Err(IndexError::NotFound);
            }
            let off = self.log_append(ctx, key, value)?;
            let slot = sh.map.get_mut(&key).expect("checked above");
            let old = *slot;
            *slot = (off, len);
            sh.muts += 1;
            self.maybe_snapshot(ctx, sh);
            Ok(old)
        })?;
        // Invalidate the superseded entry; a crash before this lands
        // leaves both entries live and recovery's later-offset-wins rule
        // picks the new one.
        self.log_invalidate(ctx, old.0, old.1);
        Ok(())
    }

    fn get(&self, ctx: &mut MemCtx, key: u64, out: &mut Vec<u8>) -> bool {
        ctx.stats_span(spash_pmem::SPAN_PROBE, |ctx| {
            let h = hash_key(key);
            // Lock-free read of the DRAM table (a read lock with no PM word;
            // virtual-time cost only from writer serialization).
            let hit = self.shards[Self::shard_of(h)].read(ctx, |ctx, sh| {
                ctx.charge_dram(1);
                sh.map.get(&key).copied()
            });
            match hit {
                None => false,
                Some((off, len)) => {
                    let start = out.len();
                    out.resize(start + len as usize, 0);
                    ctx.read_bytes(PmAddr(self.log_base.0 + off + HDR), &mut out[start..]);
                    true
                }
            }
        })
    }

    fn remove(&self, ctx: &mut MemCtx, key: u64) -> bool {
        let h = hash_key(key);
        let old = self.shards[Self::shard_of(h)].write(ctx, |ctx, sh| {
            ctx.charge_dram(1);
            let old = sh.map.remove(&key);
            if old.is_some() {
                sh.muts += 1;
                self.maybe_snapshot(ctx, sh);
            }
            old
        });
        match old {
            None => false,
            Some((off, len)) => {
                self.log_invalidate(ctx, off, len);
                self.entries.fetch_sub(1, Ordering::Relaxed);
                true
            }
        }
    }

    fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    fn capacity_slots(&self) -> u64 {
        // Halo has no slot capacity in the extendible sense; the paper
        // excludes it from the load-factor study (Fig 9).
        self.entries.load(Ordering::Relaxed).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cceh::test_device;

    fn setup() -> (Arc<spash_pmem::PmDevice>, Halo, MemCtx) {
        let (dev, mut ctx) = test_device();
        let idx = Halo::format(&mut ctx, 16 << 20, u64::MAX).unwrap();
        (dev, idx, ctx)
    }

    #[test]
    fn basic_crud() {
        let (_d, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 1, 10).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(10));
        idx.update_u64(&mut ctx, 1, 20).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(20));
        assert!(idx.remove(&mut ctx, 1));
        assert_eq!(idx.get_u64(&mut ctx, 1), None);
        assert_eq!(
            idx.update_u64(&mut ctx, 1, 0).unwrap_err(),
            IndexError::NotFound
        );
    }

    #[test]
    fn values_live_in_the_log() {
        let (_d, idx, mut ctx) = setup();
        let v = vec![7u8; 300];
        idx.insert(&mut ctx, 5, &v).unwrap();
        let mut out = Vec::new();
        assert!(idx.get(&mut ctx, 5, &mut out));
        assert_eq!(out, v);
    }

    #[test]
    fn updates_grow_garbage() {
        let (_d, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 1, 1).unwrap();
        let g0 = idx.garbage_bytes.load(Ordering::Relaxed);
        for i in 0..10 {
            idx.update_u64(&mut ctx, 1, i).unwrap();
        }
        let g1 = idx.garbage_bytes.load(Ordering::Relaxed);
        assert!(g1 > g0, "invalidations must accumulate garbage");
    }

    #[test]
    fn dram_budget_reproduces_paper_crash() {
        let (_d, mut ctx) = test_device();
        let idx = Halo::format(&mut ctx, 1 << 20, 100).unwrap();
        let mut failed = false;
        for k in 1..=200u64 {
            if idx.insert_u64(&mut ctx, k, k) == Err(IndexError::OutOfMemory) {
                failed = true;
                break;
            }
        }
        assert!(failed, "must hit the DRAM budget like the paper's crash");
    }

    #[test]
    fn recover_replays_log_later_offset_wins() {
        let (dev, idx, mut ctx) = setup();
        for k in 1..=50u64 {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        for k in 1..=20u64 {
            idx.update_u64(&mut ctx, k, k + 100).unwrap();
        }
        for k in 40..=45u64 {
            assert!(idx.remove(&mut ctx, k));
        }
        dev.flush_cache_all();
        drop(idx);

        let mut ctx2 = dev.ctx();
        let r = Halo::recover(&mut ctx2, u64::MAX).expect("recover Halo");
        assert_eq!(r.entries(), 44);
        for k in 1..=20u64 {
            assert_eq!(r.get_u64(&mut ctx2, k), Some(k + 100), "updated key {k}");
        }
        for k in 21..=39u64 {
            assert_eq!(r.get_u64(&mut ctx2, k), Some(k), "untouched key {k}");
        }
        for k in 40..=45u64 {
            assert_eq!(r.get_u64(&mut ctx2, k), None, "removed key {k}");
        }
        // The recovered index stays usable: the log head landed after the
        // last committed entry.
        r.insert_u64(&mut ctx2, 999, 999).unwrap();
        assert_eq!(r.get_u64(&mut ctx2, 999), Some(999));
    }

    #[test]
    fn recover_refuses_unformatted_image() {
        let (_d, mut ctx) = test_device();
        assert!(Halo::recover(&mut ctx, u64::MAX).is_none());
        let _ = PmAllocator::format(&mut ctx, 0); // heap but no Halo root
        assert!(Halo::recover(&mut ctx, u64::MAX).is_none());
    }

    #[test]
    fn concurrent_mixed() {
        let (dev, mut ctx) = test_device();
        let idx = Arc::new(Halo::format(&mut ctx, 32 << 20, u64::MAX).unwrap());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let idx = Arc::clone(&idx);
                let dev = Arc::clone(&dev);
                s.spawn(move || {
                    let mut ctx = dev.ctx();
                    for i in 0..800u64 {
                        let k = 1 + t * 800 + i;
                        idx.insert_u64(&mut ctx, k, k).unwrap();
                        idx.update_u64(&mut ctx, k, k + 1).unwrap();
                    }
                });
            }
        });
        for k in 1..=3200u64 {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k + 1), "key {k}");
        }
    }
}
