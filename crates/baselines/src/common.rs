//! Helpers shared by the baseline indexes.
//!
//! * a uniform value-word encoding (inline ≤7 bytes, or a pointer to an
//!   out-of-place `[key][len][value]` blob);
//! * a PM-resident reader-writer lock whose acquisition *writes PM* — the
//!   behaviour the paper calls out for CCEH and Level hashing ("produce
//!   PM writes to maintain read locks", §VI-B).

use spash_alloc::PmAllocator;
use spash_index_api::IndexError;
use spash_pmem::{MemCtx, PmAddr, VRwLock};

/// Sentinel key for an empty slot. Baseline workloads must use non-zero
/// keys (they do; the YCSB generator starts at 1).
pub const EMPTY_KEY: u64 = 0;
/// Sentinel key for a lazily-deleted slot (CCEH-style tombstone).
pub const TOMBSTONE: u64 = u64::MAX;

const BLOB_TAG: u64 = 0xff;

/// Pack a value word: inline for ≤7 bytes (`[len:8][bytes:56]`), blob tag
/// otherwise.
pub fn pack_inline(v: &[u8]) -> Option<u64> {
    if v.len() > 7 {
        return None;
    }
    let mut le = [0u8; 8];
    le[..v.len()].copy_from_slice(v);
    le[7] = v.len() as u8;
    Some(u64::from_le_bytes(le))
}

/// Pack a blob pointer into a value word.
pub fn pack_blob(addr: PmAddr) -> u64 {
    debug_assert!(addr.0 < 1 << 48);
    BLOB_TAG << 56 | addr.0
}

/// A decoded value word.
pub enum ValWord {
    Inline { bytes: [u8; 7], len: usize },
    Blob(PmAddr),
}

/// Decode a value word.
pub fn unpack_val(word: u64) -> ValWord {
    let le = word.to_le_bytes();
    if le[7] == BLOB_TAG as u8 {
        ValWord::Blob(PmAddr(word & ((1 << 48) - 1)))
    } else {
        let mut bytes = [0u8; 7];
        bytes.copy_from_slice(&le[..7]);
        ValWord::Inline {
            bytes,
            len: le[7] as usize,
        }
    }
}

/// Write an out-of-place blob `[key][len][value]`; returns its address.
pub fn write_blob(
    alloc: &PmAllocator,
    ctx: &mut MemCtx,
    key: u64,
    value: &[u8],
) -> Result<PmAddr, IndexError> {
    let a = alloc
        .alloc(ctx, 16 + value.len() as u64)
        .map_err(|_| IndexError::OutOfMemory)?;
    ctx.write_u64(a.addr, key);
    ctx.write_u64(PmAddr(a.addr.0 + 8), value.len() as u64);
    ctx.write_bytes(PmAddr(a.addr.0 + 16), value);
    // Persist the blob before the caller publishes a pointer to it: the
    // slot word must never become durable ahead of the bytes it names.
    ctx.flush_range(a.addr, 16 + value.len() as u64);
    ctx.fence();
    Ok(a.addr)
}

/// Read a blob's value into `out`.
pub fn read_blob_value(ctx: &mut MemCtx, addr: PmAddr, out: &mut Vec<u8>) {
    let len = ctx.read_u64(PmAddr(addr.0 + 8)) as usize;
    let start = out.len();
    out.resize(start + len, 0);
    ctx.read_bytes(PmAddr(addr.0 + 16), &mut out[start..]);
}

/// Free a blob.
pub fn free_blob(alloc: &PmAllocator, ctx: &mut MemCtx, addr: PmAddr) {
    let len = ctx.read_u64(PmAddr(addr.0 + 8));
    alloc.free(ctx, addr, 16 + len);
}

/// Resolve a value word into `out` (append).
pub fn append_value(ctx: &mut MemCtx, word: u64, out: &mut Vec<u8>) {
    match unpack_val(word) {
        ValWord::Inline { bytes, len } => out.extend_from_slice(&bytes[..len]),
        ValWord::Blob(addr) => read_blob_value(ctx, addr, out),
    }
}

/// Free whatever a value word owns.
pub fn free_val(alloc: &PmAllocator, ctx: &mut MemCtx, word: u64) {
    if let ValWord::Blob(addr) = unpack_val(word) {
        free_blob(alloc, ctx, addr);
    }
}

/// Build a value word for `value`, inlining when possible.
pub fn make_val(
    alloc: &PmAllocator,
    ctx: &mut MemCtx,
    key: u64,
    value: &[u8],
) -> Result<u64, IndexError> {
    match pack_inline(value) {
        Some(w) => Ok(w),
        None => Ok(pack_blob(write_blob(alloc, ctx, key, value)?)),
    }
}

/// Census-vs-reachability audit shared by the baseline crash targets
/// (the same two-way check `Spash::audit_heap` performs): every address in
/// `reachable` (region starts and blob addresses the recovered index can
/// reach) must be a live allocation in the heap's own books — anything
/// else is use-after-free-grade corruption — while live allocations the
/// index cannot reach are *counted* as leaks. Bounded leaks are expected:
/// small slots freed into the allocator's volatile caches keep their
/// persistent bits, and an in-flight operation can lose its freshly
/// written blob or region to the crash.
pub fn audit_census(
    ctx: &mut MemCtx,
    reachable: &std::collections::HashSet<u64>,
) -> (u64, Option<String>) {
    let census = match PmAllocator::census(ctx) {
        Some(c) => c,
        None => return (0, Some("no formatted heap found".into())),
    };
    let mut allocated = std::collections::HashSet::new();
    for &(a, _) in &census.small_slots {
        allocated.insert(a.0);
    }
    for &a in &census.segments {
        allocated.insert(a.0);
    }
    for &(a, _) in &census.large {
        allocated.insert(a.0);
    }
    for &(a, _) in &census.regions {
        allocated.insert(a.0);
    }
    for &r in reachable {
        if !allocated.contains(&r) {
            return (
                0,
                Some(format!(
                    "reachable address {r:#x} is not a live allocation in the heap census"
                )),
            );
        }
    }
    (allocated.difference(reachable).count() as u64, None)
}

/// A reader-writer lock whose lock word lives in PM: every acquisition and
/// release dirties the lock's cacheline (counted as a PM write), exactly
/// the overhead the paper attributes to CCEH/Level read locks. Mutual
/// exclusion and virtual-time serialization come from the embedded
/// [`VRwLock`].
pub struct PmRwLock {
    vrw: VRwLock<()>,
    word: PmAddr,
}

impl PmRwLock {
    /// `word` must point at an 8-byte PM location reserved for the lock.
    pub fn new(word: PmAddr, lock_ns: u64) -> Self {
        Self {
            vrw: VRwLock::new((), lock_ns),
            word,
        }
    }

    /// Shared lock; maintains the PM reader count (2 PM writes).
    pub fn read<R>(&self, ctx: &mut MemCtx, f: impl FnOnce(&mut MemCtx) -> R) -> R {
        // Lock words are dirty by design and never flushed: recovery
        // never trusts lock state, so the sanitizer must not flag them.
        ctx.san_transient(self.word, 8);
        self.vrw.read(ctx, |ctx, _| {
            ctx.fetch_or_u64(self.word, 0); // reader-count RMW
            let r = f(ctx);
            ctx.fetch_or_u64(self.word, 0);
            r
        })
    }

    /// Exclusive lock (2 PM writes).
    pub fn write<R>(&self, ctx: &mut MemCtx, f: impl FnOnce(&mut MemCtx) -> R) -> R {
        ctx.san_transient(self.word, 8);
        // lint:allow(flow-flush-fence): the lock word is declared san_transient above -- recovery never trusts lock state, so its dirtiness at release is not a publication. san=none(lock word is transient by design)
        self.vrw.write(ctx, |ctx, _| {
            ctx.write_u64(self.word, 1);
            let r = f(ctx);
            ctx.write_u64(self.word, 0);
            r
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spash_pmem::{PmConfig, PmDevice};

    #[test]
    fn inline_pack_roundtrip() {
        for v in [&b""[..], b"a", b"sixby!", b"seven77"] {
            let w = pack_inline(v).unwrap();
            match unpack_val(w) {
                ValWord::Inline { bytes, len } => assert_eq!(&bytes[..len], v),
                ValWord::Blob(_) => panic!("should be inline"),
            }
        }
        assert!(pack_inline(b"eight888").is_none());
    }

    #[test]
    fn blob_roundtrip() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        let alloc = PmAllocator::format(&mut ctx, 0);
        let val = vec![9u8; 500];
        let w = make_val(&alloc, &mut ctx, 42, &val).unwrap();
        let mut out = Vec::new();
        append_value(&mut ctx, w, &mut out);
        assert_eq!(out, val);
        match unpack_val(w) {
            ValWord::Blob(addr) => assert_eq!(ctx.read_u64(addr), 42),
            _ => panic!("should be blob"),
        }
        free_val(&alloc, &mut ctx, w);
    }

    #[test]
    fn pm_lock_counts_pm_writes_on_read() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        let lock = PmRwLock::new(PmAddr(4096), 18);
        let before = dev.snapshot();
        lock.read(&mut ctx, |_| ());
        dev.flush_cache_all();
        let d = dev.snapshot().since(&before);
        assert!(
            d.cl_writes >= 1,
            "read-lock maintenance must dirty PM (got {} writebacks)",
            d.cl_writes
        );
    }
}
