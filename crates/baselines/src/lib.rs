//! The six state-of-the-art persistent hash indexes the Spash paper
//! compares against (§VI-A), reimplemented on the same simulated PM
//! substrate so that PM-access and contention comparisons are
//! apples-to-apples:
//!
//! | Index | Source | Character the evaluation depends on |
//! |---|---|---|
//! | [`Cceh`]   | FAST'19  | coarse 16 KiB extendible segments, PM read-write locks, lazy deletion |
//! | [`Dash`]   | VLDB'20  | fingerprints, stash buckets, optimistic reads, lock-based writes |
//! | [`Level`]  | OSDI'18  | two-level probing, full-table rehash, PM locks on reads *and* writes |
//! | [`CLevel`] | ATC'20   | lock-free CAS slots, all values out-of-place, background-style migration |
//! | [`Plush`]  | VLDB'22  | DRAM buffer + WAL, 16× levelled merges, O(levels) lookups |
//! | [`Halo`]   | SIGMOD'22| full DRAM table + PM value log, snapshots/invalidation/GC writes |
//!
//! Per the paper's methodology (§VI-A): persistence flushes and fences are
//! removed (the platform is eADR), and variable-sized values are handled
//! out-of-place behind pointers ("extended implementations").

pub mod cceh;
pub mod clevel;
pub mod common;
pub mod dash;
pub mod halo;
pub mod level;
pub mod plush;
pub mod testhooks;

pub use cceh::Cceh;
pub use clevel::CLevel;
pub use dash::Dash;
pub use halo::Halo;
pub use level::Level;
pub use plush::Plush;
