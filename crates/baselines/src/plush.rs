//! Plush — a write-optimized persistent log-structured hash table (Vogel
//! et al., VLDB'22), as characterized by the Spash paper (§VI):
//!
//! * writes land in a **DRAM buffer** guarded by a **write-ahead log** in
//!   PM (sequential appends — cheap), then flush in batches to level 0;
//! * levels form an LSM: level *i+1* is **16× larger**; a full level
//!   merges downward, "which leads to a large volume of PM writes when
//!   flushing DRAM buffer to PM and merging PM-based hash tables across
//!   different levels";
//! * lookups walk buffer → L0 → L1 → …, "requiring an average traversal
//!   of O(logN) levels to retrieve a key-value entry" — the search-cost
//!   trade Plush makes for sequential writes;
//! * partition locks on the buffer and a table lock during merges
//!   ("lock-based out-of-place write and shared write-ahead logs").
//!
//! LSM semantics: newer versions shadow older ones; deletes write
//! tombstones; stale versions linger in deeper levels until a merge drops
//! them (visible as Plush's low, fluctuating load factor, Fig 9).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spash_pmem::sync::RwLock;
use spash_alloc::PmAllocator;
use spash_index_api::crashpoint::{CrashTarget, Recovery};
use spash_index_api::{hash_key, IndexError, PersistentIndex};
use spash_pmem::{MemCtx, PmAddr, VLock};

use crate::common::{self};

const SHARDS: usize = 64;
/// Buffered entries per shard before a flush to level 0.
const BUF_CAP: usize = 64;
/// One WAL record: `[seq][key][value-word][seq]`. A record is valid only
/// when both sequence words match and exceed the shard's persisted flush
/// watermark — a torn append (or stale ring residue) fails the check and
/// is simply not replayed.
const REC_BYTES: u64 = 32;
/// WAL bytes per shard (a ring; sequential appends). Four flush batches of
/// headroom: an append may only overwrite a slot whose record is already
/// below the watermark.
const WAL_BYTES: u64 = BUF_CAP as u64 * REC_BYTES * 4;
/// Ring capacity in records.
const WAL_RECS: u64 = WAL_BYTES / REC_BYTES;
/// Root-block magic ("PlushLg1"): says "this heap holds a Plush".
const ROOT_MAGIC: u64 = 0x506c_7573_684c_6731;
/// Root block: `[magic][level0_buckets][wal_base][n_levels]`, per-shard
/// flush watermarks at +64, and the append-only level-descriptor array
/// (`[addr][n_buckets]` pairs, committed by the `n_levels` word) at +576.
const ROOT_LEN: u64 = 1024;
const WATERMARKS_OFF: u64 = 64;
const LEVELS_OFF: u64 = WATERMARKS_OFF + SHARDS as u64 * 8;
const MAX_LEVELS: usize = ((ROOT_LEN - LEVELS_OFF) / 16) as usize;
/// Bucket: count word + 15 (key, value-word) pairs + padding = one XPLine.
const BUCKET_BYTES: u64 = 256;
const BUCKET_SLOTS: u64 = 15;
/// Level fanout (the paper: "Plush allocates a 16× larger level").
const FANOUT: u64 = 16;
/// Value-word tombstone (LSM delete marker).
const TOMB: u64 = u64::MAX;
/// Linear-probe window within a level: a bucket that fills spills into its
/// neighbours; only a full window triggers a level merge.
const PROBE: u64 = 8;

struct Shard {
    buf: Vec<(u64, u64)>,
    /// Bytes ever appended to this shard's WAL; the next record's
    /// sequence number is `wal_off / REC_BYTES + 1` and its ring slot is
    /// `wal_off % WAL_BYTES`.
    wal_off: u64,
    /// A flush of this shard is in flight (one at a time).
    flushing: bool,
}

struct Lvl {
    addr: PmAddr,
    n_buckets: u64,
}

impl Lvl {
    fn bucket(&self, i: u64) -> PmAddr {
        PmAddr(self.addr.0 + (i % self.n_buckets) * BUCKET_BYTES)
    }
}

/// The Plush baseline.
pub struct Plush {
    alloc: Arc<PmAllocator>,
    shards: Vec<VLock<Shard>>,
    /// Per-shard writer lock held across the check-then-append in
    /// `insert`/`update`/`remove`. The LSM write path is a blind upsert,
    /// so without this two concurrent removes of one key both observe it
    /// present and both report success (caught by the schedule explorer;
    /// see `tests/sched.rs`). Ordered strictly before the buffer shard
    /// lock and the level lock; lookups don't take it.
    op_locks: Vec<VLock<()>>,
    wal_base: PmAddr,
    levels: RwLock<Vec<Lvl>>,
    level0_buckets: u64,
    entries: AtomicU64,
    /// Root block in the allocator's reserved region; 0 when the reserved
    /// region is too small to host one (then no crash-recovery metadata is
    /// maintained).
    root: PmAddr,
}

impl Plush {
    /// `pow` sets level-0 size (`2^pow` buckets).
    pub fn new(ctx: &mut MemCtx, alloc: Arc<PmAllocator>, pow: u32) -> Result<Self, IndexError> {
        let lock_ns = ctx.device().config().cost.lock_ns;
        let wal_base = alloc
            .alloc_region(ctx, SHARDS as u64 * WAL_BYTES)
            .map_err(|_| IndexError::OutOfMemory)?;
        // The ring validity check depends on stale slots failing the
        // seq==seq2 test, so the WAL must start zeroed.
        let zeros = [0u8; 256];
        let mut off = 0;
        while off < SHARDS as u64 * WAL_BYTES {
            ctx.ntstore_bytes(PmAddr(wal_base.0 + off), &zeros);
            off += 256;
        }
        let level0_buckets = 1u64 << pow;
        // lint:allow(flow-flush-fence): format-time allocator header CAS inside alloc_level flips its own metadata word; WAL and level zero-fills are fenced before the root magic publishes the structure. san=none(allocator metadata word on its own cacheline)
        let l0 = Self::alloc_level(ctx, &alloc, level0_buckets)?;
        let (r, root_len) = alloc.reserved();
        let root = if root_len >= ROOT_LEN { r } else { PmAddr(0) };
        if root.0 != 0 {
            // Everything except the magic, then the magic last: a crash
            // mid-format recovers as "no Plush here".
            ctx.write_u64(PmAddr(root.0 + 8), level0_buckets);
            ctx.write_u64(PmAddr(root.0 + 16), wal_base.0);
            ctx.write_u64(PmAddr(root.0 + 24), 1);
            for shard in 0..SHARDS as u64 {
                ctx.write_u64(PmAddr(root.0 + WATERMARKS_OFF + shard * 8), 0);
            }
            ctx.write_u64(PmAddr(root.0 + LEVELS_OFF), l0.addr.0);
            ctx.write_u64(PmAddr(root.0 + LEVELS_OFF + 8), l0.n_buckets);
            ctx.flush_range(root, LEVELS_OFF + SHARDS as u64 * 8 + 16);
            ctx.fence();
            ctx.write_u64(root, ROOT_MAGIC);
            ctx.flush(root);
            ctx.fence();
        }
        Ok(Self {
            alloc,
            op_locks: (0..SHARDS).map(|_| VLock::new((), lock_ns)).collect(),
            shards: (0..SHARDS)
                .map(|_| {
                    VLock::new(
                        Shard {
                            buf: Vec::with_capacity(BUF_CAP),
                            wal_off: 0,
                            flushing: false,
                        },
                        lock_ns,
                    )
                })
                .collect(),
            wal_base,
            levels: RwLock::new(vec![l0]),
            level0_buckets,
            entries: AtomicU64::new(0),
            root,
        })
    }

    pub fn format(ctx: &mut MemCtx, pow: u32) -> Result<Self, IndexError> {
        let alloc = Arc::new(PmAllocator::format(ctx, ROOT_LEN));
        Self::new(ctx, alloc, pow)
    }

    fn alloc_level(ctx: &mut MemCtx, alloc: &PmAllocator, n: u64) -> Result<Lvl, IndexError> {
        let addr = alloc
            .alloc_region(ctx, n * BUCKET_BYTES)
            .map_err(|_| IndexError::OutOfMemory)?;
        let zeros = [0u8; 256];
        for i in 0..n {
            ctx.ntstore_bytes(PmAddr(addr.0 + i * BUCKET_BYTES), &zeros);
        }
        Ok(Lvl { addr, n_buckets: n })
    }

    #[inline]
    fn shard_of(h: u64) -> usize {
        (h >> 58) as usize % SHARDS
    }

    /// Append one record to the shard's WAL — the sequential PM write
    /// every Plush mutation pays — and persist it before returning: the
    /// flushed record is the operation's commit point. The second sequence
    /// word is written last, so a torn append fails the seq==seq2 validity
    /// check and the operation simply never committed.
    fn wal_append(&self, ctx: &mut MemCtx, shard: usize, off: &mut u64, k: u64, vw: u64) {
        let seq = *off / REC_BYTES + 1;
        let base = self.wal_base.0 + shard as u64 * WAL_BYTES + (*off % WAL_BYTES);
        ctx.write_u64(PmAddr(base), seq);
        ctx.write_u64(PmAddr(base + 8), k);
        ctx.write_u64(PmAddr(base + 16), vw);
        ctx.write_u64(PmAddr(base + 24), seq);
        // Mutation-canary sites (tests/sanitizer.rs): always enabled
        // outside the canary tests.
        if spash_pmem::san::site_enabled("plush.insert.flush") {
            ctx.flush_range(PmAddr(base), REC_BYTES);
        }
        if spash_pmem::san::site_enabled("plush.insert.fence") {
            ctx.fence();
        }
        *off += REC_BYTES;
    }

    /// Scan the probe window of `key`'s home bucket, returning the newest
    /// version. Appends go to the first non-full bucket of the window, so
    /// later windows positions (and later slots) hold newer versions; the
    /// scan stops at the first non-full bucket.
    fn bucket_find(&self, ctx: &mut MemCtx, lvl: &Lvl, home: u64, key: u64) -> Option<u64> {
        let mut newest = None;
        for p in 0..PROBE {
            let ba = lvl.bucket(home + p);
            let count = ctx.read_u64(ba).min(BUCKET_SLOTS);
            for s in 0..count {
                let k = ctx.read_u64(PmAddr(ba.0 + 8 + s * 16));
                if k == key {
                    newest = Some(ctx.read_u64(PmAddr(ba.0 + 16 + s * 16)));
                }
            }
            if count < BUCKET_SLOTS {
                break; // nothing was ever pushed past a non-full bucket
            }
        }
        newest
    }

    /// Append a record into the probe window of home bucket `home`;
    /// false when the whole window is full (time to merge the level).
    fn bucket_append(&self, ctx: &mut MemCtx, lvl: &Lvl, home: u64, k: u64, vw: u64) -> bool {
        for p in 0..PROBE {
            let ba = lvl.bucket(home + p);
            let count = ctx.read_u64(ba);
            if count >= BUCKET_SLOTS {
                continue;
            }
            // Persist the pair, then publish it through the count word.
            ctx.write_u64(PmAddr(ba.0 + 8 + count * 16), k);
            ctx.write_u64(PmAddr(ba.0 + 16 + count * 16), vw);
            ctx.flush_range(PmAddr(ba.0 + 8 + count * 16), 16);
            ctx.fence();
            ctx.write_u64(ba, count + 1);
            ctx.flush(ba);
            ctx.fence();
            return true;
        }
        false
    }

    /// Insert into level `li`, merging downward when a bucket fills.
    /// Caller holds the levels write lock.
    fn level_insert(
        &self,
        ctx: &mut MemCtx,
        levels: &mut Vec<Lvl>,
        li: usize,
        k: u64,
        vw: u64,
    ) -> Result<(), IndexError> {
        loop {
            if li >= levels.len() {
                if li >= MAX_LEVELS {
                    return Err(IndexError::OutOfMemory);
                }
                let n = self.level0_buckets * FANOUT.pow(li as u32);
                // lint:allow(flow-flush-fence): the allocator header CAS inside alloc_level flips its own metadata word; publish_level flushes+fences the descriptor before the level becomes reachable. san=none(allocator metadata word on its own cacheline)
                let lvl = Self::alloc_level(ctx, &self.alloc, n)?;
                self.publish_level(ctx, li, &lvl);
                levels.push(lvl);
            }
            let h = hash_key(k);
            let b = h % levels[li].n_buckets;
            if self.bucket_append(ctx, &levels[li], b, k, vw) {
                return Ok(());
            }
            // Bucket full: merge this whole level into the next, then
            // retry. "It still produces a substantial volume of PM writes
            // ... when merging PM-based hash tables across different
            // levels."
            self.merge_level(ctx, levels, li)?;
        }
    }

    /// Commit a freshly allocated level: descriptor pair first, then the
    /// `n_levels` word — the level exists durably only once the count
    /// covers it (a crash in between leaks the region, which the audit
    /// counts).
    fn publish_level(&self, ctx: &mut MemCtx, li: usize, lvl: &Lvl) {
        if self.root.0 == 0 {
            return;
        }
        let e = PmAddr(self.root.0 + LEVELS_OFF + li as u64 * 16);
        ctx.write_u64(e, lvl.addr.0);
        ctx.write_u64(PmAddr(e.0 + 8), lvl.n_buckets);
        ctx.flush_range(e, 16);
        ctx.fence();
        ctx.write_u64(PmAddr(self.root.0 + 24), li as u64 + 1);
        ctx.flush(PmAddr(self.root.0 + 24));
        ctx.fence();
    }

    /// Advance a shard's persisted flush watermark: WAL records at or
    /// below `seq` are durably in the levels and must not be replayed.
    fn write_watermark(&self, ctx: &mut MemCtx, shard: usize, seq: u64) {
        if self.root.0 == 0 {
            return;
        }
        let w = PmAddr(self.root.0 + WATERMARKS_OFF + shard as u64 * 8);
        ctx.write_u64(w, seq);
        ctx.flush(w);
        ctx.fence();
    }

    fn merge_level(
        &self,
        ctx: &mut MemCtx,
        levels: &mut Vec<Lvl>,
        li: usize,
    ) -> Result<(), IndexError> {
        ctx.stats_span(spash_pmem::SPAN_COMPACTION, |ctx| {
            self.merge_level_impl(ctx, levels, li)
        })
    }

    fn merge_level_impl(
        &self,
        ctx: &mut MemCtx,
        levels: &mut Vec<Lvl>,
        li: usize,
    ) -> Result<(), IndexError> {
        if li + 1 >= levels.len() {
            if li + 1 >= MAX_LEVELS {
                return Err(IndexError::OutOfMemory);
            }
            let n = self.level0_buckets * FANOUT.pow(li as u32 + 1);
            let lvl = Self::alloc_level(ctx, &self.alloc, n)?;
            self.publish_level(ctx, li + 1, &lvl);
            levels.push(lvl);
        }
        // Records are pushed down in window order (older windows first),
        // which preserves newest-wins in the target level's append order.
        for b in 0..levels[li].n_buckets {
            let ba = levels[li].bucket(b);
            let count = ctx.read_u64(ba).min(BUCKET_SLOTS);
            for s in 0..count {
                let k = ctx.read_u64(PmAddr(ba.0 + 8 + s * 16));
                let vw = ctx.read_u64(PmAddr(ba.0 + 16 + s * 16));
                let h = hash_key(k);
                let nb = h % levels[li + 1].n_buckets;
                if !self.bucket_append(ctx, &levels[li + 1], nb, k, vw) {
                    self.merge_level(ctx, levels, li + 1)?;
                    let nb = h % levels[li + 1].n_buckets;
                    if !self.bucket_append(ctx, &levels[li + 1], nb, k, vw) {
                        return Err(IndexError::OutOfMemory);
                    }
                }
            }
            // Empty the merged bucket only after its records are durable
            // downstairs; a crash in between leaves harmless duplicates
            // (same key, same value word, found-first in the upper level).
            ctx.write_u64(ba, 0);
            ctx.flush(ba);
            ctx.fence();
        }
        Ok(())
    }

    /// Upsert through the buffer + WAL (LSM write path).
    fn put(&self, ctx: &mut MemCtx, key: u64, vw: u64) -> Result<(), IndexError> {
        let h = hash_key(key);
        let shard = Self::shard_of(h);
        enum After {
            None,
            Flush(Vec<(u64, u64)>, u64),
        }
        let after = self.shards[shard].with(ctx, |ctx, sh| {
            // WAL first, then the volatile buffer.
            let mut off = sh.wal_off;
            self.wal_append(ctx, shard, &mut off, key, vw);
            sh.wal_off = off;
            // Shadow any buffered version.
            if let Some(e) = sh.buf.iter_mut().find(|e| e.0 == key) {
                e.1 = vw;
                return After::None;
            }
            sh.buf.push((key, vw));
            if sh.buf.len() >= BUF_CAP && !sh.flushing {
                sh.flushing = true;
                // Snapshot, don't drain: entries must stay visible in the
                // buffer until they are queryable from level 0. Every
                // unflushed record has a sequence number at or below the
                // one just appended.
                After::Flush(sh.buf.clone(), sh.wal_off / REC_BYTES)
            } else {
                After::None
            }
        });
        if let After::Flush(batch, last_seq) = after {
            {
                let mut levels = self.levels.write();
                for &(k, vw) in &batch {
                    self.level_insert(ctx, &mut levels, 0, k, vw)?;
                }
            }
            // The batch is durable in the levels; records up to the
            // snapshot seq need no replay. Entries appended or updated
            // during the flush carry later seqs and stay above the
            // watermark. (A crash before this write replays the batch into
            // the buffer — duplicates of level records with identical
            // value words, which newest-first lookup renders harmless.)
            self.write_watermark(ctx, shard, last_seq);
            self.shards[shard].with(ctx, |_, sh| {
                // Drop exactly what was flushed; entries updated while the
                // flush ran stay buffered (their newer value flushes later).
                sh.buf.retain(|e| !batch.contains(e));
                sh.flushing = false;
            });
        }
        Ok(())
    }

    /// LSM lookup: buffer, then every level, newest first.
    fn lookup(&self, ctx: &mut MemCtx, key: u64) -> Option<u64> {
        let h = hash_key(key);
        let shard = Self::shard_of(h);
        let hit = self.shards[shard].with(ctx, |ctx, sh| {
            ctx.charge_dram_cached();
            sh.buf.iter().rev().find(|e| e.0 == key).map(|e| e.1)
        });
        if let Some(vw) = hit {
            return (vw != TOMB).then_some(vw);
        }
        let levels = self.levels.read();
        for lvl in levels.iter() {
            if let Some(vw) = self.bucket_find(ctx, lvl, h % lvl.n_buckets, key) {
                return (vw != TOMB).then_some(vw);
            }
        }
        None
    }

    /// Rebuild a Plush from a recovered heap image: validate the root
    /// block and level array, then replay every WAL record above each
    /// shard's flush watermark into that shard's buffer (newest wins).
    /// Returns `None` when the image holds no committed Plush.
    pub fn recover(ctx: &mut MemCtx) -> Option<Self> {
        ctx.stats_span(spash_pmem::SPAN_LOG_REPLAY, Self::recover_impl)
    }

    fn recover_impl(ctx: &mut MemCtx) -> Option<Self> {
        let rec = PmAllocator::recover(ctx)?;
        let (root, root_len) = rec.alloc.reserved();
        if root_len < ROOT_LEN || ctx.read_u64(root) != ROOT_MAGIC {
            return None;
        }
        let lock_ns = ctx.device().config().cost.lock_ns;
        let regions: std::collections::HashMap<u64, u64> =
            rec.regions.iter().map(|&(a, l)| (a.0, l)).collect();

        let level0_buckets = ctx.read_u64(PmAddr(root.0 + 8));
        let wal_base = PmAddr(ctx.read_u64(PmAddr(root.0 + 16)));
        let n_levels = ctx.read_u64(PmAddr(root.0 + 24));
        if level0_buckets == 0
            || !level0_buckets.is_power_of_two()
            || n_levels == 0
            || n_levels > MAX_LEVELS as u64
            || regions.get(&wal_base.0) != Some(&(SHARDS as u64 * WAL_BYTES))
        {
            return None;
        }
        let mut levels = Vec::with_capacity(n_levels as usize);
        for li in 0..n_levels {
            let e = PmAddr(root.0 + LEVELS_OFF + li * 16);
            let addr = ctx.read_u64(e);
            let n_buckets = ctx.read_u64(PmAddr(e.0 + 8));
            // The level geometry is fully determined by its index; a
            // committed descriptor can never disagree with it.
            let want = FANOUT
                .checked_pow(li as u32)
                .and_then(|f| level0_buckets.checked_mul(f))?;
            if n_buckets != want || regions.get(&addr) != Some(&(n_buckets * BUCKET_BYTES)) {
                return None;
            }
            levels.push(Lvl {
                addr: PmAddr(addr),
                n_buckets,
            });
        }

        // WAL replay: valid records (seq matches at both ends, lands in
        // its own ring slot, above the watermark) rebuild the volatile
        // buffers the crash destroyed.
        let mut shards = Vec::with_capacity(SHARDS);
        for shard in 0..SHARDS as u64 {
            let wm = ctx.read_u64(PmAddr(root.0 + WATERMARKS_OFF + shard * 8));
            let base = wal_base.0 + shard * WAL_BYTES;
            let mut recs: Vec<(u64, u64, u64)> = Vec::new();
            for slot in 0..WAL_RECS {
                let a = base + slot * REC_BYTES;
                let seq = ctx.read_u64(PmAddr(a));
                if seq == 0 || seq <= wm || ctx.read_u64(PmAddr(a + 24)) != seq {
                    continue; // stale, flushed, or torn append
                }
                if (seq - 1) % WAL_RECS != slot {
                    continue;
                }
                recs.push((seq, ctx.read_u64(PmAddr(a + 8)), ctx.read_u64(PmAddr(a + 16))));
            }
            recs.sort_unstable_by_key(|r| r.0);
            let mut buf: Vec<(u64, u64)> = Vec::with_capacity(BUF_CAP);
            for &(_, k, vw) in &recs {
                if let Some(e) = buf.iter_mut().find(|e| e.0 == k) {
                    e.1 = vw;
                } else {
                    buf.push((k, vw));
                }
            }
            let max_seq = recs.last().map_or(wm, |r| r.0.max(wm));
            shards.push(VLock::new(
                Shard {
                    buf,
                    wal_off: max_seq * REC_BYTES,
                    flushing: false,
                },
                lock_ns,
            ));
        }

        let idx = Self {
            alloc: Arc::new(rec.alloc),
            op_locks: (0..SHARDS).map(|_| VLock::new((), lock_ns)).collect(),
            shards,
            wal_base,
            levels: RwLock::new(levels),
            level0_buckets,
            entries: AtomicU64::new(0),
            root,
        };
        // Live-entry census: every key anywhere in the LSM, counted only
        // if its newest version is not a tombstone.
        let mut keys: HashSet<u64> = HashSet::new();
        for shard in 0..SHARDS {
            idx.shards[shard].with(ctx, |_, sh| {
                keys.extend(sh.buf.iter().map(|e| e.0));
            });
        }
        {
            let levels = idx.levels.read();
            for lvl in levels.iter() {
                for b in 0..lvl.n_buckets {
                    let ba = lvl.bucket(b);
                    let count = ctx.read_u64(ba).min(BUCKET_SLOTS);
                    for s in 0..count {
                        keys.insert(ctx.read_u64(PmAddr(ba.0 + 8 + s * 16)));
                    }
                }
            }
        }
        // Sorted walk: `lookup` issues PM reads, and hash-order iteration
        // would make the modelled cache's hit/miss pattern (and thus the
        // perf gate's bit-exact counters) depend on `RandomState`.
        let mut keys: Vec<u64> = keys.into_iter().collect();
        keys.sort_unstable();
        let mut live = 0u64;
        for &k in &keys {
            if idx.lookup(ctx, k).is_some() {
                live += 1;
            }
        }
        idx.entries.store(live, Ordering::Relaxed);
        Some(idx)
    }

    /// Plush as a [`CrashTarget`] for the crash-point sweep.
    pub fn crash_target(pow: u32) -> CrashTarget {
        CrashTarget {
            name: "Plush".into(),
            format: Box::new(move |ctx| {
                Box::new(Plush::format(ctx, pow).expect("format Plush"))
            }),
            recover: Box::new(|ctx| {
                let idx = Plush::recover(ctx)?;
                // The WAL, every level, and every blob a slot (level or
                // replayed buffer) still names. Shadowed versions keep
                // their slots until a merge drops them, so their blobs
                // stay reachable; blobs whose only reference was an
                // overwritten buffer entry are counted as leaks — the
                // LSM's documented until-compaction garbage.
                let mut reachable: HashSet<u64> = HashSet::new();
                reachable.insert(idx.wal_base.0);
                {
                    let levels = idx.levels.read();
                    for lvl in levels.iter() {
                        reachable.insert(lvl.addr.0);
                        for b in 0..lvl.n_buckets {
                            let ba = lvl.bucket(b);
                            let count = ctx.read_u64(ba).min(BUCKET_SLOTS);
                            for s in 0..count {
                                let vw = ctx.read_u64(PmAddr(ba.0 + 16 + s * 16));
                                if vw == TOMB {
                                    continue;
                                }
                                if let common::ValWord::Blob(a) = common::unpack_val(vw) {
                                    reachable.insert(a.0);
                                }
                            }
                        }
                    }
                }
                for shard in 0..SHARDS {
                    idx.shards[shard].with(ctx, |_, sh| {
                        for &(_, vw) in &sh.buf {
                            if vw == TOMB {
                                continue;
                            }
                            if let common::ValWord::Blob(a) = common::unpack_val(vw) {
                                reachable.insert(a.0);
                            }
                        }
                    });
                }
                let (leaked_allocs, audit_error) = common::audit_census(ctx, &reachable);
                Some(Recovery {
                    index: Box::new(idx),
                    leaked_allocs,
                    audit_error,
                })
            }),
        }
    }
}

impl PersistentIndex for Plush {
    fn name(&self) -> &'static str {
        "Plush"
    }

    fn insert(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        self.op_locks[Self::shard_of(hash_key(key))].with(ctx, |ctx, _| {
            if self.lookup(ctx, key).is_some() {
                return Err(IndexError::DuplicateKey);
            }
            let vw = common::make_val(&self.alloc, ctx, key, value)?;
            self.put(ctx, key, vw)?;
            self.entries.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
    }

    fn update(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        self.op_locks[Self::shard_of(hash_key(key))].with(ctx, |ctx, _| {
            if self.lookup(ctx, key).is_none() {
                return Err(IndexError::NotFound);
            }
            // Out-of-place: the old version is shadowed, not freed
            // (reclaimed at merge in the original; the blob itself leaks
            // here like any LSM until compaction).
            let vw = common::make_val(&self.alloc, ctx, key, value)?;
            self.put(ctx, key, vw)
        })
    }

    fn get(&self, ctx: &mut MemCtx, key: u64, out: &mut Vec<u8>) -> bool {
        ctx.stats_span(spash_pmem::SPAN_PROBE, |ctx| match self.lookup(ctx, key) {
            None => false,
            Some(vw) => {
                common::append_value(ctx, vw, out);
                true
            }
        })
    }

    fn remove(&self, ctx: &mut MemCtx, key: u64) -> bool {
        self.op_locks[Self::shard_of(hash_key(key))].with(ctx, |ctx, _| {
            if self.lookup(ctx, key).is_none() {
                return false;
            }
            if self.put(ctx, key, TOMB).is_err() {
                return false;
            }
            self.entries.fetch_sub(1, Ordering::Relaxed);
            true
        })
    }

    fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    fn capacity_slots(&self) -> u64 {
        let levels = self.levels.read();
        levels.iter().map(|l| l.n_buckets * BUCKET_SLOTS).sum::<u64>()
            + (SHARDS * BUF_CAP) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cceh::test_device;

    fn setup() -> (Arc<spash_pmem::PmDevice>, Plush, MemCtx) {
        let (dev, mut ctx) = test_device();
        let idx = Plush::format(&mut ctx, 4).unwrap();
        (dev, idx, ctx)
    }

    #[test]
    fn basic_crud() {
        let (_d, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 1, 10).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(10));
        idx.update_u64(&mut ctx, 1, 20).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(20));
        assert!(idx.remove(&mut ctx, 1));
        assert_eq!(idx.get_u64(&mut ctx, 1), None);
        assert!(!idx.remove(&mut ctx, 1));
    }

    #[test]
    fn flushes_and_merges_preserve_newest_version() {
        let (_d, idx, mut ctx) = setup();
        let n = 3000u64;
        for k in 1..=n {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        // Update a subset so older versions linger in deeper levels.
        for k in (1..=n).step_by(3) {
            idx.update_u64(&mut ctx, k, k + 100_000).unwrap();
        }
        for k in 1..=n {
            let want = if k % 3 == 1 { k + 100_000 } else { k };
            assert_eq!(idx.get_u64(&mut ctx, k), Some(want), "key {k}");
        }
    }

    #[test]
    fn deletes_shadow_older_versions_across_levels() {
        let (_d, idx, mut ctx) = setup();
        for k in 1..=2000u64 {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        for k in 1..=2000u64 {
            assert!(idx.remove(&mut ctx, k), "remove {k}");
        }
        for k in 1..=2000u64 {
            assert_eq!(idx.get_u64(&mut ctx, k), None, "key {k} returned");
        }
        assert_eq!(idx.entries(), 0);
    }

    #[test]
    fn recover_replays_wal_above_watermark() {
        let (dev, mut ctx) = test_device();
        let idx = Plush::format(&mut ctx, 4).unwrap();
        let n = 3000u64;
        for k in 1..=n {
            idx.insert_u64(&mut ctx, k, k * 3).unwrap();
        }
        let blob = vec![5u8; 200];
        idx.insert(&mut ctx, 9999, &blob).unwrap();
        for k in 1..=80 {
            idx.update_u64(&mut ctx, k, k + 500_000).unwrap();
        }
        for k in 200..=240 {
            assert!(idx.remove(&mut ctx, k));
        }
        let live = idx.entries();
        drop(idx);
        dev.flush_cache_all();

        let rec = Plush::recover(&mut ctx).expect("recover Plush");
        assert_eq!(rec.entries(), live);
        for k in 1..=80u64 {
            assert_eq!(rec.get_u64(&mut ctx, k), Some(k + 500_000), "updated {k}");
        }
        for k in 200..=240u64 {
            assert_eq!(rec.get_u64(&mut ctx, k), None, "removed {k}");
        }
        for k in 241..=n {
            assert_eq!(rec.get_u64(&mut ctx, k), Some(k * 3), "key {k}");
        }
        let mut out = Vec::new();
        assert!(rec.get(&mut ctx, 9999, &mut out));
        assert_eq!(out, blob);
        // The recovered index stays usable (WAL sequence numbers resume).
        rec.insert_u64(&mut ctx, n + 1, 1).unwrap();
        assert_eq!(rec.get_u64(&mut ctx, n + 1), Some(1));
        rec.update_u64(&mut ctx, n + 1, 2).unwrap();
        assert_eq!(rec.get_u64(&mut ctx, n + 1), Some(2));
    }

    #[test]
    fn recover_refuses_unformatted_image() {
        let (_d, mut ctx) = test_device();
        assert!(Plush::recover(&mut ctx).is_none());
        let _ = PmAllocator::format(&mut ctx, 0);
        assert!(Plush::recover(&mut ctx).is_none());
    }

    #[test]
    fn concurrent_inserts() {
        let (dev, mut ctx) = test_device();
        let idx = Arc::new(Plush::format(&mut ctx, 4).unwrap());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let idx = Arc::clone(&idx);
                let dev = Arc::clone(&dev);
                s.spawn(move || {
                    let mut ctx = dev.ctx();
                    for i in 0..800u64 {
                        let k = 1 + t * 800 + i;
                        idx.insert_u64(&mut ctx, k, k).unwrap();
                    }
                });
            }
        });
        for k in 1..=3200u64 {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k), "key {k}");
        }
    }
}
