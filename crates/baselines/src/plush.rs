//! Plush — a write-optimized persistent log-structured hash table (Vogel
//! et al., VLDB'22), as characterized by the Spash paper (§VI):
//!
//! * writes land in a **DRAM buffer** guarded by a **write-ahead log** in
//!   PM (sequential appends — cheap), then flush in batches to level 0;
//! * levels form an LSM: level *i+1* is **16× larger**; a full level
//!   merges downward, "which leads to a large volume of PM writes when
//!   flushing DRAM buffer to PM and merging PM-based hash tables across
//!   different levels";
//! * lookups walk buffer → L0 → L1 → …, "requiring an average traversal
//!   of O(logN) levels to retrieve a key-value entry" — the search-cost
//!   trade Plush makes for sequential writes;
//! * partition locks on the buffer and a table lock during merges
//!   ("lock-based out-of-place write and shared write-ahead logs").
//!
//! LSM semantics: newer versions shadow older ones; deletes write
//! tombstones; stale versions linger in deeper levels until a merge drops
//! them (visible as Plush's low, fluctuating load factor, Fig 9).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use spash_alloc::PmAllocator;
use spash_index_api::{hash_key, IndexError, PersistentIndex};
use spash_pmem::{MemCtx, PmAddr, VLock};

use crate::common::{self};

const SHARDS: usize = 64;
/// Buffered entries per shard before a flush to level 0.
const BUF_CAP: usize = 64;
/// WAL bytes per shard (a ring; sequential appends).
const WAL_BYTES: u64 = BUF_CAP as u64 * 16 * 4;
/// Bucket: count word + 15 (key, value-word) pairs + padding = one XPLine.
const BUCKET_BYTES: u64 = 256;
const BUCKET_SLOTS: u64 = 15;
/// Level fanout (the paper: "Plush allocates a 16× larger level").
const FANOUT: u64 = 16;
/// Value-word tombstone (LSM delete marker).
const TOMB: u64 = u64::MAX;
/// Linear-probe window within a level: a bucket that fills spills into its
/// neighbours; only a full window triggers a level merge.
const PROBE: u64 = 8;

struct Shard {
    buf: Vec<(u64, u64)>,
    wal_off: u64,
    /// A flush of this shard is in flight (one at a time).
    flushing: bool,
}

struct Lvl {
    addr: PmAddr,
    n_buckets: u64,
}

impl Lvl {
    fn bucket(&self, i: u64) -> PmAddr {
        PmAddr(self.addr.0 + (i % self.n_buckets) * BUCKET_BYTES)
    }
}

/// The Plush baseline.
pub struct Plush {
    alloc: Arc<PmAllocator>,
    shards: Vec<VLock<Shard>>,
    wal_base: PmAddr,
    levels: RwLock<Vec<Lvl>>,
    level0_buckets: u64,
    entries: AtomicU64,
}

impl Plush {
    /// `pow` sets level-0 size (`2^pow` buckets).
    pub fn new(ctx: &mut MemCtx, alloc: Arc<PmAllocator>, pow: u32) -> Result<Self, IndexError> {
        let lock_ns = ctx.device().config().cost.lock_ns;
        let wal_base = alloc
            .alloc_region(ctx, SHARDS as u64 * WAL_BYTES)
            .map_err(|_| IndexError::OutOfMemory)?;
        let level0_buckets = 1u64 << pow;
        let l0 = Self::alloc_level(ctx, &alloc, level0_buckets)?;
        Ok(Self {
            alloc,
            shards: (0..SHARDS)
                .map(|_| {
                    VLock::new(
                        Shard {
                            buf: Vec::with_capacity(BUF_CAP),
                            wal_off: 0,
                            flushing: false,
                        },
                        lock_ns,
                    )
                })
                .collect(),
            wal_base,
            levels: RwLock::new(vec![l0]),
            level0_buckets,
            entries: AtomicU64::new(0),
        })
    }

    pub fn format(ctx: &mut MemCtx, pow: u32) -> Result<Self, IndexError> {
        let alloc = Arc::new(PmAllocator::format(ctx, 0));
        Self::new(ctx, alloc, pow)
    }

    fn alloc_level(ctx: &mut MemCtx, alloc: &PmAllocator, n: u64) -> Result<Lvl, IndexError> {
        let addr = alloc
            .alloc_region(ctx, n * BUCKET_BYTES)
            .map_err(|_| IndexError::OutOfMemory)?;
        let zeros = [0u8; 256];
        for i in 0..n {
            ctx.ntstore_bytes(PmAddr(addr.0 + i * BUCKET_BYTES), &zeros);
        }
        Ok(Lvl { addr, n_buckets: n })
    }

    #[inline]
    fn shard_of(h: u64) -> usize {
        (h >> 58) as usize % SHARDS
    }

    /// Append one (key, value-word) record to the shard's WAL — the
    /// sequential PM write every Plush mutation pays.
    fn wal_append(&self, ctx: &mut MemCtx, shard: usize, off: &mut u64, k: u64, vw: u64) {
        let base = self.wal_base.0 + shard as u64 * WAL_BYTES + (*off % WAL_BYTES);
        ctx.write_u64(PmAddr(base), k);
        ctx.write_u64(PmAddr(base + 8), vw);
        *off += 16;
    }

    /// Scan the probe window of `key`'s home bucket, returning the newest
    /// version. Appends go to the first non-full bucket of the window, so
    /// later windows positions (and later slots) hold newer versions; the
    /// scan stops at the first non-full bucket.
    fn bucket_find(&self, ctx: &mut MemCtx, lvl: &Lvl, home: u64, key: u64) -> Option<u64> {
        let mut newest = None;
        for p in 0..PROBE {
            let ba = lvl.bucket(home + p);
            let count = ctx.read_u64(ba).min(BUCKET_SLOTS);
            for s in 0..count {
                let k = ctx.read_u64(PmAddr(ba.0 + 8 + s * 16));
                if k == key {
                    newest = Some(ctx.read_u64(PmAddr(ba.0 + 16 + s * 16)));
                }
            }
            if count < BUCKET_SLOTS {
                break; // nothing was ever pushed past a non-full bucket
            }
        }
        newest
    }

    /// Append a record into the probe window of home bucket `home`;
    /// false when the whole window is full (time to merge the level).
    fn bucket_append(&self, ctx: &mut MemCtx, lvl: &Lvl, home: u64, k: u64, vw: u64) -> bool {
        for p in 0..PROBE {
            let ba = lvl.bucket(home + p);
            let count = ctx.read_u64(ba);
            if count >= BUCKET_SLOTS {
                continue;
            }
            ctx.write_u64(PmAddr(ba.0 + 8 + count * 16), k);
            ctx.write_u64(PmAddr(ba.0 + 16 + count * 16), vw);
            ctx.write_u64(ba, count + 1);
            return true;
        }
        false
    }

    /// Insert into level `li`, merging downward when a bucket fills.
    /// Caller holds the levels write lock.
    fn level_insert(
        &self,
        ctx: &mut MemCtx,
        levels: &mut Vec<Lvl>,
        li: usize,
        k: u64,
        vw: u64,
    ) -> Result<(), IndexError> {
        loop {
            if li >= levels.len() {
                let n = self.level0_buckets * FANOUT.pow(li as u32);
                let lvl = Self::alloc_level(ctx, &self.alloc, n)?;
                levels.push(lvl);
            }
            let h = hash_key(k);
            let b = h % levels[li].n_buckets;
            if self.bucket_append(ctx, &levels[li], b, k, vw) {
                return Ok(());
            }
            // Bucket full: merge this whole level into the next, then
            // retry. "It still produces a substantial volume of PM writes
            // ... when merging PM-based hash tables across different
            // levels."
            self.merge_level(ctx, levels, li)?;
        }
    }

    fn merge_level(
        &self,
        ctx: &mut MemCtx,
        levels: &mut Vec<Lvl>,
        li: usize,
    ) -> Result<(), IndexError> {
        if li + 1 >= levels.len() {
            let n = self.level0_buckets * FANOUT.pow(li as u32 + 1);
            let lvl = Self::alloc_level(ctx, &self.alloc, n)?;
            levels.push(lvl);
        }
        // Records are pushed down in window order (older windows first),
        // which preserves newest-wins in the target level's append order.
        for b in 0..levels[li].n_buckets {
            let ba = levels[li].bucket(b);
            let count = ctx.read_u64(ba).min(BUCKET_SLOTS);
            for s in 0..count {
                let k = ctx.read_u64(PmAddr(ba.0 + 8 + s * 16));
                let vw = ctx.read_u64(PmAddr(ba.0 + 16 + s * 16));
                let h = hash_key(k);
                let nb = h % levels[li + 1].n_buckets;
                if !self.bucket_append(ctx, &levels[li + 1], nb, k, vw) {
                    self.merge_level(ctx, levels, li + 1)?;
                    let nb = h % levels[li + 1].n_buckets;
                    if !self.bucket_append(ctx, &levels[li + 1], nb, k, vw) {
                        return Err(IndexError::OutOfMemory);
                    }
                }
            }
            ctx.write_u64(ba, 0); // empty the merged bucket
        }
        Ok(())
    }

    /// Upsert through the buffer + WAL (LSM write path).
    fn put(&self, ctx: &mut MemCtx, key: u64, vw: u64) -> Result<(), IndexError> {
        let h = hash_key(key);
        let shard = Self::shard_of(h);
        enum After {
            None,
            Flush(Vec<(u64, u64)>),
        }
        let after = self.shards[shard].with(ctx, |ctx, sh| {
            // WAL first, then the volatile buffer.
            let mut off = sh.wal_off;
            self.wal_append(ctx, shard, &mut off, key, vw);
            sh.wal_off = off;
            // Shadow any buffered version.
            if let Some(e) = sh.buf.iter_mut().find(|e| e.0 == key) {
                e.1 = vw;
                return After::None;
            }
            sh.buf.push((key, vw));
            if sh.buf.len() >= BUF_CAP && !sh.flushing {
                sh.flushing = true;
                // Snapshot, don't drain: entries must stay visible in the
                // buffer until they are queryable from level 0.
                After::Flush(sh.buf.clone())
            } else {
                After::None
            }
        });
        if let After::Flush(batch) = after {
            {
                let mut levels = self.levels.write();
                for &(k, vw) in &batch {
                    self.level_insert(ctx, &mut levels, 0, k, vw)?;
                }
            }
            self.shards[shard].with(ctx, |_, sh| {
                // Drop exactly what was flushed; entries updated while the
                // flush ran stay buffered (their newer value flushes later).
                sh.buf.retain(|e| !batch.contains(e));
                sh.flushing = false;
            });
        }
        Ok(())
    }

    /// LSM lookup: buffer, then every level, newest first.
    fn lookup(&self, ctx: &mut MemCtx, key: u64) -> Option<u64> {
        let h = hash_key(key);
        let shard = Self::shard_of(h);
        let hit = self.shards[shard].with(ctx, |ctx, sh| {
            ctx.charge_dram_cached();
            sh.buf.iter().rev().find(|e| e.0 == key).map(|e| e.1)
        });
        if let Some(vw) = hit {
            return (vw != TOMB).then_some(vw);
        }
        let levels = self.levels.read();
        for lvl in levels.iter() {
            if let Some(vw) = self.bucket_find(ctx, lvl, h % lvl.n_buckets, key) {
                return (vw != TOMB).then_some(vw);
            }
        }
        None
    }
}

impl PersistentIndex for Plush {
    fn name(&self) -> &'static str {
        "Plush"
    }

    fn insert(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        if self.lookup(ctx, key).is_some() {
            return Err(IndexError::DuplicateKey);
        }
        let vw = common::make_val(&self.alloc, ctx, key, value)?;
        self.put(ctx, key, vw)?;
        self.entries.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn update(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        if self.lookup(ctx, key).is_none() {
            return Err(IndexError::NotFound);
        }
        // Out-of-place: the old version is shadowed, not freed (reclaimed
        // at merge in the original; the blob itself leaks here like any
        // LSM until compaction).
        let vw = common::make_val(&self.alloc, ctx, key, value)?;
        self.put(ctx, key, vw)
    }

    fn get(&self, ctx: &mut MemCtx, key: u64, out: &mut Vec<u8>) -> bool {
        match self.lookup(ctx, key) {
            None => false,
            Some(vw) => {
                common::append_value(ctx, vw, out);
                true
            }
        }
    }

    fn remove(&self, ctx: &mut MemCtx, key: u64) -> bool {
        if self.lookup(ctx, key).is_none() {
            return false;
        }
        if self.put(ctx, key, TOMB).is_err() {
            return false;
        }
        self.entries.fetch_sub(1, Ordering::Relaxed);
        true
    }

    fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    fn capacity_slots(&self) -> u64 {
        let levels = self.levels.read();
        levels.iter().map(|l| l.n_buckets * BUCKET_SLOTS).sum::<u64>()
            + (SHARDS * BUF_CAP) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cceh::test_device;

    fn setup() -> (Arc<spash_pmem::PmDevice>, Plush, MemCtx) {
        let (dev, mut ctx) = test_device();
        let idx = Plush::format(&mut ctx, 4).unwrap();
        (dev, idx, ctx)
    }

    #[test]
    fn basic_crud() {
        let (_d, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 1, 10).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(10));
        idx.update_u64(&mut ctx, 1, 20).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(20));
        assert!(idx.remove(&mut ctx, 1));
        assert_eq!(idx.get_u64(&mut ctx, 1), None);
        assert!(!idx.remove(&mut ctx, 1));
    }

    #[test]
    fn flushes_and_merges_preserve_newest_version() {
        let (_d, idx, mut ctx) = setup();
        let n = 3000u64;
        for k in 1..=n {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        // Update a subset so older versions linger in deeper levels.
        for k in (1..=n).step_by(3) {
            idx.update_u64(&mut ctx, k, k + 100_000).unwrap();
        }
        for k in 1..=n {
            let want = if k % 3 == 1 { k + 100_000 } else { k };
            assert_eq!(idx.get_u64(&mut ctx, k), Some(want), "key {k}");
        }
    }

    #[test]
    fn deletes_shadow_older_versions_across_levels() {
        let (_d, idx, mut ctx) = setup();
        for k in 1..=2000u64 {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        for k in 1..=2000u64 {
            assert!(idx.remove(&mut ctx, k), "remove {k}");
        }
        for k in 1..=2000u64 {
            assert_eq!(idx.get_u64(&mut ctx, k), None, "key {k} returned");
        }
        assert_eq!(idx.entries(), 0);
    }

    #[test]
    fn concurrent_inserts() {
        let (dev, mut ctx) = test_device();
        let idx = Arc::new(Plush::format(&mut ctx, 4).unwrap());
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let idx = Arc::clone(&idx);
                let dev = Arc::clone(&dev);
                s.spawn(move |_| {
                    let mut ctx = dev.ctx();
                    for i in 0..800u64 {
                        let k = 1 + t * 800 + i;
                        idx.insert_u64(&mut ctx, k, k).unwrap();
                    }
                });
            }
        })
        .unwrap();
        for k in 1..=3200u64 {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k), "key {k}");
        }
    }
}
