//! Dash — scalable extendible hashing on PM (Lu et al., VLDB'20), with
//! the traits the Spash paper measures (§VI):
//!
//! * 16 KiB segments of 256-byte buckets (one XPLine each), 14 records per
//!   bucket behind a metadata header with **fingerprints** and an
//!   allocation bitmap — metadata maintenance is PM write traffic Spash
//!   avoids;
//! * **balanced insert** (target or neighbour, whichever is emptier),
//!   **displacement**, and **stash buckets**, which buy load factor at the
//!   cost of extra probing ("Dash incurs multiple XPLine-sized
//!   bucket-reads for each search");
//! * **optimistic lock-free reads** (version validation, no PM writes)
//!   but **lock-based writes** — why its write-intensive YCSB numbers trail
//!   its read-intensive ones (Fig 10).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use spash_alloc::PmAllocator;
use spash_index_api::{hash_key, IndexError, PersistentIndex};
use spash_pmem::{MemCtx, PmAddr, VLock, VRwLock};

use crate::common::{self, EMPTY_KEY};

const BUCKETS: u64 = 60;
const STASH: u64 = 4;
const SLOTS: u64 = 14;
const BUCKET_BYTES: u64 = 256;
/// 64-byte segment header (version word) + 64 buckets.
const SEG_BYTES: u64 = 64 + (BUCKETS + STASH) * BUCKET_BYTES;

struct Seg {
    addr: PmAddr,
    /// Structural lock: writers share it, splits take it exclusively.
    rw: VRwLock<()>,
    /// Per-bucket write locks (virtual-time; the PM version word in the
    /// bucket header carries the optimistic-read protocol).
    bucket_locks: Vec<VLock<()>>,
}

impl Seg {
    fn bucket_addr(&self, b: u64) -> PmAddr {
        PmAddr(self.addr.0 + 64 + b * BUCKET_BYTES)
    }

    /// PM version word of bucket `b` (header word 0).
    fn ver_addr(&self, b: u64) -> PmAddr {
        self.bucket_addr(b)
    }

    /// Bitmap word (header word 1): low 14 bits allocation bitmap.
    fn meta_addr(&self, b: u64) -> PmAddr {
        PmAddr(self.bucket_addr(b).0 + 8)
    }

    /// Fingerprint bytes (header words 2-3).
    fn fp_addr(&self, b: u64) -> PmAddr {
        PmAddr(self.bucket_addr(b).0 + 16)
    }

    fn slot_addr(&self, b: u64, s: u64) -> PmAddr {
        PmAddr(self.bucket_addr(b).0 + 32 + s * 16)
    }
}

struct Dir {
    depth: u32,
    entries: Vec<(Arc<Seg>, u8)>,
}

/// The Dash baseline.
pub struct Dash {
    alloc: Arc<PmAllocator>,
    dir: RwLock<Dir>,
    entries: AtomicU64,
    n_segs: AtomicU64,
}

#[inline]
fn fp8(h: u64) -> u8 {
    ((h >> 48) & 0xff) as u8
}

impl Dash {
    pub fn new(ctx: &mut MemCtx, alloc: Arc<PmAllocator>, depth: u32) -> Result<Self, IndexError> {
        let n = 1usize << depth;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push((Self::alloc_seg(ctx, &alloc)?, depth as u8));
        }
        Ok(Self {
            alloc,
            dir: RwLock::new(Dir { depth, entries }),
            entries: AtomicU64::new(0),
            n_segs: AtomicU64::new(n as u64),
        })
    }

    pub fn format(ctx: &mut MemCtx, depth: u32) -> Result<Self, IndexError> {
        let alloc = Arc::new(PmAllocator::format(ctx, 0));
        Self::new(ctx, alloc, depth)
    }

    fn alloc_seg(ctx: &mut MemCtx, alloc: &PmAllocator) -> Result<Arc<Seg>, IndexError> {
        let lock_ns = ctx.device().config().cost.lock_ns;
        let addr = alloc
            .alloc_region(ctx, SEG_BYTES)
            .map_err(|_| IndexError::OutOfMemory)?;
        let zeros = [0u8; 256];
        let mut off = 0;
        while off < SEG_BYTES {
            let n = 256.min(SEG_BYTES - off) as usize;
            ctx.ntstore_bytes(PmAddr(addr.0 + off), &zeros[..n]);
            off += n as u64;
        }
        Ok(Arc::new(Seg {
            addr,
            rw: VRwLock::new((), lock_ns),
            bucket_locks: (0..BUCKETS + STASH).map(|_| VLock::new((), lock_ns)).collect(),
        }))
    }

    fn route(&self, ctx: &mut MemCtx, h: u64) -> (Arc<Seg>, u8, u32) {
        ctx.charge_dram_cached();
        let d = self.dir.read();
        let idx = (h >> (64 - d.depth)) as usize;
        let (seg, ld) = &d.entries[idx];
        (Arc::clone(seg), *ld, d.depth)
    }

    fn home_bucket(h: u64) -> u64 {
        (h >> 8) % BUCKETS
    }

    /// Scan one bucket for `key` using the fingerprint filter. Returns
    /// (slot, value word).
    fn scan_bucket(
        &self,
        ctx: &mut MemCtx,
        seg: &Seg,
        b: u64,
        key: u64,
        h: u64,
    ) -> Option<(u64, u64)> {
        let bitmap = ctx.read_u64(seg.meta_addr(b)) as u16;
        if bitmap == 0 {
            return None;
        }
        let mut fps = [0u8; 16];
        ctx.read_bytes(seg.fp_addr(b), &mut fps);
        let want = fp8(h);
        for s in 0..SLOTS {
            if bitmap & (1 << s) != 0 && fps[s as usize] == want {
                let k = ctx.read_u64(seg.slot_addr(b, s));
                if k == key {
                    let v = ctx.read_u64(PmAddr(seg.slot_addr(b, s).0 + 8));
                    return Some((s, v));
                }
            }
        }
        None
    }

    /// Find `key` across home, neighbour and stash buckets. Returns
    /// (bucket, slot, value word).
    fn find(&self, ctx: &mut MemCtx, seg: &Seg, key: u64, h: u64) -> Option<(u64, u64, u64)> {
        let b = Self::home_bucket(h);
        for cand in [b, (b + 1) % BUCKETS] {
            if let Some((s, v)) = self.scan_bucket(ctx, seg, cand, key, h) {
                return Some((cand, s, v));
            }
        }
        for st in BUCKETS..BUCKETS + STASH {
            if let Some((s, v)) = self.scan_bucket(ctx, seg, st, key, h) {
                return Some((st, s, v));
            }
        }
        None
    }

    /// Write a record into bucket `b` (slot chosen from the bitmap).
    /// Caller holds the bucket lock. Returns false if full.
    fn bucket_insert(
        &self,
        ctx: &mut MemCtx,
        seg: &Seg,
        b: u64,
        key: u64,
        h: u64,
        vw: u64,
    ) -> bool {
        let bitmap = ctx.read_u64(seg.meta_addr(b));
        let free = (!bitmap & ((1 << SLOTS) - 1)).trailing_zeros() as u64;
        if free >= SLOTS {
            return false;
        }
        // Bump the PM version (odd = busy) around the mutation: Dash's
        // optimistic readers validate against it.
        let v = ctx.read_u64(seg.ver_addr(b));
        ctx.write_u64(seg.ver_addr(b), v + 1);
        ctx.write_u64(PmAddr(seg.slot_addr(b, free).0 + 8), vw);
        ctx.write_u64(seg.slot_addr(b, free), key);
        // Fingerprint byte + bitmap: the metadata PM writes Spash avoids.
        let mut fp = [0u8; 1];
        fp[0] = fp8(h);
        ctx.write_bytes(PmAddr(seg.fp_addr(b).0 + free), &fp);
        ctx.write_u64(seg.meta_addr(b), bitmap | 1 << free);
        ctx.write_u64(seg.ver_addr(b), v + 2);
        true
    }

    fn bucket_fill(&self, ctx: &mut MemCtx, seg: &Seg, b: u64) -> u32 {
        (ctx.read_u64(seg.meta_addr(b)) as u16).count_ones()
    }

    fn bucket_remove(&self, ctx: &mut MemCtx, seg: &Seg, b: u64, s: u64) {
        let v = ctx.read_u64(seg.ver_addr(b));
        ctx.write_u64(seg.ver_addr(b), v + 1);
        let bitmap = ctx.read_u64(seg.meta_addr(b));
        ctx.write_u64(seg.meta_addr(b), bitmap & !(1 << s));
        ctx.write_u64(seg.slot_addr(b, s), EMPTY_KEY);
        ctx.write_u64(seg.ver_addr(b), v + 2);
    }

    /// Insert with balanced insert → displacement → stash → split.
    fn insert_word(&self, ctx: &mut MemCtx, key: u64, vw: u64) -> Result<(), IndexError> {
        let h = hash_key(key);
        loop {
            let (seg, _ld, depth) = self.route(ctx, h);
            enum Out {
                Done,
                Dup,
                Full,
                Moved,
            }
            let out = seg.rw.read(ctx, |ctx, _| {
                // Validate routing under the structural lock.
                {
                    let d = self.dir.read();
                    let idx = (h >> (64 - d.depth)) as usize;
                    if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                        return Out::Moved;
                    }
                }
                let b = Self::home_bucket(h);
                let nb = (b + 1) % BUCKETS;
                let (first, second) = if b <= nb { (b, nb) } else { (nb, b) };
                seg.bucket_locks[first as usize].with(ctx, |ctx, _| {
                    seg.bucket_locks[second as usize].with(ctx, |ctx, _| {
                        // Duplicate check must cover the stash too: a key
                        // stashed while its buckets were full stays there
                        // even after deletes reopen them.
                        if self.scan_bucket(ctx, seg.as_ref(), b, key, h).is_some()
                            || self.scan_bucket(ctx, seg.as_ref(), nb, key, h).is_some()
                        {
                            return Out::Dup;
                        }
                        for st in BUCKETS..BUCKETS + STASH {
                            if self.scan_bucket(ctx, &seg, st, key, h).is_some() {
                                return Out::Dup;
                            }
                        }
                        // Balanced insert: the emptier of the two.
                        let (fb, fnb) = (
                            self.bucket_fill(ctx, &seg, b),
                            self.bucket_fill(ctx, &seg, nb),
                        );
                        let target = if fb <= fnb { b } else { nb };
                        if self.bucket_insert(ctx, &seg, target, key, h, vw) {
                            return Out::Done;
                        }
                        let other = if target == b { nb } else { b };
                        if self.bucket_insert(ctx, &seg, other, key, h, vw) {
                            return Out::Done;
                        }
                        for st in BUCKETS..BUCKETS + STASH {
                            let done = seg.bucket_locks[st as usize].with(ctx, |ctx, _| {
                                self.bucket_insert(ctx, &seg, st, key, h, vw)
                            });
                            if done {
                                return Out::Done;
                            }
                        }
                        Out::Full
                    })
                })
            });
            match out {
                Out::Done => {
                    self.entries.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Out::Dup => return Err(IndexError::DuplicateKey),
                Out::Moved => continue,
                Out::Full => self.split(ctx, h)?,
            }
        }
    }

    fn split(&self, ctx: &mut MemCtx, h: u64) -> Result<(), IndexError> {
        loop {
            let (seg, ld, depth) = self.route(ctx, h);
            if u32::from(ld) == depth {
                let mut dw = self.dir.write();
                if dw.depth == depth {
                    let doubled: Vec<(Arc<Seg>, u8)> = dw
                        .entries
                        .iter()
                        .flat_map(|e| [e.clone(), e.clone()])
                        .collect();
                    dw.entries = doubled;
                    dw.depth += 1;
                    ctx.charge_dram((dw.entries.len() as u64 * 8) / 64 + 1);
                }
                continue;
            }
            let new_seg = Self::alloc_seg(ctx, &self.alloc)?;
            let mut homeless: Vec<(u64, u64)> = Vec::new();
            let done = seg.rw.write(ctx, |ctx, _| {
                let mut d = self.dir.write();
                let depth_now = d.depth;
                let idx = (h >> (64 - depth_now)) as usize;
                let (cur, ld_now) = d.entries[idx].clone();
                if !Arc::ptr_eq(&cur, &seg) || ld_now != ld || u32::from(ld_now) >= depth_now {
                    return false;
                }
                // Rehash every record whose next prefix bit is 1.
                for b in 0..BUCKETS + STASH {
                    let bitmap = ctx.read_u64(seg.meta_addr(b)) as u16;
                    for s in 0..SLOTS {
                        if bitmap & (1 << s) == 0 {
                            continue;
                        }
                        let k = ctx.read_u64(seg.slot_addr(b, s));
                        let kh = hash_key(k);
                        if (kh >> (63 - u32::from(ld))) & 1 == 1 {
                            let vw = ctx.read_u64(PmAddr(seg.slot_addr(b, s).0 + 8));
                            // Move: home bucket, neighbour, then stash.
                            let nb = Self::home_bucket(kh);
                            let mut placed = self.bucket_insert(ctx, &new_seg, nb, k, kh, vw)
                                || self.bucket_insert(
                                    ctx,
                                    &new_seg,
                                    (nb + 1) % BUCKETS,
                                    k,
                                    kh,
                                    vw,
                                );
                            if !placed {
                                for st in BUCKETS..BUCKETS + STASH {
                                    if self.bucket_insert(ctx, &new_seg, st, k, kh, vw) {
                                        placed = true;
                                        break;
                                    }
                                }
                            }
                            if !placed {
                                // Essentially unreachable (84 collision
                                // slots); reinsert through the normal path
                                // after the split.
                                homeless.push((k, vw));
                            }
                            self.bucket_remove(ctx, &seg, b, s);
                        }
                    }
                }
                let span = 1usize << (depth_now - u32::from(ld));
                let base = (idx >> (depth_now - u32::from(ld))) << (depth_now - u32::from(ld));
                for i in 0..span {
                    d.entries[base + i] = if i >= span / 2 {
                        (Arc::clone(&new_seg), ld + 1)
                    } else {
                        (Arc::clone(&seg), ld + 1)
                    };
                }
                ctx.charge_dram(span as u64 / 8 + 1);
                true
            });
            if done {
                self.n_segs.fetch_add(1, Ordering::Relaxed);
                for (k, vw) in homeless {
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    self.insert_word(ctx, k, vw)?;
                }
                return Ok(());
            }
            self.alloc.free_region(ctx, new_seg.addr);
        }
    }
}

impl PersistentIndex for Dash {
    fn name(&self) -> &'static str {
        "Dash"
    }

    fn insert(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        debug_assert_ne!(key, EMPTY_KEY);
        let vw = common::make_val(&self.alloc, ctx, key, value)?;
        match self.insert_word(ctx, key, vw) {
            Ok(()) => Ok(()),
            Err(e) => {
                common::free_val(&self.alloc, ctx, vw);
                Err(e)
            }
        }
    }

    fn update(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        let h = hash_key(key);
        let vw = common::make_val(&self.alloc, ctx, key, value)?;
        loop {
            let (seg, _, depth) = self.route(ctx, h);
            enum Out {
                Done(u64),
                Miss,
                Moved,
            }
            let out = seg.rw.read(ctx, |ctx, _| {
                {
                    let d = self.dir.read();
                    let idx = (h >> (64 - d.depth)) as usize;
                    if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                        return Out::Moved;
                    }
                }
                match self.find(ctx, &seg, key, h) {
                    None => Out::Miss,
                    Some((b, s, old)) => seg.bucket_locks[b as usize].with(ctx, |ctx, _| {
                        // Re-verify under the bucket lock.
                        let k = ctx.read_u64(seg.slot_addr(b, s));
                        if k != key {
                            return Out::Moved; // displaced; retry
                        }
                        let v = ctx.read_u64(seg.ver_addr(b));
                        ctx.write_u64(seg.ver_addr(b), v + 1);
                        ctx.write_u64(PmAddr(seg.slot_addr(b, s).0 + 8), vw);
                        ctx.write_u64(seg.ver_addr(b), v + 2);
                        Out::Done(old)
                    }),
                }
            });
            match out {
                Out::Moved => continue,
                Out::Miss => {
                    common::free_val(&self.alloc, ctx, vw);
                    return Err(IndexError::NotFound);
                }
                Out::Done(old) => {
                    common::free_val(&self.alloc, ctx, old);
                    return Ok(());
                }
            }
        }
    }

    fn get(&self, ctx: &mut MemCtx, key: u64, out: &mut Vec<u8>) -> bool {
        let h = hash_key(key);
        loop {
            let (seg, _, depth) = self.route(ctx, h);
            // Optimistic read: sample the bucket versions, read, validate.
            let b = Self::home_bucket(h);
            let v1a = ctx.read_u64(seg.ver_addr(b));
            let v1b = ctx.read_u64(seg.ver_addr((b + 1) % BUCKETS));
            if v1a % 2 == 1 || v1b % 2 == 1 {
                std::thread::yield_now();
                continue;
            }
            let hit = self.find(ctx, &seg, key, h);
            let v2a = ctx.read_u64(seg.ver_addr(b));
            let v2b = ctx.read_u64(seg.ver_addr((b + 1) % BUCKETS));
            if v1a != v2a || v1b != v2b {
                ctx.charge_compute(20);
                continue;
            }
            // Routing may have changed mid-read (split).
            {
                let d = self.dir.read();
                let idx = (h >> (64 - d.depth)) as usize;
                if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                    continue;
                }
            }
            return match hit {
                None => false,
                Some((_, _, vw)) => {
                    common::append_value(ctx, vw, out);
                    true
                }
            };
        }
    }

    fn remove(&self, ctx: &mut MemCtx, key: u64) -> bool {
        let h = hash_key(key);
        loop {
            let (seg, _, depth) = self.route(ctx, h);
            enum Out {
                Hit(u64),
                Miss,
                Moved,
            }
            let out = seg.rw.read(ctx, |ctx, _| {
                {
                    let d = self.dir.read();
                    let idx = (h >> (64 - d.depth)) as usize;
                    if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                        return Out::Moved;
                    }
                }
                match self.find(ctx, &seg, key, h) {
                    None => Out::Miss,
                    Some((b, s, vw)) => seg.bucket_locks[b as usize].with(ctx, |ctx, _| {
                        if ctx.read_u64(seg.slot_addr(b, s)) != key {
                            return Out::Moved;
                        }
                        self.bucket_remove(ctx, &seg, b, s);
                        Out::Hit(vw)
                    }),
                }
            });
            match out {
                Out::Moved => continue,
                Out::Miss => return false,
                Out::Hit(vw) => {
                    common::free_val(&self.alloc, ctx, vw);
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    return true;
                }
            }
        }
    }

    fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    fn capacity_slots(&self) -> u64 {
        self.n_segs.load(Ordering::Relaxed) * (BUCKETS + STASH) * SLOTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cceh::test_device;

    fn setup() -> (Arc<spash_pmem::PmDevice>, Dash, MemCtx) {
        let (dev, mut ctx) = test_device();
        let idx = Dash::format(&mut ctx, 1).unwrap();
        (dev, idx, ctx)
    }

    #[test]
    fn basic_crud() {
        let (_d, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 1, 10).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(10));
        idx.update_u64(&mut ctx, 1, 20).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(20));
        assert!(idx.remove(&mut ctx, 1));
        assert!(!idx.remove(&mut ctx, 1));
        assert_eq!(
            idx.update_u64(&mut ctx, 99, 0).unwrap_err(),
            IndexError::NotFound
        );
    }

    #[test]
    fn grows_through_splits_with_high_load_factor() {
        let (_d, idx, mut ctx) = setup();
        let n = 5000u64;
        for k in 1..=n {
            idx.insert_u64(&mut ctx, k, k * 7).unwrap();
        }
        for k in 1..=n {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k * 7), "key {k}");
        }
        // Dash's balanced insert + stash keep the load factor high
        // (paper Fig 9).
        assert!(idx.load_factor() > 0.5, "lf {}", idx.load_factor());
    }

    #[test]
    fn reads_do_not_write_pm() {
        let (dev, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 7, 7).unwrap();
        dev.flush_cache_all();
        let before = dev.snapshot();
        for _ in 0..100 {
            idx.get_u64(&mut ctx, 7).unwrap();
        }
        dev.flush_cache_all();
        let d = dev.snapshot().since(&before);
        assert_eq!(d.cl_writes, 0, "Dash reads are lock-free (no PM writes)");
    }

    #[test]
    fn concurrent_inserts_and_gets() {
        let (dev, mut ctx) = test_device();
        let idx = Arc::new(Dash::format(&mut ctx, 1).unwrap());
        crossbeam::scope(|s| {
            for t in 0..4u64 {
                let idx = Arc::clone(&idx);
                let dev = Arc::clone(&dev);
                s.spawn(move |_| {
                    let mut ctx = dev.ctx();
                    for i in 0..1000u64 {
                        let k = 1 + t * 1000 + i;
                        idx.insert_u64(&mut ctx, k, k).unwrap();
                        assert_eq!(idx.get_u64(&mut ctx, k), Some(k));
                    }
                });
            }
        })
        .unwrap();
        for k in 1..=4000u64 {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k), "key {k}");
        }
    }
}
