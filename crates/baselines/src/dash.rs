//! Dash — scalable extendible hashing on PM (Lu et al., VLDB'20), with
//! the traits the Spash paper measures (§VI):
//!
//! * 16 KiB segments of 256-byte buckets (one XPLine each), 14 records per
//!   bucket behind a metadata header with **fingerprints** and an
//!   allocation bitmap — metadata maintenance is PM write traffic Spash
//!   avoids;
//! * **balanced insert** (target or neighbour, whichever is emptier),
//!   **displacement**, and **stash buckets**, which buy load factor at the
//!   cost of extra probing ("Dash incurs multiple XPLine-sized
//!   bucket-reads for each search");
//! * **optimistic lock-free reads** (version validation, no PM writes)
//!   but **lock-based writes** — why its write-intensive YCSB numbers trail
//!   its read-intensive ones (Fig 10).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spash_pmem::sync::RwLock;
use spash_alloc::PmAllocator;
use spash_index_api::crashpoint::{CrashTarget, Recovery};
use spash_index_api::{hash_key, IndexError, PersistentIndex};
use spash_pmem::{MemCtx, PmAddr, VLock, VRwLock};

use crate::common::{self, EMPTY_KEY};

const BUCKETS: u64 = 60;
const STASH: u64 = 4;
const SLOTS: u64 = 14;
const BUCKET_BYTES: u64 = 256;
/// 64-byte segment header + 64 buckets.
const SEG_BYTES: u64 = 64 + (BUCKETS + STASH) * BUCKET_BYTES;
/// What the allocator's chunk-rounded region length for a segment is.
const SEG_REGION: u64 = SEG_BYTES.div_ceil(256) * 256;
/// Root-block magic ("DashDir1"): says "this heap holds a Dash".
const ROOT_MAGIC: u64 = 0x4461_7368_4469_7231;
const ROOT_LEN: u64 = 64;
/// Segment identity, in the otherwise-unused 64-byte segment header:
/// word 0 `meta = MAGIC1:16 | local_depth:8 | prefix:40`, word 1 a second
/// full-word magic. Both must match for recovery to accept the region as
/// a committed segment.
const SEG_MAGIC1: u64 = 0xDA54;
const SEG_MAGIC2: u64 = 0x4461_7368_5365_6732;
const PREFIX_MASK: u64 = (1 << 40) - 1;

/// Publish (or re-stamp) a segment's identity header.
fn write_seg_header(ctx: &mut MemCtx, seg: PmAddr, ld: u8, prefix: u64) {
    debug_assert!(prefix <= PREFIX_MASK);
    ctx.write_u64(seg, SEG_MAGIC1 << 48 | u64::from(ld) << 40 | prefix);
    ctx.write_u64(PmAddr(seg.0 + 8), SEG_MAGIC2);
    ctx.flush_range(seg, 16);
    ctx.fence();
}

struct Seg {
    addr: PmAddr,
    /// Structural lock: writers share it, splits take it exclusively.
    rw: VRwLock<()>,
    /// Per-bucket write locks (virtual-time; the PM version word in the
    /// bucket header carries the optimistic-read protocol).
    bucket_locks: Vec<VLock<()>>,
}

impl Seg {
    fn bucket_addr(&self, b: u64) -> PmAddr {
        PmAddr(self.addr.0 + 64 + b * BUCKET_BYTES)
    }

    /// PM version word of bucket `b` (header word 0).
    fn ver_addr(&self, b: u64) -> PmAddr {
        self.bucket_addr(b)
    }

    /// Bitmap word (header word 1): low 14 bits allocation bitmap.
    fn meta_addr(&self, b: u64) -> PmAddr {
        PmAddr(self.bucket_addr(b).0 + 8)
    }

    /// Fingerprint bytes (header words 2-3).
    fn fp_addr(&self, b: u64) -> PmAddr {
        PmAddr(self.bucket_addr(b).0 + 16)
    }

    fn slot_addr(&self, b: u64, s: u64) -> PmAddr {
        PmAddr(self.bucket_addr(b).0 + 32 + s * 16)
    }
}

struct Dir {
    depth: u32,
    entries: Vec<(Arc<Seg>, u8)>,
}

/// The Dash baseline.
pub struct Dash {
    alloc: Arc<PmAllocator>,
    dir: RwLock<Dir>,
    entries: AtomicU64,
    n_segs: AtomicU64,
}

#[inline]
fn fp8(h: u64) -> u8 {
    ((h >> 48) & 0xff) as u8
}

impl Dash {
    pub fn new(ctx: &mut MemCtx, alloc: Arc<PmAllocator>, depth: u32) -> Result<Self, IndexError> {
        let n = 1usize << depth;
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let seg = Self::alloc_seg(ctx, &alloc)?;
            write_seg_header(ctx, seg.addr, depth as u8, i as u64);
            entries.push((seg, depth as u8));
        }
        // Root magic last: a crash mid-format recovers as "no Dash here".
        let (root, root_len) = alloc.reserved();
        if root_len >= ROOT_LEN {
            ctx.write_u64(root, ROOT_MAGIC);
            ctx.flush(root);
            ctx.fence();
        }
        Ok(Self {
            alloc,
            dir: RwLock::new(Dir { depth, entries }),
            entries: AtomicU64::new(0),
            n_segs: AtomicU64::new(n as u64),
        })
    }

    pub fn format(ctx: &mut MemCtx, depth: u32) -> Result<Self, IndexError> {
        let alloc = Arc::new(PmAllocator::format(ctx, ROOT_LEN));
        Self::new(ctx, alloc, depth)
    }

    fn alloc_seg(ctx: &mut MemCtx, alloc: &PmAllocator) -> Result<Arc<Seg>, IndexError> {
        let lock_ns = ctx.device().config().cost.lock_ns;
        let addr = alloc
            .alloc_region(ctx, SEG_BYTES)
            .map_err(|_| IndexError::OutOfMemory)?;
        let zeros = [0u8; 256];
        let mut off = 0;
        while off < SEG_BYTES {
            let n = 256.min(SEG_BYTES - off) as usize;
            ctx.ntstore_bytes(PmAddr(addr.0 + off), &zeros[..n]);
            off += n as u64;
        }
        Ok(Arc::new(Seg {
            addr,
            rw: VRwLock::new((), lock_ns),
            bucket_locks: (0..BUCKETS + STASH).map(|_| VLock::new((), lock_ns)).collect(),
        }))
    }

    fn route(&self, ctx: &mut MemCtx, h: u64) -> (Arc<Seg>, u8, u32) {
        ctx.charge_dram_cached();
        let d = self.dir.read();
        let idx = (h >> (64 - d.depth)) as usize;
        let (seg, ld) = &d.entries[idx];
        (Arc::clone(seg), *ld, d.depth)
    }

    fn home_bucket(h: u64) -> u64 {
        (h >> 8) % BUCKETS
    }

    /// Scan one bucket for `key` using the fingerprint filter. Returns
    /// (slot, value word).
    fn scan_bucket(
        &self,
        ctx: &mut MemCtx,
        seg: &Seg,
        b: u64,
        key: u64,
        h: u64,
    ) -> Option<(u64, u64)> {
        let bitmap = ctx.read_u64(seg.meta_addr(b)) as u16;
        if bitmap == 0 {
            return None;
        }
        let mut fps = [0u8; 16];
        ctx.read_bytes(seg.fp_addr(b), &mut fps);
        let want = fp8(h);
        for s in 0..SLOTS {
            if bitmap & (1 << s) != 0 && fps[s as usize] == want {
                let k = ctx.read_u64(seg.slot_addr(b, s));
                if k == key {
                    let v = ctx.read_u64(PmAddr(seg.slot_addr(b, s).0 + 8));
                    return Some((s, v));
                }
            }
        }
        None
    }

    /// Find `key` across home, neighbour and stash buckets. Returns
    /// (bucket, slot, value word).
    fn find(&self, ctx: &mut MemCtx, seg: &Seg, key: u64, h: u64) -> Option<(u64, u64, u64)> {
        let b = Self::home_bucket(h);
        for cand in [b, (b + 1) % BUCKETS] {
            if let Some((s, v)) = self.scan_bucket(ctx, seg, cand, key, h) {
                return Some((cand, s, v));
            }
        }
        for st in BUCKETS..BUCKETS + STASH {
            if let Some((s, v)) = self.scan_bucket(ctx, seg, st, key, h) {
                return Some((st, s, v));
            }
        }
        None
    }

    /// Write a record into bucket `b` (slot chosen from the bitmap).
    /// Caller holds the bucket lock. Returns false if full.
    fn bucket_insert(
        &self,
        ctx: &mut MemCtx,
        seg: &Seg,
        b: u64,
        key: u64,
        h: u64,
        vw: u64,
    ) -> bool {
        let bitmap = ctx.read_u64(seg.meta_addr(b));
        let free = (!bitmap & ((1 << SLOTS) - 1)).trailing_zeros() as u64;
        if free >= SLOTS {
            return false;
        }
        // Bump the PM version (odd = busy) around the mutation: Dash's
        // optimistic readers validate against it.
        let v = ctx.read_u64(seg.ver_addr(b));
        ctx.write_u64(seg.ver_addr(b), v + 1);
        // Persist the record, then publish it in the bitmap (Dash's
        // clwb+fence ordering): a crash loses the insertion, never
        // exposes a half-written record.
        ctx.write_u64(PmAddr(seg.slot_addr(b, free).0 + 8), vw);
        ctx.write_u64(seg.slot_addr(b, free), key);
        ctx.flush_range(seg.slot_addr(b, free), 16);
        ctx.fence();
        // Fingerprint byte + bitmap: the metadata PM writes Spash avoids.
        let mut fp = [0u8; 1];
        fp[0] = fp8(h);
        ctx.write_bytes(PmAddr(seg.fp_addr(b).0 + free), &fp);
        ctx.write_u64(seg.meta_addr(b), bitmap | 1 << free);
        ctx.write_u64(seg.ver_addr(b), v + 2);
        // Mutation-canary sites (tests/sanitizer.rs): always enabled
        // outside the canary tests.
        if spash_pmem::san::site_enabled("dash.insert.flush") {
            ctx.flush_range(seg.bucket_addr(b), 32);
        }
        if spash_pmem::san::site_enabled("dash.insert.fence") {
            ctx.fence();
        }
        true
    }

    fn bucket_fill(&self, ctx: &mut MemCtx, seg: &Seg, b: u64) -> u32 {
        (ctx.read_u64(seg.meta_addr(b)) as u16).count_ones()
    }

    // Every live caller holds the bucket or segment writer lock; the one
    // bare caller is the stranded-copy scrub during split, where the
    // directory swing already removed this segment from routing, so no
    // concurrent probe can address the bucket. The lockset analysis sees
    // only the bare entry; the scheduler sweep explores both.
    fn bucket_remove(&self, ctx: &mut MemCtx, seg: &Seg, b: u64, s: u64) {
        let v = ctx.read_u64(seg.ver_addr(b));
        // lint:allow(conc-lockset): PM seqlock odd-bump; unrouted-segment scrub path, explored sched=Dash
        ctx.write_u64(seg.ver_addr(b), v + 1);
        let bitmap = ctx.read_u64(seg.meta_addr(b));
        // Unpublish first (flushed), then scrub the key word.
        // lint:allow(conc-lockset): bitmap unpublish on the unrouted-segment scrub path, explored sched=Dash
        ctx.write_u64(seg.meta_addr(b), bitmap & !(1 << s));
        ctx.flush(seg.meta_addr(b));
        ctx.fence();
        // lint:allow(conc-lockset): key-word scrub after the fenced bitmap unpublish, unrouted-segment path, explored sched=Dash
        ctx.write_u64(seg.slot_addr(b, s), EMPTY_KEY);
        // lint:allow(conc-lockset): PM seqlock even-bump; unrouted-segment scrub path, explored sched=Dash
        ctx.write_u64(seg.ver_addr(b), v + 2);
        // Both writes are recovery don't-cares: the bitmap (flushed above)
        // already unpublished the slot, and the seqlock word is never
        // read by recovery.
        ctx.san_forgive(seg.slot_addr(b, s), 8);
        ctx.san_forgive(seg.ver_addr(b), 8);
    }

    /// Insert with balanced insert → displacement → stash → split.
    fn insert_word(&self, ctx: &mut MemCtx, key: u64, vw: u64) -> Result<(), IndexError> {
        let h = hash_key(key);
        loop {
            let (seg, _ld, depth) = self.route(ctx, h);
            enum Out {
                Done,
                Dup,
                Full,
                Moved,
            }
            // lint:allow(flow-flush-fence): bucket_insert's slot flush+fence are canary-gated (dash.insert.*) and the PM seqlock bump is concurrency metadata recovery never reads. san=none(canary gate is on outside sanitizer canary tests)
            let out = seg.rw.read(ctx, |ctx, _| {
                // Validate routing under the structural lock.
                {
                    let d = self.dir.read();
                    let idx = (h >> (64 - d.depth)) as usize;
                    if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                        return Out::Moved;
                    }
                }
                let b = Self::home_bucket(h);
                let nb = (b + 1) % BUCKETS;
                let (first, second) = if b <= nb { (b, nb) } else { (nb, b) };
                seg.bucket_locks[first as usize].with(ctx, |ctx, _| {
                    seg.bucket_locks[second as usize].with(ctx, |ctx, _| {
                        // Duplicate check must cover the stash too: a key
                        // stashed while its buckets were full stays there
                        // even after deletes reopen them.
                        if self.scan_bucket(ctx, seg.as_ref(), b, key, h).is_some()
                            || self.scan_bucket(ctx, seg.as_ref(), nb, key, h).is_some()
                        {
                            return Out::Dup;
                        }
                        for st in BUCKETS..BUCKETS + STASH {
                            if self.scan_bucket(ctx, &seg, st, key, h).is_some() {
                                return Out::Dup;
                            }
                        }
                        // Balanced insert: the emptier of the two.
                        let (fb, fnb) = (
                            self.bucket_fill(ctx, &seg, b),
                            self.bucket_fill(ctx, &seg, nb),
                        );
                        let target = if fb <= fnb { b } else { nb };
                        if self.bucket_insert(ctx, &seg, target, key, h, vw) {
                            return Out::Done;
                        }
                        let other = if target == b { nb } else { b };
                        if self.bucket_insert(ctx, &seg, other, key, h, vw) {
                            return Out::Done;
                        }
                        for st in BUCKETS..BUCKETS + STASH {
                            let done = seg.bucket_locks[st as usize].with(ctx, |ctx, _| {
                                self.bucket_insert(ctx, &seg, st, key, h, vw)
                            });
                            if done {
                                return Out::Done;
                            }
                        }
                        Out::Full
                    })
                })
            });
            match out {
                Out::Done => {
                    self.entries.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Out::Dup => return Err(IndexError::DuplicateKey),
                Out::Moved => continue,
                Out::Full => self.split(ctx, h)?,
            }
        }
    }

    fn split(&self, ctx: &mut MemCtx, h: u64) -> Result<(), IndexError> {
        ctx.stats_span(spash_pmem::SPAN_SPLIT, |ctx| self.split_impl(ctx, h))
    }

    fn split_impl(&self, ctx: &mut MemCtx, h: u64) -> Result<(), IndexError> {
        loop {
            let (seg, ld, depth) = self.route(ctx, h);
            if u32::from(ld) == depth {
                let mut dw = self.dir.write();
                if dw.depth == depth {
                    let doubled: Vec<(Arc<Seg>, u8)> = dw
                        .entries
                        .iter()
                        .flat_map(|e| [e.clone(), e.clone()])
                        .collect();
                    dw.entries = doubled;
                    dw.depth += 1;
                    ctx.charge_dram((dw.entries.len() as u64 * 8) / 64 + 1);
                }
                continue;
            }
            let new_seg = Self::alloc_seg(ctx, &self.alloc)?;
            let mut homeless: Vec<(u64, u64, u64, u64)> = Vec::new();
            // lint:allow(flow-flush-fence): raced-split early return releases the lock while alloc_seg's zero-fill is unfenced; the region commits only via write_seg_header's flush+fence. san=none(zeros of an uncommitted region are recovery no-ops)
            let done = seg.rw.write(ctx, |ctx, _| {
                let mut d = self.dir.write();
                let depth_now = d.depth;
                let idx = (h >> (64 - depth_now)) as usize;
                let (cur, ld_now) = d.entries[idx].clone();
                if !Arc::ptr_eq(&cur, &seg) || ld_now != ld || u32::from(ld_now) >= depth_now {
                    return false;
                }
                // Crash-safe split order: (1) copy every record whose next
                // prefix bit is 1 into the new segment *without* removing it
                // from the old one, (2) commit the new segment's identity
                // header and re-stamp the old one's depth/prefix, (3) only
                // then remove the moved records. A crash before (2) leaves
                // the old segment authoritative for its whole prefix; a
                // crash after it makes the stale copies orphans that
                // recovery's sweep reinserts-or-discards.
                let mut moved: Vec<(u64, u64)> = Vec::new();
                for b in 0..BUCKETS + STASH {
                    let bitmap = ctx.read_u64(seg.meta_addr(b)) as u16;
                    for s in 0..SLOTS {
                        if bitmap & (1 << s) == 0 {
                            continue;
                        }
                        let k = ctx.read_u64(seg.slot_addr(b, s));
                        let kh = hash_key(k);
                        if (kh >> (63 - u32::from(ld))) & 1 == 1 {
                            let vw = ctx.read_u64(PmAddr(seg.slot_addr(b, s).0 + 8));
                            // Move: home bucket, neighbour, then stash.
                            let nb = Self::home_bucket(kh);
                            let mut placed = self.bucket_insert(ctx, &new_seg, nb, k, kh, vw)
                                || self.bucket_insert(
                                    ctx,
                                    &new_seg,
                                    (nb + 1) % BUCKETS,
                                    k,
                                    kh,
                                    vw,
                                );
                            if !placed {
                                for st in BUCKETS..BUCKETS + STASH {
                                    if self.bucket_insert(ctx, &new_seg, st, k, kh, vw) {
                                        placed = true;
                                        break;
                                    }
                                }
                            }
                            if placed {
                                moved.push((b, s));
                            } else {
                                // Essentially unreachable (84 collision
                                // slots); reinsert through the normal path
                                // after the split.
                                homeless.push((b, s, k, vw));
                            }
                        }
                    }
                }
                // Commit point: the new segment becomes real, the old one
                // narrows to the lower half of its prefix.
                let p = (idx >> (depth_now - u32::from(ld))) as u64;
                write_seg_header(ctx, new_seg.addr, ld + 1, p * 2 + 1);
                write_seg_header(ctx, seg.addr, ld + 1, p * 2);
                for (b, s) in moved {
                    self.bucket_remove(ctx, &seg, b, s);
                }
                let span = 1usize << (depth_now - u32::from(ld));
                let base = (idx >> (depth_now - u32::from(ld))) << (depth_now - u32::from(ld));
                for i in 0..span {
                    d.entries[base + i] = if i >= span / 2 {
                        (Arc::clone(&new_seg), ld + 1)
                    } else {
                        (Arc::clone(&seg), ld + 1)
                    };
                }
                ctx.charge_dram(span as u64 / 8 + 1);
                true
            });
            if done {
                self.n_segs.fetch_add(1, Ordering::Relaxed);
                for (b, s, k, vw) in homeless {
                    // Reinsert through the normal path, then retire the old
                    // copy: a crash in between leaves both, and the stale
                    // one no longer routes to the old segment, so the
                    // orphan sweep discards it as a duplicate.
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    self.insert_word(ctx, k, vw)?;
                    self.bucket_remove(ctx, &seg, b, s);
                }
                return Ok(());
            }
            self.alloc.free_region(ctx, new_seg.addr);
        }
    }

    /// Rebuild a Dash from a recovered heap image. Returns `None` when the
    /// image holds no committed Dash (unformatted, foreign, or torn at a
    /// point before the first commit).
    pub fn recover(ctx: &mut MemCtx) -> Option<Self> {
        ctx.stats_span(spash_pmem::SPAN_LOG_REPLAY, Self::recover_impl)
    }

    fn recover_impl(ctx: &mut MemCtx) -> Option<Self> {
        let rec = PmAllocator::recover(ctx)?;
        let (root, root_len) = rec.alloc.reserved();
        if root_len < ROOT_LEN || ctx.read_u64(root) != ROOT_MAGIC {
            return None;
        }
        let lock_ns = ctx.device().config().cost.lock_ns;
        // Committed segments: region of the right (chunk-rounded) size,
        // both magics intact.
        let mut segs: Vec<(Arc<Seg>, u8, u64)> = Vec::new();
        for &(a, len) in &rec.regions {
            if len != SEG_REGION || ctx.read_u64(PmAddr(a.0 + 8)) != SEG_MAGIC2 {
                continue;
            }
            let meta = ctx.read_u64(a);
            if meta >> 48 != SEG_MAGIC1 {
                continue;
            }
            let ld = ((meta >> 40) & 0xff) as u8;
            let prefix = meta & PREFIX_MASK;
            if u64::from(ld) > 40 || prefix >> ld != 0 {
                return None; // a committed header can never be malformed
            }
            segs.push((
                Arc::new(Seg {
                    addr: a,
                    rw: VRwLock::new((), lock_ns),
                    bucket_locks: (0..BUCKETS + STASH).map(|_| VLock::new((), lock_ns)).collect(),
                }),
                ld,
                prefix,
            ));
        }
        if segs.is_empty() {
            return None;
        }
        let depth = u32::from(segs.iter().map(|&(_, ld, _)| ld).max().unwrap());
        if depth == 0 {
            return None; // Dash's directory routing needs depth >= 1
        }
        let mut entries: Vec<Option<(Arc<Seg>, u8)>> = vec![None; 1 << depth];
        let mut by_depth = segs.clone();
        by_depth.sort_by_key(|&(ref s, ld, prefix)| (ld, prefix, s.addr.0));
        for (seg, ld, prefix) in by_depth {
            let shift = depth - u32::from(ld);
            let base = (prefix << shift) as usize;
            for e in entries.iter_mut().skip(base).take(1 << shift) {
                *e = Some((Arc::clone(&seg), ld));
            }
        }
        // A directory hole means the image is torn/foreign.
        let entries: Vec<(Arc<Seg>, u8)> = entries.into_iter().collect::<Option<_>>()?;

        let idx = Self {
            alloc: Arc::new(rec.alloc),
            dir: RwLock::new(Dir { depth, entries }),
            entries: AtomicU64::new(0),
            n_segs: AtomicU64::new(segs.len() as u64),
        };
        // Repair version words and count routable keys; collect stranded
        // ones. A crash mid-mutation leaves a bucket's version word odd
        // ("busy"), which would spin optimistic readers forever.
        let mut routable = 0u64;
        let mut orphans: Vec<(Arc<Seg>, u64, u64, u64, u64)> = Vec::new();
        for (seg, _, _) in &segs {
            for b in 0..BUCKETS + STASH {
                let ver = ctx.read_u64(seg.ver_addr(b));
                if ver & 1 == 1 {
                    ctx.write_u64(seg.ver_addr(b), ver + 1);
                }
                let bitmap = ctx.read_u64(seg.meta_addr(b)) as u16;
                for s in 0..SLOTS {
                    if bitmap & (1 << s) == 0 {
                        continue;
                    }
                    let k = ctx.read_u64(seg.slot_addr(b, s));
                    if k == EMPTY_KEY {
                        // Published bit without a key (possible only under
                        // Adr): drop the slot.
                        idx.bucket_remove(ctx, seg, b, s);
                        continue;
                    }
                    let (routed, _, _) = idx.route(ctx, hash_key(k));
                    if Arc::ptr_eq(&routed, seg) {
                        routable += 1;
                    } else {
                        let v = ctx.read_u64(PmAddr(seg.slot_addr(b, s).0 + 8));
                        orphans.push((Arc::clone(seg), b, s, k, v));
                    }
                }
            }
        }
        idx.entries.store(routable, Ordering::Relaxed);
        for (seg, b, s, k, v) in orphans {
            match idx.insert_word(ctx, k, v) {
                Ok(()) | Err(IndexError::DuplicateKey) => {}
                Err(_) => return None,
            }
            idx.bucket_remove(ctx, &seg, b, s);
        }
        Some(idx)
    }

    /// Dash as a [`CrashTarget`] for the crash-point sweep.
    pub fn crash_target(depth: u32) -> CrashTarget {
        CrashTarget {
            name: "Dash".into(),
            format: Box::new(move |ctx| {
                Box::new(Dash::format(ctx, depth).expect("format Dash"))
            }),
            recover: Box::new(|ctx| {
                let idx = Dash::recover(ctx)?;
                // Committed segments plus every blob a live slot points at.
                let mut reachable: HashSet<u64> = HashSet::new();
                let d = idx.dir.read();
                let segs: Vec<Arc<Seg>> = {
                    let mut v: Vec<Arc<Seg>> = Vec::new();
                    for (seg, _) in d.entries.iter() {
                        if !v.iter().any(|s| Arc::ptr_eq(s, seg)) {
                            v.push(Arc::clone(seg));
                        }
                    }
                    v
                };
                drop(d);
                for seg in &segs {
                    reachable.insert(seg.addr.0);
                    for b in 0..BUCKETS + STASH {
                        let bitmap = ctx.read_u64(seg.meta_addr(b)) as u16;
                        for s in 0..SLOTS {
                            if bitmap & (1 << s) == 0 {
                                continue;
                            }
                            let vw = ctx.read_u64(PmAddr(seg.slot_addr(b, s).0 + 8));
                            if let common::ValWord::Blob(a) = common::unpack_val(vw) {
                                reachable.insert(a.0);
                            }
                        }
                    }
                }
                let (leaked_allocs, audit_error) = common::audit_census(ctx, &reachable);
                Some(Recovery {
                    index: Box::new(idx),
                    leaked_allocs,
                    audit_error,
                })
            }),
        }
    }
}

impl PersistentIndex for Dash {
    fn name(&self) -> &'static str {
        "Dash"
    }

    fn insert(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        debug_assert_ne!(key, EMPTY_KEY);
        let vw = common::make_val(&self.alloc, ctx, key, value)?;
        match self.insert_word(ctx, key, vw) {
            Ok(()) => Ok(()),
            Err(e) => {
                // lint:allow(flow-flush-fence): free_val's allocator header CAS flips its own metadata word; the entering residue is the canary-gated slot traffic of the failed insert. san=none(allocator metadata word on its own cacheline)
                common::free_val(&self.alloc, ctx, vw);
                Err(e)
            }
        }
    }

    fn update(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        let h = hash_key(key);
        let vw = common::make_val(&self.alloc, ctx, key, value)?;
        loop {
            let (seg, _, depth) = self.route(ctx, h);
            enum Out {
                Done(u64),
                Miss,
                Moved,
            }
            // lint:allow(flow-flush-fence): the in-place update leaves the PM seqlock word dirty at release; recovery never reads it, dynamically forgiven inside this region. san=dash::update
            let out = seg.rw.read(ctx, |ctx, _| {
                {
                    let d = self.dir.read();
                    let idx = (h >> (64 - d.depth)) as usize;
                    if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                        return Out::Moved;
                    }
                }
                match self.find(ctx, &seg, key, h) {
                    None => Out::Miss,
                    Some((b, s, old)) => seg.bucket_locks[b as usize].with(ctx, |ctx, _| {
                        // Re-verify under the bucket lock.
                        let k = ctx.read_u64(seg.slot_addr(b, s));
                        if k != key {
                            return Out::Moved; // displaced; retry
                        }
                        let v = ctx.read_u64(seg.ver_addr(b));
                        ctx.write_u64(seg.ver_addr(b), v + 1);
                        ctx.write_u64(PmAddr(seg.slot_addr(b, s).0 + 8), vw);
                        ctx.flush(PmAddr(seg.slot_addr(b, s).0 + 8));
                        ctx.fence();
                        ctx.write_u64(seg.ver_addr(b), v + 2);
                        // The PM seqlock word is concurrency metadata:
                        // recovery never reads it, so its dirtiness is
                        // not an unordered publication.
                        ctx.san_forgive(seg.ver_addr(b), 8);
                        Out::Done(old)
                    }),
                }
            });
            match out {
                Out::Moved => continue,
                Out::Miss => {
                    common::free_val(&self.alloc, ctx, vw);
                    return Err(IndexError::NotFound);
                }
                Out::Done(old) => {
                    common::free_val(&self.alloc, ctx, old);
                    return Ok(());
                }
            }
        }
    }

    fn get(&self, ctx: &mut MemCtx, key: u64, out: &mut Vec<u8>) -> bool {
        ctx.stats_span(spash_pmem::SPAN_PROBE, |ctx| {
            let h = hash_key(key);
            loop {
                let (seg, _, depth) = self.route(ctx, h);
                // Optimistic read: sample the bucket versions, read, validate.
                let b = Self::home_bucket(h);
                let v1a = ctx.read_u64(seg.ver_addr(b));
                let v1b = ctx.read_u64(seg.ver_addr((b + 1) % BUCKETS));
                if v1a % 2 == 1 || v1b % 2 == 1 {
                    // Writer holds the bucket seqlock: scheduler-aware wait.
                    spash_pmem::schedhook::spin_wait();
                    continue;
                }
                let hit = self.find(ctx, &seg, key, h);
                let v2a = ctx.read_u64(seg.ver_addr(b));
                let v2b = ctx.read_u64(seg.ver_addr((b + 1) % BUCKETS));
                if v1a != v2a || v1b != v2b {
                    ctx.charge_compute(20);
                    continue;
                }
                // Routing may have changed mid-read (split).
                {
                    let d = self.dir.read();
                    let idx = (h >> (64 - d.depth)) as usize;
                    if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                        continue;
                    }
                }
                return match hit {
                    None => false,
                    Some((_, _, vw)) => {
                        common::append_value(ctx, vw, out);
                        true
                    }
                };
            }
        })
    }

    fn remove(&self, ctx: &mut MemCtx, key: u64) -> bool {
        let h = hash_key(key);
        loop {
            let (seg, _, depth) = self.route(ctx, h);
            enum Out {
                Hit(u64),
                Miss,
                Moved,
            }
            // lint:allow(flow-flush-fence): bucket_remove scrubs the key word after the flushed bitmap unpublish; the scrub and seqlock word are dynamically forgiven. san=dash::bucket_remove
            let out = seg.rw.read(ctx, |ctx, _| {
                {
                    let d = self.dir.read();
                    let idx = (h >> (64 - d.depth)) as usize;
                    if !Arc::ptr_eq(&d.entries[idx].0, &seg) || d.depth != depth {
                        return Out::Moved;
                    }
                }
                match self.find(ctx, &seg, key, h) {
                    None => Out::Miss,
                    Some((b, s, vw)) => seg.bucket_locks[b as usize].with(ctx, |ctx, _| {
                        if ctx.read_u64(seg.slot_addr(b, s)) != key {
                            return Out::Moved;
                        }
                        self.bucket_remove(ctx, &seg, b, s);
                        Out::Hit(vw)
                    }),
                }
            });
            match out {
                Out::Moved => continue,
                Out::Miss => return false,
                Out::Hit(vw) => {
                    common::free_val(&self.alloc, ctx, vw);
                    self.entries.fetch_sub(1, Ordering::Relaxed);
                    return true;
                }
            }
        }
    }

    fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    fn capacity_slots(&self) -> u64 {
        self.n_segs.load(Ordering::Relaxed) * (BUCKETS + STASH) * SLOTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cceh::test_device;

    fn setup() -> (Arc<spash_pmem::PmDevice>, Dash, MemCtx) {
        let (dev, mut ctx) = test_device();
        let idx = Dash::format(&mut ctx, 1).unwrap();
        (dev, idx, ctx)
    }

    #[test]
    fn basic_crud() {
        let (_d, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 1, 10).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(10));
        idx.update_u64(&mut ctx, 1, 20).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(20));
        assert!(idx.remove(&mut ctx, 1));
        assert!(!idx.remove(&mut ctx, 1));
        assert_eq!(
            idx.update_u64(&mut ctx, 99, 0).unwrap_err(),
            IndexError::NotFound
        );
    }

    #[test]
    fn grows_through_splits_with_high_load_factor() {
        let (_d, idx, mut ctx) = setup();
        let n = 5000u64;
        for k in 1..=n {
            idx.insert_u64(&mut ctx, k, k * 7).unwrap();
        }
        for k in 1..=n {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k * 7), "key {k}");
        }
        // Dash's balanced insert + stash keep the load factor high
        // (paper Fig 9).
        assert!(idx.load_factor() > 0.5, "lf {}", idx.load_factor());
    }

    #[test]
    fn reads_do_not_write_pm() {
        let (dev, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 7, 7).unwrap();
        dev.flush_cache_all();
        let before = dev.snapshot();
        for _ in 0..100 {
            idx.get_u64(&mut ctx, 7).unwrap();
        }
        dev.flush_cache_all();
        let d = dev.snapshot().since(&before);
        assert_eq!(d.cl_writes, 0, "Dash reads are lock-free (no PM writes)");
    }

    #[test]
    fn concurrent_inserts_and_gets() {
        let (dev, mut ctx) = test_device();
        let idx = Arc::new(Dash::format(&mut ctx, 1).unwrap());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let idx = Arc::clone(&idx);
                let dev = Arc::clone(&dev);
                s.spawn(move || {
                    let mut ctx = dev.ctx();
                    for i in 0..1000u64 {
                        let k = 1 + t * 1000 + i;
                        idx.insert_u64(&mut ctx, k, k).unwrap();
                        assert_eq!(idx.get_u64(&mut ctx, k), Some(k));
                    }
                });
            }
        });
        for k in 1..=4000u64 {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k), "key {k}");
        }
    }

    #[test]
    fn recover_roundtrip_across_splits() {
        let (dev, mut ctx) = test_device();
        let idx = Dash::format(&mut ctx, 1).unwrap();
        let n = 4000u64;
        for k in 1..=n {
            idx.insert_u64(&mut ctx, k, k * 3).unwrap();
        }
        let blob = vec![7u8; 300];
        idx.insert(&mut ctx, 9999, &blob).unwrap();
        for k in 1..=50 {
            idx.update_u64(&mut ctx, k, k + 100).unwrap();
        }
        for k in 100..=120 {
            assert!(idx.remove(&mut ctx, k));
        }
        let live = idx.entries();
        drop(idx);
        dev.flush_cache_all();

        let rec = Dash::recover(&mut ctx).expect("recover Dash");
        assert_eq!(rec.entries(), live);
        for k in 1..=50u64 {
            assert_eq!(rec.get_u64(&mut ctx, k), Some(k + 100), "updated {k}");
        }
        for k in 100..=120u64 {
            assert!(rec.get_u64(&mut ctx, k).is_none(), "removed {k}");
        }
        for k in 121..=n {
            assert_eq!(rec.get_u64(&mut ctx, k), Some(k * 3), "key {k}");
        }
        let mut out = Vec::new();
        assert!(rec.get(&mut ctx, 9999, &mut out));
        assert_eq!(out, blob);
        // The recovered index stays usable.
        rec.insert_u64(&mut ctx, n + 1, 1).unwrap();
        assert_eq!(rec.get_u64(&mut ctx, n + 1), Some(1));
    }

    #[test]
    fn recover_refuses_unformatted_image() {
        let (_d, mut ctx) = test_device();
        assert!(Dash::recover(&mut ctx).is_none());
        let _ = PmAllocator::format(&mut ctx, 0);
        assert!(Dash::recover(&mut ctx).is_none());
    }
}
