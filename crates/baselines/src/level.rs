//! Level hashing — write-optimized PM hashing (Zuo et al., OSDI'18), as
//! characterized by the Spash paper (§VI):
//!
//! * two levels (the bottom half the top's size); every key has **four
//!   candidate buckets** (two hash functions × two levels), so a search
//!   "needs to read at most four buckets ... costly because these buckets
//!   do not reside in a contiguous memory region";
//! * **locks on both reads and writes**, maintained in PM ("Level hashing
//!   performs poorly across all three YCSB workloads because it uses locks
//!   for both read and write operations");
//! * **full-table rehash** when an insert finds all four candidates full —
//!   the resizing cost Spash's fine-grained splits avoid (Fig 7b).
//!
//! Buckets are 128 bytes: a metadata word (allocation bitmap — more of the
//! metadata PM traffic Spash eliminates), four 16-byte slots, padding.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spash_pmem::sync::RwLock;
use spash_alloc::PmAllocator;
use spash_index_api::crashpoint::{CrashTarget, Recovery};
use spash_index_api::{hash_key, IndexError, PersistentIndex};
use spash_pmem::{MemCtx, PmAddr};

use crate::common::{self, PmRwLock};

const BUCKET_BYTES: u64 = 128;
const SLOTS: u64 = 4;
const HASH_SALT: u64 = 0x5bd1_e995_9e37_79b9;
/// Sharded bucket locks (a lock per bucket would be DRAM-prohibitive; the
/// original shards fine-grained locks too).
const LOCK_SHARDS: usize = 4096;
/// Root-block magic ("Levl" dual-slot layout, v1).
const MAGIC: u64 = 0x4c65_766c_5462_6c31;
/// Reserved bytes: `[magic][selector]` line, then table-descriptor slot A
/// at +256 and slot B at +512, each `[n_top][top][bottom][lock_region]`.
const ROOT_LEN: u64 = 1024;

struct Table {
    /// Top level: `n_top` buckets; bottom level: `n_top / 2`.
    top: PmAddr,
    bottom: PmAddr,
    n_top: u64,
    /// Which root descriptor slot (0 = A, 1 = B) this table is persisted
    /// in; a rehash writes the *other* slot, then flips the selector.
    sel: u64,
}

impl Table {
    fn bucket(&self, level: usize, i: u64) -> PmAddr {
        let (base, n) = if level == 0 {
            (self.top, self.n_top)
        } else {
            (self.bottom, self.n_top / 2)
        };
        PmAddr(base.0 + (i % n) * BUCKET_BYTES)
    }

    /// The four candidate buckets of a key: (level, index).
    fn candidates(&self, h1: u64, h2: u64) -> [(usize, u64); 4] {
        [
            (0, h1 % self.n_top),
            (0, h2 % self.n_top),
            (1, h1 % (self.n_top / 2)),
            (1, h2 % (self.n_top / 2)),
        ]
    }
}

/// The Level hashing baseline.
pub struct Level {
    alloc: Arc<PmAllocator>,
    table: RwLock<Table>,
    locks: Vec<PmRwLock>,
    lock_region: PmAddr,
    root: PmAddr,
    entries: AtomicU64,
}

impl Level {
    /// `pow` sets the initial top-level size (`2^pow` buckets; must be ≥2).
    pub fn new(ctx: &mut MemCtx, alloc: Arc<PmAllocator>, pow: u32) -> Result<Self, IndexError> {
        assert!(pow >= 2);
        let lock_ns = ctx.device().config().cost.lock_ns;
        let n_top = 1u64 << pow;
        let mut table = Self::alloc_table(ctx, &alloc, n_top)?;
        table.sel = 0;
        // The PM words backing the sharded locks live in one dedicated
        // region.
        let lock_region = alloc
            // lint:allow(flow-flush-fence): format-time allocator header CAS; alloc_table's zero-fill is fenced below before the root magic publishes the table. san=none(region unreachable until root magic is flushed+fenced)
            .alloc_region(ctx, LOCK_SHARDS as u64 * 8)
            .map_err(|_| IndexError::OutOfMemory)?;
        let locks = (0..LOCK_SHARDS)
            .map(|i| PmRwLock::new(PmAddr(lock_region.0 + i as u64 * 8), lock_ns))
            .collect();
        // Persist the root: descriptor slot A, selector, magic LAST, so a
        // crash mid-format recovers as "no Level here".
        let (root, root_len) = alloc.reserved();
        if root_len >= ROOT_LEN {
            Self::write_slot(ctx, root, 0, &table, lock_region);
            ctx.write_u64(PmAddr(root.0 + 8), 0);
            ctx.flush_range(PmAddr(root.0 + 8), 256 + 32);
            ctx.fence();
            ctx.write_u64(root, MAGIC);
            ctx.flush(root);
            ctx.fence();
        }
        Ok(Self {
            alloc,
            table: RwLock::new(table),
            locks,
            lock_region,
            root,
            entries: AtomicU64::new(0),
        })
    }

    pub fn format(ctx: &mut MemCtx, pow: u32) -> Result<Self, IndexError> {
        let alloc = Arc::new(PmAllocator::format(ctx, ROOT_LEN));
        Self::new(ctx, alloc, pow)
    }

    /// Persist a table descriptor into root slot `sel`.
    fn write_slot(ctx: &mut MemCtx, root: PmAddr, sel: u64, t: &Table, lock_region: PmAddr) {
        let s = root.0 + 256 + sel * 256;
        ctx.write_u64(PmAddr(s), t.n_top);
        ctx.write_u64(PmAddr(s + 8), t.top.0);
        ctx.write_u64(PmAddr(s + 16), t.bottom.0);
        ctx.write_u64(PmAddr(s + 24), lock_region.0);
    }

    fn alloc_table(ctx: &mut MemCtx, alloc: &PmAllocator, n_top: u64) -> Result<Table, IndexError> {
        let top = alloc
            .alloc_region(ctx, n_top * BUCKET_BYTES)
            .map_err(|_| IndexError::OutOfMemory)?;
        let bottom = alloc
            .alloc_region(ctx, (n_top / 2) * BUCKET_BYTES)
            .map_err(|_| IndexError::OutOfMemory)?;
        let zeros = [0u8; 256];
        for (base, len) in [(top, n_top * BUCKET_BYTES), (bottom, n_top / 2 * BUCKET_BYTES)] {
            let mut off = 0;
            while off < len {
                let n = 256.min(len - off) as usize;
                ctx.ntstore_bytes(PmAddr(base.0 + off), &zeros[..n]);
                off += n as u64;
            }
        }
        Ok(Table {
            top,
            bottom,
            n_top,
            sel: 0,
        })
    }

    #[inline]
    fn hashes(key: u64) -> (u64, u64) {
        (hash_key(key), hash_key(key ^ HASH_SALT))
    }

    fn lock_of(&self, level: usize, i: u64) -> &PmRwLock {
        &self.locks[(level as u64 * 31 + i) as usize % LOCK_SHARDS]
    }

    /// Scan a bucket for `key`. Returns (slot, value word).
    fn scan(&self, ctx: &mut MemCtx, b: PmAddr, key: u64) -> Option<(u64, u64)> {
        let bitmap = ctx.read_u64(b);
        for s in 0..SLOTS {
            if bitmap & (1 << s) != 0 {
                let k = ctx.read_u64(PmAddr(b.0 + 8 + s * 16));
                if k == key {
                    return Some((s, ctx.read_u64(PmAddr(b.0 + 16 + s * 16))));
                }
            }
        }
        None
    }

    /// Insert into a bucket if it has room (caller holds its lock).
    fn bucket_insert(&self, ctx: &mut MemCtx, b: PmAddr, key: u64, vw: u64) -> bool {
        let bitmap = ctx.read_u64(b);
        let free = (!bitmap & ((1 << SLOTS) - 1)).trailing_zeros() as u64;
        if free >= SLOTS {
            return false;
        }
        // Persist the slot, then publish it in the bitmap (the original's
        // clwb+fence ordering): a crash can lose the insertion, never
        // expose a half-written slot.
        ctx.write_u64(PmAddr(b.0 + 16 + free * 16), vw);
        ctx.write_u64(PmAddr(b.0 + 8 + free * 16), key);
        ctx.flush_range(PmAddr(b.0 + 8 + free * 16), 16);
        ctx.fence();
        ctx.write_u64(b, bitmap | 1 << free); // metadata PM write
        // Mutation-canary sites (tests/sanitizer.rs): always enabled
        // outside the canary tests.
        if spash_pmem::san::site_enabled("level.insert.flush") {
            ctx.flush(b);
        }
        if spash_pmem::san::site_enabled("level.insert.fence") {
            ctx.fence();
        }
        true
    }

    /// Full-table rehash: new top = 2 × old top, old top becomes the new
    /// bottom, old bottom's entries are re-inserted. Holds the global
    /// table write lock for the duration (the stall the paper measures).
    fn rehash(&self, ctx: &mut MemCtx) -> Result<(), IndexError> {
        ctx.stats_span(spash_pmem::SPAN_COMPACTION, |ctx| self.rehash_impl(ctx))
    }

    fn rehash_impl(&self, ctx: &mut MemCtx) -> Result<(), IndexError> {
        let mut t = self.table.write();
        let new_n = t.n_top * 2;
        let new_top = self
            .alloc
            .alloc_region(ctx, new_n * BUCKET_BYTES)
            .map_err(|_| IndexError::OutOfMemory)?;
        let zeros = [0u8; 256];
        let mut off = 0;
        while off < new_n * BUCKET_BYTES {
            let n = 256.min(new_n * BUCKET_BYTES - off) as usize;
            ctx.ntstore_bytes(PmAddr(new_top.0 + off), &zeros[..n]);
            off += n as u64;
        }
        let new_table = Table {
            top: new_top,
            bottom: t.top,
            n_top: new_n,
            sel: t.sel ^ 1,
        };
        // Move every old-bottom entry into the new top.
        let old_bottom_n = t.n_top / 2;
        for i in 0..old_bottom_n {
            let b = PmAddr(t.bottom.0 + i * BUCKET_BYTES);
            let bitmap = ctx.read_u64(b);
            for s in 0..SLOTS {
                if bitmap & (1 << s) == 0 {
                    continue;
                }
                let k = ctx.read_u64(PmAddr(b.0 + 8 + s * 16));
                let vw = ctx.read_u64(PmAddr(b.0 + 16 + s * 16));
                let (h1, h2) = Self::hashes(k);
                let placed = self.bucket_insert(ctx, new_table.bucket(0, h1 % new_n), k, vw)
                    || self.bucket_insert(ctx, new_table.bucket(0, h2 % new_n), k, vw);
                if !placed {
                    // Rare; the original moves an occupant. Place in the
                    // new bottom (= old top) via its candidates.
                    let ok = self
                        .bucket_insert(ctx, new_table.bucket(1, h1 % t.n_top), k, vw)
                        || self.bucket_insert(ctx, new_table.bucket(1, h2 % t.n_top), k, vw);
                    if !ok {
                        return Err(IndexError::OutOfMemory);
                    }
                }
            }
        }
        // Commit order: persist the new descriptor in the inactive root
        // slot, flip the selector (one atomic word — the commit point),
        // and only then free the old bottom. A crash before the flip
        // leaves the old table authoritative (the new top leaks, counted);
        // a crash after the flip but before the free leaks the old bottom.
        Self::write_slot(ctx, self.root, new_table.sel, &new_table, self.lock_region);
        ctx.flush_range(PmAddr(self.root.0 + 256 + new_table.sel * 256), 32);
        ctx.fence();
        ctx.write_u64(PmAddr(self.root.0 + 8), new_table.sel);
        ctx.flush(PmAddr(self.root.0 + 8));
        ctx.fence();
        self.alloc.free_region(ctx, t.bottom);
        *t = new_table;
        Ok(())
    }

    /// Popcount of every bucket bitmap in both levels.
    fn count_entries(ctx: &mut MemCtx, t: &Table) -> u64 {
        let mut n = 0u64;
        for (base, count) in [(t.top, t.n_top), (t.bottom, t.n_top / 2)] {
            for i in 0..count {
                let bitmap = ctx.read_u64(PmAddr(base.0 + i * BUCKET_BYTES));
                n += (bitmap & ((1 << SLOTS) - 1)).count_ones() as u64;
            }
        }
        n
    }

    /// Rebuild from the persistent root after a crash.
    pub fn recover(ctx: &mut MemCtx) -> Option<Self> {
        ctx.stats_span(spash_pmem::SPAN_LOG_REPLAY, Self::recover_impl)
    }

    fn recover_impl(ctx: &mut MemCtx) -> Option<Self> {
        let rec = PmAllocator::recover(ctx)?;
        let (root, root_len) = rec.alloc.reserved();
        if root_len < ROOT_LEN || ctx.read_u64(root) != MAGIC {
            return None;
        }
        let sel = ctx.read_u64(PmAddr(root.0 + 8)) & 1;
        let s = root.0 + 256 + sel * 256;
        let n_top = ctx.read_u64(PmAddr(s));
        let top = PmAddr(ctx.read_u64(PmAddr(s + 8)));
        let bottom = PmAddr(ctx.read_u64(PmAddr(s + 16)));
        let lock_region = PmAddr(ctx.read_u64(PmAddr(s + 24)));
        // The descriptor must name live regions of this heap, or the root
        // is torn/foreign.
        let regions: HashSet<u64> = rec.regions.iter().map(|&(a, _)| a.0).collect();
        if !n_top.is_power_of_two()
            || n_top < 4
            || ![top, bottom, lock_region]
                .iter()
                .all(|a| regions.contains(&a.0))
        {
            return None;
        }
        let table = Table {
            top,
            bottom,
            n_top,
            sel,
        };
        let entries = Self::count_entries(ctx, &table);
        let lock_ns = ctx.device().config().cost.lock_ns;
        let locks = (0..LOCK_SHARDS)
            .map(|i| PmRwLock::new(PmAddr(lock_region.0 + i as u64 * 8), lock_ns))
            .collect();
        Some(Self {
            alloc: Arc::new(rec.alloc),
            table: RwLock::new(table),
            locks,
            lock_region,
            root,
            entries: AtomicU64::new(entries),
        })
    }

    /// Addresses the recovered index can reach: its three regions plus
    /// every blob a published slot points at.
    fn reachable(&self, ctx: &mut MemCtx) -> HashSet<u64> {
        let t = self.table.read();
        let mut set: HashSet<u64> =
            [t.top.0, t.bottom.0, self.lock_region.0].into_iter().collect();
        for (base, count) in [(t.top, t.n_top), (t.bottom, t.n_top / 2)] {
            for i in 0..count {
                let b = PmAddr(base.0 + i * BUCKET_BYTES);
                let bitmap = ctx.read_u64(b);
                for s in 0..SLOTS {
                    if bitmap & (1 << s) != 0 {
                        let vw = ctx.read_u64(PmAddr(b.0 + 16 + s * 16));
                        if let common::ValWord::Blob(a) = common::unpack_val(vw) {
                            set.insert(a.0);
                        }
                    }
                }
            }
        }
        set
    }

    /// Level hashing as a [`CrashTarget`] for the crash-point sweep.
    pub fn crash_target(pow: u32) -> CrashTarget {
        CrashTarget {
            name: "Level".into(),
            format: Box::new(move |ctx| {
                Box::new(Level::format(ctx, pow).expect("format Level"))
            }),
            recover: Box::new(|ctx| {
                let idx = Level::recover(ctx)?;
                let reachable = idx.reachable(ctx);
                let (leaked_allocs, audit_error) = common::audit_census(ctx, &reachable);
                Some(Recovery {
                    index: Box::new(idx),
                    leaked_allocs,
                    audit_error,
                })
            }),
        }
    }
}

impl PersistentIndex for Level {
    fn name(&self) -> &'static str {
        "Level"
    }

    fn insert(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        let vw = common::make_val(&self.alloc, ctx, key, value)?;
        let (h1, h2) = Self::hashes(key);
        loop {
            enum Out {
                Done,
                Dup,
                Full,
            }
            let out = {
                let t = self.table.read();
                let cands = t.candidates(h1, h2);
                // Duplicate check + insert, locking candidates one at a
                // time (the original's per-bucket fine-grained locks).
                let mut dup = false;
                for &(lvl, i) in &cands {
                    let b = t.bucket(lvl, i);
                    if self
                        .lock_of(lvl, i)
                        // lint:allow(flow-flush-fence): residue reaching this release is bucket_insert/rehash canary-gated flush+fence (level.insert.*) carried around the retry loop. san=none(canary gate is on outside sanitizer canary tests)
                        .read(ctx, |ctx| self.scan(ctx, b, key).is_some())
                    {
                        dup = true;
                        break;
                    }
                }
                if dup {
                    Out::Dup
                } else {
                    let mut done = false;
                    for &(lvl, i) in &cands {
                        let b = t.bucket(lvl, i);
                        if self
                            .lock_of(lvl, i)
                            // lint:allow(flow-flush-fence): bucket_insert's slot flush+fence are canary-gated (level.insert.*), always enabled outside tests/sanitizer.rs. san=none(canary gate is on outside sanitizer canary tests)
                            .write(ctx, |ctx| self.bucket_insert(ctx, b, key, vw))
                        {
                            done = true;
                            break;
                        }
                    }
                    if done {
                        Out::Done
                    } else {
                        Out::Full
                    }
                }
            };
            match out {
                Out::Done => {
                    self.entries.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Out::Dup => {
                    // lint:allow(flow-flush-fence): canary-gated residue from the failed insert round; free_val's header CAS flips its own metadata word. san=none(allocator metadata word on its own cacheline)
                    common::free_val(&self.alloc, ctx, vw);
                    return Err(IndexError::DuplicateKey);
                }
                // lint:allow(flow-flush-fence): canary-gated residue carried into the rehash retry; rehash re-flushes and fences everything it moves. san=none(canary gate is on outside sanitizer canary tests)
                Out::Full => self.rehash(ctx)?,
            }
        }
    }

    fn update(&self, ctx: &mut MemCtx, key: u64, value: &[u8]) -> Result<(), IndexError> {
        let vw = common::make_val(&self.alloc, ctx, key, value)?;
        let (h1, h2) = Self::hashes(key);
        let t = self.table.read();
        for &(lvl, i) in &t.candidates(h1, h2) {
            let b = t.bucket(lvl, i);
            let hit = self.lock_of(lvl, i).write(ctx, |ctx| {
                self.scan(ctx, b, key).map(|(s, old)| {
                    ctx.write_u64(PmAddr(b.0 + 16 + s * 16), vw);
                    ctx.flush(PmAddr(b.0 + 16 + s * 16));
                    ctx.fence();
                    old
                })
            });
            if let Some(old) = hit {
                drop(t);
                common::free_val(&self.alloc, ctx, old);
                return Ok(());
            }
        }
        drop(t);
        common::free_val(&self.alloc, ctx, vw);
        Err(IndexError::NotFound)
    }

    fn get(&self, ctx: &mut MemCtx, key: u64, out: &mut Vec<u8>) -> bool {
        ctx.stats_span(spash_pmem::SPAN_PROBE, |ctx| {
            let (h1, h2) = Self::hashes(key);
            let t = self.table.read();
            for &(lvl, i) in &t.candidates(h1, h2) {
                let b = t.bucket(lvl, i);
                // Read lock per bucket: the PM lock writes on the read path.
                let hit = self
                    .lock_of(lvl, i)
                    .read(ctx, |ctx| self.scan(ctx, b, key).map(|(_, vw)| vw));
                if let Some(vw) = hit {
                    drop(t);
                    common::append_value(ctx, vw, out);
                    return true;
                }
            }
            false
        })
    }

    fn remove(&self, ctx: &mut MemCtx, key: u64) -> bool {
        let (h1, h2) = Self::hashes(key);
        let t = self.table.read();
        for &(lvl, i) in &t.candidates(h1, h2) {
            let b = t.bucket(lvl, i);
            // lint:allow(flow-flush-fence): the key-word scrub after the flushed bitmap unpublish is a recovery don't-care, dynamically forgiven inside this region. san=level::remove
            let hit = self.lock_of(lvl, i).write(ctx, |ctx| {
                self.scan(ctx, b, key).map(|(s, vw)| {
                    let bitmap = ctx.read_u64(b);
                    // Unpublish first (flushed), then scrub the key word.
                    ctx.write_u64(b, bitmap & !(1 << s));
                    ctx.flush(b);
                    ctx.fence();
                    ctx.write_u64(PmAddr(b.0 + 8 + s * 16), 0);
                    // The scrub is a recovery don't-care: the bitmap
                    // (flushed above) already unpublished the slot.
                    ctx.san_forgive(PmAddr(b.0 + 8 + s * 16), 8);
                    vw
                })
            });
            if let Some(vw) = hit {
                drop(t);
                common::free_val(&self.alloc, ctx, vw);
                self.entries.fetch_sub(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    fn capacity_slots(&self) -> u64 {
        let t = self.table.read();
        (t.n_top + t.n_top / 2) * SLOTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cceh::test_device;

    fn setup() -> (Arc<spash_pmem::PmDevice>, Level, MemCtx) {
        let (dev, mut ctx) = test_device();
        let idx = Level::format(&mut ctx, 4).unwrap();
        (dev, idx, ctx)
    }

    #[test]
    fn basic_crud() {
        let (_d, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 1, 10).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(10));
        idx.update_u64(&mut ctx, 1, 20).unwrap();
        assert_eq!(idx.get_u64(&mut ctx, 1), Some(20));
        assert!(idx.remove(&mut ctx, 1));
        assert_eq!(idx.get_u64(&mut ctx, 1), None);
        assert_eq!(
            idx.insert_u64(&mut ctx, 2, 0)
                .and(idx.insert_u64(&mut ctx, 2, 0))
                .unwrap_err(),
            IndexError::DuplicateKey
        );
    }

    #[test]
    fn grows_through_full_table_rehash() {
        let (_d, idx, mut ctx) = setup();
        let cap0 = idx.capacity_slots();
        let n = 3000u64;
        for k in 1..=n {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        for k in 1..=n {
            assert_eq!(idx.get_u64(&mut ctx, k), Some(k), "key {k}");
        }
        assert!(idx.capacity_slots() > cap0, "rehash must have grown");
    }

    #[test]
    fn reads_produce_pm_lock_writes() {
        let (dev, idx, mut ctx) = setup();
        idx.insert_u64(&mut ctx, 7, 7).unwrap();
        dev.flush_cache_all();
        let before = dev.snapshot();
        for _ in 0..100 {
            idx.get_u64(&mut ctx, 7).unwrap();
        }
        dev.flush_cache_all();
        let d = dev.snapshot().since(&before);
        assert!(d.cl_writes > 0, "Level reads must dirty the PM lock word");
    }

    #[test]
    fn recover_roundtrip_across_rehash() {
        let (dev, idx, mut ctx) = setup();
        let blob = vec![0x5au8; 120];
        idx.insert(&mut ctx, 9999, &blob).unwrap();
        for k in 1..=1500u64 {
            idx.insert_u64(&mut ctx, k, k).unwrap(); // forces rehashes
        }
        for k in 1..=40u64 {
            idx.update_u64(&mut ctx, k, k + 7).unwrap();
        }
        for k in 100..=120u64 {
            assert!(idx.remove(&mut ctx, k));
        }
        let live = idx.entries();
        dev.flush_cache_all();
        drop(idx);

        let mut ctx2 = dev.ctx();
        let r = Level::recover(&mut ctx2).expect("recover Level");
        assert_eq!(r.entries(), live);
        for k in 1..=40u64 {
            assert_eq!(r.get_u64(&mut ctx2, k), Some(k + 7), "updated key {k}");
        }
        for k in 100..=120u64 {
            assert_eq!(r.get_u64(&mut ctx2, k), None, "removed key {k}");
        }
        assert_eq!(r.get_u64(&mut ctx2, 1500), Some(1500));
        let mut out = Vec::new();
        assert!(r.get(&mut ctx2, 9999, &mut out));
        assert_eq!(out, blob);
        r.insert_u64(&mut ctx2, 100_000, 1).unwrap();
        assert_eq!(r.get_u64(&mut ctx2, 100_000), Some(1));
    }

    #[test]
    fn recover_refuses_unformatted_image() {
        let (_d, mut ctx) = test_device();
        assert!(Level::recover(&mut ctx).is_none());
        let _ = PmAllocator::format(&mut ctx, 0);
        assert!(Level::recover(&mut ctx).is_none());
    }

    #[test]
    fn values_survive_rehash() {
        let (_d, idx, mut ctx) = setup();
        let blob = vec![0x42u8; 200];
        idx.insert(&mut ctx, 999, &blob).unwrap();
        for k in 1..=2000u64 {
            if k != 999 {
                idx.insert_u64(&mut ctx, k, k).unwrap();
            }
        }
        let mut out = Vec::new();
        assert!(idx.get(&mut ctx, 999, &mut out));
        assert_eq!(out, blob);
    }
}
