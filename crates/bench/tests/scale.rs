//! The properties the scale gate stands on (ISSUE: deterministic
//! multi-thread scalability sweep):
//!
//! * same-seed sweeps are **bit**-deterministic at 2 and 8 virtual
//!   threads — byte-identical serialized rows, not just equal headline
//!   numbers (contrast `determinism.rs`, which can promise this only for
//!   single-threaded real-thread runs: the cooperative scheduler is what
//!   extends it to multi-thread phases);
//! * a phase's reported op total is exactly the sum of its per-task op
//!   counts;
//! * a deliberately injected contention inflation (identity RMWs on a
//!   shared line) flips `compare_reports` to failure — the exact gate
//!   sees modelled contention, not just throughput noise.
//!
//! The inflation hook is process-global, so every test that runs cells
//! holds `scale_test_lock`.

use spash_bench::indexes::crash_targets;
use spash_bench::report::CompareOutcome;
use spash_bench::scale::{run_cell, set_contention_inflation, ScaleConfig};
use spash_bench::{compare_reports, BenchReport, CompareOpts, ExperimentRow};
use spash_pmem::PersistenceDomain;

/// Serializes cell-running tests: `set_contention_inflation` is
/// process-global state.
fn scale_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn tiny() -> ScaleConfig {
    ScaleConfig {
        keys: 400,
        ops: 160,
        threads: vec![2, 8],
        seed: 0x5eed,
        value_bytes: 16,
        preemptions: 32,
    }
}

/// Wrap rows in a report pinned for byte comparison (what the suite
/// itself does: informational timestamp zeroed).
fn report_from(rows: Vec<ExperimentRow>) -> BenchReport {
    let mut r = BenchReport::new("test");
    r.created_unix = 0;
    r.set_config("suite", "scale-test");
    r.rows = rows;
    r
}

fn compare_virtual(old: &BenchReport, new: &BenchReport) -> CompareOutcome {
    let opts = CompareOpts {
        wall_tol: None,
        ..CompareOpts::default()
    };
    compare_reports(old, new, &opts)
}

#[test]
fn same_seed_sweeps_are_byte_identical_at_2_and_8_threads() {
    let _guard = scale_test_lock();
    let cfg = tiny();
    // Spash at both ladder points, plus one lock-free baseline: the
    // byte-determinism claim is about the driver, not one index's luck.
    let cells: [(usize, usize); 3] = [(0, 2), (0, 8), (1, 2)];
    for (ti, threads) in cells {
        let target = &crash_targets()[ti];
        let a = run_cell(target, ti, PersistenceDomain::Eadr, threads, &cfg).unwrap();
        let b = run_cell(target, ti, PersistenceDomain::Eadr, threads, &cfg).unwrap();
        let (ja, jb) = (report_from(a.rows).to_json(), report_from(b.rows).to_json());
        assert_eq!(
            ja, jb,
            "{} t{threads}: same-seed runs serialized differently",
            target.name
        );
        let out = compare_virtual(
            &BenchReport::from_json(&ja).unwrap(),
            &BenchReport::from_json(&jb).unwrap(),
        );
        assert!(out.ok(), "exact gate rejected identical runs: {:?}", out.regressions);
    }
}

#[test]
fn phase_ops_equal_sum_of_per_task_ops() {
    let _guard = scale_test_lock();
    let cfg = tiny();
    let target = &crash_targets()[0];
    for &threads in &cfg.threads {
        let cell = run_cell(target, 0, PersistenceDomain::Eadr, threads, &cfg).unwrap();
        assert_eq!(cell.rows.len(), cell.task_ops.len());
        for (row, (phase, per_task)) in cell.rows.iter().zip(&cell.task_ops) {
            assert_eq!(per_task.len(), threads, "{phase}: one op count per task");
            assert_eq!(
                row.ops,
                per_task.iter().sum::<u64>(),
                "t{threads}/{phase}: total != sum of per-task ops"
            );
            assert!(
                per_task.iter().all(|&n| n > 0),
                "t{threads}/{phase}: a task did no work: {per_task:?}"
            );
        }
        // Load splits the key space exactly; run phases do ops/threads each.
        assert_eq!(cell.rows[0].ops, cfg.keys);
        let per = (cfg.ops / threads as u64).max(1);
        assert_eq!(cell.rows[1].ops, per * threads as u64);
        assert_eq!(cell.rows[2].ops, per * threads as u64);
    }
}

#[test]
fn contention_inflation_flips_the_exact_gate() {
    let _guard = scale_test_lock();
    let cfg = tiny();
    let target = &crash_targets()[0];
    let clean = run_cell(target, 0, PersistenceDomain::Eadr, 2, &cfg).unwrap();
    assert!(!set_contention_inflation(true), "hook already armed");
    let inflated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_cell(target, 0, PersistenceDomain::Eadr, 2, &cfg)
    }));
    set_contention_inflation(false);
    let inflated = inflated.expect("inflated cell panicked").unwrap();

    // The inflation must not change how much work was done...
    for (c, i) in clean.rows.iter().zip(&inflated.rows) {
        assert_eq!(c.ops, i.ops, "{}: inflation changed op counts", c.phase);
    }
    // ...but the exact gate must reject the run: extra RMW line traffic
    // shows up in the deterministic counters.
    let out = compare_virtual(&report_from(clean.rows), &report_from(inflated.rows));
    assert!(
        !out.ok(),
        "contention inflation slipped past the exact compare gate"
    );
}
