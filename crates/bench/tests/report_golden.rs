//! Golden-file test for the `BENCH_*.json` schema: a committed fixture
//! pins the exact serialization (key order, indentation, number
//! formatting), and the compare gate is demonstrated end-to-end on a
//! perturbed copy — an inflated media-write count must register as a
//! regression.
//!
//! If this test fails because the schema changed *on purpose*, bump
//! `report::SCHEMA_VERSION`, regenerate the fixture (the failure message
//! says how), and regenerate `bench/baseline.json`.

use spash_bench::report::{self, SpanRow};
use spash_bench::{compare_reports, BenchReport, CompareOpts, ExperimentRow};
use spash_pmem::StatsSnapshot;

const FIXTURE: &str = include_str!("fixtures/bench_golden.json");

/// A fully pinned report: every field fixed, including the timestamp.
fn golden_report() -> BenchReport {
    let mut rep = BenchReport {
        schema: report::SCHEMA_VERSION,
        rev: "cafef00d".into(),
        created_unix: 1_750_000_000,
        config: Vec::new(),
        assertions: Vec::new(),
        rows: Vec::new(),
    };
    rep.set_config("keys", 20_000u64);
    rep.set_config("ops", 10_000u64);
    rep.set_config("seed", "0x5eed");
    rep.rows.push(ExperimentRow {
        experiment: "perf".into(),
        series: "Spash".into(),
        point: "eadr".into(),
        phase: "load".into(),
        unit: "mops".into(),
        value: 1.5,
        threads: 1,
        ops: 20_000,
        elapsed_ns: 13_333_333,
        host_ns: 7_000_000,
        counters: StatsSnapshot {
            cl_reads: 123_456,
            cl_writes: 65_432,
            xp_writes: 4_096,
            media_write_bytes: (1 << 53) + 1, // must survive JSON exactly
            ..Default::default()
        },
        spans: vec![SpanRow {
            name: "split".into(),
            entries: 42,
            vtime_ns: 1_000_000,
            counters: StatsSnapshot {
                xp_writes: 512,
                ..Default::default()
            },
        }],
    });
    rep.rows.push(ExperimentRow {
        experiment: "perf".into(),
        series: "Spash".into(),
        point: "eadr".into(),
        phase: "search".into(),
        unit: "mops".into(),
        value: 2.25,
        threads: 1,
        ops: 10_000,
        elapsed_ns: 4_444_444,
        host_ns: 3_000_000,
        counters: StatsSnapshot {
            cl_reads: 11_000,
            read_hits: 9_000,
            ..Default::default()
        },
        spans: Vec::new(),
    });
    rep
}

#[test]
fn serialization_matches_committed_fixture_bytes() {
    let text = golden_report().to_json();
    assert_eq!(
        text, FIXTURE,
        "BENCH json layout changed. If intentional: bump SCHEMA_VERSION, \
         rewrite crates/bench/tests/fixtures/bench_golden.json with the new \
         serialization, and regenerate bench/baseline.json."
    );
}

#[test]
fn fixture_round_trips_through_the_compare_parser() {
    let parsed = BenchReport::from_json(FIXTURE).expect("fixture must parse");
    assert_eq!(parsed, golden_report());
    // Re-render: byte-stable through a full round trip.
    assert_eq!(parsed.to_json(), FIXTURE);
}

#[test]
fn inflated_media_write_count_fails_the_gate() {
    let old = BenchReport::from_json(FIXTURE).unwrap();
    let mut new = old.clone();
    // The scenario the gate exists for: a code change silently writes
    // more to media at unchanged throughput numbers.
    new.rows[0].counters.media_write_bytes += 4096;
    let out = compare_reports(&old, &new, &CompareOpts::default());
    assert!(!out.ok());
    assert!(
        out.regressions
            .iter()
            .any(|r| r.contains("media_write_bytes")),
        "{:?}",
        out.regressions
    );
    // And the unperturbed report compares clean against itself.
    assert!(compare_reports(&old, &old, &CompareOpts::default()).ok());
}

/// Regenerator: `cargo test -p spash-bench --test report_golden -- --ignored
/// regenerate --nocapture` prints the current serialization to paste into
/// the fixture.
#[test]
#[ignore]
fn regenerate() {
    print!("{}", golden_report().to_json());
}
