//! Regression tests for the property the perf gate stands on: two
//! same-seed single-threaded runs produce byte-identical virtual-clock
//! metrics (DESIGN.md "Perf reports and the regression gate").
//!
//! Kept at threads = 1 deliberately — multi-threaded phases interleave
//! cache/XPBuffer state on the host scheduler and are *not* expected to
//! be bit-deterministic.

use spash_bench::experiments::{fig7, fig8};
use spash_bench::indexes::IndexKind;
use spash_bench::{PhaseResult, Scale};

fn tiny_scale() -> Scale {
    Scale {
        keys: 2_000,
        ops: 1_000,
        threads: vec![1],
    }
}

fn virtual_metrics(r: &PhaseResult) -> (u64, u64, spash_pmem::StatsDelta, Vec<(&'static str, u64, u64)>) {
    (
        r.ops,
        r.elapsed_ns,
        r.delta,
        r.spans
            .iter()
            .map(|(n, s)| (*n, s.entries, s.vtime_ns))
            .collect(),
    )
}

#[test]
fn fig7_single_thread_runs_are_bit_deterministic() {
    let scale = tiny_scale();
    for kind in [IndexKind::Spash, IndexKind::Cceh, IndexKind::Halo] {
        let a = fig7::run_one(&scale, kind, 1);
        let b = fig7::run_one(&scale, kind, 1);
        for (pa, pb) in a.iter().zip(b.iter()) {
            assert_eq!(
                virtual_metrics(pa),
                virtual_metrics(pb),
                "{kind:?}: virtual metrics drifted between identical runs"
            );
        }
    }
}

#[test]
fn fig8_access_counts_are_bit_deterministic() {
    let scale = tiny_scale();
    let a = fig8::run_one(&scale, IndexKind::Spash);
    let b = fig8::run_one(&scale, IndexKind::Spash);
    for (pa, pb) in [
        (&a.insert, &b.insert),
        (&a.search, &b.search),
        (&a.update, &b.update),
        (&a.delete, &b.delete),
    ] {
        assert_eq!(virtual_metrics(pa), virtual_metrics(pb));
    }
}
