//! The properties the service gate stands on (ISSUE: sharded, batched
//! KV front-end with a deterministic million-client test harness):
//!
//! * same-seed service cells are **byte**-deterministic — identical
//!   serialized rows including every p50/p99/p999 latency, because the
//!   open-loop arrival schedule, the batch formation, and the coalesced
//!   fences all run in virtual time under the cooperative scheduler;
//! * ack conservation — every enqueued request is acked exactly once
//!   (`enqueued == sum of per-shard acked`), across load, open-loop and
//!   saturation phases;
//! * the dispatch latency-inflation canary (identity RMWs on a shared
//!   line in `begin_batch`) leaves op counts untouched but flips the
//!   exact `compare` gate — tail-latency regressions cannot hide;
//! * the cross-shard misroute canary is caught by the executor-side
//!   routing audit (a consistent shift preserves per-key order, so the
//!   lin-check *cannot* see it — the audit is the only line of defense).
//!
//! The canary hooks are process-global, so every test that runs cells
//! holds `service_test_lock`.

use spash_bench::indexes::crash_targets;
use spash_bench::report::CompareOutcome;
use spash_bench::service::{run_cell, ServiceSuiteConfig};
use spash_bench::{compare_reports, BenchReport, CompareOpts, ExperimentRow};
use spash_pmem::PersistenceDomain;
use spash_service::testhooks;

/// Serializes cell-running tests: the testhooks are process-global.
fn service_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn tiny() -> ServiceSuiteConfig {
    ServiceSuiteConfig {
        keys: 300,
        ops: 240,
        shards: vec![2],
        batch_max: 4,
        ..ServiceSuiteConfig::default_suite()
    }
}

/// Wrap rows in a report pinned for byte comparison (what the suite
/// itself does: informational timestamp zeroed).
fn report_from(rows: Vec<ExperimentRow>) -> BenchReport {
    let mut r = BenchReport::new("test");
    r.created_unix = 0;
    r.set_config("suite", "service-test");
    r.rows = rows;
    r
}

fn compare_virtual(old: &BenchReport, new: &BenchReport) -> CompareOutcome {
    let opts = CompareOpts {
        wall_tol: None,
        ..CompareOpts::default()
    };
    compare_reports(old, new, &opts)
}

#[test]
fn same_seed_service_cells_are_byte_identical() {
    let _guard = service_test_lock();
    let cfg = tiny();
    // Spash plus one baseline: the determinism claim is about the
    // service driver, not one index's luck. ADR included — the fence
    // path differs per domain.
    for (ti, domain) in [
        (0, PersistenceDomain::Eadr),
        (0, PersistenceDomain::Adr),
        (1, PersistenceDomain::Eadr),
    ] {
        let target = &crash_targets()[ti];
        let a = run_cell(target, ti, domain, 2, &cfg).unwrap();
        let b = run_cell(target, ti, domain, 2, &cfg).unwrap();
        let (ja, jb) = (report_from(a.rows).to_json(), report_from(b.rows).to_json());
        assert_eq!(ja, jb, "{}: same-seed service cells serialized differently", target.name);
        let out = compare_virtual(
            &BenchReport::from_json(&ja).unwrap(),
            &BenchReport::from_json(&jb).unwrap(),
        );
        assert!(out.ok(), "exact gate rejected identical runs: {:?}", out.regressions);
    }
}

#[test]
fn every_enqueued_request_is_acked_exactly_once() {
    let _guard = service_test_lock();
    let cfg = tiny();
    let target = &crash_targets()[0];
    let cell = run_cell(target, 0, PersistenceDomain::Eadr, 2, &cfg).unwrap();
    assert_eq!(cell.enqueued, cfg.keys + 2 * cfg.ops);
    assert_eq!(cell.acked, cell.enqueued, "acked != enqueued: lost or duplicated acks");
    // Row-level conservation: measured phase op totals must add up to
    // the same number (percentile rows echo the open-phase count).
    let measured: u64 = cell
        .rows
        .iter()
        .filter(|r| matches!(r.phase.as_str(), "load" | "open" | "saturate"))
        .map(|r| r.ops)
        .sum();
    assert_eq!(measured, cell.enqueued);
}

#[test]
fn latency_inflation_canary_flips_the_compare_gate() {
    let _guard = service_test_lock();
    let cfg = tiny();
    let target = &crash_targets()[0];
    let clean = run_cell(target, 0, PersistenceDomain::Eadr, 2, &cfg).unwrap();
    assert!(!testhooks::set_inflate_dispatch(true), "hook already armed");
    let inflated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_cell(target, 0, PersistenceDomain::Eadr, 2, &cfg)
    }));
    testhooks::set_inflate_dispatch(false);
    let inflated = inflated.expect("inflated cell panicked").unwrap();

    // The canary must not change how much work was done...
    for (c, i) in clean.rows.iter().zip(&inflated.rows) {
        assert_eq!(c.ops, i.ops, "{}: inflation changed op counts", c.phase);
    }
    // ...but the exact gate must reject the run: the dispatch-path RMW
    // traffic inflates virtual time and the deterministic counters.
    let out = compare_virtual(&report_from(clean.rows), &report_from(inflated.rows));
    assert!(
        !out.ok(),
        "dispatch latency inflation slipped past the exact compare gate"
    );
}

#[test]
fn misroute_canary_is_caught_by_the_routing_audit() {
    let _guard = service_test_lock();
    let cfg = tiny();
    let target = &crash_targets()[0];
    assert!(!testhooks::set_misroute(true), "hook already armed");
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_cell(target, 0, PersistenceDomain::Eadr, 2, &cfg)
    }));
    testhooks::set_misroute(false);
    let err = match out.expect("misrouted cell panicked") {
        Ok(_) => panic!("a consistently misrouted run passed the routing audit"),
        Err(e) => e,
    };
    assert!(
        err.contains("misrouted"),
        "routing audit failed for the wrong reason: {err}"
    );
}
