//! Small statistics helpers shared by the latency experiments and the
//! perf-regression suite.

/// Nearest-rank percentile of an ascending-sorted slice, `p` in `[0, 1]`.
/// Returns 0.0 for an empty slice. Debug builds assert the input really is
/// sorted — a silently unsorted slice would produce a plausible-looking
/// but wrong tail.
pub fn percentile(sorted: &[u64], p: f64) -> f64 {
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile() input must be sorted ascending"
    );
    debug_assert!((0.0..=1.0).contains(&p), "percentile p={p} outside [0, 1]");
    if sorted.is_empty() {
        return 0.0;
    }
    let i = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[i] as f64
}

/// Median of an *unsorted* slice of host-time samples (sorts a copy).
/// Even sample counts take the lower middle element so the result is
/// always one of the observed values.
pub fn median(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut v = samples.to_vec();
    v.sort_unstable();
    v[(v.len() - 1) / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice_is_zero() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(median(&[]), 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = [42u64];
        assert_eq!(percentile(&s, 0.0), 42.0);
        assert_eq!(percentile(&s, 0.5), 42.0);
        assert_eq!(percentile(&s, 1.0), 42.0);
    }

    #[test]
    fn endpoints_clamp_to_first_and_last() {
        let s = [10u64, 20, 30, 40];
        assert_eq!(percentile(&s, 0.0), 10.0);
        // p = 1.0 indexes past the end without clamping; it must clamp.
        assert_eq!(percentile(&s, 1.0), 40.0);
    }

    #[test]
    fn nearest_rank_interior() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&s, 0.5), 51.0);
        assert_eq!(percentile(&s, 0.99), 100.0);
    }

    #[test]
    #[should_panic(expected = "sorted ascending")]
    #[cfg(debug_assertions)]
    fn unsorted_input_asserts_in_debug() {
        percentile(&[3, 1, 2], 0.5);
    }

    #[test]
    fn median_takes_lower_middle() {
        assert_eq!(median(&[5]), 5);
        assert_eq!(median(&[9, 1, 5]), 5);
        assert_eq!(median(&[4, 1, 3, 2]), 2);
    }
}
