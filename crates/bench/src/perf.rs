//! The `spash-bench perf` suite: a fixed-seed, single-threaded run of all
//! seven indexes under both persistence domains, producing a
//! [`BenchReport`] whose virtual-clock metrics are **bit-deterministic**
//! (DESIGN.md "Perf reports and the regression gate").
//!
//! Single-threaded is load-bearing: the virtual-clock model is exact for
//! one simulated thread, so two runs of the same binary at the same seed
//! produce byte-identical counters and `spash-bench compare` can hold
//! them to strict equality. (Multi-threaded phases interleave cache and
//! XPBuffer state nondeterministically; their throughput lives in the
//! fig7–fig12 experiments, not in the regression gate.)
//!
//! Every index is driven through its [`CrashTarget`] — the same
//! format/recover pair the crash sweeps use — so the suite also times a
//! real recovery (power failure + rebuild) per index and domain.

use std::sync::Arc;
use std::time::Instant;

use spash_index_api::crashpoint::CrashTarget;
use spash_index_api::PersistentIndex;
use spash_pmem::{CrashFidelity, MemCtx, PersistenceDomain, PmConfig, PmDevice};
use spash_workloads::{load_keys, Distribution, Mix, OpStream, ValueSize, WorkloadConfig};

use crate::experiments::exec_stream;
use crate::indexes::crash_targets;
use crate::report::{BenchReport, ExperimentRow};
use crate::statskit::median;
use crate::PhaseResult;

/// Suite scale. The defaults are deliberately small — the gate's job is
/// catching cost-model and code-path changes, which show up at any scale;
/// CI latency matters more than asymptotics here.
#[derive(Clone, Debug)]
pub struct PerfConfig {
    /// Keys loaded per index (key space `1..=keys`).
    pub keys: u64,
    /// Ops per run phase (search/mixed/zipf).
    pub ops: u64,
    /// Full-suite repetitions; virtual metrics must agree across all of
    /// them (asserted) and `host_ns` is the per-phase median.
    pub repeats: usize,
    pub seed: u64,
    pub value_bytes: usize,
}

impl PerfConfig {
    /// The pinned CI configuration. Changing any of these invalidates
    /// committed baselines (compare fails on the config echo).
    pub fn default_suite() -> Self {
        Self {
            keys: 20_000,
            ops: 10_000,
            repeats: 3,
            seed: 0x5eed,
            value_bytes: 16,
        }
    }

    /// Tiny variant for tier-1 tests.
    pub fn test_small() -> Self {
        Self {
            keys: 1_500,
            ops: 600,
            repeats: 2,
            seed: 0x5eed,
            value_bytes: 16,
        }
    }

    pub fn from_env() -> Self {
        let d = Self::default_suite();
        let env_u64 = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Self {
            keys: env_u64("SPASH_PERF_KEYS", d.keys),
            ops: env_u64("SPASH_PERF_OPS", d.ops),
            repeats: env_u64("SPASH_PERF_REPEATS", d.repeats as u64) as usize,
            seed: env_u64("SPASH_PERF_SEED", d.seed),
            value_bytes: d.value_bytes,
        }
    }
}

/// Device configuration for one suite run (shared with the `scale`
/// suite). PM-bound on purpose: a small simulated cache keeps media
/// traffic (the costs the gate guards) on every phase's critical path.
pub(crate) fn suite_pm(domain: PersistenceDomain) -> PmConfig {
    PmConfig {
        arena_size: 256 << 20,
        cache_capacity: 512 << 10,
        domain,
        // Full pre-image fidelity so the recover phase can pull a real
        // post-power-failure image even under ADR.
        fidelity: CrashFidelity::Full,
        san: None,
        ..PmConfig::default()
    }
}

/// Single-threaded `run_phase`: same accounting (quiesce, counter and
/// span deltas, vtime floor, bandwidth floor), but `body` runs on the
/// calling thread. Needed because [`CrashTarget`] closures are not
/// `Sync`, and wanted because one OS thread keeps the run
/// bit-deterministic.
fn measure_inline<F>(dev: &Arc<PmDevice>, body: F) -> PhaseResult
where
    F: FnOnce(&mut MemCtx) -> u64,
{
    dev.quiesce();
    let before = dev.snapshot();
    let spans_before = dev.span_totals();
    let host_start = Instant::now();
    let cost = dev.config().cost.clone();
    let phase_start = dev.vtime_floor();
    let mut ctx = dev.ctx();
    ctx.reset_clock();
    let ops = body(&mut ctx);
    let end = ctx.now();
    drop(ctx);
    dev.quiesce();
    let host_ns = host_start.elapsed().as_nanos() as u64;
    let delta = dev.snapshot().since(&before);
    let spans = dev
        .span_totals()
        .iter()
        .zip(spans_before.iter())
        .map(|((name, after), (_, before))| (*name, after.since(before)))
        .collect();
    let max_clock = end.max(dev.sim_horizon());
    dev.raise_vtime_floor(max_clock);
    let span = max_clock.saturating_sub(phase_start);
    let elapsed_ns = span.max(delta.bandwidth_floor_ns(&cost));
    PhaseResult {
        ops,
        elapsed_ns,
        delta,
        host_ns,
        spans,
    }
}

pub(crate) fn domain_label(domain: PersistenceDomain) -> &'static str {
    match domain {
        PersistenceDomain::Adr => "adr",
        PersistenceDomain::Eadr => "eadr",
    }
}

/// One index × domain: load, three run phases, power failure, recovery.
/// Returns rows in phase order.
fn run_target(
    target: &CrashTarget,
    domain: PersistenceDomain,
    cfg: &PerfConfig,
) -> Vec<ExperimentRow> {
    let dev = PmDevice::new(suite_pm(domain));
    let mut ctx = dev.ctx();
    let index: Box<dyn PersistentIndex> = (target.format)(&mut ctx);
    drop(ctx);

    let wl = |dist: Distribution, mix: Mix| WorkloadConfig {
        seed: cfg.seed,
        ..WorkloadConfig::new(cfg.keys, dist, mix, ValueSize::Fixed(cfg.value_bytes))
    };
    let point = domain_label(domain);
    let mut rows = Vec::new();
    let mut push = |phase: &str, unit: &str, value: f64, r: PhaseResult| {
        rows.push(ExperimentRow::from_phase(
            "perf",
            &target.name,
            point,
            phase,
            unit,
            value,
            1,
            &r,
        ));
    };

    let load_cfg = wl(Distribution::Uniform, Mix::BALANCED);
    let keys = load_keys(&load_cfg);
    let mut vals = OpStream::new(&load_cfg, 0);
    let r = measure_inline(&dev, |ctx| {
        for &k in &keys {
            index
                .insert(ctx, k, &vals.expected_value(k))
                .unwrap_or_else(|e| panic!("{}: load insert failed: {e:?}", target.name));
        }
        keys.len() as u64
    });
    push("load", "mops", r.mops(), r);

    for (phase, dist, mix) in [
        ("search", Distribution::Uniform, Mix::SEARCH_ONLY),
        ("mixed", Distribution::Uniform, Mix::BALANCED),
        ("zipf", Distribution::Zipfian, Mix::BALANCED),
    ] {
        let mut stream = OpStream::new(&wl(dist, mix), 0);
        let r = measure_inline(&dev, |ctx| exec_stream(&*index, ctx, &mut stream, cfg.ops));
        // Every index wraps its read path in [`spash_pmem::SPAN_PROBE`],
        // so the span delta isolates probe cost from the phase's writes.
        // PM cachelines referenced per probe (media misses + device-cache
        // hits — referenced, not missed, so the number doesn't depend on
        // cache size) is the headline the fingerprint sidecar moves
        // (paper §III-C: one header line resolves a tag-clean probe) —
        // pinned exactly by the gate like any other virtual metric.
        let probe = r
            .spans
            .iter()
            .find(|(n, _)| *n == spash_pmem::SPAN_PROBE)
            .map(|(_, s)| *s)
            .unwrap_or_default();
        let per_probe = if probe.entries == 0 {
            0.0
        } else {
            (probe.stats.cl_reads + probe.stats.read_hits) as f64 / probe.entries as f64
        };
        push(phase, "mops", r.mops(), r);
        push(
            &format!("{phase}_probe_reads"),
            "cl/probe",
            per_probe,
            PhaseResult {
                ops: probe.entries,
                elapsed_ns: probe.vtime_ns,
                delta: probe.stats,
                host_ns: 0,
                spans: Vec::new(),
            },
        );
    }

    drop(index);
    dev.simulate_power_failure();
    let mut recovered = None;
    let r = measure_inline(&dev, |ctx| {
        recovered = (target.recover)(ctx);
        1
    });
    push("recover", "mops", r.mops(), r);
    // Spash is eADR-native: under ADR its unflushed lines revert on the
    // power cut, so declining to recover the torn image — or recovering
    // it with audit findings — is legal and recorded, not fatal
    // (`CheckLevel::NoCorruption`). The recovery *attempt* is still
    // measured — its counters are deterministic and gate-worthy.
    let torn_ok = domain == PersistenceDomain::Adr
        && spash_analysis::san_mode_for(&target.name) == spash_pmem::SanMode::Relaxed;
    match recovered {
        Some(rec) => {
            if let Some(err) = rec.audit_error {
                assert!(
                    torn_ok,
                    "{}/{point}: post-recovery audit failed: {err}",
                    target.name
                );
                println!("# perf: {}/{point}: torn-image audit note: {err}", target.name);
            }
        }
        None => assert!(
            torn_ok,
            "{}/{point}: unrecoverable after clean power cut",
            target.name
        ),
    }
    rows
}

/// Run the full suite: every target × {eADR, ADR} × phases, `repeats`
/// times. Errors (rather than reporting garbage) if any repeat disagrees
/// on a virtual-clock metric — that would mean the model leaked real-time
/// or cross-run state and the gate's exact compare is meaningless.
pub fn run_suite(cfg: &PerfConfig) -> Result<BenchReport, String> {
    let mut report = BenchReport::new(&short_rev());
    report.set_config("suite", "perf");
    report.set_config("keys", cfg.keys);
    report.set_config("ops", cfg.ops);
    report.set_config("repeats", cfg.repeats);
    report.set_config("seed", format!("{:#x}", cfg.seed));
    report.set_config("value_bytes", cfg.value_bytes);

    let repeats = cfg.repeats.max(1);
    for target in crash_targets() {
        for domain in [PersistenceDomain::Eadr, PersistenceDomain::Adr] {
            let runs: Vec<Vec<ExperimentRow>> = (0..repeats)
                .map(|_| run_target(&target, domain, cfg))
                .collect();
            let mut rows = runs[0].clone();
            for (i, run) in runs.iter().enumerate().skip(1) {
                for (a, b) in rows.iter().zip(run.iter()) {
                    let mut a0 = a.clone();
                    let mut b0 = b.clone();
                    a0.host_ns = 0;
                    b0.host_ns = 0;
                    if a0 != b0 {
                        return Err(format!(
                            "{}: repeat {} disagrees with repeat 0 on virtual \
                             metrics — run is not deterministic",
                            a.key(),
                            i
                        ));
                    }
                }
            }
            for (j, row) in rows.iter_mut().enumerate() {
                let samples: Vec<u64> = runs.iter().map(|r| r[j].host_ns).collect();
                row.host_ns = median(&samples);
            }
            report.rows.append(&mut rows);
            println!(
                "# perf: {} [{}] done ({} phases x {} repeats)",
                target.name,
                domain_label(domain),
                runs[0].len(),
                repeats
            );
        }
    }
    Ok(report)
}

/// The short revision baked into the report filename and header.
/// Precedence: `SPASH_PERF_REV` env, `GITHUB_SHA`, `git rev-parse`,
/// `"local"`.
pub fn short_rev() -> String {
    let clean = |s: &str| {
        let t: String = s
            .chars()
            .filter(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '.')
            .take(16)
            .collect();
        (!t.is_empty()).then_some(t)
    };
    if let Some(r) = std::env::var("SPASH_PERF_REV").ok().as_deref().and_then(clean) {
        return r;
    }
    if let Some(r) = std::env::var("GITHUB_SHA")
        .ok()
        .as_deref()
        .map(|s| &s[..s.len().min(8)])
        .and_then(clean)
    {
        return r;
    }
    if let Ok(out) = std::process::Command::new("git")
        .args(["rev-parse", "--short=8", "HEAD"])
        .output()
    {
        if out.status.success() {
            if let Some(r) = clean(String::from_utf8_lossy(&out.stdout).trim()) {
                return r;
            }
        }
    }
    "local".into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{compare_reports, CompareOpts};

    #[test]
    fn suite_covers_every_index_domain_and_phase() {
        let cfg = PerfConfig {
            repeats: 1,
            ..PerfConfig::test_small()
        };
        let rep = run_suite(&cfg).unwrap();
        assert_eq!(rep.rows.len(), 7 * 2 * 8);
        for phase in [
            "load",
            "search",
            "search_probe_reads",
            "mixed",
            "mixed_probe_reads",
            "zipf",
            "zipf_probe_reads",
            "recover",
        ] {
            for point in ["eadr", "adr"] {
                let n = rep
                    .rows
                    .iter()
                    .filter(|r| r.phase == phase && r.point == point)
                    .count();
                assert_eq!(n, 7, "{phase}/{point}");
            }
        }
        // The probe rows carry real data: every index actually entered
        // the probe span during its read phases, and per-probe cost is a
        // small positive number of PM lines.
        for r in rep.rows.iter().filter(|r| r.phase.ends_with("_probe_reads")) {
            assert_eq!(r.unit, "cl/probe", "{}", r.key());
            assert!(r.ops > 0, "{}: no probe-span entries", r.key());
            assert!(
                r.value > 0.0 && r.value < 64.0,
                "{}: implausible cl/probe {}",
                r.key(),
                r.value
            );
        }
        // Attribution reached the report: some write phase recorded split
        // work, and every recover phase recorded log replay.
        assert!(rep
            .rows
            .iter()
            .any(|r| r.spans.iter().any(|s| s.name == "split")));
        assert!(rep
            .rows
            .iter()
            .filter(|r| r.phase == "recover")
            .all(|r| r.spans.iter().any(|s| s.name == "log_replay")));
    }

    #[test]
    fn two_runs_compare_clean_both_ways() {
        let cfg = PerfConfig {
            repeats: 1,
            ..PerfConfig::test_small()
        };
        let a = run_suite(&cfg).unwrap();
        let b = run_suite(&cfg).unwrap();
        let virtual_only = CompareOpts {
            wall_tol: None,
            ..CompareOpts::default()
        };
        let ab = compare_reports(&a, &b, &virtual_only);
        assert!(ab.ok(), "a->b: {:?}", ab.regressions);
        let ba = compare_reports(&b, &a, &virtual_only);
        assert!(ba.ok(), "b->a: {:?}", ba.regressions);
        assert_eq!(ab.rows_compared, a.rows.len());
    }
}

