//! Machine-readable benchmark reports (`BENCH_<rev>.json`).
//!
//! Every experiment emits [`ExperimentRow`]s into a process-global sink as
//! it prints its human tables; the CLI drains the sink into a
//! [`BenchReport`] and writes it when `SPASH_BENCH_REPORT=<path>` (or
//! `--report <path>`) is set. The `spash-bench perf` suite builds a report
//! directly. Schema and comparison rules are documented in DESIGN.md
//! ("Perf reports and the regression gate").
//!
//! Rows carry three kinds of measurement, with different comparison
//! disciplines in `spash-bench compare`:
//!
//! * virtual-clock metrics (`ops`, `elapsed_ns`, every [`StatsSnapshot`]
//!   counter, the per-span breakdowns) — bit-deterministic for
//!   single-threaded fixed-seed runs, compared with **exact equality**;
//! * derived values (`value`, e.g. Mops/s) — quotients of the above,
//!   compared with a tiny relative epsilon to absorb float formatting;
//! * `host_ns` — real wall time, noisy by nature, compared with a
//!   median-of-N tolerance band (or not at all across machines).

use spash_pmem::{SpanSnapshot, StatsSnapshot};

use crate::json::Json;

/// Bump when the report layout changes incompatibly; `compare` refuses to
/// diff reports with different schema versions.
pub const SCHEMA_VERSION: u64 = 1;

/// One attribution span's share of a row ([`spash_pmem::span`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanRow {
    pub name: String,
    pub entries: u64,
    pub vtime_ns: u64,
    pub counters: StatsSnapshot,
}

impl SpanRow {
    pub fn from_snapshot(name: &str, s: &SpanSnapshot) -> Self {
        Self {
            name: name.to_string(),
            entries: s.entries,
            vtime_ns: s.vtime_ns,
            counters: s.stats,
        }
    }
}

/// One measured point: an experiment × series × point × phase cell,
/// with its headline value, virtual-clock totals, counter delta, and
/// per-span attribution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExperimentRow {
    /// Experiment id (`fig7`, `perf`, ...).
    pub experiment: String,
    /// Series within the experiment (index label, ablation variant, ...).
    pub series: String,
    /// Point on the x-axis (thread count, value size, domain, ...).
    pub point: String,
    /// Phase within the point (insert/search/update/delete/...).
    pub phase: String,
    /// Unit of `value` (`mops`, `GBps`, `p99_us`, ...).
    pub unit: String,
    /// Headline derived value (throughput, latency, load factor, ...).
    pub value: f64,
    /// Simulated threads that executed the phase.
    pub threads: u64,
    /// Operations completed.
    pub ops: u64,
    /// Virtual-clock elapsed time (max thread clock vs. bandwidth floor).
    pub elapsed_ns: u64,
    /// Host wall time of the phase (noisy; tolerance-banded only).
    pub host_ns: u64,
    /// PM counter delta for the phase.
    pub counters: StatsSnapshot,
    /// Per-span attribution deltas, in canonical span order. Spans the
    /// phase never touched are omitted.
    pub spans: Vec<SpanRow>,
}

impl ExperimentRow {
    /// The identity `compare` matches rows by.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.experiment, self.series, self.point, self.phase
        )
    }

    /// Build a row from a measured [`crate::PhaseResult`].
    pub fn from_phase(
        experiment: &str,
        series: &str,
        point: &str,
        phase: &str,
        unit: &str,
        value: f64,
        threads: usize,
        r: &crate::PhaseResult,
    ) -> Self {
        Self {
            experiment: experiment.to_string(),
            series: series.to_string(),
            point: point.to_string(),
            phase: phase.to_string(),
            unit: unit.to_string(),
            value,
            threads: threads as u64,
            ops: r.ops,
            elapsed_ns: r.elapsed_ns,
            host_ns: r.host_ns,
            counters: r.delta,
            spans: r
                .spans
                .iter()
                .filter(|(_, s)| !s.is_zero())
                .map(|(n, s)| SpanRow::from_snapshot(n, s))
                .collect(),
        }
    }
}

/// A full report: header + rows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchReport {
    pub schema: u64,
    /// Source revision the binary was built from (short git rev).
    pub rev: String,
    /// Report creation time (unix seconds; informational only).
    pub created_unix: u64,
    /// Suite configuration echo (seed, scale, ...), sorted by key.
    /// `compare` requires old and new to agree on every key.
    pub config: Vec<(String, String)>,
    /// First-class derived claims (crossover points, peak-threads, ...),
    /// sorted by key. Compared key-for-key like `config`: a shifted
    /// crossover is a regression even if no single row changed enough to
    /// say why. Serialized only when non-empty, so reports from suites
    /// that assert nothing (and their committed baselines) are unchanged
    /// byte-for-byte — still schema 1.
    pub assertions: Vec<(String, String)>,
    pub rows: Vec<ExperimentRow>,
}

impl BenchReport {
    pub fn new(rev: &str) -> Self {
        Self {
            schema: SCHEMA_VERSION,
            rev: rev.to_string(),
            created_unix: unix_now(),
            config: Vec::new(),
            assertions: Vec::new(),
            rows: Vec::new(),
        }
    }

    pub fn set_config(&mut self, key: &str, value: impl ToString) {
        self.config.retain(|(k, _)| k != key);
        self.config.push((key.to_string(), value.to_string()));
        self.config.sort();
    }

    pub fn set_assertion(&mut self, key: &str, value: impl ToString) {
        self.assertions.retain(|(k, _)| k != key);
        self.assertions.push((key.to_string(), value.to_string()));
        self.assertions.sort();
    }

    pub fn assertion_value(&self, key: &str) -> Option<&str> {
        self.assertions
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub fn config_value(&self, key: &str) -> Option<&str> {
        self.config
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("schema".into(), Json::Int(self.schema)),
            ("rev".into(), Json::Str(self.rev.clone())),
            ("created_unix".into(), Json::Int(self.created_unix)),
            (
                "config".into(),
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
        ];
        if !self.assertions.is_empty() {
            fields.push((
                "assertions".into(),
                Json::Obj(
                    self.assertions
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ));
        }
        fields.push((
            "rows".into(),
            Json::Arr(self.rows.iter().map(row_to_json).collect()),
        ));
        Json::Obj(fields).render()
    }

    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let schema = field_u64(&doc, "schema")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "report schema {schema} != supported {SCHEMA_VERSION}"
            ));
        }
        let mut config: Vec<(String, String)> = match doc.get("config") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    Ok((
                        k.clone(),
                        v.as_str()
                            .ok_or_else(|| format!("config.{k}: not a string"))?
                            .to_string(),
                    ))
                })
                .collect::<Result<_, String>>()?,
            _ => return Err("missing config object".into()),
        };
        config.sort();
        // Optional: absent (older reports, assertion-free suites) = empty.
        let mut assertions: Vec<(String, String)> = match doc.get("assertions") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    Ok((
                        k.clone(),
                        v.as_str()
                            .ok_or_else(|| format!("assertions.{k}: not a string"))?
                            .to_string(),
                    ))
                })
                .collect::<Result<_, String>>()?,
            Some(_) => return Err("assertions: not an object".into()),
            None => Vec::new(),
        };
        assertions.sort();
        let rows = doc
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("missing rows array")?
            .iter()
            .enumerate()
            .map(|(i, r)| row_from_json(r).map_err(|e| format!("rows[{i}]: {e}")))
            .collect::<Result<_, String>>()?;
        Ok(Self {
            schema,
            rev: field_str(&doc, "rev")?,
            created_unix: field_u64(&doc, "created_unix")?,
            config,
            assertions,
            rows,
        })
    }
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing u64 field {key:?}"))
}

fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field {key:?}"))
}

fn field_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

/// The one place that knows the counter field list. Serializer and parser
/// both go through it, so they cannot drift apart (and the golden-file
/// test pins the result).
const COUNTER_FIELDS: [(&str, fn(&StatsSnapshot) -> u64, fn(&mut StatsSnapshot, u64)); 14] = [
    ("cl_reads", |s| s.cl_reads, |s, v| s.cl_reads = v),
    ("cl_writes", |s| s.cl_writes, |s, v| s.cl_writes = v),
    ("xp_reads", |s| s.xp_reads, |s, v| s.xp_reads = v),
    ("xp_writes", |s| s.xp_writes, |s, v| s.xp_writes = v),
    ("read_hits", |s| s.read_hits, |s, v| s.read_hits = v),
    ("write_hits", |s| s.write_hits, |s, v| s.write_hits = v),
    (
        "dirty_evictions",
        |s| s.dirty_evictions,
        |s, v| s.dirty_evictions = v,
    ),
    ("flushes", |s| s.flushes, |s, v| s.flushes = v),
    ("ntstores", |s| s.ntstores, |s, v| s.ntstores = v),
    (
        "dram_accesses",
        |s| s.dram_accesses,
        |s, v| s.dram_accesses = v,
    ),
    (
        "media_read_bytes",
        |s| s.media_read_bytes,
        |s, v| s.media_read_bytes = v,
    ),
    (
        "media_write_bytes",
        |s| s.media_write_bytes,
        |s, v| s.media_write_bytes = v,
    ),
    (
        "san_redundant_flushes",
        |s| s.san_redundant_flushes,
        |s, v| s.san_redundant_flushes = v,
    ),
    (
        "san_noop_fences",
        |s| s.san_noop_fences,
        |s, v| s.san_noop_fences = v,
    ),
];

fn counters_to_json(s: &StatsSnapshot) -> Json {
    Json::Obj(
        COUNTER_FIELDS
            .iter()
            .map(|(name, get, _)| (name.to_string(), Json::Int(get(s))))
            .collect(),
    )
}

fn counters_from_json(v: &Json) -> Result<StatsSnapshot, String> {
    let mut s = StatsSnapshot::default();
    for (name, _, set) in COUNTER_FIELDS.iter() {
        set(&mut s, field_u64(v, name)?);
    }
    Ok(s)
}

fn row_to_json(r: &ExperimentRow) -> Json {
    Json::Obj(vec![
        ("experiment".into(), Json::Str(r.experiment.clone())),
        ("series".into(), Json::Str(r.series.clone())),
        ("point".into(), Json::Str(r.point.clone())),
        ("phase".into(), Json::Str(r.phase.clone())),
        ("unit".into(), Json::Str(r.unit.clone())),
        ("value".into(), Json::Num(r.value)),
        ("threads".into(), Json::Int(r.threads)),
        ("ops".into(), Json::Int(r.ops)),
        ("elapsed_ns".into(), Json::Int(r.elapsed_ns)),
        ("host_ns".into(), Json::Int(r.host_ns)),
        ("counters".into(), counters_to_json(&r.counters)),
        (
            "spans".into(),
            Json::Arr(
                r.spans
                    .iter()
                    .map(|sp| {
                        Json::Obj(vec![
                            ("name".into(), Json::Str(sp.name.clone())),
                            ("entries".into(), Json::Int(sp.entries)),
                            ("vtime_ns".into(), Json::Int(sp.vtime_ns)),
                            ("counters".into(), counters_to_json(&sp.counters)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn row_from_json(v: &Json) -> Result<ExperimentRow, String> {
    let spans = v
        .get("spans")
        .and_then(Json::as_arr)
        .ok_or("missing spans array")?
        .iter()
        .map(|sp| {
            Ok(SpanRow {
                name: field_str(sp, "name")?,
                entries: field_u64(sp, "entries")?,
                vtime_ns: field_u64(sp, "vtime_ns")?,
                counters: counters_from_json(
                    sp.get("counters").ok_or("span missing counters")?,
                )?,
            })
        })
        .collect::<Result<_, String>>()?;
    Ok(ExperimentRow {
        experiment: field_str(v, "experiment")?,
        series: field_str(v, "series")?,
        point: field_str(v, "point")?,
        phase: field_str(v, "phase")?,
        unit: field_str(v, "unit")?,
        value: field_f64(v, "value")?,
        threads: field_u64(v, "threads")?,
        ops: field_u64(v, "ops")?,
        elapsed_ns: field_u64(v, "elapsed_ns")?,
        host_ns: field_u64(v, "host_ns")?,
        counters: counters_from_json(v.get("counters").ok_or("row missing counters")?)?,
        spans,
    })
}

// --- the compare gate ---------------------------------------------------

/// Comparison policy for `spash-bench compare`.
#[derive(Clone, Debug)]
pub struct CompareOpts {
    /// Relative tolerance band for `host_ns` (e.g. `0.75` = new may be up
    /// to 75% slower than old before it regresses). `None` disables wall
    /// comparison entirely — the right setting when old and new come from
    /// different machines.
    pub wall_tol: Option<f64>,
    /// Phases whose old `host_ns` is below this are never wall-gated:
    /// sub-millisecond phases are all scheduler noise.
    pub min_wall_ns: u64,
}

impl Default for CompareOpts {
    fn default() -> Self {
        Self {
            wall_tol: Some(0.75),
            min_wall_ns: 20_000_000,
        }
    }
}

/// The verdict of one report-vs-report comparison.
#[derive(Clone, Debug, Default)]
pub struct CompareOutcome {
    /// Hard failures: any entry here means the gate fails (exit non-zero).
    pub regressions: Vec<String>,
    /// Informational notes (new coverage, wall-time improvements).
    pub notes: Vec<String>,
    pub rows_compared: usize,
}

impl CompareOutcome {
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-300)
}

fn diff_counters(key: &str, what: &str, old: &StatsSnapshot, new: &StatsSnapshot, out: &mut Vec<String>) {
    for (name, get, _) in COUNTER_FIELDS.iter() {
        let (o, n) = (get(old), get(new));
        if o != n {
            out.push(format!("{key}: {what}{name} {o} -> {n}"));
        }
    }
}

/// Diff two reports under the exact/epsilon/banded discipline documented
/// in DESIGN.md. Virtual-clock metrics (`ops`, `elapsed_ns`, counters,
/// spans) must match **exactly**; derived `value`s get a tiny relative
/// epsilon; `host_ns` is tolerance-banded (or skipped). Config echoes must
/// agree key-for-key — comparing runs of different scale or seed is a
/// category error, not a perf delta.
pub fn compare_reports(old: &BenchReport, new: &BenchReport, opts: &CompareOpts) -> CompareOutcome {
    let mut out = CompareOutcome::default();
    let bad = &mut out.regressions;

    let keys: Vec<&String> = {
        let mut k: Vec<&String> = old
            .config
            .iter()
            .chain(new.config.iter())
            .map(|(k, _)| k)
            .collect();
        k.sort();
        k.dedup();
        k
    };
    for k in keys {
        match (old.config_value(k), new.config_value(k)) {
            (Some(a), Some(b)) if a == b => {}
            (a, b) => bad.push(format!("config {k:?} differs: {a:?} vs {b:?}")),
        }
    }

    // Derived claims are gated exactly, like the counters they summarize:
    // a crossover that moved (or vanished) is a regression in its own
    // right, with a first-class message naming the claim.
    let akeys: Vec<&String> = {
        let mut k: Vec<&String> = old
            .assertions
            .iter()
            .chain(new.assertions.iter())
            .map(|(k, _)| k)
            .collect();
        k.sort();
        k.dedup();
        k
    };
    for k in akeys {
        match (old.assertion_value(k), new.assertion_value(k)) {
            (Some(a), Some(b)) if a == b => {}
            (a, b) => bad.push(format!("assertion {k:?} changed: {a:?} -> {b:?}")),
        }
    }

    let mut new_rows: Vec<(String, &ExperimentRow)> =
        new.rows.iter().map(|r| (r.key(), r)).collect();
    for w in [&old.rows, &new.rows] {
        let mut seen: Vec<String> = w.iter().map(ExperimentRow::key).collect();
        seen.sort();
        for d in seen.windows(2).filter(|d| d[0] == d[1]) {
            bad.push(format!("duplicate row key {:?}", d[0]));
        }
    }

    for o in &old.rows {
        let key = o.key();
        let Some(pos) = new_rows.iter().position(|(k, _)| *k == key) else {
            bad.push(format!("{key}: present in old report, missing in new"));
            continue;
        };
        let (_, n) = new_rows.remove(pos);
        out.rows_compared += 1;

        if o.unit != n.unit {
            bad.push(format!("{key}: unit {:?} -> {:?}", o.unit, n.unit));
        }
        if o.threads != n.threads {
            bad.push(format!("{key}: threads {} -> {}", o.threads, n.threads));
        }
        if o.ops != n.ops {
            bad.push(format!("{key}: ops {} -> {}", o.ops, n.ops));
        }
        if o.elapsed_ns != n.elapsed_ns {
            bad.push(format!("{key}: elapsed_ns {} -> {}", o.elapsed_ns, n.elapsed_ns));
        }
        diff_counters(&key, "", &o.counters, &n.counters, bad);
        if !rel_close(o.value, n.value) {
            bad.push(format!(
                "{key}: derived value drifted {} -> {} {}",
                o.value, n.value, o.unit
            ));
        }

        for osp in &o.spans {
            let Some(nsp) = n.spans.iter().find(|s| s.name == osp.name) else {
                bad.push(format!("{key}: span {:?} disappeared", osp.name));
                continue;
            };
            if osp.entries != nsp.entries {
                bad.push(format!(
                    "{key}: span {:?} entries {} -> {}",
                    osp.name, osp.entries, nsp.entries
                ));
            }
            if osp.vtime_ns != nsp.vtime_ns {
                bad.push(format!(
                    "{key}: span {:?} vtime_ns {} -> {}",
                    osp.name, osp.vtime_ns, nsp.vtime_ns
                ));
            }
            diff_counters(
                &key,
                &format!("span {:?} ", osp.name),
                &osp.counters,
                &nsp.counters,
                bad,
            );
        }
        for nsp in &n.spans {
            if !o.spans.iter().any(|s| s.name == nsp.name) {
                bad.push(format!("{key}: span {:?} appeared", nsp.name));
            }
        }

        if let Some(tol) = opts.wall_tol {
            if o.host_ns >= opts.min_wall_ns {
                let limit = o.host_ns as f64 * (1.0 + tol);
                if n.host_ns as f64 > limit {
                    bad.push(format!(
                        "{key}: host wall time {:.1}ms -> {:.1}ms (> +{:.0}% band)",
                        o.host_ns as f64 / 1e6,
                        n.host_ns as f64 / 1e6,
                        tol * 100.0
                    ));
                } else if (n.host_ns as f64) * (1.0 + tol) < o.host_ns as f64 {
                    out.notes.push(format!(
                        "{key}: host wall time improved {:.1}ms -> {:.1}ms",
                        o.host_ns as f64 / 1e6,
                        n.host_ns as f64 / 1e6
                    ));
                }
            }
        }
    }
    for (key, _) in new_rows {
        out.notes.push(format!("{key}: new coverage (absent in old report)"));
    }
    out
}

// --- process-global row sink -------------------------------------------
//
// Experiments keep their existing `run(&Scale)` signatures (the
// `[[bench]]` targets call them directly); they publish rows here and the
// CLI drains the sink after the run.

// lint:allow(std-sync): harness-side collection, written between measured
// phases by the driving thread; never locked inside a simulated region.
static SINK: std::sync::Mutex<Vec<ExperimentRow>> = std::sync::Mutex::new(Vec::new());

/// Publish a row to the process-global report sink.
pub fn emit(row: ExperimentRow) {
    SINK.lock().unwrap().push(row);
}

/// Convenience: build a row from a [`crate::PhaseResult`] and emit it.
#[allow(clippy::too_many_arguments)]
pub fn emit_phase(
    experiment: &str,
    series: &str,
    point: &str,
    phase: &str,
    unit: &str,
    value: f64,
    threads: usize,
    r: &crate::PhaseResult,
) {
    emit(ExperimentRow::from_phase(
        experiment, series, point, phase, unit, value, threads, r,
    ));
}

/// Emit a row that has no backing [`crate::PhaseResult`] (load-factor
/// samples, latency percentiles).
pub fn emit_value(experiment: &str, series: &str, point: &str, phase: &str, unit: &str, value: f64) {
    emit(ExperimentRow {
        experiment: experiment.to_string(),
        series: series.to_string(),
        point: point.to_string(),
        phase: phase.to_string(),
        unit: unit.to_string(),
        value,
        ..Default::default()
    });
}

/// Drain every row emitted so far (in emission order).
pub fn drain_rows() -> Vec<ExperimentRow> {
    std::mem::take(&mut *SINK.lock().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let mut rep = BenchReport {
            schema: SCHEMA_VERSION,
            rev: "deadbeef".into(),
            created_unix: 1_700_000_000,
            config: Vec::new(),
            assertions: Vec::new(),
            rows: Vec::new(),
        };
        rep.set_config("seed", "0x5eed");
        rep.set_config("keys", 1000u64);
        rep.rows.push(ExperimentRow {
            experiment: "perf".into(),
            series: "Spash".into(),
            point: "eadr".into(),
            phase: "load".into(),
            unit: "mops".into(),
            value: 1.25,
            threads: 1,
            ops: 1000,
            elapsed_ns: 800_000,
            host_ns: 1_234_567,
            counters: StatsSnapshot {
                cl_reads: 5000,
                media_write_bytes: 1 << 54, // above f64 precision on purpose
                ..Default::default()
            },
            spans: vec![SpanRow {
                name: "split".into(),
                entries: 3,
                vtime_ns: 90_000,
                counters: StatsSnapshot {
                    xp_writes: 77,
                    ..Default::default()
                },
            }],
        });
        rep
    }

    #[test]
    fn report_round_trips() {
        let rep = sample_report();
        let text = rep.to_json();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back, rep);
        assert_eq!(back.rows[0].counters.media_write_bytes, 1 << 54);
        assert_eq!(back.config_value("seed"), Some("0x5eed"));
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut rep = sample_report();
        rep.schema = SCHEMA_VERSION + 1;
        let text = rep.to_json();
        assert!(BenchReport::from_json(&text).is_err());
    }

    #[test]
    fn missing_counter_field_is_rejected() {
        let text = sample_report().to_json().replace("\"flushes\"", "\"flushez\"");
        assert!(BenchReport::from_json(&text).is_err());
    }

    #[test]
    fn row_key_identity() {
        let r = &sample_report().rows[0];
        assert_eq!(r.key(), "perf/Spash/eadr/load");
    }

    #[test]
    fn compare_accepts_identical_reports() {
        let rep = sample_report();
        let out = compare_reports(&rep, &rep, &CompareOpts::default());
        assert!(out.ok(), "{:?}", out.regressions);
        assert_eq!(out.rows_compared, 1);
    }

    #[test]
    fn compare_catches_inflated_media_writes() {
        let old = sample_report();
        let mut new = old.clone();
        new.rows[0].counters.media_write_bytes += 256;
        let out = compare_reports(&old, &new, &CompareOpts::default());
        assert!(!out.ok());
        assert!(out.regressions[0].contains("media_write_bytes"));
    }

    #[test]
    fn compare_catches_span_and_coverage_changes() {
        let old = sample_report();

        let mut new = old.clone();
        new.rows[0].spans[0].counters.xp_writes += 1;
        let out = compare_reports(&old, &new, &CompareOpts::default());
        assert!(out.regressions.iter().any(|r| r.contains("span \"split\"")));

        let mut new = old.clone();
        new.rows.clear();
        let out = compare_reports(&old, &new, &CompareOpts::default());
        assert!(out.regressions.iter().any(|r| r.contains("missing in new")));
    }

    #[test]
    fn assertions_round_trip_and_stay_optional() {
        // Absent field: older reports parse to empty assertions, and an
        // assertion-free report serializes without the key at all (byte
        // compatibility with committed schema-1 baselines).
        let plain = sample_report();
        assert!(!plain.to_json().contains("assertions"));
        let back = BenchReport::from_json(&plain.to_json()).unwrap();
        assert!(back.assertions.is_empty());

        let mut rep = sample_report();
        rep.set_assertion("crossover/eadr/uniform/CCEH", "2");
        rep.set_assertion("peak/eadr/zipf/Level", "4");
        let back = BenchReport::from_json(&rep.to_json()).unwrap();
        assert_eq!(back, rep);
        assert_eq!(back.assertion_value("peak/eadr/zipf/Level"), Some("4"));
    }

    #[test]
    fn compare_gates_assertion_drift() {
        let mut old = sample_report();
        old.set_assertion("crossover/eadr/uniform/CCEH", "2");
        let mut new = old.clone();
        new.set_assertion("crossover/eadr/uniform/CCEH", "8");
        let out = compare_reports(&old, &new, &CompareOpts::default());
        assert!(!out.ok());
        assert!(out.regressions[0].contains("crossover/eadr/uniform/CCEH"));

        // Vanishing and appearing assertions both gate.
        let none = sample_report();
        assert!(!compare_reports(&old, &none, &CompareOpts::default()).ok());
        assert!(!compare_reports(&none, &old, &CompareOpts::default()).ok());
        assert!(compare_reports(&old, &old, &CompareOpts::default()).ok());
    }

    #[test]
    fn compare_requires_matching_config() {
        let old = sample_report();
        let mut new = old.clone();
        new.set_config("seed", "0xbad");
        let out = compare_reports(&old, &new, &CompareOpts::default());
        assert!(out.regressions.iter().any(|r| r.contains("config")));
    }

    #[test]
    fn wall_band_gates_only_when_enabled_and_large() {
        let old = sample_report(); // host_ns ≈ 1.2ms < min_wall_ns: ignored
        let mut new = old.clone();
        new.rows[0].host_ns *= 100;
        assert!(compare_reports(&old, &new, &CompareOpts::default()).ok());

        // Scale both above the noise floor: now the band bites.
        let mut old2 = old.clone();
        old2.rows[0].host_ns = 50_000_000;
        let mut new2 = old2.clone();
        new2.rows[0].host_ns = 100_000_000;
        let out = compare_reports(&old2, &new2, &CompareOpts::default());
        assert!(out.regressions.iter().any(|r| r.contains("wall time")));
        // ...unless wall comparison is off (cross-machine mode).
        let virtual_only = CompareOpts {
            wall_tol: None,
            ..CompareOpts::default()
        };
        assert!(compare_reports(&old2, &new2, &virtual_only).ok());
    }
}
