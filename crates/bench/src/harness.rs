//! Shared benchmark machinery: parallel execution over simulated threads,
//! virtual-time throughput computation, and table printing.
//!
//! **How throughput is computed** (DESIGN.md §4): every simulated thread
//! accumulates virtual time; media byte counters impose the PM bandwidth
//! ceiling. For a phase that executed `ops` operations,
//!
//! ```text
//! elapsed = max(max per-thread virtual time, bandwidth floor)
//! Mops/s  = ops / elapsed
//! ```
//!
//! Absolute numbers are model outputs calibrated to the paper's testbed
//! constants; the reproduced claims are ratios and shapes.

use std::sync::Arc;
use std::time::Instant;

use spash_pmem::{MemCtx, PmDevice, SpanSnapshot, StatsDelta};

/// Scale knobs, overridable from the environment so `cargo bench` stays
/// fast by default:
/// * `SPASH_BENCH_KEYS` — load-phase keys (default 400k, paper 20M/100M);
/// * `SPASH_BENCH_OPS` — run-phase ops (default 200k, paper 8G/100M);
/// * `SPASH_BENCH_THREADS` — simulated thread counts, comma-separated
///   (default `1,8,56`, matching the paper's 56-thread tables).
#[derive(Clone, Debug)]
pub struct Scale {
    pub keys: u64,
    pub ops: u64,
    pub threads: Vec<usize>,
}

impl Scale {
    pub fn from_env() -> Self {
        let env_u64 = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        let threads = std::env::var("SPASH_BENCH_THREADS")
            .ok()
            .map(|v| {
                v.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .collect::<Vec<usize>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| vec![1, 8, 56]);
        Self {
            keys: env_u64("SPASH_BENCH_KEYS", 400_000),
            ops: env_u64("SPASH_BENCH_OPS", 200_000),
            threads,
        }
    }

    /// The largest thread count in the sweep (used for single-point
    /// experiments like the paper's 56-thread YCSB tables).
    pub fn max_threads(&self) -> usize {
        self.threads.iter().copied().max().unwrap_or(1)
    }
}

/// The outcome of one measured phase.
#[derive(Clone, Debug)]
pub struct PhaseResult {
    pub ops: u64,
    pub elapsed_ns: u64,
    pub delta: StatsDelta,
    /// Host wall time of the phase. Real time, so noisy — report-only,
    /// never part of the deterministic compare (DESIGN.md).
    pub host_ns: u64,
    /// Per-span attribution deltas, in canonical span order
    /// ([`spash_pmem::span::SPAN_NAMES`]).
    pub spans: Vec<(&'static str, SpanSnapshot)>,
}

impl PhaseResult {
    /// Million operations per second of virtual time.
    pub fn mops(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.ops as f64 * 1e3 / self.elapsed_ns as f64
    }

    /// GB/s of payload bytes (Fig 1).
    pub fn gbps(&self, payload_bytes: u64) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        payload_bytes as f64 / self.elapsed_ns as f64
    }

    pub fn per_op(&self, counter: u64) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            counter as f64 / self.ops as f64
        }
    }
}

/// Run `body` on `threads` simulated threads, measuring virtual time and
/// media-counter deltas. `body(tid, ctx)` returns the number of operations
/// it performed. The XPBuffer is drained before and after so the delta is
/// self-contained.
pub fn run_phase<F>(dev: &Arc<PmDevice>, threads: usize, body: F) -> PhaseResult
where
    F: Fn(usize, &mut MemCtx) -> u64 + Sync,
{
    dev.quiesce();
    let before = dev.snapshot();
    let spans_before = dev.span_totals();
    let host_start = Instant::now();
    let cost = dev.config().cost.clone();
    // All phase threads start at the device's virtual-time floor; the
    // floor advances to the phase's end so virtual timestamps persisted in
    // lock/HTM metadata by this phase can never stall the next one.
    let phase_start = dev.vtime_floor();
    let results: Vec<(u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let dev = Arc::clone(dev);
                let body = &body;
                s.spawn(move || {
                    let mut ctx = dev.ctx();
                    ctx.reset_clock();
                    let ops = body(tid, &mut ctx);
                    (ops, ctx.now())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    dev.quiesce();
    let host_ns = host_start.elapsed().as_nanos() as u64;
    let delta = dev.snapshot().since(&before);
    let spans = dev
        .span_totals()
        .iter()
        .zip(spans_before.iter())
        .map(|((name, after), (_, before))| (*name, after.since(before)))
        .collect();
    if delta.san_redundant_flushes + delta.san_noop_fences > 0 {
        println!(
            "# san: {} redundant flushes, {} no-op fences this phase",
            delta.san_redundant_flushes, delta.san_noop_fences
        );
    }
    let ops: u64 = results.iter().map(|r| r.0).sum();
    let max_clock = results
        .iter()
        .map(|r| r.1)
        .max()
        .unwrap_or(phase_start)
        .max(dev.sim_horizon());
    dev.raise_vtime_floor(max_clock);
    let span = max_clock.saturating_sub(phase_start);
    let elapsed_ns = span.max(delta.bandwidth_floor_ns(&cost));
    PhaseResult {
        ops,
        elapsed_ns,
        delta,
        host_ns,
        spans,
    }
}

/// Print a table: first column = row label, then one column per series.
pub fn print_table(title: &str, columns: &[String], rows: &[(String, Vec<f64>)], unit: &str) {
    println!();
    println!("== {title} ({unit}) ==");
    print!("{:<22}", "");
    for c in columns {
        print!("{c:>14}");
    }
    println!();
    for (label, vals) in rows {
        print!("{label:<22}");
        for v in vals {
            if *v >= 100.0 {
                print!("{v:>14.1}");
            } else {
                print!("{v:>14.3}");
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spash_pmem::{PmAddr, PmConfig};

    #[test]
    fn run_phase_aggregates_ops_and_time() {
        let dev = PmDevice::new(PmConfig::small_test());
        let r = run_phase(&dev, 4, |tid, ctx| {
            for i in 0..100u64 {
                ctx.write_u64(PmAddr(4096 + (tid as u64 * 100 + i) * 64), i);
            }
            100
        });
        assert_eq!(r.ops, 400);
        assert!(r.elapsed_ns > 0);
        assert!(r.mops() > 0.0);
        assert!(r.host_ns > 0);
        // Every canonical span is reported (all zero: nothing probed).
        assert_eq!(r.spans.len(), spash_pmem::SPAN_NAMES.len());
        assert!(r.spans.iter().all(|(_, s)| s.is_zero()));
    }

    #[test]
    fn bandwidth_floor_dominates_for_write_floods() {
        let dev = PmDevice::new(PmConfig {
            arena_size: 64 << 20,
            cache_capacity: 1 << 20,
            ..PmConfig::small_test()
        });
        // A single thread ntstores 16 MiB: the floor must be at least
        // bytes / write-bw.
        let r = run_phase(&dev, 1, |_, ctx| {
            let buf = [7u8; 256];
            for i in 0..65536u64 {
                ctx.ntstore_bytes(PmAddr(i * 256), &buf);
            }
            65536
        });
        let cost = dev.config().cost.clone();
        let floor = r.delta.bandwidth_floor_ns(&cost);
        assert!(r.elapsed_ns >= floor);
        assert!(floor > 0);
    }

    #[test]
    fn scale_defaults_sane() {
        let s = Scale::from_env();
        assert!(s.keys > 0 && s.ops > 0 && !s.threads.is_empty());
    }
}
