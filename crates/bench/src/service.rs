//! `spash-bench service`: the sharded-batched-service suite (DESIGN.md
//! §11, EXPERIMENTS.md "Service tail latency").
//!
//! Each cell runs one index behind the `spash-service` front-end at one
//! persistence domain and shard count, entirely in virtual time under
//! the cooperative scheduler:
//!
//! * **load** — every key arrives at t=0 as an insert request; shard
//!   executors drain their queues at full tilt (batch formation pressure
//!   is maximal).
//! * **open** — an open-loop run: a zipfian balanced mix whose requests
//!   carry arrival times from `spash_workloads::openloop` (a 2²⁰-session
//!   population at the configured mean gap). Executors idle until the
//!   next arrival is due, so queueing delay is real and the p50/p99/p999
//!   rows are true open-loop tail latency, bit-deterministic per seed.
//! * **saturate** — the same mix with every arrival at t=0: the
//!   service's saturation throughput at this shard count.
//!
//! Two hard gates ride on every cell: the routing audit (any request
//! observed off its canonical shard is an error — the misroute canary
//! trips this, not the lin-check) and ack conservation (every enqueued
//! request is acked exactly once; `sum(per-shard acked) == enqueued`).
//! The report is byte-identical across same-seed runs and compared
//! exactly against `bench/baseline_service.json` in CI (`service-gate`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spash_index_api::crashpoint::{CrashTarget, SweepOp};
use spash_index_api::PersistentIndex;
use spash_pmem::{MemCtx, PersistenceDomain, PmDevice};
use spash_sched::SchedConfig;
use spash_service::lincheck::{self, ServiceLinConfig};
use spash_service::pool::BatchPool;
use spash_service::{BatchReplies, ClientReq, JournalSpec, Service, ServiceConfig};
use spash_workloads::openloop::{ArrivalGen, OpenLoopConfig};
use spash_workloads::{load_keys, Distribution, Mix, OpStream, ValueSize, WorkOp, WorkloadConfig};

use crate::indexes::crash_targets;
use crate::perf::{domain_label, short_rev, suite_pm};
use crate::report::{BenchReport, ExperimentRow};
use crate::scale::{measure_batch, phase_seed};
use crate::statskit::percentile;

/// Suite scale. Small for the same reason `scale` is: batching and
/// queueing shapes show at any scale, and the gate's job is pinning
/// them exactly.
#[derive(Clone, Debug)]
pub struct ServiceSuiteConfig {
    /// Keys loaded per cell (load phase inserts; key space `1..=keys`).
    pub keys: u64,
    /// Client requests in each of the open and saturate phases.
    pub ops: u64,
    /// Shard-count ladder (executor tasks per cell).
    pub shards: Vec<usize>,
    /// Max requests coalesced under one batch fence.
    pub batch_max: usize,
    pub seed: u64,
    pub value_bytes: usize,
    pub preemptions: u32,
    /// Open-loop client session population.
    pub sessions: u64,
    /// Mean virtual inter-arrival gap of the open phase, ns.
    pub mean_gap_ns: u64,
}

impl ServiceSuiteConfig {
    /// The pinned CI configuration. Changing any of these invalidates
    /// the committed `bench/baseline_service.json` (compare fails on the
    /// config echo).
    pub fn default_suite() -> Self {
        Self {
            keys: 1_500,
            ops: 1_500,
            shards: vec![2, 4],
            batch_max: 8,
            seed: 0x5e41ce,
            value_bytes: 16,
            preemptions: 32,
            sessions: 1 << 20,
            mean_gap_ns: 150,
        }
    }

    /// Tiny variant for tier-1 tests.
    pub fn test_small() -> Self {
        Self {
            keys: 300,
            ops: 240,
            shards: vec![2],
            batch_max: 4,
            ..Self::default_suite()
        }
    }

    pub fn from_env() -> Self {
        let d = Self::default_suite();
        let env_u64 = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| {
                    let v = v.trim().to_ascii_lowercase();
                    match v.strip_prefix("0x") {
                        Some(h) => u64::from_str_radix(h, 16).ok(),
                        None => v.parse().ok(),
                    }
                })
                .unwrap_or(d)
        };
        let shards = std::env::var("SPASH_SERVICE_SHARDS")
            .ok()
            .map(|v| {
                v.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .collect::<Vec<usize>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or(d.shards);
        Self {
            keys: env_u64("SPASH_SERVICE_KEYS", d.keys),
            ops: env_u64("SPASH_SERVICE_OPS", d.ops),
            shards,
            batch_max: env_u64("SPASH_SERVICE_BATCH", d.batch_max as u64) as usize,
            seed: env_u64("SPASH_SERVICE_SEED", d.seed),
            value_bytes: d.value_bytes,
            preemptions: env_u64("SPASH_SERVICE_PREEMPTIONS", d.preemptions as u64) as u32,
            sessions: d.sessions,
            mean_gap_ns: env_u64("SPASH_SERVICE_GAP", d.mean_gap_ns),
        }
    }
}

/// One cell's rows plus the conservation totals behind them.
pub struct ServiceCellResult {
    pub rows: Vec<ExperimentRow>,
    /// Requests enqueued across all phases.
    pub enqueued: u64,
    /// `sum(per-shard acked)` at the end of the cell.
    pub acked: u64,
}

/// The shard-executor task bodies for one phase: drain every queue,
/// optionally collecting per-response latency, and surface the routing
/// audit. `t0` inside each body is the executor's phase-start clock (all
/// tasks start at the same raised floor, so latencies are comparable).
#[allow(clippy::type_complexity)]
fn shard_bodies<'a>(
    svc: &'a Service,
    shards: usize,
    misroutes: &'a AtomicU64,
    // lint:allow(std-sync): host-side latency sink; locked only inside
    // `deliver`, never held across a sync point.
    latencies: Option<&'a std::sync::Mutex<Vec<u64>>>,
) -> Vec<Box<dyn FnOnce(&mut MemCtx) -> u64 + Send + 'a>> {
    (0..shards)
        .map(|shard| {
            let b: Box<dyn FnOnce(&mut MemCtx) -> u64 + Send + 'a> = Box::new(move |ctx| {
                let t0 = ctx.now();
                let mut on_invoke = |_: &mut [ClientReq]| {};
                let mut deliver = |_ctx: &mut MemCtx, pool: &BatchPool, replies: BatchReplies| {
                    if let Some(lat) = latencies {
                        let mut l = lat.lock().unwrap();
                        for r in &replies.responses {
                            // Client-observed latency: enqueue-to-ack in
                            // virtual time (ack is post-fence).
                            l.push(r.ack_ns - t0 - r.arrival_ns);
                        }
                    }
                    replies.retire(pool);
                };
                let stats = svc.run_shard(ctx, shard, &mut on_invoke, &mut deliver);
                misroutes.fetch_add(stats.misroutes, Ordering::SeqCst);
                stats.ops
            });
            b
        })
        .collect()
}

/// Run one index at one domain and shard count: load, open-loop run,
/// saturation run, all against the same device and service instance.
pub fn run_cell(
    target: &CrashTarget,
    target_idx: usize,
    domain: PersistenceDomain,
    shards: usize,
    cfg: &ServiceSuiteConfig,
) -> Result<ServiceCellResult, String> {
    assert!(shards >= 1);
    let pm = suite_pm(domain);
    let dev = PmDevice::new(pm.clone());
    let mut fmt_ctx = dev.ctx();
    let index: Arc<dyn PersistentIndex> = Arc::from((target.format)(&mut fmt_ctx));
    drop(fmt_ctx);
    let svc = Service::new(
        index,
        ServiceConfig {
            shards,
            batch_max: cfg.batch_max,
            journal: JournalSpec::at_top(pm.arena_size, shards, 1024),
            pool_slots: shards + 1,
            pool_participants: 0,
        },
    );

    let didx = usize::from(domain == PersistenceDomain::Adr);
    let sched_for = |phase: usize| SchedConfig {
        max_steps: 200_000_000,
        ..SchedConfig::random(
            phase_seed(cfg.seed, target_idx, didx, shards, phase),
            cfg.preemptions,
        )
    };
    let point = format!("{}/s{}", domain_label(domain), shards);
    let name = target.name.clone();
    let fail = |phase: &str, e: String| format!("{name}/{point}/{phase}: {e}");

    let mut rows = Vec::new();
    let mut enqueued = 0u64;
    let misroutes = AtomicU64::new(0);
    let total_acked = |svc: &Service| (0..shards).map(|s| svc.acked(s)).sum::<u64>();

    let run_phase = |phase: &'static str,
                     pi: usize,
                     // lint:allow(std-sync): host-side latency sample buffer;
                     // never held across a sync point (same discipline as the
                     // lin drivers' history buffers).
                     latencies: Option<&std::sync::Mutex<Vec<u64>>>,
                     enqueued: u64,
                     rows: &mut Vec<ExperimentRow>|
     -> Result<(), String> {
        let bodies = shard_bodies(&svc, shards, &misroutes, latencies);
        let (r, per_task) = measure_batch(&dev, &sched_for(pi), bodies).map_err(|e| fail(phase, e))?;
        if r.ops != per_task.iter().sum::<u64>() {
            return Err(fail(phase, "total ops != sum of per-shard ops".into()));
        }
        // Conservation: everything enqueued so far is acked exactly once.
        if total_acked(&svc) != enqueued {
            return Err(fail(
                phase,
                format!("acked {} of {} enqueued requests", total_acked(&svc), enqueued),
            ));
        }
        // The routing audit is a hard gate: a single misroute fails the
        // suite (the misroute canary is caught here, not by lin checks —
        // a consistent shift preserves per-key order).
        let mis = misroutes.load(Ordering::SeqCst);
        if mis != 0 {
            return Err(fail(phase, format!("{mis} misrouted request(s)")));
        }
        rows.push(ExperimentRow::from_phase(
            "service", &name, &point, phase, "mops", r.mops(), shards, &r,
        ));
        Ok(())
    };

    // Load: every key as an insert request, all arrived at t=0.
    let wl = |dist: Distribution| WorkloadConfig {
        seed: cfg.seed,
        ..WorkloadConfig::new(cfg.keys, dist, Mix::BALANCED, ValueSize::Fixed(cfg.value_bytes))
    };
    let load_cfg = wl(Distribution::Uniform);
    let keys = load_keys(&load_cfg);
    let mut vals = OpStream::new(&load_cfg, 0);
    for (i, &k) in keys.iter().enumerate() {
        svc.enqueue(ClientReq::new(i as u64, 0, SweepOp::Insert(k, vals.expected_value(k))));
        enqueued += 1;
    }
    run_phase("load", 0, None, enqueued, &mut rows)?;

    // Open-loop run: zipfian balanced mix, arrivals from the session
    // population at the configured mean gap.
    let run_cfg = wl(Distribution::Zipfian);
    let mut arrivals = ArrivalGen::new(OpenLoopConfig {
        sessions: cfg.sessions,
        mean_gap_ns: cfg.mean_gap_ns,
        seed: cfg.seed,
    });
    let to_req = |stream: &mut OpStream, arrival_ns: u64, session: u64| {
        let op = match stream.next_op() {
            WorkOp::Search(k) => SweepOp::Get(k),
            WorkOp::Update(k, v) => SweepOp::Update(k, v),
            WorkOp::Insert(k, v) => SweepOp::Insert(k, v),
            WorkOp::Delete(k) => SweepOp::Remove(k),
        };
        ClientReq::new(session, arrival_ns, op)
    };
    let mut stream = OpStream::new(&run_cfg, 1);
    for _ in 0..cfg.ops {
        let a = arrivals.next_arrival();
        svc.enqueue(to_req(&mut stream, a.at_ns, a.session));
        enqueued += 1;
    }
    // lint:allow(std-sync): host-side latency sink (see shard_bodies).
    let lat = std::sync::Mutex::new(Vec::<u64>::with_capacity(cfg.ops as usize));
    run_phase("open", 1, Some(&lat), enqueued, &mut rows)?;
    let mut lats = lat.into_inner().unwrap();
    if lats.len() as u64 != cfg.ops {
        return Err(fail("open", format!("{} latencies for {} requests", lats.len(), cfg.ops)));
    }
    lats.sort_unstable();
    for (ph, p) in [("p50", 0.50), ("p99", 0.99), ("p999", 0.999)] {
        rows.push(ExperimentRow {
            experiment: "service".into(),
            series: name.clone(),
            point: point.clone(),
            phase: ph.into(),
            unit: "ns".into(),
            value: percentile(&lats, p),
            threads: shards as u64,
            ops: lats.len() as u64,
            ..Default::default()
        });
    }

    // Saturation: the same mix with every arrival at t=0 — the service
    // drains as fast as batching allows at this shard count.
    let mut stream = OpStream::new(&run_cfg, 2);
    for i in 0..cfg.ops {
        svc.enqueue(to_req(&mut stream, 0, i));
        enqueued += 1;
    }
    run_phase("saturate", 2, None, enqueued, &mut rows)?;

    Ok(ServiceCellResult {
        rows,
        enqueued,
        acked: total_acked(&svc),
    })
}

/// Run the full suite: every index × {eADR, ADR} × shard ladder. The
/// report is byte-identical across same-seed runs (`created_unix` pinned
/// to 0, `host_ns` zeroed by the batch driver).
pub fn run_suite(cfg: &ServiceSuiteConfig) -> Result<BenchReport, String> {
    let mut report = BenchReport::new(&short_rev());
    report.created_unix = 0;
    report.set_config("suite", "service");
    report.set_config("keys", cfg.keys);
    report.set_config("ops", cfg.ops);
    report.set_config(
        "shards",
        cfg.shards
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
    );
    report.set_config("batch_max", cfg.batch_max);
    report.set_config("seed", format!("{:#x}", cfg.seed));
    report.set_config("value_bytes", cfg.value_bytes);
    report.set_config("preemptions", cfg.preemptions);
    report.set_config("sessions", cfg.sessions);
    report.set_config("mean_gap_ns", cfg.mean_gap_ns);

    for (ti, target) in crash_targets().iter().enumerate() {
        for domain in [PersistenceDomain::Eadr, PersistenceDomain::Adr] {
            for &shards in &cfg.shards {
                let cell = run_cell(target, ti, domain, shards, cfg)?;
                if cell.acked != cell.enqueued {
                    return Err(format!(
                        "{}/{}/s{shards}: acked {} of {} enqueued",
                        target.name,
                        domain_label(domain),
                        cell.acked,
                        cell.enqueued
                    ));
                }
                report.rows.extend(cell.rows);
            }
            println!(
                "# service: {} [{}] done ({} shard points)",
                target.name,
                domain_label(domain),
                cfg.shards.len()
            );
        }
    }
    Ok(report)
}

/// `spash-bench service --lin-check`: the batched front-end over every
/// index × `schedules` seeds, Wing–Gong-checked. Returns failure
/// messages (empty = pass).
pub fn lin_check_all(cfg: &ServiceLinConfig) -> Vec<String> {
    let mut failures = Vec::new();
    for target in crash_targets() {
        for s in 0..cfg.schedules {
            match lincheck::lin_check_target(&target, cfg, cfg.seed.wrapping_add(s)) {
                Ok(n) => println!(
                    "# service lin-check: {} seed {s}: {n} ops linearize through the batch path",
                    target.name
                ),
                Err(e) => failures.push(format!("{} seed {s}: {e}", target.name)),
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_has_all_phases_and_conserves_acks() {
        let cfg = ServiceSuiteConfig::test_small();
        let target = &crash_targets()[0];
        let cell = run_cell(target, 0, PersistenceDomain::Eadr, 2, &cfg).unwrap();
        // load + open + 3 percentiles + saturate.
        assert_eq!(cell.rows.len(), 6);
        assert_eq!(cell.enqueued, cfg.keys + 2 * cfg.ops);
        assert_eq!(cell.acked, cell.enqueued);
        let phases: Vec<&str> = cell.rows.iter().map(|r| r.phase.as_str()).collect();
        assert_eq!(phases, ["load", "open", "p50", "p99", "p999", "saturate"]);
        for r in &cell.rows {
            assert_eq!(r.threads, 2);
            assert_eq!(r.host_ns, 0, "service rows must not carry host time");
        }
        // Tail ordering: p50 <= p99 <= p999, and the open loop really
        // queued (positive latencies).
        let p: Vec<f64> = cell.rows[1..5].iter().map(|r| r.value).collect();
        assert!(p[1] <= p[2] && p[2] <= p[3], "percentiles out of order: {p:?}");
        assert!(p[3] > 0.0, "zero p999 under an open loop");
    }

    #[test]
    fn service_lin_check_passes_for_spash() {
        let cfg = ServiceLinConfig {
            schedules: 2,
            ..ServiceLinConfig::default()
        };
        let target = &crash_targets()[0];
        for s in 0..cfg.schedules {
            let n = lincheck::lin_check_target(target, &cfg, cfg.seed + s).unwrap();
            assert_eq!(n as u64, cfg.ops);
        }
    }
}
