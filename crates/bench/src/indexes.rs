//! Factory building each compared index on a fresh simulated device with
//! benchmark-appropriate geometry.

use std::sync::Arc;

use spash::{ConcurrencyMode, InsertPolicy, Spash, SpashConfig, UpdatePolicy};
use spash_baselines::{CLevel, Cceh, Dash, Halo, Level, Plush};
use spash_index_api::crashpoint::CrashTarget;
use spash_index_api::PersistentIndex;
use spash_pmem::{PmConfig, PmDevice};

/// All seven indexes by their [`CrashTarget`] format/recover pairs — the
/// shared roster of the `perf` and `scale` suites (and the crash sweeps
/// those pairs were built for). Fresh targets per call:
/// `CrashTarget::format` must not share volatile state across devices.
pub fn crash_targets() -> Vec<CrashTarget> {
    vec![
        Spash::crash_target(SpashConfig::default()),
        Cceh::crash_target(1),
        Dash::crash_target(1),
        Level::crash_target(4),
        CLevel::crash_target(4),
        Plush::crash_target(4),
        // Generous log: the suites replay several write phases into it.
        Halo::crash_target(64 << 20, u64::MAX),
    ]
}

/// Which index to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    Spash,
    /// Spash with the pipeline disabled (PD=1) — the "Spash (w/o
    /// pipeline)" series of Figs 7/10/11.
    SpashNoPipeline,
    Cceh,
    Dash,
    Level,
    CLevel,
    Plush,
    Halo,
}

impl IndexKind {
    /// Everything in the paper's comparison set.
    pub const ALL: [IndexKind; 8] = [
        IndexKind::Spash,
        IndexKind::SpashNoPipeline,
        IndexKind::Cceh,
        IndexKind::Dash,
        IndexKind::Level,
        IndexKind::CLevel,
        IndexKind::Plush,
        IndexKind::Halo,
    ];

    /// The set used in the micro-benchmarks (the paper excludes Halo
    /// there: "Halo is excluded from the micro-benchmark since it crashes
    /// during the executions" — DRAM exhaustion).
    pub const MICRO: [IndexKind; 7] = [
        IndexKind::Spash,
        IndexKind::SpashNoPipeline,
        IndexKind::Cceh,
        IndexKind::Dash,
        IndexKind::Level,
        IndexKind::CLevel,
        IndexKind::Plush,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            IndexKind::Spash => "Spash",
            IndexKind::SpashNoPipeline => "Spash(noPL)",
            IndexKind::Cceh => "CCEH",
            IndexKind::Dash => "Dash",
            IndexKind::Level => "Level",
            IndexKind::CLevel => "CLevel",
            IndexKind::Plush => "Plush",
            IndexKind::Halo => "Halo",
        }
    }
}

/// Device geometry for a benchmark over `keys` keys of up to `value_bytes`
/// values: the arena holds the data comfortably; the modelled cache is
/// kept well below the dataset (paper: 20 M–100 M keys vs a 42 MB LLC) so
/// steady-state evictions happen.
pub fn bench_device(keys: u64, value_bytes: u64) -> Arc<PmDevice> {
    let dataset = keys * (32 + value_bytes.max(16));
    // Generous arena: levelled/log-structured baselines (Plush, CLevel,
    // Halo) accumulate garbage between merges/GC.
    let arena = (dataset * 8).next_power_of_two().max(256 << 20);
    // Cache an order of magnitude below the dataset (paper: 20 M–100 M
    // keys vs a 42 MB LLC) so the run is PM-bound and the zipfian hot set
    // still fits.
    let cache = (dataset / 96).clamp(128 << 10, 64 << 20);
    // Optional: arm the persistence-ordering sanitizer for any benchmark
    // run. Diagnostics (redundant flushes / no-op fences) are printed by
    // `run_phase` when the counters move.
    let san = match std::env::var("SPASH_BENCH_SAN").as_deref() {
        Ok("strict") => Some(spash_pmem::SanMode::Strict),
        Ok("relaxed") => Some(spash_pmem::SanMode::Relaxed),
        _ => None,
    };
    PmDevice::new(PmConfig {
        arena_size: arena,
        cache_capacity: cache,
        san,
        ..PmConfig::default()
    })
}

/// Build `kind` on `dev`. The initial sizing gives every index a small
/// head start (the paper preloads millions of keys anyway).
pub fn build_index(dev: &Arc<PmDevice>, kind: IndexKind) -> Box<dyn PersistentIndex> {
    let mut ctx = dev.ctx();
    match kind {
        IndexKind::Spash => Box::new(
            Spash::format(&mut ctx, SpashConfig::default()).expect("format spash"),
        ),
        IndexKind::SpashNoPipeline => Box::new(
            Spash::format(
                &mut ctx,
                SpashConfig {
                    pipeline_depth: 1,
                    ..SpashConfig::default()
                },
            )
            .expect("format spash"),
        ),
        IndexKind::Cceh => Box::new(Cceh::format(&mut ctx, 2).expect("format cceh")),
        IndexKind::Dash => Box::new(Dash::format(&mut ctx, 2).expect("format dash")),
        IndexKind::Level => Box::new(Level::format(&mut ctx, 10).expect("format level")),
        IndexKind::CLevel => Box::new(CLevel::format(&mut ctx, 10).expect("format clevel")),
        IndexKind::Plush => {
            // Size level 0 so the paper's 16x fanout reaches steady state
            // without overflowing the arena (the original sizes it to the
            // expected dataset too).
            let pow = (64 - (dev.arena().size() / (256 * 64)).leading_zeros()).clamp(8, 14);
            Box::new(Plush::format(&mut ctx, pow).expect("format plush"))
        }
        IndexKind::Halo => {
            let log = dev.arena().size() / 2;
            Box::new(Halo::format(&mut ctx, log, u64::MAX).expect("format halo"))
        }
    }
}

/// Spash variants for the ablation figures (12a–12c).
pub fn build_spash_variant(dev: &Arc<PmDevice>, cfg: SpashConfig) -> Arc<Spash> {
    let mut ctx = dev.ctx();
    Arc::new(Spash::format(&mut ctx, cfg).expect("format spash variant"))
}

/// Convenience constructors for the Fig 12 ablation configs.
pub fn ablation_config(name: &str) -> SpashConfig {
    let base = SpashConfig::default();
    match name {
        "adaptive" => base,
        "always-flush" => SpashConfig {
            update_policy: UpdatePolicy::AlwaysFlush,
            ..base
        },
        "never-flush" => SpashConfig {
            update_policy: UpdatePolicy::NeverFlush,
            ..base
        },
        "compacted-flush" => SpashConfig {
            insert_policy: InsertPolicy::CompactedFlush,
            ..base
        },
        "compacted-noflush" => SpashConfig {
            insert_policy: InsertPolicy::CompactedNoFlush,
            ..base
        },
        "scattered" => SpashConfig {
            insert_policy: InsertPolicy::Scattered,
            ..base
        },
        "htm" => base,
        "write-lock" => SpashConfig {
            concurrency: ConcurrencyMode::WriteLock,
            ..base
        },
        "write-read-lock" => SpashConfig {
            concurrency: ConcurrencyMode::WriteReadLock,
            ..base
        },
        other => panic!("unknown ablation {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_index_builds_and_works() {
        for kind in IndexKind::ALL {
            let dev = bench_device(10_000, 16);
            let idx = build_index(&dev, kind);
            let mut ctx = dev.ctx();
            idx.insert_u64(&mut ctx, 123, 456).unwrap();
            assert_eq!(idx.get_u64(&mut ctx, 123), Some(456), "{}", kind.label());
        }
    }

    #[test]
    fn device_cache_smaller_than_dataset() {
        let dev = bench_device(1_000_000, 16);
        let cfg = dev.config();
        assert!(cfg.cache_capacity < 1_000_000 * 48);
        assert!(cfg.arena_size >= 4 * 1_000_000 * 48);
    }
}
