//! The `spash-bench scale` suite: the paper's headline scaling figures
//! (Figs 5–8 — throughput vs threads, uniform and zipfian, eADR and ADR)
//! regenerated **bit-deterministically** under the cooperative scheduler
//! (DESIGN.md "Deterministic scalability sweep").
//!
//! Where `spash-bench perf` is single-threaded by design, this suite runs
//! every index at a ladder of *virtual* thread counts: N tasks driven to
//! completion by [`spash_sched::batch::run_batch`] under a fixed
//! per-phase seed. Contention is modelled in virtual time (RMW line
//! tokens, `VLock` handoff, HTM aborts), the interleaving is a pure
//! function of the scheduler seed, and so every row — throughput, PM
//! counters, span attribution — is byte-stable and `spash-bench compare`
//! gates the whole curve exactly.
//!
//! Two accounting consequences of cooperative execution:
//!
//! * `host_ns` is recorded as 0. Under the baton scheduler, host wall
//!   time measures baton handoffs, not the workload; zeroing it (and the
//!   informational `created_unix` header) makes the report byte-identical
//!   across same-seed runs.
//! * `elapsed_ns = max(max per-task virtual clock, sim horizon,
//!   bandwidth floor)` — the same rule as the real-thread harness
//!   (`run_phase`), so Mops/s is comparable across both.
//!
//! Each cell (index × domain × thread count) runs three phases on one
//! fresh device: a partitioned **load**, a partitioned-**uniform** run
//! (disjoint key slices — the contention-free end), and a shared-**zipf**
//! run (every task skews into the same hot set — the contended end where
//! lock-based baselines collapse and HTM pays off). Crossover points and
//! per-series throughput peaks are computed from the rows and stored as
//! first-class report assertions, gated exactly by `compare`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use spash_index_api::crashpoint::{CrashTarget, SweepOp};
use spash_index_api::history::{self, fingerprint, HistOp, Recorder};
use spash_index_api::{hash_key, PersistentIndex};
use spash_pmem::{MemCtx, PersistenceDomain, PmAddr, PmDevice};
use spash_sched::batch::run_batch;
use spash_sched::SchedConfig;
use spash_workloads::{load_keys, Distribution, Mix, OpStream, ValueSize, WorkOp, WorkloadConfig};

use crate::experiments::{exec_stream, my_chunk};
use crate::indexes::crash_targets;
use crate::perf::{domain_label, short_rev, suite_pm};
use crate::report::{BenchReport, ExperimentRow};
use crate::PhaseResult;

/// Suite scale. Like `perf`, deliberately small: contention shapes show
/// up at any scale, and the gate's job is pinning them, not asymptotics.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Keys loaded per cell (key space `1..=keys`).
    pub keys: u64,
    /// Total run-phase ops per cell, split evenly over the tasks.
    pub ops: u64,
    /// The thread-count ladder (virtual tasks per cell).
    pub threads: Vec<usize>,
    /// Workload seed (scheduler seeds derive from it per cell × phase).
    pub seed: u64,
    pub value_bytes: usize,
    /// Scheduler preemption budget per phase: blocking events always
    /// switch for free; this bounds extra preemptions at non-blocking
    /// sync points.
    pub preemptions: u32,
}

impl ScaleConfig {
    /// The pinned CI ladder. Changing any of these invalidates the
    /// committed `bench/baseline_scale.json` (compare fails on the config
    /// echo).
    pub fn default_suite() -> Self {
        Self {
            keys: 4_000,
            ops: 2_000,
            threads: vec![1, 2, 4, 8],
            seed: 0x5eed,
            value_bytes: 16,
            preemptions: 64,
        }
    }

    /// Tiny variant for tier-1 tests.
    pub fn test_small() -> Self {
        Self {
            keys: 600,
            ops: 240,
            threads: vec![2, 8],
            seed: 0x5eed,
            value_bytes: 16,
            preemptions: 32,
        }
    }

    /// Full-figure ladder (the paper sweeps 1→56 threads). Not the CI
    /// default — a 56-task cooperative cell is minutes, not seconds.
    pub fn paper_ladder() -> Self {
        Self {
            threads: vec![1, 2, 4, 8, 16, 32, 56],
            ..Self::default_suite()
        }
    }

    pub fn from_env() -> Self {
        let d = Self::default_suite();
        let env_u64 = |k: &str, d: u64| {
            std::env::var(k)
                .ok()
                .and_then(|v| {
                    let v = v.trim().to_ascii_lowercase();
                    match v.strip_prefix("0x") {
                        Some(h) => u64::from_str_radix(h, 16).ok(),
                        None => v.parse().ok(),
                    }
                })
                .unwrap_or(d)
        };
        let threads = std::env::var("SPASH_SCALE_THREADS")
            .ok()
            .map(|v| {
                v.split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .collect::<Vec<usize>>()
            })
            .filter(|v| !v.is_empty())
            .unwrap_or(d.threads);
        Self {
            keys: env_u64("SPASH_SCALE_KEYS", d.keys),
            ops: env_u64("SPASH_SCALE_OPS", d.ops),
            threads,
            seed: env_u64("SPASH_SCALE_SEED", d.seed),
            value_bytes: d.value_bytes,
            preemptions: env_u64("SPASH_SCALE_PREEMPTIONS", d.preemptions as u64) as u32,
        }
    }
}

// --- contention-inflation mutation hook ---------------------------------

/// Test canary (see `crates/bench/tests/scale.rs`): when armed, every
/// run-phase task ends with a burst of identity RMWs on one shared PM
/// line. The or-with-0 leaves the data untouched, but each RMW is a
/// modelled line-ownership transfer — extra sync points, extra cacheline
/// traffic, inflated virtual time — exactly the signature of accidental
/// contention, which the exact compare gate must flag.
static INFLATE_CONTENTION: AtomicBool = AtomicBool::new(false);

/// Arm/disarm the contention-inflation canary; returns the old state.
/// Process-global: serialize tests that touch it.
pub fn set_contention_inflation(on: bool) -> bool {
    INFLATE_CONTENTION.swap(on, Ordering::SeqCst)
}

fn maybe_inflate(ctx: &mut MemCtx) {
    if INFLATE_CONTENTION.load(Ordering::SeqCst) {
        for _ in 0..16 {
            // Identity RMW: full contention cost, no data change.
            ctx.fetch_or_u64(PmAddr(64), 0);
        }
    }
}

// --- one measured multi-task phase --------------------------------------

/// Deterministic scheduler seed for one cell × phase. Everything that
/// identifies the cell goes in, so no two phases share an interleaving
/// stream and the whole suite is a pure function of `cfg.seed`.
pub(crate) fn phase_seed(base: u64, series: usize, domain: usize, threads: usize, phase: usize) -> u64 {
    hash_key(
        base ^ ((series as u64) << 48)
            ^ ((domain as u64) << 40)
            ^ ((threads as u64) << 16)
            ^ phase as u64,
    )
}

/// The scheduler-driven analogue of the harness's `run_phase`: run
/// `bodies` as cooperative tasks via [`run_batch`], with the same
/// counter/span/virtual-time accounting. Returns the phase result plus
/// per-task op counts (the sum invariant the tests pin).
///
/// Per-task contexts are created before spawning, in task order, so
/// simulated-thread ids are a pure function of the configuration.
pub(crate) fn measure_batch<'a>(
    dev: &Arc<PmDevice>,
    sched: &SchedConfig,
    bodies: Vec<Box<dyn FnOnce(&mut MemCtx) -> u64 + Send + 'a>>,
) -> Result<(PhaseResult, Vec<u64>), String> {
    dev.quiesce();
    let before = dev.snapshot();
    let spans_before = dev.span_totals();
    let cost = dev.config().cost.clone();
    let phase_start = dev.vtime_floor();

    let tasks: Vec<Box<dyn FnOnce() -> (u64, u64) + Send + 'a>> = bodies
        .into_iter()
        .map(|body| {
            let mut ctx = dev.ctx();
            ctx.reset_clock();
            let t: Box<dyn FnOnce() -> (u64, u64) + Send + 'a> = Box::new(move || {
                let ops = body(&mut ctx);
                (ops, ctx.now())
            });
            t
        })
        .collect();
    let results: Vec<(u64, u64)> = run_batch(sched, None, tasks).into_complete()?;

    dev.quiesce();
    let delta = dev.snapshot().since(&before);
    let spans = dev
        .span_totals()
        .iter()
        .zip(spans_before.iter())
        .map(|((name, after), (_, before))| (*name, after.since(before)))
        .collect();
    let task_ops: Vec<u64> = results.iter().map(|r| r.0).collect();
    let max_clock = results
        .iter()
        .map(|r| r.1)
        .max()
        .unwrap_or(phase_start)
        .max(dev.sim_horizon());
    dev.raise_vtime_floor(max_clock);
    let span = max_clock.saturating_sub(phase_start);
    let elapsed_ns = span.max(delta.bandwidth_floor_ns(&cost));
    let r = PhaseResult {
        ops: task_ops.iter().sum(),
        elapsed_ns,
        delta,
        // Deliberately 0: host time under the baton scheduler measures
        // scheduler overhead, and zeroing keeps the report byte-stable.
        host_ns: 0,
        spans,
    };
    Ok((r, task_ops))
}

// --- one cell: index × domain × thread count ----------------------------

/// Rows plus the per-task op counts behind each row's `ops` total.
pub struct CellResult {
    pub rows: Vec<ExperimentRow>,
    /// `(phase, per-task ops)`, in phase order.
    pub task_ops: Vec<(&'static str, Vec<u64>)>,
}

/// Run one index at one domain and thread count: partitioned load,
/// partitioned-uniform run, shared-zipf run, all on the same device.
pub fn run_cell(
    target: &CrashTarget,
    target_idx: usize,
    domain: PersistenceDomain,
    threads: usize,
    cfg: &ScaleConfig,
) -> Result<CellResult, String> {
    assert!(threads >= 1);
    let dev = PmDevice::new(suite_pm(domain));
    let mut fmt_ctx = dev.ctx();
    let index: Arc<dyn PersistentIndex> = Arc::from((target.format)(&mut fmt_ctx));
    drop(fmt_ctx);

    let wl = |dist: Distribution, mix: Mix| WorkloadConfig {
        seed: cfg.seed,
        ..WorkloadConfig::new(cfg.keys, dist, mix, ValueSize::Fixed(cfg.value_bytes))
    };
    let didx = usize::from(domain == PersistenceDomain::Adr);
    let sched_for = |phase: usize| SchedConfig {
        // Generous livelock valve: a big cell crosses millions of sync
        // points legitimately.
        max_steps: 200_000_000,
        ..SchedConfig::random(
            phase_seed(cfg.seed, target_idx, didx, threads, phase),
            cfg.preemptions,
        )
    };
    let point = format!("{}/t{}", domain_label(domain), threads);
    let name = target.name.clone();
    let fail = |phase: &str, e: String| format!("{name}/{point}/{phase}: {e}");

    let mut rows = Vec::new();
    let mut task_ops = Vec::new();
    let mut push = |phase: &'static str, r: PhaseResult, per_task: Vec<u64>| {
        assert_eq!(
            r.ops,
            per_task.iter().sum::<u64>(),
            "{name}/{point}/{phase}: total ops != sum of per-task ops"
        );
        rows.push(ExperimentRow::from_phase(
            "scale",
            &name,
            &point,
            phase,
            "mops",
            r.mops(),
            threads,
            &r,
        ));
        task_ops.push((phase, per_task));
    };

    // Load: every task inserts its own rank chunk (same chunking as the
    // partitioned run streams), concurrently under the scheduler.
    let load_cfg = wl(Distribution::Uniform, Mix::BALANCED);
    let keys = load_keys(&load_cfg);
    let load_bodies: Vec<Box<dyn FnOnce(&mut MemCtx) -> u64 + Send>> = (0..threads)
        .map(|t| {
            let index = Arc::clone(&index);
            let mine: Vec<u64> = my_chunk(&keys, threads, t).to_vec();
            let mut vals = OpStream::new(&load_cfg, t as u64);
            let name = name.clone();
            let b: Box<dyn FnOnce(&mut MemCtx) -> u64 + Send> = Box::new(move |ctx| {
                for &k in &mine {
                    index
                        .insert(ctx, k, &vals.expected_value(k))
                        .unwrap_or_else(|e| panic!("{name}: load insert failed: {e:?}"));
                }
                mine.len() as u64
            });
            b
        })
        .collect();
    let (r, per_task) =
        measure_batch(&dev, &sched_for(0), load_bodies).map_err(|e| fail("load", e))?;
    push("load", r, per_task);

    // Run phases: partitioned-uniform (disjoint slices, no key sharing)
    // then shared-zipf (every task hammers the same hot ranks).
    for (pi, (phase, dist, shared)) in [
        ("uniform", Distribution::Uniform, false),
        ("zipf", Distribution::Zipfian, true),
    ]
    .into_iter()
    .enumerate()
    {
        let rcfg = wl(dist, Mix::BALANCED);
        let per_ops = (cfg.ops / threads as u64).max(1);
        let bodies: Vec<Box<dyn FnOnce(&mut MemCtx) -> u64 + Send>> = (0..threads)
            .map(|t| {
                let index = Arc::clone(&index);
                let mut stream = if shared {
                    OpStream::new(&rcfg, t as u64)
                } else {
                    OpStream::partitioned(&rcfg, t as u64, threads as u64)
                };
                let b: Box<dyn FnOnce(&mut MemCtx) -> u64 + Send> = Box::new(move |ctx| {
                    let n = exec_stream(index.as_ref(), ctx, &mut stream, per_ops);
                    maybe_inflate(ctx);
                    n
                });
                b
            })
            .collect();
        let (r, per_task) =
            measure_batch(&dev, &sched_for(1 + pi), bodies).map_err(|e| fail(phase, e))?;
        push(phase, r, per_task);
    }

    Ok(CellResult { rows, task_ops })
}

// --- the full sweep + derived claims ------------------------------------

/// Run the full sweep: every target × {eADR, ADR} × ladder × phases, then
/// derive the crossover/peak assertions. The report is byte-identical
/// across same-seed runs (`created_unix` pinned to 0, `host_ns` zeroed).
pub fn run_suite(cfg: &ScaleConfig) -> Result<BenchReport, String> {
    let mut report = BenchReport::new(&short_rev());
    report.created_unix = 0;
    report.set_config("suite", "scale");
    report.set_config("keys", cfg.keys);
    report.set_config("ops", cfg.ops);
    report.set_config("seed", format!("{:#x}", cfg.seed));
    report.set_config(
        "threads",
        cfg.threads
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(","),
    );
    report.set_config("value_bytes", cfg.value_bytes);
    report.set_config("preemptions", cfg.preemptions);

    for (ti, target) in crash_targets().iter().enumerate() {
        for domain in [PersistenceDomain::Eadr, PersistenceDomain::Adr] {
            for &threads in &cfg.threads {
                let cell = run_cell(target, ti, domain, threads, cfg)?;
                report.rows.extend(cell.rows);
            }
            println!(
                "# scale: {} [{}] done ({} thread points)",
                target.name,
                domain_label(domain),
                cfg.threads.len()
            );
        }
    }
    derive_assertions(&mut report, cfg);
    Ok(report)
}

/// Throughput of `series` at ladder point `t` for one domain × phase.
fn mops_at(report: &BenchReport, series: &str, domain: &str, phase: &str, t: usize) -> Option<f64> {
    report
        .rows
        .iter()
        .find(|r| {
            r.series == series && r.phase == phase && r.point == format!("{domain}/t{t}")
        })
        .map(|r| r.value)
}

/// Compute the headline claims and store them as report assertions:
///
/// * `crossover/<domain>/<phase>/<baseline>` — the smallest ladder thread
///   count at which Spash's throughput meets or beats the baseline's
///   (`"never"` if it never does): where the curves cross.
/// * `peak/<domain>/<phase>/<series>` — the ladder point of each series'
///   throughput maximum. A peak below the ladder top is a collapse: more
///   threads, less throughput (the lock-based baselines under zipf).
///
/// These are *derived* from bit-deterministic rows, so they are
/// themselves deterministic and `compare` gates them exactly.
fn derive_assertions(report: &mut BenchReport, cfg: &ScaleConfig) {
    let series: Vec<String> = crash_targets().iter().map(|t| t.name.clone()).collect();
    let spash = series
        .iter()
        .find(|s| s.starts_with("Spash"))
        .cloned()
        .expect("Spash series present");
    let mut claims: Vec<(String, String)> = Vec::new();
    for domain in ["eadr", "adr"] {
        for phase in ["uniform", "zipf"] {
            for s in &series {
                // Peak: first ladder point attaining the max throughput.
                let peak = cfg
                    .threads
                    .iter()
                    .copied()
                    .max_by(|&a, &b| {
                        let ma = mops_at(report, s, domain, phase, a).unwrap_or(0.0);
                        let mb = mops_at(report, s, domain, phase, b).unwrap_or(0.0);
                        // Strict comparison biased to the *smaller* t on
                        // ties, deterministically.
                        ma.partial_cmp(&mb)
                            .unwrap()
                            .then(b.cmp(&a))
                    })
                    .unwrap_or(1);
                claims.push((format!("peak/{domain}/{phase}/{s}"), peak.to_string()));
                if *s == spash {
                    continue;
                }
                let crossover = cfg
                    .threads
                    .iter()
                    .copied()
                    .find(|&t| {
                        let sp = mops_at(report, &spash, domain, phase, t).unwrap_or(0.0);
                        let ba = mops_at(report, s, domain, phase, t).unwrap_or(f64::MAX);
                        sp >= ba
                    })
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "never".into());
                claims.push((format!("crossover/{domain}/{phase}/{s}"), crossover));
            }
        }
    }
    for (k, v) in claims {
        report.set_assertion(&k, v);
    }
}

/// Structural check of the derived claims (`spash-bench scale --assert`):
/// the shape the paper predicts, independent of exact numbers.
///
/// * every crossover/peak assertion exists for every domain × phase;
/// * Spash scales: its uniform-phase peak is at the top of the ladder in
///   both domains;
/// * Spash wins contended zipf at the ladder top in eADR: every baseline
///   has a crossover (≠ "never").
pub fn check_claims(report: &BenchReport, cfg: &ScaleConfig) -> Vec<String> {
    let mut bad = Vec::new();
    let series: Vec<String> = crash_targets().iter().map(|t| t.name.clone()).collect();
    let spash = series
        .iter()
        .find(|s| s.starts_with("Spash"))
        .cloned()
        .expect("Spash series present");
    let top = cfg.threads.iter().copied().max().unwrap_or(1).to_string();
    for domain in ["eadr", "adr"] {
        for phase in ["uniform", "zipf"] {
            for s in &series {
                if report
                    .assertion_value(&format!("peak/{domain}/{phase}/{s}"))
                    .is_none()
                {
                    bad.push(format!("missing assertion peak/{domain}/{phase}/{s}"));
                }
                if *s != spash
                    && report
                        .assertion_value(&format!("crossover/{domain}/{phase}/{s}"))
                        .is_none()
                {
                    bad.push(format!("missing assertion crossover/{domain}/{phase}/{s}"));
                }
            }
        }
        let k = format!("peak/{domain}/uniform/{spash}");
        match report.assertion_value(&k) {
            Some(v) if v == top => {}
            v => bad.push(format!("{k}: Spash must peak at the ladder top {top}, got {v:?}")),
        }
    }
    for s in series.iter().filter(|s| **s != spash) {
        let k = format!("crossover/eadr/zipf/{s}");
        if report.assertion_value(&k) == Some("never") {
            bad.push(format!("{k}: Spash never overtakes {s} under contended zipf"));
        }
    }
    bad
}

// --- linearizability check of the batch driver --------------------------

/// One tiny scheduled `scale` configuration per index, with every
/// completed operation recorded and checked against the sequential map
/// model — the multi-thread bench driver itself is lin-checked, not just
/// the hand-written explore scenarios. Runs in CI's sched-explore job
/// (`spash-bench scale --lin-check`).
pub struct LinCheckConfig {
    pub threads: usize,
    pub ops_per_thread: u64,
    /// Key space — small so tasks collide on keys.
    pub keys: u64,
    /// Ranks `0..prefill` of the load permutation are inserted
    /// sequentially before the scheduled run (the checker's initial
    /// state).
    pub prefill: u64,
    pub seed: u64,
    pub preemptions: u32,
    /// Distinct scheduler seeds checked per index.
    pub schedules: u64,
}

impl Default for LinCheckConfig {
    fn default() -> Self {
        Self {
            threads: 3,
            ops_per_thread: 8,
            keys: 12,
            prefill: 6,
            seed: 0x5ca1e,
            preemptions: 24,
            schedules: 4,
        }
    }
}

/// Run the lin-check for one target at one scheduler seed. Returns the
/// recorded history length on success.
pub fn lin_check_target(
    target: &CrashTarget,
    cfg: &LinCheckConfig,
    schedule_seed: u64,
) -> Result<usize, String> {
    let dev = PmDevice::new(suite_pm(PersistenceDomain::Eadr));
    let mut ctx = dev.ctx();
    let index: Arc<dyn PersistentIndex> = Arc::from((target.format)(&mut ctx));

    // The run draws from the same generator family as the sweep: a
    // colliding mix over a tiny key space, zipfian so tasks pile onto the
    // same hot keys.
    let mix = Mix {
        search_pct: 25,
        update_pct: 25,
        insert_pct: 25,
        delete_pct: 25,
    };
    let wcfg = WorkloadConfig {
        seed: cfg.seed,
        ..WorkloadConfig::new(cfg.keys, Distribution::Zipfian, mix, ValueSize::Inline)
    };

    // Sequential prefill builds the checker's initial model state.
    let mut initial: HashMap<u64, u64> = HashMap::new();
    let keys = load_keys(&wcfg);
    let mut vals = OpStream::new(&wcfg, 0);
    for &k in keys.iter().take(cfg.prefill as usize) {
        let v = vals.expected_value(k);
        if index.insert(&mut ctx, k, &v).is_ok() {
            initial.insert(k, fingerprint(&v));
        }
    }
    drop(ctx);

    let recorder = Recorder::new();
    // lint:allow(std-sync): host-side history buffer; never held across a
    // sync point (same discipline as spash-sched's lin driver).
    let hist = Arc::new(std::sync::Mutex::new(Vec::<HistOp>::new()));
    let bodies: Vec<Box<dyn FnOnce(&mut MemCtx) -> u64 + Send>> = (0..cfg.threads)
        .map(|t| {
            let index = Arc::clone(&index);
            let rec = recorder.clone();
            let hist = Arc::clone(&hist);
            let mut stream = OpStream::new(&wcfg, t as u64);
            let n = cfg.ops_per_thread;
            let b: Box<dyn FnOnce(&mut MemCtx) -> u64 + Send> = Box::new(move |ctx| {
                for _ in 0..n {
                    let op = match stream.next_op() {
                        WorkOp::Search(k) => SweepOp::Get(k),
                        WorkOp::Update(k, v) => SweepOp::Update(k, v),
                        WorkOp::Insert(k, v) => SweepOp::Insert(k, v),
                        WorkOp::Delete(k) => SweepOp::Remove(k),
                    };
                    let done = rec.run_op(index.as_ref(), ctx, t, &op);
                    // Published immediately so completed ops survive any
                    // valve stop; never held across a sync point.
                    hist.lock().unwrap().push(done);
                }
                n
            });
            b
        })
        .collect();
    let sched = SchedConfig::random(schedule_seed, cfg.preemptions);
    let (_r, _ops) = measure_batch(&dev, &sched, bodies)?;
    let hist = Arc::try_unwrap(hist)
        .map(|m| m.into_inner().unwrap())
        .unwrap_or_default();
    let n = hist.len();
    history::check_linearizable(&hist, &initial)
        .map_err(|v| format!("history not linearizable: {v}"))?;
    Ok(n)
}

/// `spash-bench scale --lin-check`: every index × `schedules` seeds.
/// Returns failure messages (empty = pass).
pub fn lin_check_all(cfg: &LinCheckConfig) -> Vec<String> {
    let mut failures = Vec::new();
    for target in crash_targets() {
        for s in 0..cfg.schedules {
            match lin_check_target(&target, cfg, cfg.seed.wrapping_add(s)) {
                Ok(n) => println!("# scale lin-check: {} seed {s}: {n} ops linearize", target.name),
                Err(e) => failures.push(format!("{} seed {s}: {e}", target.name)),
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_has_three_phases_and_sane_rows() {
        let cfg = ScaleConfig::test_small();
        let target = &crash_targets()[0];
        let cell = run_cell(target, 0, PersistenceDomain::Eadr, 2, &cfg).unwrap();
        assert_eq!(cell.rows.len(), 3);
        assert_eq!(cell.task_ops.len(), 3);
        for (row, (phase, per_task)) in cell.rows.iter().zip(&cell.task_ops) {
            assert_eq!(&row.phase, phase);
            assert_eq!(row.threads, 2);
            assert_eq!(per_task.len(), 2);
            assert_eq!(row.ops, per_task.iter().sum::<u64>());
            assert!(row.value > 0.0, "{phase}: zero throughput");
            assert_eq!(row.host_ns, 0, "scale rows must not carry host time");
        }
        // The load phase loaded every key exactly once.
        assert_eq!(cell.rows[0].ops, cfg.keys);
    }

    #[test]
    fn lin_check_passes_for_spash() {
        let cfg = LinCheckConfig {
            schedules: 2,
            ..LinCheckConfig::default()
        };
        let target = &crash_targets()[0];
        for s in 0..cfg.schedules {
            let n = lin_check_target(target, &cfg, cfg.seed + s).unwrap();
            assert_eq!(n, (cfg.threads as u64 * cfg.ops_per_thread) as usize);
        }
    }
}
