//! CLI for the benchmark suite: `spash-bench <experiment> [...]`.
//!
//! Experiments: `fig1`, `fig7`, `fig8`, `fig9`, `fig10`, `fig11`,
//! `fig12a`..`fig12d`, `fig12`, or `all`. Scale via `SPASH_BENCH_KEYS`,
//! `SPASH_BENCH_OPS`, `SPASH_BENCH_THREADS` (comma-separated).
//!
//! `--report <path>` (or `SPASH_BENCH_REPORT`) additionally writes the
//! experiments' machine-readable rows as a `BenchReport` JSON. `perf`
//! runs the fixed-seed deterministic regression suite and `compare`
//! gates two of its reports against each other (DESIGN.md, "Perf
//! reports and the regression gate"; recipes in EXPERIMENTS.md).
//! `scale` runs the multi-thread scalability sweep under the
//! cooperative scheduler — bit-deterministic scaling curves plus the
//! derived crossover/peak claims (DESIGN.md, "Deterministic scalability
//! sweep").
//!
//! `crashpoints` runs the offline crash-point fault-injection sweep
//! (DESIGN.md, "Crash-point fault injection"; recipe in EXPERIMENTS.md).
//! Knobs: `SPASH_CRASH_OPS` (10000), `SPASH_CRASH_KEYS` (2000),
//! `SPASH_CRASH_SEED`, `SPASH_CRASH_POINTS` (2000),
//! `SPASH_CRASH_EXHAUSTIVE` (5000), `SPASH_CRASH_ARENA_MB` (256),
//! `SPASH_CRASH_DOMAIN=eadr|adr|both`, `SPASH_CRASH_TARGETS=spash|baselines|all`.

use spash_bench::experiments::{exec_stream, ext, fig1, fig10, fig11, fig12, fig7, fig8, fig9, my_chunk};
use spash_bench::{bench_device, run_phase, Scale};

/// Diagnostic: where does Spash's virtual time go in an update-heavy run?
fn probe(scale: &Scale) {
    use spash::{Spash, SpashConfig};
    use spash_index_api::PersistentIndex;
    use spash_workloads::{load_keys, Distribution, Mix, OpStream, ValueSize, WorkloadConfig};
    let threads = scale.max_threads();
    let pv: usize = std::env::var("SPASH_PROBE_VAL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let dev = bench_device(scale.keys, pv as u64);
    let mut ctx = dev.ctx();
    let idx = std::sync::Arc::new(Spash::format(&mut ctx, SpashConfig::default()).unwrap());
    let wcfg = WorkloadConfig::new(
        scale.keys,
        Distribution::Zipfian,
        Mix::UPDATE_ONLY,
        ValueSize::Fixed(pv),
    );
    let keys = load_keys(&wcfg);
    let index = idx.clone();
    run_phase(&dev, threads, |tid, ctx| {
        let mine = my_chunk(&keys, threads, tid);
        let mut s = OpStream::new(&wcfg, tid as u64);
        for &k in mine {
            let v = s.expected_value(k);
            index.insert(ctx, k, &v).unwrap();
        }
        mine.len() as u64
    });
    // Span analysis of the LOAD phase itself (fig12b shape).
    {
        let dev2 = bench_device(scale.keys, pv as u64);
        let mut c2 = dev2.ctx();
        let idx2 = std::sync::Arc::new(Spash::format(&mut c2, SpashConfig::default()).unwrap());
        // lint:allow(std-sync): harness-side result collection by real
        // benchmark threads; never locked inside a scheduled region.
        let clocks2 = std::sync::Mutex::new(Vec::new());
        let i2 = idx2.clone();
        let keys2 = keys.clone();
        let r2 = run_phase(&dev2, threads, |tid, ctx| {
            let mine = my_chunk(&keys2, threads, tid);
            for &k in mine {
                i2.insert(ctx, k, &vec![9u8; pv]).unwrap();
            }
            clocks2.lock().unwrap().push(ctx.now());
            mine.len() as u64
        });
        let mut c = clocks2.into_inner().unwrap();
        c.sort();
        println!(
            "  LOAD: mops={:.3} elapsed={}ms clocks(min/med/max)={}/{}/{}ms horizon={}ms floor={}ms",
            r2.mops(),
            r2.elapsed_ns / 1_000_000,
            c[0] / 1_000_000,
            c[c.len() / 2] / 1_000_000,
            c[c.len() - 1] / 1_000_000,
            dev2.sim_horizon() / 1_000_000,
            r2.delta.bandwidth_floor_ns(&dev2.config().cost) / 1_000_000,
        );
    }
    let h0 = idx.htm_stats();
    let index = idx.clone();
    // lint:allow(std-sync): harness-side result collection by real
    // benchmark threads; never locked inside a scheduled region.
    let clocks = std::sync::Mutex::new(Vec::new());
    let r = run_phase(&dev, threads, |tid, ctx| {
        let mut s = OpStream::new(&wcfg, tid as u64);
        let t0 = ctx.now();
        let n = exec_stream(index.as_ref(), ctx, &mut s, scale.ops / threads as u64);
        clocks.lock().unwrap().push((ctx.now() - t0, ctx.now()));
        n
    });
    {
        let mut c = clocks.lock().unwrap();
        c.sort();
        let n = c.len();
        println!(
            "  thread clock spans ms: min={} med={} max={} (end min={} max={})",
            c[0].0 / 1_000_000,
            c[n / 2].0 / 1_000_000,
            c[n - 1].0 / 1_000_000,
            c[0].1 / 1_000_000,
            c[n - 1].1 / 1_000_000
        );
    }
    let h1 = idx.htm_stats();
    // Bisect: individual op timings on a fresh ctx.
    {
        let mut ctx = dev.ctx();
        ctx.reset_clock();
        let hot = keys[0];
        let t0 = ctx.now();
        for _ in 0..1000 {
            idx.update(&mut ctx, hot, &vec![9u8; pv]).unwrap();
        }
        let hot_ns = (ctx.now() - t0) / 1000;
        let t0 = ctx.now();
        for &k in keys.iter().step_by(37).take(1000) {
            idx.update(&mut ctx, k, &vec![9u8; pv]).unwrap();
        }
        let cold_ns = (ctx.now() - t0) / 1000;
        let t0 = ctx.now();
        for &k in keys.iter().step_by(41).take(1000) {
            idx.get_u64(&mut ctx, k);
        }
        let get_ns = (ctx.now() - t0) / 1000;
        println!("  per-op: hot_update={hot_ns}ns cold_update={cold_ns}ns get={get_ns}ns");
    }
    let cost = dev.config().cost.clone();
    println!(
        "update-only: ops={} elapsed={}ms mops={:.3}\n  floor={}ms media_wr={}MB media_rd={}MB WA={:.2}\n  cl_rd/op={:.2} cl_wr/op={:.2} hits_r/op={:.2} hits_w/op={:.2} evic/op={:.2} flush/op={:.2}\n  commits={} conflicts={} explicit={} capacity={} fallbacks={}",
        r.ops,
        r.elapsed_ns / 1_000_000,
        r.mops(),
        r.delta.bandwidth_floor_ns(&cost) / 1_000_000,
        r.delta.media_write_bytes >> 20,
        r.delta.media_read_bytes >> 20,
        r.delta.write_amplification(),
        r.per_op(r.delta.cl_reads),
        r.per_op(r.delta.cl_writes),
        r.per_op(r.delta.read_hits),
        r.per_op(r.delta.write_hits),
        r.per_op(r.delta.dirty_evictions),
        r.per_op(r.delta.flushes),
        h1.commits - h0.commits,
        h1.conflict_aborts - h0.conflict_aborts,
        h1.explicit_aborts - h0.explicit_aborts,
        h1.capacity_aborts - h0.capacity_aborts,
        idx.fallback_count(),
    );
}

/// Diagnostic: per-op composition of the fig12b insert variants.
fn probeb(scale: &Scale) {
    use spash::Spash;
    use spash_bench::indexes::ablation_config;
    use spash_index_api::PersistentIndex;
    use spash_workloads::{load_keys, Distribution, Mix, ValueSize, WorkloadConfig};
    let threads = scale.max_threads();
    for var in ["compacted-flush", "compacted-noflush", "scattered"] {
        let dev = bench_device(scale.keys, 64);
        let mut ctx = dev.ctx();
        let idx = std::sync::Arc::new(Spash::format(&mut ctx, ablation_config(var)).unwrap());
        let wcfg = WorkloadConfig::new(
            scale.keys,
            Distribution::Uniform,
            Mix::SEARCH_ONLY,
            ValueSize::Fixed(16),
        );
        let keys = load_keys(&wcfg);
        let i2 = idx.clone();
        let r = run_phase(&dev, threads, |tid, ctx| {
            let mine = my_chunk(&keys, threads, tid);
            for &k in mine {
                i2.insert(ctx, k, &[9u8; 16]).unwrap();
            }
            mine.len() as u64
        });
        let cost = dev.config().cost.clone();
        println!(
            "{var:<18} mops={:.3} elapsed={}ms floor={}ms horizon={}ms wr={}MB rd={}MB WA={:.2} clr/op={:.2} clw/op={:.2} evic/op={:.2} flush/op={:.2}",
            r.mops(),
            r.elapsed_ns / 1_000_000,
            r.delta.bandwidth_floor_ns(&cost) / 1_000_000,
            dev.sim_horizon() / 1_000_000,
            r.delta.media_write_bytes >> 20,
            r.delta.media_read_bytes >> 20,
            r.delta.write_amplification(),
            r.per_op(r.delta.cl_reads),
            r.per_op(r.delta.cl_writes),
            r.per_op(r.delta.dirty_evictions),
            r.per_op(r.delta.flushes),
        );
    }
}

/// Repro hunt: concurrent load at max threads, then verify every key.
fn probes(scale: &Scale) {
    use spash::{Spash, SpashConfig};
    use spash_index_api::PersistentIndex;
    use spash_workloads::{load_keys, Distribution, Mix, OpStream, ValueSize, WorkloadConfig};
    let threads = scale.max_threads();
    let merge = std::env::var("SPASH_PROBE_MERGE").map(|v| v == "1").unwrap_or(true);
    let do_update = std::env::var("SPASH_PROBE_UPDATE").map(|v| v == "1").unwrap_or(true);
    for round in 0..200 {
        let dev = bench_device(scale.keys, 16);
        let mut ctx = dev.ctx();
        let idx = std::sync::Arc::new(
            Spash::format(
                &mut ctx,
                SpashConfig {
                    enable_merge: merge,
                    ..SpashConfig::default()
                },
            )
            .unwrap(),
        );
        let cfg = WorkloadConfig::new(scale.keys, Distribution::Uniform, Mix::UPDATE_ONLY, ValueSize::Inline);
        let keys = load_keys(&cfg);
        let i2 = idx.clone();
        run_phase(&dev, threads, |tid, ctx| {
            let mine = my_chunk(&keys, threads, tid);
            for &k in mine {
                i2.insert(ctx, k, &k.to_le_bytes()[..6]).unwrap();
            }
            mine.len() as u64
        });
        if do_update {
            let i3 = idx.clone();
            let zcfg = WorkloadConfig::new(scale.keys, Distribution::Zipfian, Mix::UPDATE_ONLY, ValueSize::Inline);
            run_phase(&dev, threads, |tid, ctx| {
                let mut s = OpStream::new(&zcfg, tid as u64);
                exec_stream(i3.as_ref(), ctx, &mut s, scale.ops / threads as u64)
            });
        }
        let mut missing = 0;
        for &k in &keys {
            if idx.get_u64(&mut ctx, k).is_none() {
                missing += 1;
                if missing <= 3 {
                    eprintln!("round {round}: key {k} missing");
                    idx.debug_dump_key(&mut ctx, k);
                }
            }
        }
        if missing > 0 {
            let h = idx.htm_stats();
            eprintln!(
                "round {round}: {missing} keys missing (merge={merge} update={do_update})                  fallbacks={} capacity={} conflicts={} commits={} assists={} awaits={} depth_entries={}",
                idx.fallback_count(),
                h.capacity_aborts,
                h.conflict_aborts,
                h.commits,
                idx.dir_assist_count(),
                idx.dir_await_count(),
                idx.capacity(),
            );
            std::process::exit(1);
        }
        if round % 10 == 0 {
            eprintln!("round {round} ok");
        }
    }
}

/// Deterministic schedule exploration with linearizability checking
/// (DESIGN.md, "Deterministic schedule exploration"; recipe in
/// EXPERIMENTS.md): run seeded concurrent workloads under the cooperative
/// scheduler, one random interleaving per seed, topping up seeds until at
/// least `--seeds` *distinct* recorded schedules were explored per index.
/// Every completed history is checked with the Wing–Gong checker; any
/// violation or panic prints its schedule seed + decision trace, is
/// replayed for confirmation, and fails the run.
///
/// Knobs: `SPASH_SCHED_THREADS` (3), `SPASH_SCHED_OPS` (8, per thread),
/// `SPASH_SCHED_KEYS` (12), `SPASH_SCHED_PREFILL` (keys/2),
/// `SPASH_SCHED_SEED0` (1), `SPASH_SCHED_PREEMPTIONS` (24),
/// `SPASH_SCHED_ARENA_MB` (48), `SPASH_SCHED_TARGETS=spash|baselines|all`,
/// `SPASH_SCHED_MUTATE=<mode>` (checker canary: inject a known bug and
/// *require* a caught, replayable violation; `1`/`halo` enables the Halo
/// racy-insert mutation, `fp` corrupts Spash's fingerprint sidecar tags
/// at write time so fp-filtered probes miss live keys). The overlay
/// staleness canary is not wired here: surfacing it needs a
/// split→update→read pattern the tiny explore workloads don't reach
/// reliably; its checker catch is pinned deterministically by
/// `tests/fingerprint_oracle.rs` instead.
fn sched_explore(want_distinct: u64) {
    use spash::{Spash, SpashConfig};
    use spash_baselines::{testhooks, CLevel, Cceh, Dash, Halo, Level, Plush};
    use spash_index_api::crashpoint::CrashTarget;
    use spash_pmem::{PersistenceDomain, PmConfig};
    use spash_sched::explore::{explore, ExploreConfig, SeedFailure};
    use spash_sched::lin::LinConfig;
    use spash_sched::{SchedConfig, SchedMode};

    fn knob(name: &str, default: u64) -> u64 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(default)
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Mutation {
        None,
        HaloRacyInsert,
        SpashWrongTag,
    }

    spash_sched::silence_sched_panics();
    let mutation = match std::env::var("SPASH_SCHED_MUTATE").as_deref() {
        Err(_) | Ok("") | Ok("0") => Mutation::None,
        Ok("1") | Ok("halo") => Mutation::HaloRacyInsert,
        Ok("fp") => Mutation::SpashWrongTag,
        Ok(other) => {
            eprintln!("SPASH_SCHED_MUTATE={other:?}: unknown mutation (want 1|halo|fp)");
            std::process::exit(2);
        }
    };
    let mutate = mutation != Mutation::None;
    let threads = knob("SPASH_SCHED_THREADS", 3) as usize;
    let ops = knob("SPASH_SCHED_OPS", 8);
    let keys = knob("SPASH_SCHED_KEYS", if mutate { 4 } else { 12 });
    let prefill = knob("SPASH_SCHED_PREFILL", if mutate { 0 } else { keys / 2 });
    let seed0 = knob("SPASH_SCHED_SEED0", 1);
    let preemptions = knob("SPASH_SCHED_PREEMPTIONS", 24) as u32;

    let mut pm = PmConfig::small_test();
    pm.arena_size = knob("SPASH_SCHED_ARENA_MB", 48) << 20;
    pm.domain = match std::env::var("SPASH_SCHED_DOMAIN").as_deref() {
        Ok("adr") => PersistenceDomain::Adr,
        _ => PersistenceDomain::Eadr,
    };
    if pm.domain == PersistenceDomain::Adr {
        pm.fidelity = spash_pmem::CrashFidelity::Full;
    }
    let san_on = !matches!(std::env::var("SPASH_SCHED_SAN").as_deref(), Ok("off"));

    let which = std::env::var("SPASH_SCHED_TARGETS").unwrap_or_else(|_| "all".into());
    let mut targets: Vec<CrashTarget> = Vec::new();
    if mutate {
        match mutation {
            Mutation::HaloRacyInsert => targets.push(Halo::crash_target(8 << 20, u64::MAX)),
            Mutation::SpashWrongTag => {
                targets.push(Spash::crash_target(SpashConfig::test_default()))
            }
            Mutation::None => unreachable!(),
        }
    } else {
        if which != "baselines" {
            targets.push(Spash::crash_target(SpashConfig::test_default()));
        }
        if which == "baselines" || which == "all" {
            targets.push(Cceh::crash_target(1));
            targets.push(Dash::crash_target(1));
            targets.push(Level::crash_target(4));
            targets.push(CLevel::crash_target(4));
            targets.push(Plush::crash_target(4));
            targets.push(Halo::crash_target(8 << 20, u64::MAX));
        }
    }

    let lin = LinConfig {
        threads,
        ops_per_thread: ops,
        key_space: keys,
        prefill,
        workload_seed: 0x51AA_5EED,
        sched: SchedConfig::random(0, preemptions),
    };
    println!(
        "# sched: targets={} threads={threads} ops/thread={ops} keys={keys} \
         prefill={prefill} seed0={seed0} preemptions={preemptions} \
         want_distinct={want_distinct} mutate={}",
        targets.len(),
        u8::from(mutate),
    );
    println!("# target schedules distinct violations panics stopped");

    match mutation {
        Mutation::None => {}
        Mutation::HaloRacyInsert => {
            testhooks::set_halo_racy_insert(true);
        }
        Mutation::SpashWrongTag => {
            spash::testhooks::set_fp_wrong_tag(true);
        }
    }
    let mut failed = false;
    for target in &targets {
        // Persistence-ordering sanitizer rides every explored schedule;
        // its findings are replayable SeedFailures like any other
        // ordering violation. Publication checks fire when
        // SPASH_SCHED_DOMAIN=adr; SPASH_SCHED_SAN=off disarms.
        let mut pm = pm.clone();
        pm.san = san_on.then(|| spash_analysis::san_mode_for(&target.name));
        let mut distinct = std::collections::HashSet::new();
        let mut schedules = 0u64;
        let mut violations: Vec<SeedFailure> = Vec::new();
        let mut panics: Vec<SeedFailure> = Vec::new();
        let mut stopped = 0u64;
        let mut next_seed = seed0;
        // Top up in batches until the distinct floor is met (random
        // schedules occasionally collide) or the 4x valve trips.
        while (distinct.len() as u64) < want_distinct && schedules < want_distinct * 4 {
            let batch = (want_distinct - distinct.len() as u64).max(1);
            let cfg = ExploreConfig {
                seed0: next_seed,
                seeds: batch,
                lin: LinConfig {
                    sched: SchedConfig {
                        mode: SchedMode::Random {
                            seed: 0,
                            max_preemptions: preemptions,
                        },
                        ..lin.sched.clone()
                    },
                    ..lin.clone()
                },
            };
            let r = explore(target, &pm, &cfg);
            next_seed += batch;
            schedules += r.schedules;
            distinct.extend(r.trace_hashes.iter().copied());
            violations.extend(r.violations);
            panics.extend(r.panics);
            stopped += r.stopped;
            // In mutation mode one caught violation is the goal; don't
            // grind through the remaining seed budget.
            if mutate && !violations.is_empty() {
                break;
            }
        }
        println!(
            "{} {} {} {} {} {}",
            target.name,
            schedules,
            distinct.len(),
            violations.len(),
            panics.len(),
            stopped
        );
        for f in violations.iter().chain(panics.iter()) {
            eprintln!(
                "# {}: {}\n# replay_reproduces={}",
                target.name, f.detail, f.replay_reproduces
            );
        }
        if mutate {
            // Canary: the mutation MUST be caught, and the failure MUST
            // replay deterministically from its recorded trace.
            if violations.is_empty() || violations.iter().any(|f| !f.replay_reproduces) {
                eprintln!(
                    "# MUTATION CANARY FAILED for {}: caught={} replayable={}",
                    target.name,
                    violations.len(),
                    violations.iter().filter(|f| f.replay_reproduces).count()
                );
                failed = true;
            }
        } else if !violations.is_empty() || !panics.is_empty() || stopped > 0 {
            failed = true;
        } else if (distinct.len() as u64) < want_distinct {
            eprintln!(
                "# {}: only {} distinct schedules in {} runs (wanted {})",
                target.name,
                distinct.len(),
                schedules,
                want_distinct
            );
            failed = true;
        }
    }
    match mutation {
        Mutation::None => {}
        Mutation::HaloRacyInsert => {
            testhooks::set_halo_racy_insert(false);
        }
        Mutation::SpashWrongTag => {
            spash::testhooks::set_fp_wrong_tag(false);
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Offline crash-point fault-injection sweep: record a seeded workload's
/// media writes, then re-run it once per scheduled write with a crash
/// injected there, recover, and check the survivors against a shadow
/// model. One stat line per crash point, one summary per target; exits
/// non-zero if any sweep reports a violation.
fn crashpoints() {
    use spash::{Spash, SpashConfig};
    use spash_baselines::{CLevel, Cceh, Dash, Halo, Level, Plush};
    use spash_index_api::crashpoint::{run_sweep, CrashTarget, SweepConfig};
    use spash_pmem::{fault, PersistenceDomain};

    fn knob(name: &str, default: u64) -> u64 {
        std::env::var(name)
            .ok()
            .and_then(|v| {
                let v = v.trim().to_ascii_lowercase();
                match v.strip_prefix("0x") {
                    Some(h) => u64::from_str_radix(h, 16).ok(),
                    None => v.parse().ok(),
                }
            })
            .unwrap_or(default)
    }

    fault::silence_crash_point_panics();
    let domains: &[PersistenceDomain] = match std::env::var("SPASH_CRASH_DOMAIN").as_deref() {
        Ok("adr") => &[PersistenceDomain::Adr],
        Ok("eadr") => &[PersistenceDomain::Eadr],
        _ => &[PersistenceDomain::Eadr, PersistenceDomain::Adr],
    };
    let which = std::env::var("SPASH_CRASH_TARGETS").unwrap_or_else(|_| "spash".into());
    let mut failed = false;
    for &domain in domains {
        let mut cfg = SweepConfig::ci(domain);
        cfg.pm.arena_size = knob("SPASH_CRASH_ARENA_MB", 256) << 20;
        cfg.seed = knob("SPASH_CRASH_SEED", 0xC0FFEE);
        cfg.n_ops = knob("SPASH_CRASH_OPS", 10_000);
        cfg.key_space = knob("SPASH_CRASH_KEYS", 2_000);
        cfg.exhaustive_limit = knob("SPASH_CRASH_EXHAUSTIVE", 5_000);
        cfg.max_points = knob("SPASH_CRASH_POINTS", 2_000);

        let mut targets: Vec<CrashTarget> = Vec::new();
        if which != "baselines" {
            targets.push(Spash::crash_target(SpashConfig::test_default()));
        }
        if which == "baselines" || which == "all" {
            targets.push(Cceh::crash_target(1));
            targets.push(Dash::crash_target(1));
            targets.push(Level::crash_target(4));
            targets.push(CLevel::crash_target(4));
            targets.push(Plush::crash_target(4));
            targets.push(Halo::crash_target(8 << 20, u64::MAX));
        }
        for target in &targets {
            // Arm the persistence-ordering sanitizer: violations on the
            // record pass or any recovery path are hard sweep failures
            // (SPASH_CRASH_SAN=off to disable).
            cfg.pm.san = match std::env::var("SPASH_CRASH_SAN").as_deref() {
                Ok("off") => None,
                _ => Some(spash_analysis::san_mode_for(&target.name)),
            };
            let r = run_sweep(target, &cfg);
            println!(
                "# target={} domain={:?} seed={:#x} ops={} keys={} total_writes={} points={}",
                r.target,
                r.domain,
                cfg.seed,
                cfg.n_ops,
                cfg.key_space,
                r.total_writes,
                r.points.len()
            );
            println!(
                "# write_k committed_ops recovered recovery_ns \
                 reverted_lines flushed_lines leaked_allocs audit_ok"
            );
            let mut recovery_ns_sum = 0u64;
            let mut recovery_ns_max = 0u64;
            let mut leaked_max = 0u64;
            for p in &r.points {
                println!(
                    "{} {} {} {} {} {} {} {}",
                    p.write_k,
                    p.committed_ops,
                    u8::from(p.recovered),
                    p.recovery_ns,
                    p.reverted_lines,
                    p.flushed_lines,
                    p.leaked_allocs,
                    u8::from(p.audit_ok)
                );
                recovery_ns_sum += p.recovery_ns;
                recovery_ns_max = recovery_ns_max.max(p.recovery_ns);
                leaked_max = leaked_max.max(p.leaked_allocs);
            }
            let n = r.points.len().max(1) as u64;
            println!(
                "# summary target={} domain={:?} unrecovered={} failures={} \
                 recovery_ns(mean/max)={}/{} leaked_allocs(max)={}",
                r.target,
                r.domain,
                r.unrecovered,
                r.failure_count,
                recovery_ns_sum / n,
                recovery_ns_max,
                leaked_max
            );
            for f in &r.failures {
                eprintln!("FAIL target={} domain={:?}: {f}", r.target, r.domain);
            }
            if !r.is_ok() {
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

/// Persistence-ordering sanitizer run (DESIGN.md, "Persistence-ordering
/// sanitizer"; recipe in EXPERIMENTS.md): drive every index through the
/// seeded sweep workload with the sanitizer armed — `Strict` for the six
/// ADR-era baselines (every written line checked at every visibility
/// edge), `Relaxed` for eADR-native Spash (only `san_ordered`-registered
/// ranges) — and fail the run on any violation. Redundant-flush and
/// no-op-fence perf diagnostics are reported per target.
///
/// Knobs: `SPASH_SAN_DOMAIN=adr|eadr|both` (both), `SPASH_SAN_OPS`
/// (10000), `SPASH_SAN_KEYS` (1000), `SPASH_SAN_SEED` (0x5a17),
/// `SPASH_SAN_TARGETS=spash|baselines|all` (all).
fn san_run() {
    use spash_analysis::sandrive::{run_san, SanRunConfig};
    use spash_pmem::PersistenceDomain;

    fn knob(name: &str, default: u64) -> u64 {
        std::env::var(name)
            .ok()
            .and_then(|v| {
                let v = v.trim().to_ascii_lowercase();
                match v.strip_prefix("0x") {
                    Some(h) => u64::from_str_radix(h, 16).ok(),
                    None => v.parse().ok(),
                }
            })
            .unwrap_or(default)
    }

    let domains: &[PersistenceDomain] = match std::env::var("SPASH_SAN_DOMAIN").as_deref() {
        Ok("adr") => &[PersistenceDomain::Adr],
        Ok("eadr") => &[PersistenceDomain::Eadr],
        _ => &[PersistenceDomain::Adr, PersistenceDomain::Eadr],
    };
    let which = std::env::var("SPASH_SAN_TARGETS").unwrap_or_else(|_| "all".into());
    let mut failed = false;
    for &domain in domains {
        let mut cfg = SanRunConfig::full(domain);
        cfg.seed = knob("SPASH_SAN_SEED", cfg.seed);
        cfg.n_ops = knob("SPASH_SAN_OPS", cfg.n_ops);
        cfg.key_space = knob("SPASH_SAN_KEYS", cfg.key_space);
        for target in spash_analysis::all_targets() {
            let is_spash = target.name.starts_with("Spash");
            if (which == "spash" && !is_spash) || (which == "baselines" && is_spash) {
                continue;
            }
            let r = run_san(&target, &cfg);
            println!("{}", r.summary());
            for v in &r.report.violations {
                println!("  {v}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("sanitizer violations found");
        std::process::exit(1);
    }
}

/// `spash-bench perf [--out <path>]`: run the fixed-seed regression suite
/// and write `BENCH_<rev>.json`. Scale via `SPASH_PERF_KEYS` /
/// `SPASH_PERF_OPS` / `SPASH_PERF_REPEATS` / `SPASH_PERF_SEED`.
fn perf_cmd(args: &[String]) {
    use spash_bench::perf;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().cloned(),
            other => {
                eprintln!("perf: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let cfg = perf::PerfConfig::from_env();
    println!(
        "# perf: keys={} ops={} repeats={} seed={:#x}",
        cfg.keys, cfg.ops, cfg.repeats, cfg.seed
    );
    let report = match perf::run_suite(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf: {e}");
            std::process::exit(1);
        }
    };
    let path = out.unwrap_or_else(|| format!("BENCH_{}.json", report.rev));
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("perf: writing {path}: {e}");
        std::process::exit(1);
    }
    println!("# perf: {} rows -> {path}", report.rows.len());
}

/// `spash-bench scale [--out <path>] [--assert] [--lin-check]`: the
/// deterministic multi-thread scalability sweep under the cooperative
/// scheduler (DESIGN.md, "Deterministic scalability sweep"). Knobs:
/// `SPASH_SCALE_KEYS` / `SPASH_SCALE_OPS` / `SPASH_SCALE_THREADS`
/// (comma-separated ladder) / `SPASH_SCALE_SEED` /
/// `SPASH_SCALE_PREEMPTIONS`.
fn scale_cmd(args: &[String]) {
    use spash_bench::scale;
    let mut out: Option<String> = None;
    let mut do_assert = false;
    let mut lin_check = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().cloned(),
            "--assert" => do_assert = true,
            "--lin-check" => lin_check = true,
            other => {
                eprintln!("scale: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if lin_check {
        let cfg = scale::LinCheckConfig::default();
        println!(
            "# scale lin-check: {} threads x {} ops, {} keys, {} schedules/index",
            cfg.threads, cfg.ops_per_thread, cfg.keys, cfg.schedules
        );
        let failures = scale::lin_check_all(&cfg);
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        if !failures.is_empty() {
            std::process::exit(1);
        }
        println!("# scale lin-check: every index linearizes under the batch driver");
        return;
    }
    let cfg = scale::ScaleConfig::from_env();
    println!(
        "# scale: keys={} ops={} threads={:?} seed={:#x} preemptions={}",
        cfg.keys, cfg.ops, cfg.threads, cfg.seed, cfg.preemptions
    );
    let report = match scale::run_suite(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scale: {e}");
            std::process::exit(1);
        }
    };
    if do_assert {
        let bad = scale::check_claims(&report, &cfg);
        for b in &bad {
            eprintln!("CLAIM FAILED: {b}");
        }
        if !bad.is_empty() {
            std::process::exit(1);
        }
        println!("# scale: structural claims hold");
    }
    let path = out.unwrap_or_else(|| format!("BENCH_scale_{}.json", report.rev));
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("scale: writing {path}: {e}");
        std::process::exit(1);
    }
    println!(
        "# scale: {} rows, {} assertions -> {path}",
        report.rows.len(),
        report.assertions.len()
    );
}

/// `spash-bench service [--out <path>] [--lin-check]`: the sharded
/// batched KV front-end suite — open-loop tail latency and saturation
/// throughput per shard count, byte-deterministic per seed. Knobs:
/// `SPASH_SERVICE_KEYS` / `SPASH_SERVICE_OPS` / `SPASH_SERVICE_SHARDS`
/// (comma-separated ladder) / `SPASH_SERVICE_BATCH` /
/// `SPASH_SERVICE_SEED` / `SPASH_SERVICE_PREEMPTIONS` /
/// `SPASH_SERVICE_GAP`.
fn service_cmd(args: &[String]) {
    use spash_bench::service;
    let mut out: Option<String> = None;
    let mut lin_check = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = it.next().cloned(),
            "--lin-check" => lin_check = true,
            other => {
                eprintln!("service: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if lin_check {
        let cfg = spash_service::lincheck::ServiceLinConfig::default();
        println!(
            "# service lin-check: {} shards x {} ops, {} keys, {} schedules/index",
            cfg.shards, cfg.ops, cfg.keys, cfg.schedules
        );
        let failures = service::lin_check_all(&cfg);
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        if !failures.is_empty() {
            std::process::exit(1);
        }
        println!("# service lin-check: every index linearizes through the batched front-end");
        return;
    }
    let cfg = service::ServiceSuiteConfig::from_env();
    println!(
        "# service: keys={} ops={} shards={:?} batch_max={} seed={:#x} gap={}ns",
        cfg.keys, cfg.ops, cfg.shards, cfg.batch_max, cfg.seed, cfg.mean_gap_ns
    );
    let report = match service::run_suite(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("service: {e}");
            std::process::exit(1);
        }
    };
    let path = out.unwrap_or_else(|| format!("BENCH_service_{}.json", report.rev));
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("service: writing {path}: {e}");
        std::process::exit(1);
    }
    println!("# service: {} rows -> {path}", report.rows.len());
}

/// `spash-bench compare <old.json> <new.json> [--virtual-only|--wall-tol F]`:
/// diff two reports; exit non-zero on any regression.
fn compare_cmd(args: &[String]) {
    use spash_bench::{compare_reports, BenchReport, CompareOpts};
    let mut opts = CompareOpts::default();
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--virtual-only" => opts.wall_tol = None,
            "--wall-tol" => {
                opts.wall_tol = it.next().and_then(|v| v.parse().ok());
                if opts.wall_tol.is_none() {
                    eprintln!("--wall-tol needs a fraction (e.g. 0.5)");
                    std::process::exit(2);
                }
            }
            _ => paths.push(a),
        }
    }
    let [old_path, new_path] = paths[..] else {
        eprintln!("usage: spash-bench compare <old.json> <new.json> [--virtual-only|--wall-tol F]");
        std::process::exit(2);
    };
    let load = |p: &String| -> BenchReport {
        let text = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("compare: reading {p}: {e}");
            std::process::exit(1);
        });
        BenchReport::from_json(&text).unwrap_or_else(|e| {
            eprintln!("compare: parsing {p}: {e}");
            std::process::exit(1);
        })
    };
    let (old, new) = (load(old_path), load(new_path));
    let out = compare_reports(&old, &new, &opts);
    for n in &out.notes {
        println!("note: {n}");
    }
    for r in &out.regressions {
        println!("REGRESSION: {r}");
    }
    println!(
        "# compare: {} rows, {} regressions ({} -> {})",
        out.rows_compared,
        out.regressions.len(),
        old.rev,
        new.rev
    );
    if !out.ok() {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("perf") => return perf_cmd(&args[1..]),
        Some("scale") => return scale_cmd(&args[1..]),
        Some("service") => return service_cmd(&args[1..]),
        Some("compare") => return compare_cmd(&args[1..]),
        _ => {}
    }
    let scale = Scale::from_env();
    if args.is_empty() {
        eprintln!(
            "usage: spash-bench <fig1|fig7|fig8|fig9|fig10|fig11|fig12[a-d]|all|ext|crashpoints|san|sched [--seeds N]|perf [--out P]|scale [--out P] [--assert] [--lin-check]|service [--out P] [--lin-check]|compare OLD NEW> ...\n\
             scale: SPASH_BENCH_KEYS={} SPASH_BENCH_OPS={} SPASH_BENCH_THREADS={:?}\n\
             report: SPASH_BENCH_REPORT=<path> or --report <path> writes machine-readable rows",
            scale.keys, scale.ops, scale.threads
        );
        std::process::exit(2);
    }
    println!(
        "# scale: keys={} ops={} threads={:?}",
        scale.keys, scale.ops, scale.threads
    );
    let mut report_path = std::env::var("SPASH_BENCH_REPORT").ok();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--report" => {
                report_path = it.next().cloned();
                if report_path.is_none() {
                    eprintln!("--report needs a path");
                    std::process::exit(2);
                }
                continue;
            }
            "sched" => {
                let mut seeds = 64u64;
                if it.peek().map(|s| s.as_str()) == Some("--seeds") {
                    it.next();
                    seeds = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("sched --seeds needs a positive integer");
                            std::process::exit(2);
                        });
                }
                sched_explore(seeds.max(1));
                continue;
            }
            "fig1" => fig1::run(&scale),
            "fig7" => fig7::run(&scale),
            "fig8" => fig8::run(&scale),
            "fig9" => fig9::run(&scale),
            "fig10" => fig10::run(&scale),
            "fig11" => fig11::run(&scale),
            "fig12" => fig12::run(&scale),
            "fig12a" => fig12::run_a(&scale),
            "fig12b" => fig12::run_b(&scale),
            "fig12c" => fig12::run_c(&scale),
            "fig12d" => fig12::run_d(&scale),
            "all" => {
                fig1::run(&scale);
                fig7::run(&scale);
                fig8::run(&scale);
                fig9::run(&scale);
                fig10::run(&scale);
                fig11::run(&scale);
                fig12::run(&scale);
                ext::run(&scale);
            }
            "ext" => ext::run(&scale),
            "crashpoints" => crashpoints(),
            "san" => san_run(),
            "probes" => probes(&scale),
            "probeb" => probeb(&scale),
            "probe" => probe(&scale),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }
    let rows = spash_bench::report::drain_rows();
    if let Some(path) = report_path {
        let mut rep = spash_bench::BenchReport::new(&spash_bench::perf::short_rev());
        rep.set_config("keys", scale.keys);
        rep.set_config("ops", scale.ops);
        rep.set_config(
            "threads",
            scale
                .threads
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(","),
        );
        rep.rows = rows;
        if let Err(e) = std::fs::write(&path, rep.to_json()) {
            eprintln!("report: writing {path}: {e}");
            std::process::exit(1);
        }
        println!("# report: {} rows -> {path}", rep.rows.len());
    }
}
