//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§VI). See DESIGN.md for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.
//!
//! Run everything: `cargo bench --workspace`, or individual figures:
//! `cargo bench -p spash-bench --bench fig7_micro_throughput`. The CLI
//! binary (`cargo run -p spash-bench --release -- fig10`) exposes the
//! same experiments with `SPASH_BENCH_KEYS` / `SPASH_BENCH_OPS` /
//! `SPASH_BENCH_THREADS` scale knobs.

pub mod experiments;
pub mod harness;
pub mod indexes;
pub mod perf;
pub mod report;
pub mod scale;
pub mod service;
pub mod statskit;

// The hand-rolled JSON writer moved to `spash-analysis` so the linter's
// machine-readable reports can share it (bench already depends on
// analysis; the reverse edge would be a cycle). Same module, same path
// for downstream users.
pub use spash_analysis::json;

pub use harness::{print_table, run_phase, PhaseResult, Scale};
pub use indexes::{bench_device, build_index, IndexKind};
pub use report::{compare_reports, BenchReport, CompareOpts, ExperimentRow};
