//! Fig. 12 — the in-depth analysis of each design component (paper
//! §VI-D): (a) adaptive in-place update, (b) compacted-flush insertion,
//! (c) HTM-based concurrency control, (d) pipeline depth.

use std::sync::Arc;

use spash::{OracleDetector, Spash, SpashConfig, UpdatePolicy};
use spash_index_api::PersistentIndex;

use spash_workloads::{
    load_keys, Distribution, Mix, OpStream, ValueSize, WorkloadConfig,
};

use crate::experiments::{exec_stream, my_chunk};
use crate::harness::{print_table, run_phase, PhaseResult, Scale};
use crate::indexes::{ablation_config, bench_device, build_spash_variant};

fn load(
    dev: &Arc<spash_pmem::PmDevice>,
    idx: &Spash,
    cfg: &WorkloadConfig,
    threads: usize,
) -> PhaseResult {
    let keys = load_keys(cfg);
    run_phase(dev, threads, |tid, ctx| {
        let mine = my_chunk(&keys, threads, tid);
        let mut s = OpStream::new(cfg, tid as u64);
        for &k in mine {
            let v = s.expected_value(k);
            idx.insert(ctx, k, &v).expect("load");
        }
        mine.len() as u64
    })
}

fn run_mix(
    dev: &Arc<spash_pmem::PmDevice>,
    idx: &Spash,
    cfg: &WorkloadConfig,
    threads: usize,
    ops: u64,
) -> PhaseResult {
    run_phase(dev, threads, |tid, ctx| {
        let mut s = OpStream::new(cfg, tid as u64);
        exec_stream(idx, ctx, &mut s, ops / threads as u64)
    })
}

/// (a) Adaptive in-place update: update-only zipfian workloads across
/// value sizes, for the four update policies (Table I ablation). Reports
/// both throughput and the PM write traffic each policy generated — the
/// traffic is the mechanism (hot updates absorbed by the cache vs flushed
/// repeatedly vs amplified by random eviction).
pub fn run_a(scale: &Scale) {
    let threads = scale.max_threads();
    let sizes = [16usize, 64, 256, 1024];
    let variants = ["adaptive", "always-flush", "never-flush", "oracle"];
    let columns: Vec<String> = variants.iter().map(|s| s.to_string()).collect();
    let mut rows = Vec::new();
    let mut traffic_rows = Vec::new();
    for vs in sizes {
        let mut vals = Vec::new();
        let mut traffic = Vec::new();
        for &var in &variants {
            let wcfg = WorkloadConfig::new(
                scale.keys,
                Distribution::Zipfian,
                Mix::UPDATE_ONLY,
                ValueSize::Fixed(vs),
            );
            let cfg = if var == "oracle" {
                SpashConfig {
                    update_policy: UpdatePolicy::Adaptive(Arc::new(OracleDetector::new(
                        wcfg.hot_set_hashes(0.01),
                    ))),
                    ..SpashConfig::default()
                }
            } else {
                ablation_config(var)
            };
            let dev = bench_device(scale.keys, vs as u64);
            let idx = build_spash_variant(&dev, cfg);
            load(&dev, &idx, &wcfg, threads);
            let r = run_mix(&dev, &idx, &wcfg, threads, scale.ops);
            crate::report::emit_phase(
                "fig12a",
                var,
                &format!("{vs}B"),
                "update",
                "mops",
                r.mops(),
                threads,
                &r,
            );
            vals.push(r.mops());
            traffic.push(r.delta.media_write_bytes as f64 / (1 << 20) as f64);
        }
        rows.push((format!("value {vs} B"), vals));
        traffic_rows.push((format!("value {vs} B"), traffic));
    }
    print_table(
        "Fig 12(a): adaptive in-place update (update-only, zipfian)",
        &columns,
        &rows,
        "Mops/s (virtual time)",
    );
    print_table(
        "Fig 12(a) mechanism: PM write traffic per policy",
        &columns,
        &traffic_rows,
        "MiB written to media",
    );
}

/// (b) Compacted-flush insertion: insert-only uniform workloads with
/// small out-of-place values.
pub fn run_b(scale: &Scale) {
    let threads = scale.max_threads();
    // Blob = 16 B header + value; the compacted (small-class) regime is
    // blob ≤ 128 B, i.e. values ≤ 112 B.
    let sizes = [16usize, 64, 112];
    let variants = ["compacted-flush", "compacted-noflush", "scattered"];
    let columns: Vec<String> = variants.iter().map(|s| s.to_string()).collect();
    let mut rows = Vec::new();
    let mut traffic_rows = Vec::new();
    for vs in sizes {
        let mut vals = Vec::new();
        let mut traffic = Vec::new();
        for &var in &variants {
            let wcfg = WorkloadConfig::new(
                scale.keys,
                Distribution::Uniform,
                Mix::SEARCH_ONLY,
                ValueSize::Fixed(vs),
            );
            let dev = bench_device(scale.keys, vs as u64);
            let idx = build_spash_variant(&dev, ablation_config(var));
            let r = load(&dev, &idx, &wcfg, threads);
            crate::report::emit_phase(
                "fig12b",
                var,
                &format!("{vs}B"),
                "load",
                "mops",
                r.mops(),
                threads,
                &r,
            );
            vals.push(r.mops());
            traffic.push(r.delta.media_write_bytes as f64 / (1 << 20) as f64);
        }
        rows.push((format!("value {vs} B"), vals));
        traffic_rows.push((format!("value {vs} B"), traffic));
    }
    print_table(
        "Fig 12(b): compacted-flush insertion (insert-only, uniform)",
        &columns,
        &rows,
        "Mops/s (virtual time)",
    );
    print_table(
        "Fig 12(b) mechanism: PM write traffic per insert policy",
        &columns,
        &traffic_rows,
        "MiB written to media",
    );
}

/// (c) HTM-based concurrency protocol vs per-segment lock variants, YCSB
/// mixes, zipfian, inline KV.
pub fn run_c(scale: &Scale) {
    let threads = scale.max_threads();
    let variants = ["htm", "write-lock", "write-read-lock"];
    let mixes = [
        ("Read-int 90:10", Mix::READ_INTENSIVE),
        ("Balanced 50:50", Mix::BALANCED),
        ("Write-int 10:90", Mix::WRITE_INTENSIVE),
    ];
    let columns: Vec<String> = variants.iter().map(|s| s.to_string()).collect();
    let mut rows = Vec::new();
    for (label, mix) in mixes {
        let mut vals = Vec::new();
        for &var in &variants {
            let wcfg = WorkloadConfig::new(
                scale.keys,
                Distribution::Zipfian,
                mix,
                ValueSize::Inline,
            );
            let dev = bench_device(scale.keys, 16);
            let idx = build_spash_variant(&dev, ablation_config(var));
            load(&dev, &idx, &wcfg, threads);
            let r = run_mix(&dev, &idx, &wcfg, threads, scale.ops);
            crate::report::emit_phase("fig12c", var, label, "run", "mops", r.mops(), threads, &r);
            vals.push(r.mops());
        }
        rows.push((label.to_string(), vals));
    }
    print_table(
        &format!("Fig 12(c): concurrency protocols at {threads} threads (YCSB, zipfian)"),
        &columns,
        &rows,
        "Mops/s (virtual time)",
    );
}

/// (d) Pipeline depth: search-only throughput and mean operation latency
/// for PD ∈ {1,2,4,8} across thread counts.
pub fn run_d(scale: &Scale) {
    let depths = [1usize, 2, 4, 8];
    let columns: Vec<String> = depths.iter().map(|d| format!("PD={d}")).collect();
    let mut tput_rows = Vec::new();
    let mut lat_rows = Vec::new();
    for &threads in &scale.threads {
        let mut tput = Vec::new();
        let mut lat = Vec::new();
        for &pd in &depths {
            let wcfg = WorkloadConfig::new(
                scale.keys,
                Distribution::Zipfian,
                Mix::SEARCH_ONLY,
                ValueSize::Inline,
            );
            let dev = bench_device(scale.keys, 16);
            let idx = build_spash_variant(
                &dev,
                SpashConfig {
                    pipeline_depth: pd,
                    ..SpashConfig::default()
                },
            );
            load(&dev, &idx, &wcfg, threads);
            dev.invalidate_cache();
            let r = run_mix(&dev, &idx, &wcfg, threads, scale.ops);
            crate::report::emit_phase(
                "fig12d",
                &format!("PD{pd}"),
                &format!("{threads}thr"),
                "search",
                "mops",
                r.mops(),
                threads,
                &r,
            );
            tput.push(r.mops());
            // Mean per-op latency in µs: thread-time × threads / ops.
            let us = r.elapsed_ns as f64 * threads as f64 / r.ops as f64 / 1e3;
            crate::report::emit_value(
                "fig12d",
                &format!("PD{pd}"),
                &format!("{threads}thr"),
                "latency",
                "us_per_op",
                us,
            );
            lat.push(us);
        }
        tput_rows.push((format!("{threads} thr"), tput));
        lat_rows.push((format!("{threads} thr"), lat));
    }
    print_table(
        "Fig 12(d): pipeline depth — throughput (search-only)",
        &columns,
        &tput_rows,
        "Mops/s (virtual time)",
    );
    print_table(
        "Fig 12(d): pipeline depth — mean latency",
        &columns,
        &lat_rows,
        "µs/op (virtual time)",
    );
}

pub fn run(scale: &Scale) {
    run_a(scale);
    run_b(scale);
    run_c(scale);
    run_d(scale);
}
