//! Fig. 7 — micro-benchmark throughput of each base operation
//! (insert / search / update / delete), uniform distribution, inline
//! key-values, swept over thread counts (paper §VI-B).
//!
//! Expected shape: Spash on top everywhere; the pipeline roughly doubles
//! search throughput; Level/CLevel collapse on inserts (full-table
//! rehash); CCEH and Level reads trail badly (PM read-locks).


use spash_workloads::{load_keys, Distribution, Mix, OpStream, ValueSize, WorkloadConfig};

use crate::experiments::{exec_stream, my_chunk};
use crate::harness::{print_table, run_phase, PhaseResult, Scale};
use crate::indexes::{bench_device, build_index, IndexKind};

/// One index, one thread count: returns (insert, search, update, delete)
/// results.
pub fn run_one(scale: &Scale, kind: IndexKind, threads: usize) -> [PhaseResult; 4] {
    let dev = bench_device(scale.keys, 16);
    let idx = build_index(&dev, kind);
    let index = idx.as_ref();
    let cfg = WorkloadConfig::new(
        scale.keys,
        Distribution::Uniform,
        Mix::SEARCH_ONLY,
        ValueSize::Inline,
    );
    let keys = load_keys(&cfg);

    // Insert phase: the load itself, partitioned over threads.
    let insert = run_phase(&dev, threads, |tid, ctx| {
        let mine = my_chunk(&keys, threads, tid);
        for &k in mine {
            index
                .insert(ctx, k, &k.to_le_bytes()[..6])
                .expect("load insert");
        }
        mine.len() as u64
    });

    // Search phase.
    let search = run_phase(&dev, threads, |tid, ctx| {
        let mut s = OpStream::new(&cfg, tid as u64);
        exec_stream(index, ctx, &mut s, scale.ops / threads as u64)
    });

    // Update phase.
    let ucfg = WorkloadConfig {
        mix: Mix::UPDATE_ONLY,
        ..cfg.clone()
    };
    let update = run_phase(&dev, threads, |tid, ctx| {
        let mut s = OpStream::new(&ucfg, tid as u64);
        exec_stream(index, ctx, &mut s, scale.ops / threads as u64)
    });

    // Delete phase: each thread deletes its own loaded keys (each key
    // exactly once).
    let delete = run_phase(&dev, threads, |tid, ctx| {
        let mine = my_chunk(&keys, threads, tid);
        let n = (mine.len() as u64).min(scale.ops / threads as u64 + 1);
        for &k in &mine[..n as usize] {
            assert!(index.remove(ctx, k), "{}: delete of loaded key {k}", index.name());
        }
        n
    });

    [insert, search, update, delete]
}

/// The full Fig 7 sweep: four tables (one per operation), rows = indexes,
/// columns = thread counts.
pub fn run(scale: &Scale) {
    let ops = ["(b) insert", "(a) search", "(c) update", "(d) delete"];
    let phases = ["insert", "search", "update", "delete"];
    let columns: Vec<String> = scale.threads.iter().map(|t| format!("{t} thr")).collect();
    let mut tables: [Vec<(String, Vec<f64>)>; 4] = Default::default();
    for kind in IndexKind::MICRO {
        let mut series: [Vec<f64>; 4] = Default::default();
        for &t in &scale.threads {
            let rs = run_one(scale, kind, t);
            for (i, r) in rs.iter().enumerate() {
                series[i].push(r.mops());
                crate::report::emit_phase(
                    "fig7",
                    kind.label(),
                    &format!("{t}thr"),
                    phases[i],
                    "mops",
                    r.mops(),
                    t,
                    r,
                );
            }
        }
        for i in 0..4 {
            tables[i].push((kind.label().to_string(), std::mem::take(&mut series[i])));
        }
    }
    for (i, t) in tables.iter().enumerate() {
        print_table(
            &format!("Fig 7{}: micro throughput, uniform, inline KV", ops[i]),
            &columns,
            t,
            "Mops/s (virtual time)",
        );
    }
}
