//! Fig. 8 — average cacheline and XPLine accesses to PM per hash
//! operation (paper §VI-B, measured there with ipmctl; here with the
//! media model's counters).
//!
//! The headline numbers the paper reports for Spash: search ≈ 1.1
//! cacheline / 1.0 XPLine reads; update/delete ≈ 1.0/1.0 writes; insert ≈
//! 2.0 cachelines but only ≈ 1.1 XPLines written (split writes coalesce
//! within XPLine-sized segments).


use spash_workloads::{load_keys, Distribution, Mix, OpStream, ValueSize, WorkloadConfig};

use crate::experiments::{exec_stream, my_chunk};
use crate::harness::{print_table, run_phase, PhaseResult, Scale};
use crate::indexes::{bench_device, build_index, IndexKind};

pub struct AccessCounts {
    pub insert: PhaseResult,
    pub search: PhaseResult,
    pub update: PhaseResult,
    pub delete: PhaseResult,
}

pub fn run_one(scale: &Scale, kind: IndexKind) -> AccessCounts {
    let threads = scale.max_threads();
    let dev = bench_device(scale.keys, 16);
    let idx = build_index(&dev, kind);
    let index = idx.as_ref();
    let cfg = WorkloadConfig::new(
        scale.keys,
        Distribution::Uniform,
        Mix::SEARCH_ONLY,
        ValueSize::Inline,
    );
    let keys = load_keys(&cfg);

    let insert = run_phase(&dev, threads, |tid, ctx| {
        let mine = my_chunk(&keys, threads, tid);
        for &k in mine {
            index.insert(ctx, k, &k.to_le_bytes()[..6]).unwrap();
        }
        mine.len() as u64
    });
    // Evict everything so steady-state (cold) access counts are measured,
    // like the paper's 20M-key working set exceeding the LLC.
    dev.invalidate_cache();
    let search = run_phase(&dev, threads, |tid, ctx| {
        let mut s = OpStream::new(&cfg, tid as u64);
        exec_stream(index, ctx, &mut s, scale.ops / threads as u64)
    });
    dev.invalidate_cache();
    let ucfg = WorkloadConfig {
        mix: Mix::UPDATE_ONLY,
        ..cfg.clone()
    };
    let update = run_phase(&dev, threads, |tid, ctx| {
        let mut s = OpStream::new(&ucfg, tid as u64);
        exec_stream(index, ctx, &mut s, scale.ops / threads as u64)
    });
    dev.invalidate_cache();
    let delete = run_phase(&dev, threads, |tid, ctx| {
        let mine = my_chunk(&keys, threads, tid);
        for &k in mine {
            index.remove(ctx, k);
        }
        mine.len() as u64
    });
    AccessCounts {
        insert,
        search,
        update,
        delete,
    }
}

/// Full Fig 8: for every index, the per-op cacheline/XPLine read+write
/// counts for each operation. For write phases the cache is flushed into
/// the delta so in-cache dirty data is accounted.
pub fn run(scale: &Scale) {
    let columns = vec![
        "CL rd".into(),
        "CL wr".into(),
        "XP rd".into(),
        "XP wr".into(),
    ];
    let counts: Vec<(IndexKind, AccessCounts)> = IndexKind::MICRO
        .into_iter()
        .map(|k| (k, run_one(scale, k)))
        .collect();
    for (name, pick) in [
        ("search", 1usize),
        ("insert", 0),
        ("update", 2),
        ("delete", 3),
    ] {
        let mut rows = Vec::new();
        for (kind, c) in &counts {
            let r = match pick {
                0 => &c.insert,
                1 => &c.search,
                2 => &c.update,
                _ => &c.delete,
            };
            let threads = scale.max_threads();
            crate::report::emit_phase(
                "fig8",
                kind.label(),
                &format!("{threads}thr"),
                name,
                "mops",
                r.mops(),
                threads,
                r,
            );
            rows.push((
                kind.label().to_string(),
                vec![
                    r.per_op(r.delta.cl_reads),
                    r.per_op(r.delta.cl_writes + r.delta.ntstores),
                    r.per_op(r.delta.xp_reads),
                    r.per_op(r.delta.xp_writes),
                ],
            ));
        }
        print_table(
            &format!("Fig 8: PM accesses per {name} operation"),
            &columns,
            &rows,
            "accesses/op",
        );
    }
}
