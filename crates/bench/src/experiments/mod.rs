//! One module per figure/table of the paper's evaluation (§VI).

pub mod ext;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig7;
pub mod fig8;
pub mod fig9;

use spash_index_api::{BatchOp, BatchResult, PersistentIndex};
use spash_pmem::MemCtx;
use spash_workloads::{OpStream, WorkOp};

/// Batch size fed to `run_batch` (Spash pipelines it; baselines run it
/// serially through the default implementation).
pub const EXEC_BATCH: usize = 64;

/// Execute `n` run-phase operations from `stream` against `index`,
/// batched. Returns the number of operations executed.
pub fn exec_stream(
    index: &dyn PersistentIndex,
    ctx: &mut MemCtx,
    stream: &mut OpStream,
    n: u64,
) -> u64 {
    let mut owned: Vec<WorkOp> = Vec::with_capacity(EXEC_BATCH);
    let mut results: Vec<BatchResult> = Vec::with_capacity(EXEC_BATCH);
    let mut left = n;
    while left > 0 {
        let take = (left as usize).min(EXEC_BATCH);
        owned.clear();
        for _ in 0..take {
            owned.push(stream.next_op());
        }
        let batch: Vec<BatchOp<'_>> = owned
            .iter()
            .map(|op| match op {
                WorkOp::Search(k) => BatchOp::Get(*k),
                WorkOp::Update(k, v) => BatchOp::Update(*k, v.as_slice()),
                WorkOp::Insert(k, v) => BatchOp::Insert(*k, v.as_slice()),
                WorkOp::Delete(k) => BatchOp::Remove(*k),
            })
            .collect();
        results.clear();
        index.run_batch(ctx, &batch, &mut results);
        // Surface resource exhaustion loudly: silently-failing ops would
        // otherwise inflate throughput numbers.
        for r in &results {
            let oom = matches!(
                r,
                BatchResult::Inserted(Err(spash_index_api::IndexError::OutOfMemory))
                    | BatchResult::Updated(Err(spash_index_api::IndexError::OutOfMemory))
            );
            assert!(!oom, "index ran out of memory mid-benchmark: {}", index.name());
        }
        left -= take as u64;
    }
    n
}

/// Partition `items` into `threads` equal chunks; returns the `tid`-th.
pub fn my_chunk<T>(items: &[T], threads: usize, tid: usize) -> &[T] {
    let per = items.len().div_ceil(threads);
    let start = (tid * per).min(items.len());
    let end = ((tid + 1) * per).min(items.len());
    &items[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexes::{bench_device, build_index, IndexKind};
    use spash_workloads::{Distribution, Mix, ValueSize, WorkloadConfig};

    #[test]
    fn exec_stream_runs_mixed_ops() {
        let dev = bench_device(1000, 16);
        let idx = build_index(&dev, IndexKind::Spash);
        let mut ctx = dev.ctx();
        let cfg = WorkloadConfig::new(1000, Distribution::Uniform, Mix::BALANCED, ValueSize::Inline);
        for k in spash_workloads::load_keys(&cfg) {
            idx.insert_u64(&mut ctx, k, k).unwrap();
        }
        let mut s = OpStream::new(&cfg, 0);
        let done = exec_stream(idx.as_ref(), &mut ctx, &mut s, 500);
        assert_eq!(done, 500);
    }

    #[test]
    fn chunks_cover_everything() {
        let items: Vec<u32> = (0..103).collect();
        let mut seen = Vec::new();
        for t in 0..4 {
            seen.extend_from_slice(my_chunk(&items, 4, t));
        }
        assert_eq!(seen, items);
    }
}
