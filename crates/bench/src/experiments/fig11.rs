//! Fig. 11 — YCSB throughput with variable-sized values (paper §VI-C:
//! 16-byte keys, values 16–1024 B, out-of-place for the extended
//! baselines).
//!
//! Expected shape: Spash's load-phase lead peaks for small values
//! (compacted-flush fills XPLines; the baselines' scattered out-of-place
//! blobs amplify writes); in the write-intensive run phase adaptive
//! in-place updates win and the hybrid flush policy keeps the >64 B gap.

use spash_workloads::ValueSize;

use crate::experiments::fig10;
use crate::harness::{print_table, PhaseResult, Scale};
use crate::indexes::IndexKind;

pub const VALUE_SIZES: [usize; 4] = [16, 64, 256, 1024];

pub fn run(scale: &Scale) {
    let kinds = IndexKind::ALL;
    let columns: Vec<String> = kinds.iter().map(|k| k.label().to_string()).collect();
    // results[size][kind] -> phases
    let results: Vec<Vec<Vec<PhaseResult>>> = VALUE_SIZES
        .iter()
        .map(|&vs| {
            kinds
                .iter()
                .map(|&k| fig10::run_one(scale, k, ValueSize::Fixed(vs)))
                .collect()
        })
        .collect();
    let threads = scale.max_threads();
    for (p, (label, _)) in fig10::PHASES.iter().enumerate() {
        let mut rows = Vec::new();
        for (si, &vs) in VALUE_SIZES.iter().enumerate() {
            for (kind, r) in kinds.iter().zip(&results[si]) {
                crate::report::emit_phase(
                    "fig11",
                    kind.label(),
                    &format!("{vs}B"),
                    label,
                    "mops",
                    r[p].mops(),
                    threads,
                    &r[p],
                );
            }
            rows.push((
                format!("value {vs} B"),
                results[si].iter().map(|r| r[p].mops()).collect(),
            ));
        }
        print_table(
            &format!("Fig 11 [{label}]: YCSB, variable-size values"),
            &columns,
            &rows,
            "Mops/s (virtual time)",
        );
    }
}
