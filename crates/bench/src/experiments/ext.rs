//! Extension experiments beyond the paper's figures.
//!
//! **Doubling ablation** — §IV-B claims collaborative staged doubling
//! "significantly improves the overall throughput and reduces the tail
//! latency" versus blocking behind the doubling thread, but the paper has
//! no figure isolating it. This experiment inserts through repeated
//! directory doublings and reports throughput plus per-op latency
//! percentiles for both modes.

// lint:allow(std-sync): harness-side latency collection, only locked by
// real benchmark threads outside any scheduled region.
use std::sync::Mutex;

use spash::{Spash, SpashConfig};
use spash_index_api::PersistentIndex;
use spash_workloads::{load_keys, Distribution, Mix, ValueSize, WorkloadConfig};

use crate::experiments::my_chunk;
use crate::harness::{print_table, run_phase, Scale};
use crate::statskit::percentile;

/// Insert-only growth run; returns (Mops, p50 µs, p99 µs, p999 µs, max µs).
fn run_mode(scale: &Scale, collaborative: bool) -> [f64; 5] {
    let threads = scale.max_threads();
    // A small initial directory forces many doublings during the load. A
    // generous cache keeps the run CPU-bound so the doubling serialization
    // (not PM bandwidth) sets the tail.
    let dev = spash_pmem::PmDevice::new(spash_pmem::PmConfig {
        arena_size: (scale.keys * 256).next_power_of_two().max(512 << 20),
        cache_capacity: 64 << 20,
        ..spash_pmem::PmConfig::default()
    });
    let mut ctx = dev.ctx();
    let idx = std::sync::Arc::new(
        Spash::format(
            &mut ctx,
            SpashConfig {
                initial_depth: 2,
                collaborative_doubling: collaborative,
                ..SpashConfig::default()
            },
        )
        .unwrap(),
    );
    let cfg = WorkloadConfig::new(
        scale.keys,
        Distribution::Uniform,
        Mix::SEARCH_ONLY,
        ValueSize::Inline,
    );
    let keys = load_keys(&cfg);
    let lats: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let index = std::sync::Arc::clone(&idx);
    let r = run_phase(&dev, threads, |tid, ctx| {
        let mine = my_chunk(&keys, threads, tid);
        let mut local = Vec::with_capacity(mine.len());
        for (i, &k) in mine.iter().enumerate() {
            let t0 = ctx.now();
            index.insert(ctx, k, &k.to_le_bytes()[..6]).unwrap();
            // Only the steady-state second half counts: the first half is
            // dominated by cold-cache fills, which would mask the doubling
            // stalls this experiment isolates.
            if i >= mine.len() / 2 {
                local.push(ctx.now() - t0);
            }
        }
        lats.lock().unwrap().extend(local);
        mine.len() as u64
    });
    eprintln!(
        "  [{}] stage assists={} awaits={} fallbacks={}",
        if collaborative { "collab" } else { "block" },
        idx.dir_assist_count(),
        idx.dir_await_count(),
        idx.fallback_count(),
    );
    let mut lats = lats.into_inner().unwrap();
    lats.sort_unstable();
    let series = if collaborative { "collaborative" } else { "blocking" };
    crate::report::emit_phase("ext", series, "growth", "insert", "mops", r.mops(), threads, &r);
    // percentile() returns raw ns; tables report virtual µs.
    let out = [
        r.mops(),
        percentile(&lats, 0.50) / 1e3,
        percentile(&lats, 0.99) / 1e3,
        percentile(&lats, 0.999) / 1e3,
        *lats.last().unwrap_or(&0) as f64 / 1e3,
    ];
    for (name, v) in ["p50", "p99", "p999", "max"].iter().zip(&out[1..]) {
        crate::report::emit_value("ext", series, "growth", name, "us", *v);
    }
    out
}

pub fn run(scale: &Scale) {
    let columns = vec![
        "Mops".into(),
        "p50 µs".into(),
        "p99 µs".into(),
        "p999 µs".into(),
        "max µs".into(),
    ];
    let rows = vec![
        ("collaborative".to_string(), run_mode(scale, true).to_vec()),
        ("blocking".to_string(), run_mode(scale, false).to_vec()),
    ];
    print_table(
        "Ext: staged doubling — collaborative vs blocking (insert-only growth)",
        &columns,
        &rows,
        "per-op latency in virtual µs",
    );
}
