//! Fig. 1 — raw PM write throughput under different flush strategies
//! (paper §II-B, Observations 2–4).
//!
//! Strategies:
//! * `write-f`  — store followed by `clwb` + `sfence` per block;
//! * `write-nf` — store only (eADR makes it durable);
//! * `hot-1% nf` — write-nf for the hottest 1% of blocks, write-f for the
//!   cold rest (the hybrid that wins for >64 B under skew).
//!
//! Expected shape: (a) uniform — write-nf loses beyond one cacheline
//! (random eviction write amplification); (b) zipfian(0.99) — write-nf
//! wins big, and the hybrid beats pure write-nf for >64 B blocks.

use spash_pmem::{PmAddr, PmConfig, PmDevice};
use spash_workloads::{Rng64, Zipfian};

use crate::harness::{print_table, run_phase, Scale};

#[derive(Clone, Copy, PartialEq)]
enum Strategy {
    WriteF,
    WriteNf,
    Hot1Nf,
}

const SIZES: [u64; 5] = [64, 128, 256, 512, 1024];
const REGION: u64 = 256 << 20;

fn run_one(scale: &Scale, zipf: bool, strategy: Strategy, size: u64) -> f64 {
    let dev = PmDevice::new(PmConfig {
        arena_size: REGION + (1 << 20),
        cache_capacity: 16 << 20,
        ..PmConfig::default()
    });
    let n_blocks = REGION / size;
    let hot_cut = (n_blocks / 100).max(1);
    let threads = scale.max_threads();
    let ops = scale.ops / 2;
    let z = zipf.then(|| Zipfian::new(n_blocks, 0.99));
    let r = run_phase(&dev, threads, |tid, ctx| {
        let mut rng = Rng64::new(0xf161 + tid as u64);
        let buf = vec![0xabu8; size as usize];
        let per = ops / threads as u64;
        for _ in 0..per {
            let block = match &z {
                None => rng.below(n_blocks),
                Some(z) => z.rank(rng.next_f64()),
            };
            let addr = PmAddr(block * size);
            ctx.write_bytes(addr, &buf);
            let flush = match strategy {
                Strategy::WriteF => true,
                Strategy::WriteNf => false,
                Strategy::Hot1Nf => block >= hot_cut,
            };
            if flush {
                ctx.flush_range(addr, size);
                ctx.fence();
            }
        }
        per
    });
    r.gbps(r.ops * size)
}

/// Run the full Fig 1 sweep and print both panels.
pub fn run(scale: &Scale) {
    for (zipf, panel) in [(false, "(a) uniform"), (true, "(b) zipfian 0.99")] {
        let phase = if zipf { "zipfian" } else { "uniform" };
        let names = ["write-f", "write-nf", "hot-1pct-nf"];
        let columns = vec!["write-f".into(), "write-nf".into(), "hot-1% nf".into()];
        let mut rows = Vec::new();
        for size in SIZES {
            let vals: Vec<f64> = [Strategy::WriteF, Strategy::WriteNf, Strategy::Hot1Nf]
                .into_iter()
                .map(|s| run_one(scale, zipf, s, size))
                .collect();
            for (name, v) in names.iter().zip(&vals) {
                crate::report::emit_value("fig1", name, &format!("{size}B"), phase, "GBps", *v);
            }
            rows.push((format!("{size} B"), vals));
        }
        print_table(&format!("Fig 1{panel}: PM write throughput"), &columns, &rows, "GB/s");
    }
}
