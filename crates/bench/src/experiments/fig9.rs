//! Fig. 9 — load factor vs number of inserted key-value entries
//! (paper §VI-B).
//!
//! Expected shape: Spash tracks Dash/Level closely with gentle sawtooth
//! (fine-grained on-demand splits); CCEH sits lowest (16-slot probe
//! windows force early splits); Level/Dash fluctuate more (coarse
//! resizes); Plush is low and spiky (16× level allocations).


use spash_workloads::{load_keys, Distribution, Mix, ValueSize, WorkloadConfig};

use crate::harness::{print_table, Scale};
use crate::indexes::{bench_device, build_index, IndexKind};

/// Load factors sampled at `samples` evenly spaced checkpoints.
pub fn run_one(scale: &Scale, kind: IndexKind, samples: usize) -> Vec<f64> {
    let dev = bench_device(scale.keys, 16);
    let idx = build_index(&dev, kind);
    let mut ctx = dev.ctx();
    let cfg = WorkloadConfig::new(
        scale.keys,
        Distribution::Uniform,
        Mix::SEARCH_ONLY,
        ValueSize::Inline,
    );
    let keys = load_keys(&cfg);
    let step = (keys.len() / samples).max(1);
    let mut out = Vec::with_capacity(samples);
    for (i, &k) in keys.iter().enumerate() {
        idx.insert(&mut ctx, k, &k.to_le_bytes()[..6]).unwrap();
        if (i + 1) % step == 0 {
            out.push(idx.load_factor());
        }
    }
    out.truncate(samples);
    out
}

pub fn run(scale: &Scale) {
    let samples = 10;
    let kinds = [
        IndexKind::Spash,
        IndexKind::Cceh,
        IndexKind::Dash,
        IndexKind::Level,
        IndexKind::CLevel,
        IndexKind::Plush,
    ];
    let columns: Vec<String> = kinds.iter().map(|k| k.label().to_string()).collect();
    let series: Vec<Vec<f64>> = kinds.iter().map(|&k| run_one(scale, k, samples)).collect();
    let mut rows = Vec::new();
    for s in 0..samples {
        let frac = (s + 1) as f64 / samples as f64;
        for (kind, v) in kinds.iter().zip(&series) {
            crate::report::emit_value(
                "fig9",
                kind.label(),
                &format!("{:.0}pct", frac * 100.0),
                "load",
                "load_factor",
                v.get(s).copied().unwrap_or(0.0),
            );
        }
        rows.push((
            format!("{:>3.0}% inserted", frac * 100.0),
            series.iter().map(|v| v.get(s).copied().unwrap_or(0.0)).collect(),
        ));
    }
    print_table("Fig 9: load factor while inserting", &columns, &rows, "load factor");
}
