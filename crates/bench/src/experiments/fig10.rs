//! Fig. 10 — YCSB throughput with inlined key-value entries (paper
//! §VI-C): load phase plus read-intensive (90:10), balanced (50:50) and
//! write-intensive (10:90) run phases, zipfian(0.99).
//!
//! Expected shape: Spash leads every phase (HTM lock elision + in-place
//! hot updates served from the persistent cache); Level worst everywhere
//! (read+write locks); Dash/Halo better on reads than writes; CLevel flat
//! (out-of-place updates defeat the cache); Plush competitive only in
//! load.


use spash_workloads::{load_keys, Distribution, Mix, OpStream, ValueSize, WorkloadConfig};

use crate::experiments::{exec_stream, my_chunk};
use crate::harness::{print_table, run_phase, PhaseResult, Scale};
use crate::indexes::{bench_device, build_index, IndexKind};

pub const PHASES: [(&str, Option<Mix>); 4] = [
    ("Load", None),
    ("Read-int 90:10", Some(Mix::READ_INTENSIVE)),
    ("Balanced 50:50", Some(Mix::BALANCED)),
    ("Write-int 10:90", Some(Mix::WRITE_INTENSIVE)),
];

/// One index through all four phases at `threads`.
pub fn run_one(scale: &Scale, kind: IndexKind, value: ValueSize) -> Vec<PhaseResult> {
    let threads = scale.max_threads();
    let vbytes = match value {
        ValueSize::Inline => 16,
        ValueSize::Fixed(n) => n as u64,
    };
    let dev = bench_device(scale.keys, vbytes);
    let idx = build_index(&dev, kind);
    let index = idx.as_ref();
    let cfg = WorkloadConfig::new(scale.keys, Distribution::Zipfian, Mix::BALANCED, value);
    let keys = load_keys(&cfg);
    let mut out = Vec::with_capacity(PHASES.len());

    // Load phase.
    out.push(run_phase(&dev, threads, |tid, ctx| {
        let mine = my_chunk(&keys, threads, tid);
        let mut s = OpStream::new(&cfg, tid as u64);
        for &k in mine {
            let v = s.expected_value(k);
            if index.insert(ctx, k, &v) == Err(spash_index_api::IndexError::OutOfMemory) {
                // Halo's documented DRAM-exhaustion failure mode; count
                // what we could.
                break;
            }
        }
        mine.len() as u64
    }));

    for (_, mix) in PHASES.iter().skip(1) {
        let cfg = WorkloadConfig {
            mix: mix.unwrap(),
            ..cfg.clone()
        };
        out.push(run_phase(&dev, threads, |tid, ctx| {
            let mut s = OpStream::new(&cfg, tid as u64);
            exec_stream(index, ctx, &mut s, scale.ops / threads as u64)
        }));
    }
    out
}

pub fn run(scale: &Scale) {
    let kinds = IndexKind::ALL;
    let columns: Vec<String> = kinds.iter().map(|k| k.label().to_string()).collect();
    let results: Vec<Vec<PhaseResult>> = kinds
        .iter()
        .map(|&k| run_one(scale, k, ValueSize::Inline))
        .collect();
    let threads = scale.max_threads();
    let mut rows = Vec::new();
    for (p, (label, _)) in PHASES.iter().enumerate() {
        for (kind, r) in kinds.iter().zip(&results) {
            crate::report::emit_phase(
                "fig10",
                kind.label(),
                "inline",
                label,
                "mops",
                r[p].mops(),
                threads,
                &r[p],
            );
        }
        rows.push((
            label.to_string(),
            results.iter().map(|r| r[p].mops()).collect(),
        ));
    }
    print_table(
        "Fig 10: YCSB, inlined KV, zipfian 0.99",
        &columns,
        &rows,
        "Mops/s (virtual time)",
    );
}
