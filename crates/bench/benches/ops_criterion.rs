//! Microbenchmarks of single Spash operations (wall-clock of the
//! *simulation*, complementary to the virtual-time figures — useful for
//! catching performance regressions in the simulator itself).
//!
//! Formerly a `criterion` harness; rewritten against `std::time` so the
//! workspace resolves with no network access, and kept behind the
//! non-default `micro-bench` feature so default builds skip it:
//!
//! ```sh
//! cargo bench -p spash-bench --features micro-bench --bench ops_criterion
//! ```

use std::time::Instant;

use spash::{Spash, SpashConfig};
use spash_bench::bench_device;
use spash_index_api::PersistentIndex;

/// Time `iters` runs of `f` after `warmup` untimed runs; report ns/op.
fn bench(name: &str, warmup: u64, iters: u64, mut f: impl FnMut()) {
    for _ in 0..warmup {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_op = t0.elapsed().as_nanos() as f64 / iters as f64;
    println!("{name:<24} {per_op:>10.1} ns/op   ({iters} iters)");
}

fn main() {
    let dev = bench_device(100_000, 16);
    let mut ctx = dev.ctx();
    let idx = Spash::format(&mut ctx, SpashConfig::default()).unwrap();
    for k in 1..=100_000u64 {
        idx.insert_u64(&mut ctx, k, k).unwrap();
    }

    println!("spash_ops (simulator wall-clock)");
    let mut k = 0u64;
    bench("get_hit", 10_000, 200_000, || {
        k = k % 100_000 + 1;
        std::hint::black_box(idx.get_u64(&mut ctx, k));
    });
    bench("update_inline", 10_000, 200_000, || {
        k = k % 100_000 + 1;
        idx.update_u64(&mut ctx, k, k + 1).unwrap();
    });
    let mut next = 1_000_000u64;
    bench("insert_then_remove", 1_000, 50_000, || {
        next += 1;
        idx.insert_u64(&mut ctx, next, next).unwrap();
        assert!(idx.remove(&mut ctx, next));
    });
}
