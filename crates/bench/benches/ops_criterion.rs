//! Criterion microbenchmarks of single Spash operations (wall-clock of
//! the *simulation*, complementary to the virtual-time figures — useful
//! for catching performance regressions in the simulator itself).

use criterion::{criterion_group, criterion_main, Criterion};
use spash::{Spash, SpashConfig};
use spash_bench::bench_device;
use spash_index_api::PersistentIndex;

fn bench_ops(c: &mut Criterion) {
    let dev = bench_device(100_000, 16);
    let mut ctx = dev.ctx();
    let idx = Spash::format(&mut ctx, SpashConfig::default()).unwrap();
    for k in 1..=100_000u64 {
        idx.insert_u64(&mut ctx, k, k).unwrap();
    }

    let mut group = c.benchmark_group("spash_ops");
    let mut k = 0u64;
    group.bench_function("get_hit", |b| {
        b.iter(|| {
            k = k % 100_000 + 1;
            std::hint::black_box(idx.get_u64(&mut ctx, k))
        })
    });
    group.bench_function("update_inline", |b| {
        b.iter(|| {
            k = k % 100_000 + 1;
            idx.update_u64(&mut ctx, k, k + 1).unwrap();
        })
    });
    let mut next = 1_000_000u64;
    group.bench_function("insert_then_remove", |b| {
        b.iter(|| {
            next += 1;
            idx.insert_u64(&mut ctx, next, next).unwrap();
            assert!(idx.remove(&mut ctx, next));
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_ops
}
criterion_main!(benches);
