//! Bench target regenerating the paper's fig1 (see DESIGN.md §3).
//! Custom harness: prints the figure's rows/series to stdout.

use spash_bench::experiments::fig1;
use spash_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("# fig1_flush_strategies: keys={} ops={} threads={:?}", scale.keys, scale.ops, scale.threads);
    fig1::run(&scale);
}
