//! Bench target regenerating the paper's fig9 (see DESIGN.md §3).
//! Custom harness: prints the figure's rows/series to stdout.

use spash_bench::experiments::fig9;
use spash_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("# fig9_load_factor: keys={} ops={} threads={:?}", scale.keys, scale.ops, scale.threads);
    fig9::run(&scale);
}
