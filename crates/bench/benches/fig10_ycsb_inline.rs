//! Bench target regenerating the paper's fig10 (see DESIGN.md §3).
//! Custom harness: prints the figure's rows/series to stdout.

use spash_bench::experiments::fig10;
use spash_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("# fig10_ycsb_inline: keys={} ops={} threads={:?}", scale.keys, scale.ops, scale.threads);
    fig10::run(&scale);
}
