//! Bench target regenerating the paper's fig8 (see DESIGN.md §3).
//! Custom harness: prints the figure's rows/series to stdout.

use spash_bench::experiments::fig8;
use spash_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("# fig8_pm_accesses: keys={} ops={} threads={:?}", scale.keys, scale.ops, scale.threads);
    fig8::run(&scale);
}
