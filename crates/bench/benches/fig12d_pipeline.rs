//! Bench target regenerating the paper's fig12d (see DESIGN.md §3).
//! Custom harness: prints the figure's rows/series to stdout.

use spash_bench::experiments::fig12;
use spash_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("# fig12d_pipeline: keys={} ops={} threads={:?}", scale.keys, scale.ops, scale.threads);
    fig12::run_d(&scale);
}
