//! Bench target regenerating the paper's fig12a (see DESIGN.md §3).
//! Custom harness: prints the figure's rows/series to stdout.

use spash_bench::experiments::fig12;
use spash_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("# fig12a_adaptive_update: keys={} ops={} threads={:?}", scale.keys, scale.ops, scale.threads);
    fig12::run_a(&scale);
}
