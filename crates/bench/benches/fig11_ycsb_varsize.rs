//! Bench target regenerating the paper's fig11 (see DESIGN.md §3).
//! Custom harness: prints the figure's rows/series to stdout.

use spash_bench::experiments::fig11;
use spash_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("# fig11_ycsb_varsize: keys={} ops={} threads={:?}", scale.keys, scale.ops, scale.threads);
    fig11::run(&scale);
}
