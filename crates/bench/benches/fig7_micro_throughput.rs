//! Bench target regenerating the paper's fig7 (see DESIGN.md §3).
//! Custom harness: prints the figure's rows/series to stdout.

use spash_bench::experiments::fig7;
use spash_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("# fig7_micro_throughput: keys={} ops={} threads={:?}", scale.keys, scale.ops, scale.threads);
    fig7::run(&scale);
}
