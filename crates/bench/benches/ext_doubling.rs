//! Extension bench: collaborative vs blocking staged doubling (see
//! experiments::ext). Custom harness: prints the comparison table.

use spash_bench::experiments::ext;
use spash_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!(
        "# ext_doubling: keys={} ops={} threads={:?}",
        scale.keys, scale.ops, scale.threads
    );
    ext::run(&scale);
}
