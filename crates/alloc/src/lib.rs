//! A DCMM-style persistent allocator (paper §III-C; Ma et al., FAST'21).
//!
//! The paper manages variable-sized key-value blobs with DCMM, whose
//! property Spash depends on is: **small size classes (≤128 B) are carved
//! out of XPLine-sized chunks, per thread, append-only** — that is what
//! makes consecutive small insertions contiguous in the persistent CPU
//! cache so they can be flushed back in one XPLine (compacted-flush).
//!
//! Persistent state (crash-recoverable):
//! * a superblock describing the arena layout ([`layout`]);
//! * a 4-byte header per 256-byte heap chunk: state (free / small class /
//!   segment / large run) plus, for small chunks, a 16-bit slot bitmap.
//!
//! Volatile state (rebuilt by [`PmAllocator::recover`]):
//! * per-thread active chunks and slot free-caches per size class;
//! * a global free-chunk list and allocation frontier.
//!
//! Slots freed into a thread's cache keep their persistent bitmap bit set;
//! a crash leaks at most those cached slots (bounded, documented — DCMM
//! makes the same trade).

pub mod layout;

use std::sync::atomic::{AtomicU64, Ordering};

use spash_pmem::sync::Mutex;
use spash_pmem::{MemCtx, PmAddr};

pub use layout::{Layout, CHUNK};

/// Small size classes, in bytes. Allocations ≤128 B come from XPLine
/// chunks carved into equal slots (paper: "block classes with small sizes
/// (≤128-byte) are managed in XPLine-sized chunks").
pub const SMALL_CLASSES: [u64; 6] = [16, 32, 48, 64, 96, 128];

// Chunk header states.
const ST_FREE: u8 = 0;
// 1..=6: small class index + 1.
const ST_SEGMENT: u8 = 0xF0;
const ST_LARGE: u8 = 0xE0;
const ST_LARGE_CONT: u8 = 0xE1;
/// Region start: the low 24 bits of the header hold the run length in
/// chunks (up to 4 GiB regions). Used for baseline index tables.
const ST_REGION: u8 = 0xD0;
const ST_REGION_CONT: u8 = 0xD1;

/// Errors from the allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// The heap has no free chunk run of the required length.
    OutOfMemory,
    /// Requested size exceeds the maximum large allocation (255 chunks).
    TooLarge,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "persistent heap exhausted"),
            AllocError::TooLarge => write!(f, "allocation exceeds 255 chunks (~64 KiB)"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Result of an allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SmallAlloc {
    /// Address of the slot.
    pub addr: PmAddr,
    /// When this allocation *filled* its XPLine chunk, the chunk base
    /// address: the compacted-flush mechanism asynchronously flushes
    /// exactly this 256-byte range (paper §III-C).
    pub exhausted_chunk: Option<PmAddr>,
}

#[derive(Clone, Copy, Default)]
struct ActiveChunk {
    chunk: u64,
    next_slot: u32,
    live: bool,
}

#[derive(Default)]
struct ThreadHeap {
    active: [ActiveChunk; SMALL_CLASSES.len()],
    /// Freed slots cached for reuse, per class.
    free_slots: [Vec<PmAddr>; SMALL_CLASSES.len()],
}

struct Global {
    free_chunks: Vec<u64>,
    /// Free large runs: (length, start chunk).
    free_runs: Vec<(u8, u64)>,
}

/// The allocator. Shared across simulated threads.
pub struct PmAllocator {
    layout: Layout,
    frontier: AtomicU64,
    global: Mutex<Global>,
    threads: Vec<Mutex<ThreadHeap>>,
    n_thread_shards: usize,
}

/// What a recovery scan found.
pub struct RecoveredHeap {
    pub alloc: PmAllocator,
    /// Every live 256-byte segment (for the index's directory rebuild).
    pub segments: Vec<PmAddr>,
    /// Every live region run as `(base, byte length)` — baseline index
    /// tables, WALs, and logs live here.
    pub regions: Vec<(PmAddr, u64)>,
}

/// A census of every live allocation, read directly from the persistent
/// chunk headers (no volatile state involved). The crash-point harness
/// compares this against the set of allocations reachable from an index's
/// recovered structure to find leaks and corruption.
#[derive(Debug, Default)]
pub struct HeapCensus {
    /// Live small-class slots as `(slot address, class size)`. Includes
    /// slots sitting in volatile free caches at crash time — those keep
    /// their persistent bit set by design (the documented bounded leak).
    pub small_slots: Vec<(PmAddr, u64)>,
    /// Live 256-byte segments.
    pub segments: Vec<PmAddr>,
    /// Live large allocations as `(base, byte length)`.
    pub large: Vec<(PmAddr, u64)>,
    /// Live regions as `(base, byte length)`.
    pub regions: Vec<(PmAddr, u64)>,
}

impl HeapCensus {
    /// Total number of live allocation units.
    pub fn total(&self) -> usize {
        self.small_slots.len() + self.segments.len() + self.large.len() + self.regions.len()
    }
}

impl PmAllocator {
    /// Format a fresh arena: write the superblock, zero the header table.
    /// `reserved_len` bytes (XPLine-rounded) are set aside for the caller's
    /// own persistent metadata, reachable via [`PmAllocator::reserved`].
    pub fn format(ctx: &mut MemCtx, reserved_len: u64) -> Self {
        let arena_size = ctx.device().arena().size();
        let l = Layout::compute(arena_size, reserved_len);
        // The header table is zero in a fresh arena, but formatting an
        // arena that was used before must clear it.
        let zeros = vec![0u8; 4096];
        let table_len = l.heap_start - l.table_start;
        let mut off = 0;
        while off < table_len {
            let n = zeros.len().min((table_len - off) as usize);
            ctx.ntstore_bytes(PmAddr(l.table_start + off), &zeros[..n]);
            off += n as u64;
        }
        ctx.fence();
        layout::write_superblock(ctx, arena_size, &l);
        ctx.san_tag(PmAddr(0), CHUNK, "superblock");
        ctx.san_tag(PmAddr(l.table_start), table_len, "alloc-headers");
        if l.reserved_len > 0 {
            ctx.san_tag(PmAddr(l.reserved_start), l.reserved_len, "reserved");
        }
        Self::from_layout(l)
    }

    fn from_layout(l: Layout) -> Self {
        let n_thread_shards = 64;
        Self {
            layout: l,
            frontier: AtomicU64::new(0),
            global: Mutex::new(Global {
                free_chunks: Vec::new(),
                free_runs: Vec::new(),
            }),
            threads: (0..n_thread_shards)
                .map(|_| Mutex::new(ThreadHeap::default()))
                .collect(),
            n_thread_shards,
        }
    }

    /// Rebuild volatile state from the persistent header table after a
    /// crash (or clean restart). Returns the allocator plus the list of
    /// live index segments.
    pub fn recover(ctx: &mut MemCtx) -> Option<RecoveredHeap> {
        let (_, l) = layout::read_superblock(ctx)?;
        let alloc = Self::from_layout(l);
        let mut segments = Vec::new();
        let mut regions = Vec::new();
        let mut free_chunks = Vec::new();
        let mut frontier = 0;
        let mut i = 0;
        while i < l.n_chunks {
            let h = alloc.header_get(ctx, i);
            let state = (h >> 24) as u8;
            match state {
                ST_FREE => free_chunks.push(i),
                ST_SEGMENT => {
                    segments.push(l.chunk_addr(i));
                    frontier = i + 1;
                }
                ST_LARGE => {
                    let len = ((h >> 16) & 0xff) as u64;
                    i += len.max(1);
                    frontier = i;
                    continue;
                }
                ST_REGION => {
                    let len = (h & 0xff_ffff) as u64;
                    regions.push((l.chunk_addr(i), len.max(1) * CHUNK));
                    i += len.max(1);
                    frontier = i;
                    continue;
                }
                ST_LARGE_CONT | ST_REGION_CONT => {
                    // Interior marker (or a corrupted start); treat
                    // conservatively as live.
                    frontier = i + 1;
                }
                _ => {
                    // Small-class chunk: recover its free slots.
                    let class = (state - 1) as usize;
                    if class < SMALL_CLASSES.len() {
                        let bitmap = (h & 0xffff) as u16;
                        let slots = (CHUNK / SMALL_CLASSES[class]) as u32;
                        let mut th = alloc.threads[i as usize % alloc.n_thread_shards].lock();
                        for s in 0..slots {
                            if bitmap & (1 << s) == 0 {
                                th.free_slots[class].push(PmAddr(
                                    l.chunk_addr(i).0 + s as u64 * SMALL_CLASSES[class],
                                ));
                            }
                        }
                    }
                    frontier = i + 1;
                }
            }
            i += 1;
        }
        // Chunks past the frontier were never allocated; list only the
        // free chunks *below* it to keep the free list small.
        free_chunks.retain(|&c| c < frontier);
        alloc.frontier.store(frontier, Ordering::Relaxed);
        alloc.global.lock().free_chunks = free_chunks;
        Some(RecoveredHeap {
            alloc,
            segments,
            regions,
        })
    }

    /// Scan the persistent chunk headers and report every live allocation.
    /// Purely observational (no volatile state is built or mutated), so it
    /// can run on a post-crash image before — or instead of — recovery.
    pub fn census(ctx: &mut MemCtx) -> Option<HeapCensus> {
        let (_, l) = layout::read_superblock(ctx)?;
        let probe = Self::from_layout(l);
        let mut out = HeapCensus::default();
        let mut i = 0;
        while i < l.n_chunks {
            let h = probe.header_get(ctx, i);
            let state = (h >> 24) as u8;
            match state {
                ST_FREE | ST_LARGE_CONT | ST_REGION_CONT => {}
                ST_SEGMENT => out.segments.push(l.chunk_addr(i)),
                ST_LARGE => {
                    let len = ((h >> 16) & 0xff) as u64;
                    out.large.push((l.chunk_addr(i), len.max(1) * CHUNK));
                    i += len.max(1);
                    continue;
                }
                ST_REGION => {
                    let len = (h & 0xff_ffff) as u64;
                    out.regions.push((l.chunk_addr(i), len.max(1) * CHUNK));
                    i += len.max(1);
                    continue;
                }
                _ => {
                    let class = (state - 1) as usize;
                    if class < SMALL_CLASSES.len() {
                        let bitmap = (h & 0xffff) as u16;
                        let size = SMALL_CLASSES[class];
                        let slots = (CHUNK / size) as u32;
                        for s in 0..slots {
                            if bitmap & (1 << s) != 0 {
                                out.small_slots
                                    .push((PmAddr(l.chunk_addr(i).0 + s as u64 * size), size));
                            }
                        }
                    }
                }
            }
            i += 1;
        }
        Some(out)
    }

    /// The arena layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The caller-reserved persistent metadata region.
    pub fn reserved(&self) -> (PmAddr, u64) {
        (PmAddr(self.layout.reserved_start), self.layout.reserved_len)
    }

    // ---- chunk header helpers -------------------------------------------

    /// Header entries are 4-byte fields packed two-per-u64.
    fn header_get(&self, ctx: &mut MemCtx, chunk: u64) -> u32 {
        let byte = self.layout.header_addr(chunk);
        let word = ctx.read_u64(PmAddr(byte & !7));
        if byte.is_multiple_of(8) {
            word as u32
        } else {
            (word >> 32) as u32
        }
    }

    fn header_set(&self, ctx: &mut MemCtx, chunk: u64, val: u32) {
        let byte = self.layout.header_addr(chunk);
        let addr = PmAddr(byte & !7);
        let shift = if byte.is_multiple_of(8) { 0 } else { 32 };
        let mask = !(0xffff_ffffu64 << shift);
        loop {
            let cur = ctx.device().arena().load_u64(addr);
            let new = (cur & mask) | ((val as u64) << shift);
            if ctx.cas_u64(addr, cur, new).is_ok() {
                break;
            }
        }
        // The header table is recovery-critical: under ADR an unflushed
        // header CAS is reverted by a crash, losing the allocation (or a
        // free) while the data it governs survives. eADR keeps the
        // dirty line alive, so the flush is elided there (paper §II-A).
        if ctx.device().config().domain == spash_pmem::PersistenceDomain::Adr {
            ctx.flush(addr);
            ctx.fence();
        }
    }

    #[inline]
    fn pack_header(state: u8, aux: u8, bitmap: u16) -> u32 {
        (state as u32) << 24 | (aux as u32) << 16 | bitmap as u32
    }

    // ---- chunk acquisition ----------------------------------------------

    fn take_run(&self, len: u64) -> Result<u64, AllocError> {
        debug_assert!(len >= 1);
        {
            let mut g = self.global.lock();
            if len == 1 {
                if let Some(c) = g.free_chunks.pop() {
                    return Ok(c);
                }
            } else if let Some(pos) = g.free_runs.iter().position(|&(l, _)| l as u64 == len) {
                let (_, c) = g.free_runs.swap_remove(pos);
                return Ok(c);
            }
        }
        let start = self.frontier.fetch_add(len, Ordering::Relaxed);
        if start + len > self.layout.n_chunks {
            // Roll the frontier back so later smaller requests can fit.
            self.frontier.fetch_sub(len, Ordering::Relaxed);
            return Err(AllocError::OutOfMemory);
        }
        Ok(start)
    }

    // ---- public allocation API ------------------------------------------

    /// Allocate one 256-byte, XPLine-aligned index segment.
    pub fn alloc_segment(&self, ctx: &mut MemCtx) -> Result<PmAddr, AllocError> {
        let c = self.take_run(1)?;
        self.header_set(ctx, c, Self::pack_header(ST_SEGMENT, 0, 0));
        let addr = self.layout.chunk_addr(c);
        ctx.san_tag(addr, CHUNK, "segment");
        Ok(addr)
    }

    /// Free a segment allocated with [`PmAllocator::alloc_segment`].
    pub fn free_segment(&self, ctx: &mut MemCtx, addr: PmAddr) {
        let c = self.layout.chunk_of(addr);
        debug_assert_eq!((self.header_get(ctx, c) >> 24) as u8, ST_SEGMENT);
        self.header_set(ctx, c, Self::pack_header(ST_FREE, 0, 0));
        self.global.lock().free_chunks.push(c);
    }

    /// The small size class index for `size`, if `size` ≤ 128.
    pub fn class_for(size: u64) -> Option<usize> {
        SMALL_CLASSES.iter().position(|&c| size <= c)
    }

    /// Allocate `size` bytes. Small sizes come from the calling thread's
    /// append-only XPLine chunk (compacted-flush, §III-C); larger sizes
    /// take a run of whole chunks.
    pub fn alloc(&self, ctx: &mut MemCtx, size: u64) -> Result<SmallAlloc, AllocError> {
        if let Some(class) = Self::class_for(size) {
            return self.alloc_small(ctx, class);
        }
        let nchunks = size.div_ceil(CHUNK);
        if nchunks > 255 {
            return Err(AllocError::TooLarge);
        }
        let start = self.take_run(nchunks)?;
        self.header_set(ctx, start, Self::pack_header(ST_LARGE, nchunks as u8, 0));
        for i in 1..nchunks {
            self.header_set(ctx, start + i, Self::pack_header(ST_LARGE_CONT, 0, 0));
        }
        let addr = self.layout.chunk_addr(start);
        ctx.san_tag(addr, nchunks * CHUNK, "large");
        Ok(SmallAlloc {
            addr,
            exhausted_chunk: None,
        })
    }

    fn alloc_small(&self, ctx: &mut MemCtx, class: usize) -> Result<SmallAlloc, AllocError> {
        let shard = ctx.tid() as usize % self.n_thread_shards;
        let slot_size = SMALL_CLASSES[class];
        let slots_per_chunk = (CHUNK / slot_size) as u32;

        // 1. Reuse a cached freed slot.
        // 2. Else append within the active chunk.
        {
            let mut th = self.threads[shard].lock();
            if let Some(addr) = th.free_slots[class].pop() {
                return Ok(SmallAlloc {
                    addr,
                    exhausted_chunk: None,
                });
            }
            let ac = &mut th.active[class];
            if ac.live && ac.next_slot < slots_per_chunk {
                let slot = ac.next_slot;
                ac.next_slot += 1;
                let chunk = ac.chunk;
                let exhausted = ac.next_slot == slots_per_chunk;
                if exhausted {
                    ac.live = false;
                }
                drop(th);
                // Persist the slot bit.
                let h = self.header_get(ctx, chunk);
                self.header_set(ctx, chunk, h | 1 << slot);
                let base = self.layout.chunk_addr(chunk);
                return Ok(SmallAlloc {
                    addr: PmAddr(base.0 + slot as u64 * slot_size),
                    exhausted_chunk: exhausted.then_some(base),
                });
            }
        }

        // 3. Open a fresh chunk.
        let chunk = self.take_run(1)?;
        self.header_set(ctx, chunk, Self::pack_header(class as u8 + 1, 0, 0b1));
        ctx.san_tag(
            self.layout.chunk_addr(chunk),
            CHUNK,
            &format!("small-{}", slot_size),
        );
        {
            let mut th = self.threads[shard].lock();
            th.active[class] = ActiveChunk {
                chunk,
                next_slot: 1,
                live: true,
            };
        }
        let base = self.layout.chunk_addr(chunk);
        Ok(SmallAlloc {
            addr: base,
            exhausted_chunk: (slots_per_chunk == 1).then_some(base),
        })
    }

    /// Allocate a contiguous region of `size` bytes (XPLine-rounded, no
    /// upper bound beyond the heap itself). Regions back the baseline
    /// indexes' large tables (CCEH segments, Level/CLevel levels, Plush
    /// levels, Halo logs). Only the *start* chunk's header records the
    /// length, so freeing needs no size argument.
    pub fn alloc_region(&self, ctx: &mut MemCtx, size: u64) -> Result<PmAddr, AllocError> {
        self.alloc_region_tagged(ctx, size, "region")
    }

    /// [`PmAllocator::alloc_region`] with a sanitizer region tag naming
    /// the structure the region backs (rendered in violation reports).
    pub fn alloc_region_tagged(
        &self,
        ctx: &mut MemCtx,
        size: u64,
        tag: &str,
    ) -> Result<PmAddr, AllocError> {
        let nchunks = size.div_ceil(CHUNK).max(1);
        if nchunks >= 1 << 24 {
            return Err(AllocError::TooLarge);
        }
        let start = self.take_run(nchunks)?;
        self.header_set(
            ctx,
            start,
            (ST_REGION as u32) << 24 | (nchunks as u32 & 0xff_ffff),
        );
        // Continuation headers are only needed so a recovery scan can skip
        // the run; write one per 64 chunks to bound format cost, plus the
        // final chunk.
        let mut i = 64;
        while i < nchunks {
            self.header_set(ctx, start + i, (ST_REGION_CONT as u32) << 24);
            i += 64;
        }
        if nchunks > 1 {
            self.header_set(ctx, start + nchunks - 1, (ST_REGION_CONT as u32) << 24);
        }
        let addr = self.layout.chunk_addr(start);
        ctx.san_tag(addr, nchunks * CHUNK, tag);
        Ok(addr)
    }

    /// Free a region allocated with [`PmAllocator::alloc_region`].
    pub fn free_region(&self, ctx: &mut MemCtx, addr: PmAddr) {
        let start = self.layout.chunk_of(addr);
        let h = self.header_get(ctx, start);
        debug_assert_eq!((h >> 24) as u8, ST_REGION, "free_region of non-region");
        let len = (h & 0xff_ffff) as u64;
        self.header_set(ctx, start, 0);
        let mut i = 64;
        while i < len {
            self.header_set(ctx, start + i, 0);
            i += 64;
        }
        if len > 1 {
            self.header_set(ctx, start + len - 1, 0);
        }
        // Regions are not recycled through the run free-lists (they are
        // few and long-lived); leak the address range deliberately unless
        // it abuts the frontier.
        let _ = self
            .frontier
            .compare_exchange(start + len, start, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Free an allocation of `size` bytes at `addr`.
    pub fn free(&self, ctx: &mut MemCtx, addr: PmAddr, size: u64) {
        if let Some(class) = Self::class_for(size) {
            // Cache the slot for reuse; the persistent bit stays set (the
            // slot is volatile-free — a crash leaks only cached slots).
            let shard = ctx.tid() as usize % self.n_thread_shards;
            self.threads[shard].lock().free_slots[class].push(addr);
            return;
        }
        let start = self.layout.chunk_of(addr);
        let h = self.header_get(ctx, start);
        debug_assert_eq!((h >> 24) as u8, ST_LARGE, "free of non-allocation");
        let len = ((h >> 16) & 0xff) as u64;
        for i in 0..len {
            self.header_set(ctx, start + i, Self::pack_header(ST_FREE, 0, 0));
        }
        let mut g = self.global.lock();
        if len == 1 {
            g.free_chunks.push(start);
        } else {
            g.free_runs.push((len as u8, start));
        }
    }

    /// Number of chunks ever touched (diagnostic).
    pub fn frontier_chunks(&self) -> u64 {
        self.frontier.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spash_pmem::{PmConfig, PmDevice};
    use std::sync::Arc;

    fn setup() -> (Arc<PmDevice>, PmAllocator, MemCtx) {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        let alloc = PmAllocator::format(&mut ctx, 1024);
        (dev, alloc, ctx)
    }

    #[test]
    fn class_for_boundaries() {
        assert_eq!(PmAllocator::class_for(1), Some(0));
        assert_eq!(PmAllocator::class_for(16), Some(0));
        assert_eq!(PmAllocator::class_for(17), Some(1));
        assert_eq!(PmAllocator::class_for(128), Some(5));
        assert_eq!(PmAllocator::class_for(129), None);
    }

    #[test]
    fn segments_are_xpline_aligned_and_distinct() {
        let (_dev, alloc, mut ctx) = setup();
        let a = alloc.alloc_segment(&mut ctx).unwrap();
        let b = alloc.alloc_segment(&mut ctx).unwrap();
        assert_eq!(a.0 % 256, 0);
        assert_eq!(b.0 % 256, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn freed_segment_is_reused() {
        let (_dev, alloc, mut ctx) = setup();
        let a = alloc.alloc_segment(&mut ctx).unwrap();
        alloc.free_segment(&mut ctx, a);
        let b = alloc.alloc_segment(&mut ctx).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn small_allocs_are_contiguous_within_a_chunk() {
        let (_dev, alloc, mut ctx) = setup();
        // 64-byte class: 4 slots per chunk; consecutive allocations must
        // be adjacent — that is what compacted-flush relies on.
        let a = alloc.alloc(&mut ctx, 60).unwrap();
        let b = alloc.alloc(&mut ctx, 60).unwrap();
        let c = alloc.alloc(&mut ctx, 60).unwrap();
        let d = alloc.alloc(&mut ctx, 60).unwrap();
        assert_eq!(b.addr.0, a.addr.0 + 64);
        assert_eq!(c.addr.0, b.addr.0 + 64);
        assert_eq!(d.addr.0, c.addr.0 + 64);
        assert!(a.exhausted_chunk.is_none());
        assert_eq!(
            d.exhausted_chunk,
            Some(PmAddr(a.addr.0)),
            "4th allocation fills the chunk and reports it for flushing"
        );
    }

    #[test]
    fn small_free_slots_are_recycled() {
        let (_dev, alloc, mut ctx) = setup();
        let a = alloc.alloc(&mut ctx, 16).unwrap();
        alloc.free(&mut ctx, a.addr, 16);
        let b = alloc.alloc(&mut ctx, 16).unwrap();
        assert_eq!(a.addr, b.addr);
    }

    #[test]
    fn large_alloc_spans_chunks_and_frees() {
        let (_dev, alloc, mut ctx) = setup();
        let a = alloc.alloc(&mut ctx, 1000).unwrap(); // 4 chunks
        assert_eq!(a.addr.0 % 256, 0);
        alloc.free(&mut ctx, a.addr, 1000);
        let b = alloc.alloc(&mut ctx, 1000).unwrap();
        assert_eq!(a.addr, b.addr, "freed run is reused");
    }

    #[test]
    fn too_large_rejected() {
        let (_dev, alloc, mut ctx) = setup();
        assert_eq!(
            alloc.alloc(&mut ctx, 256 * 300).unwrap_err(),
            AllocError::TooLarge
        );
    }

    #[test]
    fn out_of_memory_when_exhausted() {
        let dev = PmDevice::new(PmConfig {
            arena_size: 64 << 10,
            ..PmConfig::small_test()
        });
        let mut ctx = dev.ctx();
        let alloc = PmAllocator::format(&mut ctx, 0);
        let mut n = 0;
        loop {
            match alloc.alloc_segment(&mut ctx) {
                Ok(_) => n += 1,
                Err(AllocError::OutOfMemory) => break,
                Err(e) => panic!("unexpected {e}"),
            }
            assert!(n < 100_000, "never exhausted");
        }
        assert!(n > 0);
    }

    #[test]
    fn recovery_finds_live_segments() {
        let dev = PmDevice::new(PmConfig::eadr_test());
        let mut ctx = dev.ctx();
        let alloc = PmAllocator::format(&mut ctx, 0);
        let s1 = alloc.alloc_segment(&mut ctx).unwrap();
        let s2 = alloc.alloc_segment(&mut ctx).unwrap();
        let s3 = alloc.alloc_segment(&mut ctx).unwrap();
        alloc.free_segment(&mut ctx, s2);
        dev.simulate_power_failure();

        let mut ctx2 = dev.ctx();
        let rec = PmAllocator::recover(&mut ctx2).expect("superblock present");
        let mut segs = rec.segments.clone();
        segs.sort();
        let mut expect = vec![s1, s3];
        expect.sort();
        assert_eq!(segs, expect);
        // The freed chunk is allocatable again.
        let s4 = rec.alloc.alloc_segment(&mut ctx2).unwrap();
        assert_eq!(s4, s2);
    }

    #[test]
    fn recovery_of_unformatted_arena_is_none() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        assert!(PmAllocator::recover(&mut ctx).is_none());
    }

    #[test]
    fn recovery_reclaims_never_used_small_slots() {
        let dev = PmDevice::new(PmConfig::eadr_test());
        let mut ctx = dev.ctx();
        let alloc = PmAllocator::format(&mut ctx, 0);
        let a = alloc.alloc(&mut ctx, 128).unwrap(); // 2 slots per chunk
        let _b = alloc.alloc(&mut ctx, 128).unwrap();
        let c = alloc.alloc(&mut ctx, 96).unwrap(); // 96 B class: 2 slots
        dev.simulate_power_failure();

        let mut ctx2 = dev.ctx();
        let rec = PmAllocator::recover(&mut ctx2).unwrap();
        // The 96-class chunk had 1 of 2 slots used; the recovered free
        // slot must be the *other* slot of that chunk.
        let d = rec.alloc.alloc(&mut ctx2, 96).unwrap();
        assert_eq!(d.addr.0, c.addr.0 + 96);
        assert_ne!(d.addr, a.addr);
    }

    #[test]
    fn region_alloc_beyond_large_cap() {
        let (_dev, alloc, mut ctx) = setup();
        // 1 MiB region: far beyond the 255-chunk large-alloc cap.
        let r = alloc.alloc_region(&mut ctx, 1 << 20).unwrap();
        assert_eq!(r.0 % 256, 0);
        // A subsequent allocation must not land inside the region.
        let s = alloc.alloc_segment(&mut ctx).unwrap();
        assert!(s.0 >= r.0 + (1 << 20) || s.0 < r.0);
        // Freeing at the frontier rolls it back so space is reusable.
        alloc.free_region(&mut ctx, r);
    }

    #[test]
    fn region_survives_recovery_scan() {
        let dev = PmDevice::new(PmConfig::eadr_test());
        let mut ctx = dev.ctx();
        let alloc = PmAllocator::format(&mut ctx, 0);
        let r = alloc.alloc_region(&mut ctx, 300 * 256).unwrap();
        let s = alloc.alloc_segment(&mut ctx).unwrap();
        dev.simulate_power_failure();
        let mut ctx2 = dev.ctx();
        let rec = PmAllocator::recover(&mut ctx2).unwrap();
        assert_eq!(rec.segments, vec![s]);
        // New allocations go past the region.
        let s2 = rec.alloc.alloc_segment(&mut ctx2).unwrap();
        assert!(s2.0 >= r.0 + 300 * 256 || s2.0 < r.0);
    }

    #[test]
    fn concurrent_allocations_do_not_collide() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        let alloc = Arc::new(PmAllocator::format(&mut ctx, 0));
        let results: Vec<Vec<PmAddr>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let alloc = Arc::clone(&alloc);
                    let dev = Arc::clone(&dev);
                    s.spawn(move || {
                        let mut ctx = dev.ctx();
                        (0..200u64)
                            .map(|i| alloc.alloc(&mut ctx, 16 + (i % 100)).unwrap().addr)
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all: Vec<PmAddr> = results.into_iter().flatten().collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate addresses handed out");
    }
}
