//! Persistent arena layout: superblock, reserved region, chunk-header
//! table, heap chunks.
//!
//! ```text
//! +------------+------------------+---------------------+----------------+
//! | superblock | reserved region  | chunk header table  | heap chunks ...|
//! | 1 XPLine   | (index metadata) | 4 B per heap chunk  | 256 B each     |
//! +------------+------------------+---------------------+----------------+
//! ```
//!
//! The superblock records the layout so that recovery can re-derive every
//! region from offset 0 alone.

use spash_pmem::{MemCtx, PmAddr, XPLINE};

/// Magic value identifying a formatted arena.
pub const MAGIC: u64 = 0x5350_4153_4855_4631; // "SPASHUF1"

/// Bytes of chunk-header-table entry per heap chunk.
pub const HDR_BYTES: u64 = 4;

/// One heap chunk is one XPLine (256 B) — the allocation granule and the
/// unit of the compacted-flush mechanism (paper §III-C).
pub const CHUNK: u64 = XPLINE;

/// The resolved arena layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    pub reserved_start: u64,
    pub reserved_len: u64,
    pub table_start: u64,
    pub n_chunks: u64,
    pub heap_start: u64,
}

impl Layout {
    /// Compute the layout for an arena of `arena_size` bytes with a
    /// caller-reserved metadata region of `reserved_len` bytes.
    pub fn compute(arena_size: u64, reserved_len: u64) -> Layout {
        let reserved_len = reserved_len.div_ceil(XPLINE) * XPLINE;
        let reserved_start = XPLINE; // after the superblock
        let table_start = reserved_start + reserved_len;
        // Solve: table(4 B/chunk, XPLine-rounded) + chunks*256 <= remaining.
        let remaining = arena_size
            .checked_sub(table_start)
            .expect("arena too small for reserved region");
        let n_chunks = remaining / (CHUNK + HDR_BYTES);
        let table_len = (n_chunks * HDR_BYTES).div_ceil(XPLINE) * XPLINE;
        let heap_start = table_start + table_len;
        let n_chunks = (arena_size - heap_start) / CHUNK;
        assert!(n_chunks > 0, "arena too small for any heap chunk");
        Layout {
            reserved_start,
            reserved_len,
            table_start,
            n_chunks,
            heap_start,
        }
    }

    /// Address of chunk `i`.
    #[inline]
    pub fn chunk_addr(&self, i: u64) -> PmAddr {
        debug_assert!(i < self.n_chunks);
        PmAddr(self.heap_start + i * CHUNK)
    }

    /// Chunk index of an address inside the heap.
    #[inline]
    pub fn chunk_of(&self, addr: PmAddr) -> u64 {
        debug_assert!(addr.0 >= self.heap_start);
        (addr.0 - self.heap_start) / CHUNK
    }

    /// Byte address of chunk `i`'s 4-byte header entry.
    #[inline]
    pub fn header_addr(&self, i: u64) -> u64 {
        self.table_start + i * HDR_BYTES
    }
}

// Superblock field offsets.
const SB_MAGIC: u64 = 0;
const SB_ARENA: u64 = 8;
const SB_RESERVED_START: u64 = 16;
const SB_RESERVED_LEN: u64 = 24;
const SB_TABLE_START: u64 = 32;
const SB_N_CHUNKS: u64 = 40;
const SB_HEAP_START: u64 = 48;

/// Write the superblock (format time).
pub fn write_superblock(ctx: &mut MemCtx, arena_size: u64, l: &Layout) {
    ctx.write_u64(PmAddr(SB_MAGIC), MAGIC);
    ctx.write_u64(PmAddr(SB_ARENA), arena_size);
    ctx.write_u64(PmAddr(SB_RESERVED_START), l.reserved_start);
    ctx.write_u64(PmAddr(SB_RESERVED_LEN), l.reserved_len);
    ctx.write_u64(PmAddr(SB_TABLE_START), l.table_start);
    ctx.write_u64(PmAddr(SB_N_CHUNKS), l.n_chunks);
    ctx.write_u64(PmAddr(SB_HEAP_START), l.heap_start);
    ctx.flush_range(PmAddr(0), 64);
    ctx.fence();
}

/// Read the superblock back (recovery). Returns `None` if the arena was
/// never formatted.
pub fn read_superblock(ctx: &mut MemCtx) -> Option<(u64, Layout)> {
    if ctx.read_u64(PmAddr(SB_MAGIC)) != MAGIC {
        return None;
    }
    let arena = ctx.read_u64(PmAddr(SB_ARENA));
    Some((
        arena,
        Layout {
            reserved_start: ctx.read_u64(PmAddr(SB_RESERVED_START)),
            reserved_len: ctx.read_u64(PmAddr(SB_RESERVED_LEN)),
            table_start: ctx.read_u64(PmAddr(SB_TABLE_START)),
            n_chunks: ctx.read_u64(PmAddr(SB_N_CHUNKS)),
            heap_start: ctx.read_u64(PmAddr(SB_HEAP_START)),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spash_pmem::{PmConfig, PmDevice};

    #[test]
    fn layout_regions_do_not_overlap() {
        let l = Layout::compute(16 << 20, 4096);
        assert!(l.reserved_start >= XPLINE);
        assert!(l.table_start >= l.reserved_start + l.reserved_len);
        assert!(l.heap_start >= l.table_start + l.n_chunks * HDR_BYTES);
        assert!(l.heap_start + l.n_chunks * CHUNK <= 16 << 20);
        assert!(l.n_chunks > 60_000); // most of 16 MiB is heap
    }

    #[test]
    fn layout_chunk_addr_roundtrip() {
        let l = Layout::compute(1 << 20, 0);
        for i in [0, 1, l.n_chunks - 1] {
            let a = l.chunk_addr(i);
            assert_eq!(l.chunk_of(a), i);
            assert_eq!(a.0 % CHUNK, 0);
        }
    }

    #[test]
    fn superblock_roundtrip() {
        let dev = PmDevice::new(PmConfig::small_test());
        let mut ctx = dev.ctx();
        assert!(read_superblock(&mut ctx).is_none());
        let l = Layout::compute(16 << 20, 1024);
        write_superblock(&mut ctx, 16 << 20, &l);
        let (sz, l2) = read_superblock(&mut ctx).expect("formatted");
        assert_eq!(sz, 16 << 20);
        assert_eq!(l2, l);
    }
}
