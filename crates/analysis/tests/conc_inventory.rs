//! The shared-PM-word inventory is a machine-readable artifact other
//! tooling (CI, the docs matrix) consumes, so its bytes are pinned: a
//! fixture golden for the full `spash-lint conc --json` report, plus
//! determinism and clean-tree gates over the real workspace.

use std::path::Path;

use spash_analysis::conc_rules::{check_files_conc_stats, check_tree_conc, conc_report_json};
use spash_analysis::lint::StatsMap;

// Golden: the full conc report (schema 2 + inventory) for a two-word
// fixture — one sharded lock-disciplined word, one atomic counter.
#[test]
fn conc_json_report_is_byte_stable() {
    let files = vec![(
        "crates/baselines/src/x.rs".to_string(),
        "fn insert(&self, ctx: &mut MemCtx, k: u64) {\n  \
           self.shards[0].with(ctx, |ctx, _| { ctx.write_u64(self.slot_addr(k), k); });\n\
         }\n\
         fn update(&self, ctx: &mut MemCtx, k: u64) {\n  \
           ctx.cas_u64(self.head_addr(), 0, k);\n\
         }\n\
         fn get(&self, ctx: &mut MemCtx, k: u64) -> u64 {\n  \
           ctx.read_u64(self.slot_addr(k))\n\
         }"
        .to_string(),
    )];
    let mut stats = StatsMap::new();
    let (f, inv) = check_files_conc_stats(&files, &mut stats);
    let got = conc_report_json("conc", 1, &f, &stats, &inv).render();
    let want = concat!(
        "{\n",
        "  \"schema\": 2,\n",
        "  \"tool\": \"spash-lint\",\n",
        "  \"mode\": \"conc\",\n",
        "  \"files_scanned\": 1,\n",
        "  \"violations\": 0,\n",
        "  \"rule_stats\": {\n",
        "    \"conc-atomicity\": {\n",
        "      \"findings\": 0,\n",
        "      \"waived\": 0,\n",
        "      \"virt_ns\": 14\n",
        "    },\n",
        "    \"conc-lockset\": {\n",
        "      \"findings\": 0,\n",
        "      \"waived\": 0,\n",
        "      \"virt_ns\": 14\n",
        "    },\n",
        "    \"conc-waiver-xref\": {\n",
        "      \"findings\": 0,\n",
        "      \"waived\": 0,\n",
        "      \"virt_ns\": 9\n",
        "    }\n",
        "  },\n",
        "  \"findings\": [],\n",
        "  \"inventory\": [\n",
        "    {\n",
        "      \"word\": \"x::head_addr\",\n",
        "      \"class\": \"shared\",\n",
        "      \"discipline\": \"atomic\",\n",
        "      \"reads\": 0,\n",
        "      \"writes\": 0,\n",
        "      \"rmws\": 1,\n",
        "      \"locks\": []\n",
        "    },\n",
        "    {\n",
        "      \"word\": \"x::slot_addr\",\n",
        "      \"class\": \"sharded\",\n",
        "      \"discipline\": \"lock:shards\",\n",
        "      \"reads\": 1,\n",
        "      \"writes\": 1,\n",
        "      \"rmws\": 0,\n",
        "      \"locks\": [\n",
        "        \"shards\"\n",
        "      ]\n",
        "    }\n",
        "  ]\n",
        "}\n",
    );
    assert_eq!(got, want);
}

// The real tree: `spash-lint conc` must be clean (only reasoned,
// witness-cited waivers), and two independent runs must render
// byte-identical reports — the inventory is deterministic.
#[test]
fn real_tree_is_clean_and_deterministic() {
    let root = Path::new("../..");
    let (n1, f1, inv1, s1) = check_tree_conc(root).expect("walk workspace");
    let (n2, f2, inv2, s2) = check_tree_conc(root).expect("walk workspace");
    assert!(
        f1.is_empty(),
        "spash-lint conc must be clean on the tree: {f1:?}"
    );
    let r1 = conc_report_json("conc", n1, &f1, &s1, &inv1).render();
    let r2 = conc_report_json("conc", n2, &f2, &s2, &inv2).render();
    assert_eq!(r1, r2, "conc report must be byte-stable across runs");

    // The inventory covers the load-bearing words of every index: spot
    // checks that each baseline family contributed rows and that the
    // known disciplines survived.
    for stem in ["cceh::", "dash::", "clevel::", "level::", "plush::", "halo::"] {
        assert!(
            inv1.iter().any(|w| w.word.starts_with(stem)),
            "inventory lost all {stem} words"
        );
    }
    // PLUSH's op-lock discipline is what canary 1 reverts; the fixed
    // tree must report its shared words as op_locks-protected, never
    // "none".
    assert!(
        inv1.iter()
            .any(|w| w.word.starts_with("plush::") && w.locks.iter().any(|l| l == "op_locks")),
        "PLUSH op_locks discipline missing from inventory"
    );
    for w in inv1.iter().filter(|w| w.word.starts_with("plush::")) {
        assert_ne!(
            w.discipline, "none",
            "fixed PLUSH word left unprotected: {w:?}"
        );
    }
}
