//! Property-style fuzzing for the dependency-free Rust-subset parser
//! and the CFG lowering behind `spash-lint flow`/`conc`.
//!
//! A seeded LCG drives a small statement grammar — nested closures,
//! `if`/`else`, loops with `break`/`continue`, `?`-propagated calls,
//! binds, number and string literals, region wrappers — and every
//! generated source must satisfy the parser's recovery contract:
//!
//! * `parse_functions` never panics and recovers every top-level `fn`
//!   by name, in order;
//! * each function's `[line, end_line]` span is sane and the spans of
//!   sibling functions do not overlap;
//! * `build_cfg` on every parsed function yields a well-formed graph
//!   (edges in range, exit reachable from entry);
//! * parsing is insensitive to a trailing garbage item (recovery must
//!   not eat the next `fn`).
//!
//! The generator is deterministic (fixed seeds), so a failure here is a
//! reproducible parser regression, not flake.

use spash_analysis::cfg::build_cfg;
use spash_analysis::lint::strip_non_code;
use spash_analysis::parse::parse_functions;

/// The real pipeline always blanks comments and string literals before
/// parsing (`strip_non_code`); the fuzz contract mirrors it.
fn parse(src: &str) -> Vec<spash_analysis::parse::Func> {
    parse_functions(&strip_non_code(src))
}

/// Minimal deterministic LCG (numerical recipes constants).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn pick<'a>(&mut self, xs: &[&'a str]) -> &'a str {
        xs[self.below(xs.len() as u64) as usize]
    }
}

fn gen_expr(r: &mut Rng, depth: usize) -> String {
    match r.below(6) {
        0 => format!("{}", r.below(1000)),
        1 => format!("0x{:x}u64", r.below(1 << 20)),
        2 => format!("self.slot_addr(k{})", r.below(4)),
        3 => format!("ctx.read_u64(self.slot_addr(k{}))", r.below(4)),
        4 if depth > 0 => format!("({} + {})", gen_expr(r, depth - 1), r.below(9)),
        _ => format!("k{}", r.below(4)),
    }
}

fn gen_stmt(r: &mut Rng, depth: usize, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    match r.below(10) {
        0 => out.push_str(&format!("{pad}ctx.write_u64({}, {});\n", gen_expr(r, 1), gen_expr(r, 1))),
        1 => out.push_str(&format!("{pad}let v{} = {};\n", r.below(8), gen_expr(r, 2))),
        2 => out.push_str(&format!(
            "{pad}let v{} = self.helper(ctx, {})?;\n",
            r.below(8),
            gen_expr(r, 1)
        )),
        3 if depth > 0 => {
            out.push_str(&format!("{pad}if {} == 0 {{\n", gen_expr(r, 1)));
            gen_block(r, depth - 1, out, indent + 1);
            if r.below(2) == 0 {
                out.push_str(&format!("{pad}}} else {{\n"));
                gen_block(r, depth - 1, out, indent + 1);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        4 if depth > 0 => {
            out.push_str(&format!("{pad}loop {{\n"));
            gen_block(r, depth - 1, out, indent + 1);
            if r.below(3) == 0 {
                out.push_str(&format!("{pad}  if retry {{ continue; }}\n"));
            }
            out.push_str(&format!("{pad}  if done {{ break; }}\n"));
            out.push_str(&format!("{pad}}}\n"));
        }
        5 if depth > 0 => {
            let region = r.pick(&[
                "self.shards[0].with(ctx, |ctx, _| {",
                "self.rw.write(ctx, |ctx, _| {",
                "self.rw.read(ctx, |ctx, _| {",
                "self.htm.try_transaction(ctx, |tx, ctx| {",
            ]);
            out.push_str(&format!("{pad}{region}\n"));
            gen_block(r, depth - 1, out, indent + 1);
            out.push_str(&format!("{pad}}});\n"));
        }
        6 if depth > 0 => {
            out.push_str(&format!("{pad}let agg = items.iter().map(|x| {{\n"));
            gen_block(r, depth - 1, out, indent + 1);
            out.push_str(&format!("{pad}}}).count();\n"));
        }
        7 => out.push_str(&format!("{pad}ctx.cas_u64({}, 0, {});\n", gen_expr(r, 1), gen_expr(r, 1))),
        8 => out.push_str(&format!("{pad}return;\n")),
        _ => out.push_str(&format!(
            "{pad}log(\"s{} }}{{ unbalanced-in-string\", {});\n",
            r.below(9),
            gen_expr(r, 1)
        )),
    }
}

fn gen_block(r: &mut Rng, depth: usize, out: &mut String, indent: usize) {
    for _ in 0..(1 + r.below(3)) {
        gen_stmt(r, depth, out, indent);
    }
}

/// Generate one file with `n_fns` top-level functions; returns (source,
/// expected fn names).
fn gen_file(seed: u64, n_fns: usize) -> (String, Vec<String>) {
    let mut r = Rng(seed);
    let mut src = String::new();
    let mut names = Vec::new();
    for i in 0..n_fns {
        let name = format!("op_{seed}_{i}");
        src.push_str(&format!("fn {name}(&self, ctx: &mut MemCtx, k0: u64) {{\n"));
        gen_block(&mut r, 3, &mut src, 1);
        src.push_str("}\n\n");
        names.push(name);
    }
    (src, names)
}

/// Exit must be reachable from entry; all edges in range.
fn cfg_well_formed(src_fn: &spash_analysis::parse::Func) {
    let cfg = build_cfg(src_fn);
    let n = cfg.nodes.len();
    assert!(cfg.entry < n && cfg.exit < n, "{}: entry/exit oob", src_fn.name);
    for (i, ss) in cfg.succs.iter().enumerate() {
        for &s in ss {
            assert!(s < n, "{}: edge {i}->{s} out of range", src_fn.name);
        }
    }
    let mut seen = vec![false; n];
    let mut stack = vec![cfg.entry];
    while let Some(x) = stack.pop() {
        if std::mem::replace(&mut seen[x], true) {
            continue;
        }
        stack.extend(cfg.succs[x].iter().copied());
    }
    assert!(seen[cfg.exit], "{}: exit unreachable from entry", src_fn.name);
}

#[test]
fn fuzz_parser_recovers_every_fn() {
    for seed in 0..200u64 {
        let n_fns = 1 + (seed as usize % 4);
        let (src, names) = gen_file(seed, n_fns);
        let fns = parse(&src);
        let got: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(got, names, "seed {seed}: parser lost a function\n{src}");
        let total_lines = src.lines().count();
        let mut prev_end = 0usize;
        for f in &fns {
            assert!(f.line <= f.end_line, "seed {seed}: inverted span in {}", f.name);
            assert!(f.end_line <= total_lines, "seed {seed}: span past EOF in {}", f.name);
            assert!(f.line > prev_end, "seed {seed}: overlapping spans at {}", f.name);
            prev_end = f.end_line;
        }
    }
}

#[test]
fn fuzz_cfg_is_well_formed() {
    for seed in 200..400u64 {
        let (src, _) = gen_file(seed, 2);
        for f in parse(&src) {
            cfg_well_formed(&f);
        }
    }
}

// Recovery: an unbalanced garbage item between two functions must not
// swallow the second one.
#[test]
fn fuzz_recovery_across_garbage_items() {
    for seed in 400..480u64 {
        let (a, mut names_a) = gen_file(seed, 1);
        let (b, names_b) = gen_file(seed + 10_000, 1);
        let garbage = match seed % 4 {
            0 => "impl Foo for Bar { type T = ((); }\n",
            1 => "static X: &str = \"fn not_a_fn() {\";\n",
            2 => "macro_rules! m { ($x:expr) => { $x } }\n",
            _ => "const N: usize = 1 << 9;\n",
        };
        let src = format!("{a}{garbage}{b}");
        let fns = parse(&src);
        names_a.extend(names_b);
        let got: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(got, names_a, "seed {seed}: recovery lost a fn\n{src}");
    }
}

// Hardening: literal forms that have historically broken handwritten
// tokenizers — char literals (the apostrophe must not open a string),
// lifetimes, underscored/suffixed/float numbers, byte strings.
#[test]
fn tricky_literals_do_not_derail_the_parser() {
    let src = "fn first<'a>(&'a self, ctx: &mut MemCtx) {\n  \
                 let c = 'x';\n  \
                 let nl = '\\n';\n  \
                 let brace = '{';\n  \
                 let n = 1_000_000u64;\n  \
                 let f = 0.5f64;\n  \
                 let bs = b\"fn fake() {\";\n  \
                 let shift = 1u64 << 9;\n  \
                 ctx.write_u64(self.slot_addr(n), n);\n\
               }\n\
               fn second(&self, ctx: &mut MemCtx) {\n  \
                 ctx.fence();\n\
               }\n";
    let fns = parse(src);
    let got: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
    assert_eq!(got, vec!["first", "second"], "{fns:?}");
    for f in &fns {
        cfg_well_formed(f);
    }
}
