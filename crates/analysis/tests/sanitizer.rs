//! Mutation canaries and clean-run gates for the persistence-ordering
//! sanitizer.
//!
//! Each index has two canary sites compiled into its publication path
//! (the last flush and the last fence before the operation becomes
//! visible), gated on [`spash_pmem::san::site_enabled`]. Suppressing the
//! flush must surface as a `published-dirty` violation on a
//! `DirtyUnflushed` cacheline; suppressing the fence must surface as the
//! line being caught in `FlushedUnfenced` (`published-unfenced` at the
//! next visibility edge, or `write-after-flush-before-fence` if a store
//! gets there first).
//!
//! The site registry is process-global, so every test here serializes on
//! one mutex: a canary left armed would poison a concurrently running
//! clean-run gate.

use std::sync::{Mutex, PoisonError};

use spash_analysis::all_targets;
use spash_analysis::sandrive::{run_san, SanRunConfig, SanRunResult};
use spash_pmem::san::{reset_sites, set_site, SanViolationKind};
use spash_pmem::PersistenceDomain;

static GATE: Mutex<()> = Mutex::new(());

fn target_named(name: &str) -> spash_index_api::crashpoint::CrashTarget {
    all_targets()
        .into_iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("no crash target named {name}"))
}

/// Run `target` with one canary site suppressed, restoring the registry
/// even if the workload panics.
fn run_with_suppressed(target_name: &str, site: &str) -> SanRunResult {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            reset_sites();
        }
    }
    let _restore = Restore;
    reset_sites();
    set_site(site, false);
    run_san(
        &target_named(target_name),
        &SanRunConfig::quick(PersistenceDomain::Adr),
    )
}

/// Suppressed publication flush: the sanitizer must localize at least
/// one `published-dirty` violation on a `DirtyUnflushed` line.
fn assert_flush_canary_caught(target_name: &str, site: &str) {
    let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let r = run_with_suppressed(target_name, site);
    assert!(
        !r.report.clean(),
        "{target_name}: suppressing {site} went unnoticed"
    );
    assert!(
        r.report
            .violations
            .iter()
            .any(|v| v.kind == SanViolationKind::PublishedDirty && v.state == "DirtyUnflushed"),
        "{target_name}: suppressing {site} did not yield published-dirty \
         on a DirtyUnflushed line; got {:#?}",
        r.report.violations
    );
}

/// Suppressed publication fence: the sanitizer must catch the line in
/// `FlushedUnfenced`, and the first visibility edge after the
/// suppressed fence must report it as `published-unfenced`.
fn assert_fence_canary_caught(target_name: &str, site: &str) {
    let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let r = run_with_suppressed(target_name, site);
    assert!(
        !r.report.clean(),
        "{target_name}: suppressing {site} went unnoticed"
    );
    assert!(
        r.report
            .violations
            .iter()
            .any(|v| v.state == "FlushedUnfenced"),
        "{target_name}: suppressing {site} never caught a FlushedUnfenced \
         line; got {:#?}",
        r.report.violations
    );
    assert!(
        r.report
            .violations
            .iter()
            .any(|v| v.kind == SanViolationKind::PublishedUnfenced),
        "{target_name}: suppressing {site} never reported \
         published-unfenced at a visibility edge; got {:#?}",
        r.report.violations
    );
}

#[test]
fn canary_spash_payload() {
    assert_flush_canary_caught("Spash", "spash.payload.flush");
    assert_fence_canary_caught("Spash", "spash.payload.fence");
}

#[test]
fn canary_cceh_insert() {
    assert_flush_canary_caught("CCEH", "cceh.insert.flush");
    assert_fence_canary_caught("CCEH", "cceh.insert.fence");
}

#[test]
fn canary_dash_insert() {
    assert_flush_canary_caught("Dash", "dash.insert.flush");
    assert_fence_canary_caught("Dash", "dash.insert.fence");
}

#[test]
fn canary_level_insert() {
    assert_flush_canary_caught("Level", "level.insert.flush");
    assert_fence_canary_caught("Level", "level.insert.fence");
}

#[test]
fn canary_clevel_insert() {
    assert_flush_canary_caught("CLevel", "clevel.insert.flush");
    assert_fence_canary_caught("CLevel", "clevel.insert.fence");
}

#[test]
fn canary_plush_insert() {
    assert_flush_canary_caught("Plush", "plush.insert.flush");
    assert_fence_canary_caught("Plush", "plush.insert.fence");
}

#[test]
fn canary_halo_insert() {
    assert_flush_canary_caught("Halo", "halo.insert.flush");
    assert_fence_canary_caught("Halo", "halo.insert.fence");
}

/// Zero-false-positive gate: the full 10k-op acceptance workload is
/// clean for every index under ADR (publication checks armed).
#[test]
fn clean_run_adr_all_targets() {
    let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    reset_sites();
    let cfg = SanRunConfig::full(PersistenceDomain::Adr);
    for t in all_targets() {
        let r = run_san(&t, &cfg);
        assert!(r.clean(), "{} ADR run not clean: {}", r.name, r.summary());
        assert!(
            r.report.violations.is_empty(),
            "{}: {:#?}",
            r.name,
            r.report.violations
        );
    }
}

/// Zero-false-positive gate: the same workload under eADR (publication
/// checks off, perf diagnostics still live).
#[test]
fn clean_run_eadr_all_targets() {
    let _g = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    reset_sites();
    let cfg = SanRunConfig::full(PersistenceDomain::Eadr);
    for t in all_targets() {
        let r = run_san(&t, &cfg);
        assert!(r.clean(), "{} eADR run not clean: {}", r.name, r.summary());
    }
}
