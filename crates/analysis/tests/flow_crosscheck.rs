//! Static/dynamic sanitizer cross-check over the real workspace tree.
//!
//! The flow rules and the PR 3 runtime sanitizer describe the same
//! persistence discipline from two sides; this test holds the actual
//! source to the contract both ways:
//!
//! * the whole tree is flow-clean — every finding is either fixed or
//!   carries a reasoned waiver;
//! * every static `flow-*` waiver cites the `san_forgive` site it
//!   shadows (or `san=none(<why>)`), and every dynamic `san_forgive`
//!   site is cited by some static waiver, so neither analyzer quietly
//!   grows a blind spot the other does not know about.

use std::fs;
use std::path::{Path, PathBuf};

use spash_analysis::flow_rules::{check_tree, crosscheck};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

fn collect(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
    for e in fs::read_dir(dir).unwrap() {
        let p = e.unwrap().path();
        let name = p.file_name().unwrap().to_string_lossy().to_string();
        if p.is_dir() {
            if name != "target" && name != ".git" && name != "related" {
                collect(&p, root, out);
            }
        } else if name.ends_with(".rs") {
            let rel = p.strip_prefix(root).unwrap().to_string_lossy().replace('\\', "/");
            out.push((rel, fs::read_to_string(&p).unwrap()));
        }
    }
}

#[test]
fn workspace_is_flow_clean_including_crosscheck() {
    let (n, findings) = check_tree(&workspace_root()).unwrap();
    assert!(n > 50, "walked only {n} files — wrong root?");
    assert!(
        findings.is_empty(),
        "workspace must be flow-clean; found:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn dropping_a_citation_orphans_the_dynamic_site() {
    let root = workspace_root();
    let mut files = Vec::new();
    collect(&root, &root, &mut files);
    files.sort_by(|a, b| a.0.cmp(&b.0));

    // The real tree cross-checks clean.
    assert!(crosscheck(&files).is_empty());

    // Erase every `san=level::remove` citation: the dynamic san_forgive
    // site in level.rs::remove loses its static twin and must be
    // reported as orphaned.
    let mutated: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.clone(), s.replace("san=level::remove", "san=none(mutated)")))
        .collect();
    let f = crosscheck(&mutated);
    assert!(
        f.iter().any(|x| x.msg.contains("level::remove") && x.msg.contains("no static flow waiver")),
        "{f:?}"
    );
}

#[test]
fn bogus_citation_is_reported() {
    let root = workspace_root();
    let mut files = Vec::new();
    collect(&root, &root, &mut files);
    files.sort_by(|a, b| a.0.cmp(&b.0));

    // Point one citation at a san_forgive site that does not exist.
    let mutated: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.clone(), s.replace("san=dash::update", "san=dash::no_such_fn")))
        .collect();
    let f = crosscheck(&mutated);
    assert!(
        f.iter().any(|x| x.msg.contains("dash::no_such_fn") && x.msg.contains("no such san_forgive site")),
        "{f:?}"
    );
    // And the now-uncited `dash::update` site is orphaned.
    assert!(
        f.iter().any(|x| x.msg.contains("dash::update")),
        "{f:?}"
    );
}
