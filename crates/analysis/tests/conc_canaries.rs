//! Mutation canaries for the `spash-lint conc` concurrency rules.
//!
//! Each canary seeds one known-bad synchronization pattern — headlined
//! by the PR-2 PLUSH check-then-act race, re-created here by reverting
//! its `op_locks` fix on the real source — and asserts the analyzer
//! flags it; the minimally-repaired twin must come back clean. If a
//! refactor of the parser, CFG lowering, lockset transfer, or the
//! check-then-act pairing makes any of these pass silently, the
//! analyzer has lost teeth.

use spash_analysis::conc_rules::{
    check_files_conc, WordRow, RULE_CONC_ATOMICITY, RULE_CONC_LOCKSET, RULE_CONC_XREF,
};
use spash_analysis::lint::Finding;

fn conc(src: &str) -> (Vec<Finding>, Vec<WordRow>) {
    check_files_conc(&[("crates/baselines/src/x.rs".to_string(), src.to_string())])
}

fn fires(f: &[Finding], rule: &str) -> bool {
    f.iter().any(|x| x.rule == rule)
}

// Canary 1 (the headline): revert the PLUSH `op_locks` fix on the real
// source. PR 2's scheduler found this dynamically: with the per-shard
// operation lock gone, the duplicate check (`lookup`) and the dependent
// `put` run in separate windows, so two inserts of one key both commit.
// The static analyzer must re-find it as a check-then-act race.
#[test]
fn canary_reverted_plush_op_locks_race_is_refound() {
    let src = std::fs::read_to_string("../baselines/src/plush.rs").expect("plush source");
    assert!(
        src.contains("op_locks"),
        "PLUSH lost its op_locks fix; this canary needs updating"
    );
    // The revert: the op-lock wrapper degrades to an unknown
    // higher-order call (`maybe`), so its closure body runs with no
    // region semantics — exactly the pre-fix code shape.
    let reverted = src.replace(
        "self.op_locks[Self::shard_of(hash_key(key))].with(ctx, |ctx, _| {",
        "self.op_locks[Self::shard_of(hash_key(key))].maybe(|ctx| {",
    );
    assert_ne!(src, reverted, "revert must change the source");
    let (f, _) = check_files_conc(&[("crates/baselines/src/plush.rs".to_string(), reverted)]);
    assert!(
        fires(&f, RULE_CONC_ATOMICITY),
        "reverted PLUSH must be statically flagged as {RULE_CONC_ATOMICITY}: {f:?}"
    );

    // The fixed source (what is actually in the tree) is clean.
    let (twin, _) = check_files_conc(&[("crates/baselines/src/plush.rs".to_string(), src)]);
    let conc_rules_fired: Vec<&Finding> = twin
        .iter()
        .filter(|x| x.rule == RULE_CONC_ATOMICITY || x.rule == RULE_CONC_LOCKSET)
        .collect();
    assert!(
        conc_rules_fired.is_empty(),
        "fixed PLUSH must be clean: {conc_rules_fired:?}"
    );
}

// Canary 2: lock released before the dependent write — the probe runs
// under the bucket lock but the write lands after the region closed.
#[test]
fn canary_lock_released_before_dependent_write() {
    let (f, _) = conc(
        "fn insert(&self, ctx: &mut MemCtx, k: u64) {\n\
           let slot = self.bucket_locks[0].with(ctx, |ctx, _| self.probe_slot(ctx, k));\n\
           ctx.write_u64(PmAddr(slot), k);\n\
         }\n\
         fn probe_slot(&self, ctx: &mut MemCtx, k: u64) -> u64 {\n\
           ctx.read_u64(self.slot_addr(k))\n\
         }",
    );
    assert!(fires(&f, RULE_CONC_LOCKSET), "{f:?}");

    let (twin, _) = conc(
        "fn insert(&self, ctx: &mut MemCtx, k: u64) {\n\
           self.bucket_locks[0].with(ctx, |ctx, _| {\n\
             let slot = self.probe_slot(ctx, k);\n\
             ctx.write_u64(PmAddr(slot), k);\n\
           });\n\
         }\n\
         fn probe_slot(&self, ctx: &mut MemCtx, k: u64) -> u64 {\n\
           ctx.read_u64(self.slot_addr(k))\n\
         }",
    );
    assert!(
        !fires(&twin, RULE_CONC_LOCKSET) && !fires(&twin, RULE_CONC_ATOMICITY),
        "repaired twin must be clean: {twin:?}"
    );
}

// Canary 3: a CAS publication downgraded to a plain store loses the
// claim/publish discipline that made the word's writes safe.
#[test]
fn canary_rmw_downgraded_to_plain_store() {
    let (twin, _) = conc(
        "fn insert(&self, ctx: &mut MemCtx, k: u64) {\n\
           ctx.cas_u64(self.slot_addr(k), 0, k);\n\
         }",
    );
    assert!(
        !fires(&twin, RULE_CONC_LOCKSET),
        "CAS-published word must be clean: {twin:?}"
    );

    let (f, _) = conc(
        "fn insert(&self, ctx: &mut MemCtx, k: u64) {\n\
           ctx.write_u64(self.slot_addr(k), k);\n\
         }",
    );
    assert!(fires(&f, RULE_CONC_LOCKSET), "{f:?}");
}

// Canary 4: a read taken inside an HTM transaction escapes into an
// unguarded dependent write — the transaction's isolation ended at
// commit, so the checked emptiness can be invalidated before the store.
#[test]
fn canary_htm_read_escapes_to_unguarded_write() {
    let (f, _) = conc(
        "fn insert(&self, ctx: &mut MemCtx, k: u64) {\n\
           let cur = self.htm.try_transaction(ctx, |tx, ctx| Ok(ctx.read_u64(self.slot_addr(k))));\n\
           if cur == 0 {\n\
             ctx.write_u64(self.slot_addr(k), k);\n\
           }\n\
         }",
    );
    assert!(
        fires(&f, RULE_CONC_LOCKSET) || fires(&f, RULE_CONC_ATOMICITY),
        "{f:?}"
    );

    let (twin, _) = conc(
        "fn insert(&self, ctx: &mut MemCtx, k: u64) {\n\
           self.htm.try_transaction(ctx, |tx, ctx| {\n\
             if ctx.read_u64(self.slot_addr(k)) == 0 {\n\
               ctx.write_u64(self.slot_addr(k), k);\n\
             }\n\
             Ok(())\n\
           });\n\
         }",
    );
    assert!(
        !fires(&twin, RULE_CONC_LOCKSET) && !fires(&twin, RULE_CONC_ATOMICITY),
        "repaired twin must be clean: {twin:?}"
    );
}

// Canary 5: inventory misclassification — dropping the lock from one of
// a word's writers must demote its discipline from `lock:<name>` to
// unprotected, never leave it reported as locked.
#[test]
fn canary_inventory_tracks_lost_lock() {
    let row = |src: &str| -> WordRow {
        let (_, inv) = conc(src);
        inv.into_iter()
            .find(|w| w.word == "x::slot_addr")
            .expect("word inventoried")
    };
    let locked = row(
        "fn insert(&self, ctx: &mut MemCtx, k: u64) {\n\
           self.shards[0].with(ctx, |ctx, _| { ctx.write_u64(self.slot_addr(k), k); });\n\
         }\n\
         fn remove(&self, ctx: &mut MemCtx, k: u64) {\n\
           self.shards[0].with(ctx, |ctx, _| { ctx.write_u64(self.slot_addr(k), 0); });\n\
         }",
    );
    assert_eq!(
        (locked.class.as_str(), locked.discipline.as_str()),
        ("sharded", "lock:shards"),
        "{locked:?}"
    );

    let broken = row(
        "fn insert(&self, ctx: &mut MemCtx, k: u64) {\n\
           self.shards[0].with(ctx, |ctx, _| { ctx.write_u64(self.slot_addr(k), k); });\n\
         }\n\
         fn remove(&self, ctx: &mut MemCtx, k: u64) {\n\
           ctx.write_u64(self.slot_addr(k), 0);\n\
         }",
    );
    assert_eq!(broken.class, "shared", "{broken:?}");
    assert_eq!(broken.discipline, "none", "{broken:?}");
}

// Canary 6: a waiver citing a scheduler witness that does not exist is
// itself a finding — waivers must stay pinned to live dynamic twins.
#[test]
fn canary_stale_waiver_citation() {
    let (f, _) = conc(
        "// lint:allow(conc-lockset): scrubbed elsewhere sched=NoSuchThing\n\
         fn insert(&self, ctx: &mut MemCtx, k: u64) {\n\
           ctx.write_u64(self.slot_addr(k), k);\n\
         }",
    );
    assert!(
        f.iter().any(|x| x.rule == RULE_CONC_XREF && x.msg.contains("NoSuchThing")),
        "{f:?}"
    );

    let (twin, _) = conc(
        "fn insert(&self, ctx: &mut MemCtx, k: u64) {\n\
           // lint:allow(conc-lockset): deliberate for this twin sched=Halo\n\
           ctx.write_u64(self.slot_addr(k), k);\n\
         }",
    );
    assert!(
        !fires(&twin, RULE_CONC_XREF) && !fires(&twin, RULE_CONC_LOCKSET),
        "witnessed waiver must hold: {twin:?}"
    );
}
