//! Mutation canaries for the `spash-lint flow` dataflow rules.
//!
//! Each canary seeds one known-bad persistence-ordering pattern into a
//! synthetic source checked under the ADR (or eADR) model and asserts
//! the analyzer flags it at the expected line — then, where it sharpens
//! the point, checks the minimally-repaired twin comes back clean. If a
//! future refactor of the parser, CFG builder, or dataflow rules makes
//! any of these pass silently, the analyzer has lost teeth.

use spash_analysis::flow_rules::{
    check_files, check_files_stats, RULE_FLUSH_FENCE, RULE_HTM_CLWB, RULE_PUBLISH_INIT,
};
use spash_analysis::lint::{report_json, Finding};

/// Check one synthetic file under the strict ADR model.
fn adr(src: &str) -> Vec<Finding> {
    check_files(&[("crates/baselines/src/x.rs".to_string(), src.to_string())])
}

/// Check one synthetic file under the eADR model (HTM rule only).
fn eadr(src: &str) -> Vec<Finding> {
    check_files(&[("crates/core/src/x.rs".to_string(), src.to_string())])
}

fn fires(f: &[Finding], rule: &str, line: usize) -> bool {
    f.iter().any(|x| x.rule == rule && x.line == line)
}

// Canary 1: store published via CAS with no flush at all.
#[test]
fn canary_store_then_cas_without_flush() {
    let f = adr("fn f(ctx: &mut MemCtx) {\n  ctx.write_u64(a, v);\n  ctx.cas_u64(d, x, y);\n}");
    assert!(fires(&f, RULE_FLUSH_FENCE, 3), "{f:?}");
    assert!(f.iter().any(|x| x.msg.contains("unflushed")), "{f:?}");
}

// Canary 2: flushed but never fenced before the RMW — the store could
// still be reordered past the publication.
#[test]
fn canary_flush_without_fence() {
    let f = adr(
        "fn f(ctx: &mut MemCtx) {\n  ctx.write_u64(a, v);\n  ctx.flush(a);\n  ctx.cas_u64(d, x, y);\n}",
    );
    assert!(fires(&f, RULE_FLUSH_FENCE, 4), "{f:?}");
    assert!(f.iter().any(|x| x.msg.contains("flushed-unfenced")), "{f:?}");
}

// Canary 3: path sensitivity — the flush sits on only one branch, so
// the else path reaches the RMW dirty. The twin with the flush hoisted
// above the branch is clean.
#[test]
fn canary_flush_on_one_branch_only() {
    let f = adr(
        "fn f(ctx: &mut MemCtx) {\n  ctx.write_u64(a, v);\n  if c {\n    ctx.flush(a);\n  }\n  ctx.fence();\n  ctx.cas_u64(d, x, y);\n}",
    );
    assert!(fires(&f, RULE_FLUSH_FENCE, 7), "{f:?}");

    let twin = adr(
        "fn f(ctx: &mut MemCtx) {\n  ctx.write_u64(a, v);\n  ctx.flush(a);\n  if c {\n    g();\n  }\n  ctx.fence();\n  ctx.cas_u64(d, x, y);\n}",
    );
    assert!(twin.is_empty(), "repaired twin must be clean: {twin:?}");
}

// Canary 4: a flush (clwb) directly inside an `htm.try_transaction`
// region aborts the transaction — flagged even under the eADR model.
#[test]
fn canary_flush_inside_htm_region() {
    let f = eadr(
        "fn f(ctx: &mut MemCtx) {\n  self.htm.try_transaction(ctx, |tx, ctx| {\n    ctx.flush(a);\n    Ok(())\n  });\n}",
    );
    assert!(fires(&f, RULE_HTM_CLWB, 3), "{f:?}");
}

// Canary 5: the flush hides one call deep — the interprocedural
// `flushes` summary bit must carry it into the HTM region.
#[test]
fn canary_flush_in_helper_called_from_htm() {
    let f = eadr(
        "fn helper(ctx: &mut MemCtx) {\n  ctx.flush(a);\n}\nfn f(ctx: &mut MemCtx) {\n  self.htm.try_transaction(ctx, |tx, ctx| {\n    self.helper(ctx);\n    Ok(())\n  });\n}",
    );
    assert!(fires(&f, RULE_HTM_CLWB, 6), "{f:?}");
    assert!(f.iter().any(|x| x.msg.contains("helper")), "{f:?}");
}

// Canary 6: publish-before-init — a freshly allocated node is published
// via CAS while its initializing stores are still unfenced.
#[test]
fn canary_publish_half_initialized_allocation() {
    let f = adr(
        "fn f(ctx: &mut MemCtx) {\n  let node = self.alloc.alloc_region(ctx, n);\n  ctx.write_u64(node, k);\n  ctx.cas_u64(head, old, node.0);\n}",
    );
    assert!(fires(&f, RULE_PUBLISH_INIT, 4), "{f:?}");

    let twin = adr(
        "fn f(ctx: &mut MemCtx) {\n  let node = self.alloc.alloc_region(ctx, n);\n  ctx.write_u64(node, k);\n  ctx.flush(node);\n  ctx.fence();\n  ctx.cas_u64(head, old, node.0);\n}",
    );
    assert!(
        twin.iter().all(|x| x.rule != RULE_PUBLISH_INIT),
        "repaired twin must be clean: {twin:?}"
    );
}

// Canary 7: the dirt lives in a callee — the caller publishes residue
// it never created, and the finding lands at the caller's call site
// (the callee alone is clean, so it must not report internally).
#[test]
fn canary_callee_residue_reported_at_call_site() {
    let f = adr(
        "fn dirty_helper(ctx: &mut MemCtx) {\n  ctx.write_u64(a, v);\n}\nfn f(ctx: &mut MemCtx) {\n  self.dirty_helper(ctx);\n  ctx.cas_u64(d, x, y);\n}",
    );
    assert!(fires(&f, RULE_FLUSH_FENCE, 6), "{f:?}");
    assert!(
        f.iter().all(|x| x.line != 2),
        "clean-entry callee must not self-report: {f:?}"
    );
}

// Canary 8: a non-temporal store bypasses the cache but still needs a
// fence before the lock-region release publishes it.
#[test]
fn canary_ntstore_unfenced_at_lock_release() {
    let f = adr(
        "fn f(ctx: &mut MemCtx) {\n  sh.rw.write(ctx, |ctx| {\n    ctx.ntstore_bytes(dst, src, n);\n  });\n}",
    );
    assert!(fires(&f, RULE_FLUSH_FENCE, 2), "{f:?}");
    assert!(f.iter().any(|x| x.msg.contains("flushed-unfenced")), "{f:?}");
}

// Canary 9: loop back-edge — the store of iteration N is flushed+fenced
// at the bottom of the loop, but the `break` path exits with the fresh
// store of the final iteration still dirty.
#[test]
fn canary_dirty_escape_through_loop_break() {
    let f = adr(
        "fn f(ctx: &mut MemCtx) {\n  loop {\n    ctx.write_u64(a, v);\n    if done {\n      break;\n    }\n    ctx.flush(a);\n    ctx.fence();\n  }\n  ctx.cas_u64(d, x, y);\n}",
    );
    assert!(fires(&f, RULE_FLUSH_FENCE, 10), "{f:?}");
}

// Canary 10: early `return` inside a lock region still crosses the
// release edge (the closure unwinds, the wrapper unlocks) — dirt must
// not escape through the early exit unchecked.
#[test]
fn canary_early_return_crosses_lock_release() {
    let f = adr(
        "fn f(ctx: &mut MemCtx) {\n  sh.rw.write(ctx, |ctx| {\n    ctx.write_u64(a, v);\n    if full {\n      return;\n    }\n    ctx.flush(a);\n    ctx.fence();\n  });\n}",
    );
    assert!(fires(&f, RULE_FLUSH_FENCE, 2), "{f:?}");
}

// The machine-readable report for flow findings is byte-stable: golden
// fixture over canary 1's output (schema 2: per-rule stats included).
#[test]
fn flow_json_report_is_byte_stable() {
    let mut stats = spash_analysis::lint::StatsMap::new();
    let f = check_files_stats(
        &[(
            "crates/baselines/src/x.rs".to_string(),
            "fn f(ctx: &mut MemCtx) {\n  ctx.write_u64(a, v);\n  ctx.cas_u64(d, x, y);\n}"
                .to_string(),
        )],
        &mut stats,
    );
    let got = report_json("flow", 1, &f, &stats).render();
    let want = concat!(
        "{\n",
        "  \"schema\": 2,\n",
        "  \"tool\": \"spash-lint\",\n",
        "  \"mode\": \"flow\",\n",
        "  \"files_scanned\": 1,\n",
        "  \"violations\": 1,\n",
        "  \"rule_stats\": {\n",
        "    \"flow-flush-fence\": {\n",
        "      \"findings\": 1,\n",
        "      \"waived\": 0,\n",
        "      \"virt_ns\": 4\n",
        "    },\n",
        "    \"flow-htm-clwb\": {\n",
        "      \"findings\": 0,\n",
        "      \"waived\": 0,\n",
        "      \"virt_ns\": 4\n",
        "    },\n",
        "    \"flow-publish-init\": {\n",
        "      \"findings\": 0,\n",
        "      \"waived\": 0,\n",
        "      \"virt_ns\": 4\n",
        "    }\n",
        "  },\n",
        "  \"findings\": [\n",
        "    {\n",
        "      \"file\": \"crates/baselines/src/x.rs\",\n",
        "      \"line\": 3,\n",
        "      \"rule\": \"flow-flush-fence\",\n",
        "      \"msg\": \"publication edge (atomic RMW) reachable with unflushed PM stores on some path\"\n",
        "    }\n",
        "  ]\n",
        "}\n",
    );
    assert_eq!(got, want);
}
