//! Hand-written Rust-subset parser for the flow analyses.
//!
//! `spash-lint flow` needs per-function *statement and branch structure*
//! — which calls happen on which paths — not types or full expressions.
//! The workspace is dependency-free by policy (no `syn`), so this module
//! recovers exactly that subset from the blanked source produced by
//! [`crate::lint::strip_non_code`]:
//!
//! * function items (anywhere: free, `impl`, `trait` default bodies,
//!   nested) with their body statement trees,
//! * calls with receiver chains, per-argument identifier sets, and
//!   closure-argument bodies (so `htm.try_transaction(ctx, |tx, ctx| …)`
//!   and `lock.write(ctx, |ctx| …)` regions are recoverable),
//! * branching: `if`/`else` chains, `match` arms, `loop`/`while`/`for`,
//! * early exits: `return`, `?`, `break`, `continue`,
//! * `let` bindings of plain identifiers (for the publish-before-init
//!   taint analysis).
//!
//! Everything else — operators, literals, types, generics, patterns — is
//! skipped while keeping token order, so the recovered call sequence
//! matches Rust's left-to-right evaluation order (arguments before the
//! call, receiver chains in order). The parser is total: malformed or
//! exotic input degrades to a flatter tree, never a panic or a hang.

/// One token of the blanked source. `text` is the identifier text or the
/// (possibly fused: `::`, `->`, `=>`) punctuation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    pub text: String,
    pub line: usize,
    pub is_ident: bool,
}

/// Tokenize blanked source. Numbers and lifetimes are dropped (no rule
/// needs them); `::`, `->` and `=>` are fused so angle-bracket matching
/// in generics never miscounts a `>` that belongs to an arrow.
pub fn tokenize(stripped: &str) -> Vec<Tok> {
    let b: Vec<char> = stripped.chars().collect();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_digit() {
            // Number literal (incl. hex/suffix): collapse the ident-ish
            // run to one `#n` operand marker. Dropping it entirely would
            // make `56 | x` look like `… op | x` — a closure opener.
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.push(Tok {
                text: "#n".into(),
                line,
                is_ident: false,
            });
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.push(Tok {
                text: b[start..i].iter().collect(),
                line,
                is_ident: true,
            });
            continue;
        }
        if c == '\'' {
            // Char literals were blanked; what remains is a lifetime (or
            // a loop label) — skip the tick and its identifier.
            i += 1;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            continue;
        }
        // Punctuation, with the three fusions that matter.
        let two: String = b[i..(i + 2).min(b.len())].iter().collect();
        if two == "::" || two == "->" || two == "=>" {
            out.push(Tok {
                text: two,
                line,
                is_ident: false,
            });
            i += 2;
            continue;
        }
        out.push(Tok {
            text: c.to_string(),
            line,
            is_ident: false,
        });
        i += 1;
    }
    out
}

/// A call expression: `recv.name(args…)` or `path::name(args…)`.
#[derive(Clone, Debug)]
pub struct Call {
    /// Final path/method segment: the event-relevant name.
    pub name: String,
    /// Receiver chain (`seg.rw`, `spash_pmem::san`, …), dot-joined.
    pub recv: String,
    pub line: usize,
    /// Identifiers appearing in each non-closure argument, in argument
    /// order (call names excluded, closure args contribute an empty set).
    pub args: Vec<Vec<String>>,
    /// Names of calls appearing inside each argument, aligned with
    /// `args` (closure args contribute an empty set). The concurrency
    /// analyzer labels PM words by the address-helper call in argument
    /// position (`ctx.write_u64(seg.slot_addr(b, s), v)` → `slot_addr`).
    pub arg_calls: Vec<Vec<String>>,
    /// Bodies of closure arguments, in argument order.
    pub closures: Vec<Block>,
    /// The receiver chain passed through an index expression
    /// (`self.shards[i].write(…)`): a per-shard lock, not a global one.
    pub recv_indexed: bool,
}

/// A statement in the recovered subset. Expression statements flatten
/// into the calls (and early exits) they contain, in evaluation order.
#[derive(Clone, Debug)]
pub enum Stmt {
    Call(Call),
    /// `let name = …;` — pushed *after* the initializer's statements.
    Bind {
        name: String,
        line: usize,
        /// Names of calls appearing anywhere in the initializer.
        init_calls: Vec<String>,
        /// Identifiers appearing in the initializer (for taint
        /// propagation through rebindings like `let b = a + 8;`).
        init_idents: Vec<String>,
    },
    If {
        cond: Vec<Stmt>,
        then: Block,
        els: Option<Block>,
        /// Identifiers appearing in the condition expression (guard-use
        /// tracking for the check-then-act rule).
        cond_idents: Vec<String>,
    },
    Match {
        cond: Vec<Stmt>,
        arms: Vec<Block>,
    },
    /// `loop`/`while`/`for`, unified: `cond` runs each iteration before
    /// the body (empty for `loop`). `exits_by_cond` is false for bare
    /// `loop`, which only exits via `break`.
    Loop {
        cond: Vec<Stmt>,
        body: Block,
        exits_by_cond: bool,
    },
    Block(Block),
    /// A closure body not attached to a region call: may run 0+ times.
    MaybeBlock(Block),
    Return {
        line: usize,
    },
    Question {
        line: usize,
    },
    Break {
        line: usize,
    },
    Continue {
        line: usize,
    },
}

#[derive(Clone, Debug, Default)]
pub struct Block(pub Vec<Stmt>);

/// One parsed function item.
#[derive(Clone, Debug)]
pub struct Func {
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Last line of the body (closing brace).
    pub end_line: usize,
    pub body: Block,
}

/// Parse every function item in blanked source.
pub fn parse_functions(stripped: &str) -> Vec<Func> {
    let toks = tokenize(stripped);
    let mut p = P {
        t: &toks,
        i: 0,
        fns: Vec::new(),
    };
    while p.i < p.t.len() {
        if p.is_ident_at(p.i, "fn") && p.t.get(p.i + 1).map(|t| t.is_ident) == Some(true) {
            p.parse_fn();
        } else {
            p.i += 1;
        }
    }
    p.fns
}

/// Find the name of the function whose item (from its `fn` line to its
/// closing brace) covers 1-based `line`, innermost match winning.
pub fn enclosing_fn(funcs: &[Func], line: usize) -> Option<&str> {
    funcs
        .iter()
        .filter(|f| f.line <= line && line <= f.end_line)
        .min_by_key(|f| f.end_line - f.line)
        .map(|f| f.name.as_str())
}

/// Collect the names of all calls in a statement slice, recursively.
pub fn call_names(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            match s {
                Stmt::Call(c) => {
                    out.push(c.name.clone());
                    for b in &c.closures {
                        walk(&b.0, out);
                    }
                }
                Stmt::If { cond, then, els, .. } => {
                    walk(cond, out);
                    walk(&then.0, out);
                    if let Some(e) = els {
                        walk(&e.0, out);
                    }
                }
                Stmt::Match { cond, arms } => {
                    walk(cond, out);
                    for a in arms {
                        walk(&a.0, out);
                    }
                }
                Stmt::Loop { cond, body, .. } => {
                    walk(cond, out);
                    walk(&body.0, out);
                }
                Stmt::Block(b) | Stmt::MaybeBlock(b) => walk(&b.0, out),
                _ => {}
            }
        }
    }
    walk(stmts, &mut out);
    out
}

struct P<'a> {
    t: &'a [Tok],
    i: usize,
    fns: Vec<Func>,
}

/// What ends the current expression scan (always at bracket depth 0).
#[derive(Clone, Copy, PartialEq)]
enum Stop {
    /// `;` or the enclosing block's `}`.
    Stmt,
    /// `,` or `)` (argument position).
    Arg,
    /// `,` or the enclosing `}` (match arm expression).
    Arm,
    /// The `{` that opens a control-flow body.
    LBrace,
}

impl<'a> P<'a> {
    fn text(&self, i: usize) -> &str {
        self.t.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn line(&self, i: usize) -> usize {
        self.t.get(i).map(|t| t.line).unwrap_or(0)
    }

    fn is_ident_at(&self, i: usize, s: &str) -> bool {
        self.t.get(i).map(|t| t.is_ident && t.text == s) == Some(true)
    }

    fn at(&self, s: &str) -> bool {
        self.text(self.i) == s
    }

    fn at_ident(&self, s: &str) -> bool {
        self.is_ident_at(self.i, s)
    }

    fn eof(&self) -> bool {
        self.i >= self.t.len()
    }

    /// Skip a balanced `(…)`, `[…]` or `{…}` group starting at `open`.
    fn skip_group(&mut self) {
        let (open, close) = match self.text(self.i) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => {
                self.i += 1;
                return;
            }
        };
        let mut depth = 0usize;
        while !self.eof() {
            let t = self.text(self.i);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Skip a generic-argument group starting at `<`. Arrows are fused
    /// tokens, so only bare `<`/`>` count.
    fn skip_angles(&mut self) {
        debug_assert!(self.at("<"));
        let mut depth = 0i64;
        while !self.eof() {
            match self.text(self.i) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth <= 0 {
                        self.i += 1;
                        return;
                    }
                }
                "(" | "[" | "{" => {
                    self.skip_group();
                    continue;
                }
                ";" => return, // malformed; bail without consuming
                _ => {}
            }
            self.i += 1;
        }
    }

    /// At `fn` with an identifier after it: parse the whole item and
    /// record it in `self.fns` (body functions recurse via parse_block).
    fn parse_fn(&mut self) {
        let fn_line = self.line(self.i);
        self.i += 1; // fn
        let name = self.t[self.i].text.clone();
        self.i += 1;
        if self.at("<") {
            self.skip_angles();
        }
        if !self.at("(") {
            return; // not a function item we understand
        }
        self.skip_group(); // parameter list
        // Return type / where clause: scan to the body `{` or a `;`.
        loop {
            if self.eof() || self.at(";") {
                if self.at(";") {
                    self.i += 1;
                }
                return; // trait method declaration, no body
            }
            if self.at("{") {
                break;
            }
            if self.at("(") || self.at("[") {
                self.skip_group();
                continue;
            }
            if self.at("<") {
                self.skip_angles();
                continue;
            }
            self.i += 1;
        }
        let body = self.parse_block();
        let end_line = self.line(self.i.saturating_sub(1));
        self.fns.push(Func {
            name,
            line: fn_line,
            end_line,
            body,
        });
    }

    /// At `{`: parse statements until the matching `}` (consumed).
    fn parse_block(&mut self) -> Block {
        debug_assert!(self.at("{"));
        self.i += 1;
        let mut stmts = Vec::new();
        while !self.eof() {
            if self.at("}") {
                self.i += 1;
                break;
            }
            if self.at(";") {
                self.i += 1;
                continue;
            }
            if self.at("#") {
                // Attribute: `#[…]` / `#![…]`.
                self.i += 1;
                if self.at("!") {
                    self.i += 1;
                }
                if self.at("[") {
                    self.skip_group();
                }
                continue;
            }
            if self.at_ident("fn") && self.t.get(self.i + 1).map(|t| t.is_ident) == Some(true) {
                self.parse_fn();
                continue;
            }
            if self.at_ident("let") {
                self.parse_let(&mut stmts);
                continue;
            }
            let before = self.i;
            self.scan_expr(&mut stmts, Stop::Stmt);
            if self.at(";") {
                self.i += 1;
            } else if self.i == before {
                // scan_expr stopped on a token it does not own (stray
                // closer in malformed/truncated input): force progress
                // so the parser can never loop.
                self.i += 1;
            }
        }
        Block(stmts)
    }

    /// `let [mut] pat [: ty] = init;`
    fn parse_let(&mut self, out: &mut Vec<Stmt>) {
        let line = self.line(self.i);
        self.i += 1; // let
        if self.at_ident("mut") {
            self.i += 1;
        }
        // Plain-identifier pattern (the only bind the taint rule tracks).
        let name = if self.t.get(self.i).map(|t| t.is_ident) == Some(true)
            && matches!(self.text(self.i + 1), ":" | "=")
        {
            let n = self.t[self.i].text.clone();
            self.i += 1;
            Some(n)
        } else {
            // Destructuring pattern: skip to `=` / `;` at depth 0.
            while !self.eof() && !self.at("=") && !self.at(";") {
                if self.at("(") || self.at("[") || self.at("{") {
                    self.skip_group();
                } else {
                    self.i += 1;
                }
            }
            None
        };
        if self.at(":") {
            // Type annotation: angles tracked so `Map<K, V=X>` defaults
            // don't end the scan early.
            self.i += 1;
            while !self.eof() && !self.at("=") && !self.at(";") {
                if self.at("(") || self.at("[") || self.at("{") {
                    self.skip_group();
                } else if self.at("<") {
                    self.skip_angles();
                } else {
                    self.i += 1;
                }
            }
        }
        if self.at(";") {
            self.i += 1;
            return; // uninitialized `let x;`
        }
        if !self.at("=") {
            return;
        }
        self.i += 1;
        let mark = out.len();
        let init_idents = self.scan_expr(out, Stop::Stmt);
        if self.at(";") {
            self.i += 1;
        }
        if let Some(name) = name {
            let init_calls = call_names(&out[mark..]);
            out.push(Stmt::Bind {
                name,
                line,
                init_calls,
                init_idents,
            });
        }
    }

    fn parse_if(&mut self, out: &mut Vec<Stmt>) {
        self.i += 1; // if
        let mut cond = Vec::new();
        let cond_idents = self.scan_expr(&mut cond, Stop::LBrace);
        if !self.at("{") {
            out.push(Stmt::If {
                cond,
                then: Block::default(),
                els: None,
                cond_idents,
            });
            return;
        }
        let then = self.parse_block();
        let els = if self.at_ident("else") {
            self.i += 1;
            if self.at_ident("if") {
                let mut nested = Vec::new();
                self.parse_if(&mut nested);
                Some(Block(nested))
            } else if self.at("{") {
                Some(self.parse_block())
            } else {
                None
            }
        } else {
            None
        };
        out.push(Stmt::If {
            cond,
            then,
            els,
            cond_idents,
        });
    }

    fn parse_match(&mut self, out: &mut Vec<Stmt>) {
        self.i += 1; // match
        let mut cond = Vec::new();
        self.scan_expr(&mut cond, Stop::LBrace);
        if !self.at("{") {
            out.push(Stmt::Match { cond, arms: vec![] });
            return;
        }
        self.i += 1; // {
        let mut arms = Vec::new();
        while !self.eof() && !self.at("}") {
            // Skip the pattern (and any guard) to `=>` at depth 0.
            while !self.eof() && !self.at("=>") && !self.at("}") {
                if self.at("(") || self.at("[") || self.at("{") {
                    self.skip_group();
                } else {
                    self.i += 1;
                }
            }
            if !self.at("=>") {
                break;
            }
            self.i += 1;
            let body = if self.at("{") {
                self.parse_block()
            } else {
                let mut stmts = Vec::new();
                self.scan_expr(&mut stmts, Stop::Arm);
                Block(stmts)
            };
            if self.at(",") {
                self.i += 1;
            }
            arms.push(body);
        }
        if self.at("}") {
            self.i += 1;
        }
        out.push(Stmt::Match { cond, arms });
    }

    /// Scan an expression, emitting contained calls/branches/exits into
    /// `out` in evaluation order and returning the identifiers seen
    /// (call names excluded). Stops *before* the terminator.
    fn scan_expr(&mut self, out: &mut Vec<Stmt>, stop: Stop) -> Vec<String> {
        let mut idents = Vec::new();
        // Tracks whether a closure can start here: `|` after an operand
        // is bitwise-or, after a delimiter/operator it opens a closure.
        let mut after_operand = false;
        // `return expr` / `break expr`: marker emitted after the expr.
        let mut pending: Option<Stmt> = None;
        while !self.eof() {
            let t = self.text(self.i).to_string();
            match (stop, t.as_str()) {
                (Stop::Stmt, ";") | (Stop::Stmt, "}") => break,
                (Stop::Arg, ",") | (Stop::Arg, ")") => break,
                (Stop::Arm, ",") | (Stop::Arm, "}") => break,
                (Stop::LBrace, "{") => break,
                // A stray closer always ends the scan (malformed input).
                (_, "}") | (_, ")") | (_, "]") => break,
                _ => {}
            }
            let tok_is_ident = self.t[self.i].is_ident;
            if tok_is_ident {
                match t.as_str() {
                    "if" => {
                        self.parse_if(out);
                        after_operand = true;
                        continue;
                    }
                    "match" => {
                        self.parse_match(out);
                        after_operand = true;
                        continue;
                    }
                    "while" => {
                        self.i += 1;
                        let mut cond = Vec::new();
                        self.scan_expr(&mut cond, Stop::LBrace);
                        let body = if self.at("{") {
                            self.parse_block()
                        } else {
                            Block::default()
                        };
                        out.push(Stmt::Loop {
                            cond,
                            body,
                            exits_by_cond: true,
                        });
                        after_operand = true;
                        continue;
                    }
                    "for" => {
                        self.i += 1;
                        // Skip the pattern to `in`.
                        while !self.eof() && !self.at_ident("in") && !self.at("{") {
                            if self.at("(") || self.at("[") {
                                self.skip_group();
                            } else {
                                self.i += 1;
                            }
                        }
                        if self.at_ident("in") {
                            self.i += 1;
                        }
                        let mut cond = Vec::new();
                        self.scan_expr(&mut cond, Stop::LBrace);
                        let body = if self.at("{") {
                            self.parse_block()
                        } else {
                            Block::default()
                        };
                        out.push(Stmt::Loop {
                            cond,
                            body,
                            exits_by_cond: true,
                        });
                        after_operand = true;
                        continue;
                    }
                    "loop" => {
                        self.i += 1;
                        let body = if self.at("{") {
                            self.parse_block()
                        } else {
                            Block::default()
                        };
                        out.push(Stmt::Loop {
                            cond: vec![],
                            body,
                            exits_by_cond: false,
                        });
                        after_operand = true;
                        continue;
                    }
                    "unsafe" => {
                        self.i += 1;
                        if self.at("{") {
                            let b = self.parse_block();
                            out.push(Stmt::Block(b));
                            after_operand = true;
                        }
                        continue;
                    }
                    "return" => {
                        pending = Some(Stmt::Return {
                            line: self.line(self.i),
                        });
                        self.i += 1;
                        after_operand = false;
                        continue;
                    }
                    "break" => {
                        pending = Some(Stmt::Break {
                            line: self.line(self.i),
                        });
                        self.i += 1;
                        after_operand = false;
                        continue;
                    }
                    "continue" => {
                        out.push(Stmt::Continue {
                            line: self.line(self.i),
                        });
                        self.i += 1;
                        after_operand = false;
                        continue;
                    }
                    "fn" if self.t.get(self.i + 1).map(|x| x.is_ident) == Some(true) => {
                        self.parse_fn();
                        continue;
                    }
                    "let" => {
                        if stop == Stop::Stmt {
                            // A new statement after an un-semicoloned
                            // control construct: hand back to the block
                            // parser, which owns `let` bindings.
                            break;
                        }
                        // `if let PAT = expr` / `while let PAT = expr`:
                        // skip the pattern, keep scanning the scrutinee.
                        self.i += 1;
                        while !self.eof()
                            && !self.at("=")
                            && !self.at("{")
                            && !self.at(";")
                        {
                            if self.at("(") || self.at("[") {
                                self.skip_group();
                            } else {
                                self.i += 1;
                            }
                        }
                        if self.at("=") {
                            self.i += 1;
                        }
                        after_operand = false;
                        continue;
                    }
                    "move" => {
                        self.i += 1;
                        after_operand = false;
                        continue;
                    }
                    _ => {
                        self.scan_chain(out, &mut idents);
                        after_operand = true;
                        continue;
                    }
                }
            }
            match t.as_str() {
                "(" => {
                    self.i += 1;
                    let inner = self.scan_expr(out, Stop::Arg);
                    // Tuples: keep scanning elements.
                    idents.extend(inner);
                    while self.at(",") {
                        self.i += 1;
                        idents.extend(self.scan_expr(out, Stop::Arg));
                    }
                    if self.at(")") {
                        self.i += 1;
                    }
                    after_operand = true;
                }
                "[" => {
                    self.i += 1;
                    idents.extend(self.scan_expr(out, Stop::Arg));
                    while self.at(",") {
                        self.i += 1;
                        idents.extend(self.scan_expr(out, Stop::Arg));
                    }
                    if self.at("]") {
                        self.i += 1;
                    }
                    after_operand = true;
                }
                "{" => {
                    let b = self.parse_block();
                    out.push(Stmt::Block(b));
                    after_operand = true;
                }
                "#n" => {
                    // Number literal: an operand, like an identifier.
                    self.i += 1;
                    after_operand = true;
                }
                "|" if after_operand => {
                    // Bitwise `|` or logical `||`: consume as a whole so
                    // the second `|` of `||` is not taken for a closure.
                    self.i += 1;
                    if self.at("|") {
                        self.i += 1;
                    }
                    after_operand = false;
                }
                "|" => {
                    // Closure in expression position (not a call arg):
                    // its body may run 0+ times.
                    let body = self.parse_closure(out);
                    out.push(Stmt::MaybeBlock(body));
                    after_operand = true;
                }
                "?" => {
                    out.push(Stmt::Question {
                        line: self.line(self.i),
                    });
                    self.i += 1;
                    after_operand = true;
                }
                "." => {
                    self.i += 1;
                    // `.await`, `.0`, or a method continuation — the
                    // ident case handles methods on the next loop turn.
                    after_operand = false;
                    if self.t.get(self.i).map(|x| x.is_ident) == Some(true) {
                        // Method or field: let scan_chain have it.
                        self.scan_chain(out, &mut idents);
                        after_operand = true;
                    }
                }
                "#" => {
                    self.i += 1;
                    if self.at("!") {
                        self.i += 1;
                    }
                    if self.at("[") {
                        self.skip_group();
                    }
                }
                _ => {
                    // Operators and everything else reset operand state
                    // (so `x | y` vs `f(|| …)` disambiguates), except
                    // closers which were handled by the stop matrix.
                    self.i += 1;
                    after_operand = false;
                }
            }
        }
        if let Some(p) = pending {
            out.push(p);
        }
        idents
    }

    /// At an identifier: scan a path/field/method chain, emitting any
    /// calls. Receiver identifiers land in `idents`.
    fn scan_chain(&mut self, out: &mut Vec<Stmt>, idents: &mut Vec<String>) {
        let mut chain: Vec<String> = Vec::new();
        let mut chain_indexed = false;
        loop {
            if self.t.get(self.i).map(|t| t.is_ident) != Some(true) {
                return;
            }
            let name = self.t[self.i].text.clone();
            let line = self.line(self.i);
            self.i += 1;
            // Macro invocation: scan the token soup inside for events,
            // but emit no call node (macro semantics are unknown).
            if self.at("!") {
                self.i += 1;
                if self.at("(") || self.at("[") {
                    let close = if self.at("(") { ")" } else { "]" };
                    self.i += 1;
                    loop {
                        self.scan_expr(out, Stop::Arg);
                        if self.at(",") {
                            self.i += 1;
                            continue;
                        }
                        if self.at(close) || self.eof() {
                            break;
                        }
                        // `;` separators inside `vec![a; n]` etc.
                        self.i += 1;
                    }
                    if self.at(close) {
                        self.i += 1;
                    }
                } else if self.at("{") {
                    let b = self.parse_block();
                    out.push(Stmt::Block(b));
                }
                return;
            }
            if self.at("::") {
                self.i += 1;
                if self.at("<") {
                    self.skip_angles(); // turbofish
                }
                if name.chars().next().is_some_and(|c| c.is_lowercase()) {
                    idents.push(name.clone());
                }
                chain.push(name);
                continue;
            }
            if self.at("(") {
                let (args, arg_calls, closures) = self.parse_args(out, idents);
                out.push(Stmt::Call(Call {
                    name,
                    recv: chain.join("."),
                    line,
                    args,
                    arg_calls,
                    closures,
                    recv_indexed: chain_indexed,
                }));
                chain.clear();
                chain_indexed = false;
                // Postfix continuation: `f(x).g(y)`, `f(x)?`, `f(x)[i]`.
                loop {
                    if self.at("?") {
                        out.push(Stmt::Question {
                            line: self.line(self.i),
                        });
                        self.i += 1;
                        continue;
                    }
                    if self.at("[") {
                        self.i += 1;
                        idents.extend(self.scan_expr(out, Stop::Arg));
                        if self.at("]") {
                            self.i += 1;
                        }
                        continue;
                    }
                    break;
                }
                if self.at(".") {
                    self.i += 1;
                    continue;
                }
                return;
            }
            if self.at(".") {
                if name.chars().next().is_some_and(|c| c.is_lowercase()) {
                    idents.push(name.clone());
                }
                chain.push(name);
                self.i += 1;
                // `.0` tuple access: number tokens are dropped by the
                // tokenizer, so the chain just continues if an ident
                // follows, else ends here.
                if self.t.get(self.i).map(|t| t.is_ident) == Some(true) {
                    continue;
                }
                return;
            }
            if self.at("[") {
                // Indexing: scan the index, then continue the chain.
                if name.chars().next().is_some_and(|c| c.is_lowercase()) {
                    idents.push(name.clone());
                }
                chain.push(name);
                chain_indexed = true;
                self.i += 1;
                idents.extend(self.scan_expr(out, Stop::Arg));
                if self.at("]") {
                    self.i += 1;
                }
                if self.at(".") {
                    self.i += 1;
                    continue;
                }
                return;
            }
            // Plain identifier operand.
            if name.chars().next().is_some_and(|c| c.is_lowercase()) {
                idents.push(name);
            }
            return;
        }
    }

    /// At `(` of a call: parse the arguments. Closure bodies are
    /// returned separately; each contributes an empty ident set so
    /// argument positions stay aligned.
    fn parse_args(
        &mut self,
        out: &mut Vec<Stmt>,
        idents: &mut Vec<String>,
    ) -> (Vec<Vec<String>>, Vec<Vec<String>>, Vec<Block>) {
        debug_assert!(self.at("("));
        self.i += 1;
        let mut args = Vec::new();
        let mut arg_calls = Vec::new();
        let mut closures = Vec::new();
        loop {
            if self.eof() || self.at(")") {
                if self.at(")") {
                    self.i += 1;
                }
                break;
            }
            let closure_here = self.at("|")
                || (self.at_ident("move") && self.text(self.i + 1) == "|");
            if closure_here {
                if self.at_ident("move") {
                    self.i += 1;
                }
                let body = self.parse_closure(out);
                closures.push(body);
                args.push(Vec::new());
                arg_calls.push(Vec::new());
            } else {
                let mark = out.len();
                let arg_idents = self.scan_expr(out, Stop::Arg);
                idents.extend(arg_idents.iter().cloned());
                args.push(arg_idents);
                arg_calls.push(call_names(&out[mark..]));
            }
            if self.at(",") {
                self.i += 1;
                continue;
            }
            if self.at(")") {
                self.i += 1;
                break;
            }
            // Malformed: make progress.
            if !self.eof() {
                self.i += 1;
            } else {
                break;
            }
        }
        (args, arg_calls, closures)
    }

    /// At the opening `|` of a closure: skip the parameter list, then
    /// parse the body (block or single expression).
    fn parse_closure(&mut self, _out: &mut Vec<Stmt>) -> Block {
        debug_assert!(self.at("|"));
        self.i += 1;
        // Parameters to the closing `|` (patterns may nest groups).
        while !self.eof() && !self.at("|") {
            if self.at("(") || self.at("[") || self.at("{") {
                self.skip_group();
            } else if self.at("<") {
                self.skip_angles();
            } else {
                self.i += 1;
            }
        }
        if self.at("|") {
            self.i += 1;
        }
        if self.at("->") {
            // Explicit return type: scan to the body `{`.
            self.i += 1;
            while !self.eof() && !self.at("{") {
                if self.at("<") {
                    self.skip_angles();
                } else if self.at("(") || self.at("[") {
                    self.skip_group();
                } else {
                    self.i += 1;
                }
            }
        }
        if self.at("{") {
            self.parse_block()
        } else {
            let mut stmts = Vec::new();
            self.scan_expr(&mut stmts, Stop::Arg);
            Block(stmts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::strip_non_code;

    fn parse(src: &str) -> Vec<Func> {
        parse_functions(&strip_non_code(src))
    }

    fn flat_calls(f: &Func) -> Vec<String> {
        call_names(&f.body.0)
    }

    #[test]
    fn simple_fn_and_calls_in_order() {
        let fs = parse("fn f(ctx: &mut MemCtx) { ctx.write_u64(a, v); ctx.flush(a); ctx.fence(); }");
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].name, "f");
        assert_eq!(flat_calls(&fs[0]), ["write_u64", "flush", "fence"]);
    }

    #[test]
    fn args_evaluated_before_call() {
        let fs = parse("fn f() { ctx.flush(seg.slot_addr(b, s)); }");
        assert_eq!(flat_calls(&fs[0]), ["slot_addr", "flush"]);
        // The outer call's argument idents include the receiver base.
        let Stmt::Call(c) = &fs[0].body.0[1] else { panic!() };
        assert_eq!(c.name, "flush");
        assert!(c.args[0].contains(&"seg".to_string()), "{c:?}");
        assert!(c.args[0].contains(&"b".to_string()));
    }

    #[test]
    fn if_else_structure() {
        let fs = parse(
            "fn f() { if cond { ctx.flush(a); } else { ctx.fence(); } ctx.cas_u64(d, x, y); }",
        );
        let body = &fs[0].body.0;
        assert!(matches!(&body[0], Stmt::If { els: Some(_), .. }));
        let Stmt::If { then, els, .. } = &body[0] else { panic!() };
        assert_eq!(call_names(&then.0), ["flush"]);
        assert_eq!(call_names(&els.as_ref().unwrap().0), ["fence"]);
        assert!(matches!(&body[1], Stmt::Call(c) if c.name == "cas_u64"));
    }

    #[test]
    fn match_arms_with_guards_and_struct_patterns() {
        let fs = parse(
            "fn f() { match x { Some(Out { a, .. }) if a > 0 => ctx.flush(p), None => { ctx.fence(); } _ => {} } }",
        );
        let Stmt::Match { arms, .. } = &fs[0].body.0[0] else { panic!() };
        assert_eq!(arms.len(), 3);
        assert_eq!(call_names(&arms[0].0), ["flush"]);
        assert_eq!(call_names(&arms[1].0), ["fence"]);
        assert!(call_names(&arms[2].0).is_empty());
    }

    #[test]
    fn closure_args_captured_with_region_call() {
        let fs = parse(
            "fn f() { let out = seg.rw.read(ctx, |ctx, _| { ctx.write_u64(a, v); Out::Done }); }",
        );
        let calls: Vec<_> = fs[0]
            .body
            .0
            .iter()
            .filter_map(|s| match s {
                Stmt::Call(c) => Some(c),
                _ => None,
            })
            .collect();
        let read = calls.iter().find(|c| c.name == "read").unwrap();
        assert_eq!(read.closures.len(), 1);
        assert_eq!(call_names(&read.closures[0].0), ["write_u64"]);
        assert_eq!(read.recv, "seg.rw");
    }

    #[test]
    fn try_transaction_closure() {
        let fs = parse(
            "fn f() { let r = self.htm.try_transaction(ctx, |tx, ctx| { tx.write_u64(ctx, a, v)?; Ok(()) }); }",
        );
        let Some(Stmt::Call(c)) = fs[0]
            .body
            .0
            .iter()
            .find(|s| matches!(s, Stmt::Call(c) if c.name == "try_transaction"))
        else {
            panic!()
        };
        assert_eq!(c.closures.len(), 1);
        assert!(call_names(&c.closures[0].0).contains(&"write_u64".to_string()));
    }

    #[test]
    fn let_bind_records_init_calls() {
        let fs = parse("fn f() { let blob = self.alloc.alloc_blob(ctx, len)?; use_it(blob); }");
        let Some(Stmt::Bind { name, init_calls, .. }) = fs[0]
            .body
            .0
            .iter()
            .find(|s| matches!(s, Stmt::Bind { .. }))
        else {
            panic!()
        };
        assert_eq!(name, "blob");
        assert!(init_calls.contains(&"alloc_blob".to_string()));
    }

    #[test]
    fn loops_break_continue_question() {
        let fs = parse(
            "fn f() -> Result<(), E> { loop { if done { break; } step(ctx)?; } while more() { tick(); } Ok(()) }",
        );
        let body = &fs[0].body.0;
        let Stmt::Loop { body: b1, .. } = &body[0] else { panic!() };
        // The break sits inside the `if done { … }` then-block.
        fn has_break(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::Break { .. } => true,
                Stmt::If { then, els, .. } => {
                    has_break(&then.0) || els.as_ref().is_some_and(|e| has_break(&e.0))
                }
                _ => false,
            })
        }
        assert!(has_break(&b1.0), "{b1:?}");
        assert!(b1.0.iter().any(|s| matches!(s, Stmt::Question { .. })));
        let Stmt::Loop { cond, body: b2, .. } = &body[1] else { panic!("{body:?}") };
        assert_eq!(call_names(cond), ["more"]);
        assert_eq!(call_names(&b2.0), ["tick"]);
    }

    #[test]
    fn nested_and_trait_fns() {
        let fs = parse(
            "impl X { fn a(&self) { helper(); } }\ntrait T { fn decl(&self) -> u64; fn with_default(&self) { base(); } }",
        );
        let names: Vec<_> = fs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["a", "with_default"]);
    }

    #[test]
    fn generic_fn_with_fn_bound() {
        let fs = parse("fn run<F: Fn(&mut Tx<'_>, &mut MemCtx) -> Result<u64, Abort>>(f: F) -> u64 { inner(f) }");
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].name, "run");
        assert_eq!(flat_calls(&fs[0]), ["inner"]);
    }

    #[test]
    fn macros_scanned_for_events() {
        let fs = parse("fn f() { debug_assert_eq!(ctx.read_u64(a), v); vec![make(x); 4]; }");
        let calls = flat_calls(&fs[0]);
        assert!(calls.contains(&"read_u64".to_string()), "{calls:?}");
        assert!(calls.contains(&"make".to_string()));
    }

    #[test]
    fn enclosing_fn_lookup() {
        let src = "fn a() {\n  one();\n}\nfn b() {\n  two();\n}\n";
        let fs = parse(src);
        assert_eq!(enclosing_fn(&fs, 2), Some("a"));
        assert_eq!(enclosing_fn(&fs, 5), Some("b"));
        assert_eq!(enclosing_fn(&fs, 99), None);
    }

    #[test]
    fn bitwise_or_is_not_a_closure() {
        let fs = parse("fn f() { let m = a | b; g(m || h()); cas(sa, w, w | FROZEN); }");
        let calls = flat_calls(&fs[0]);
        assert!(calls.contains(&"cas".to_string()));
        assert!(calls.contains(&"h".to_string()));
        assert!(calls.contains(&"g".to_string()));
    }

    #[test]
    fn or_after_number_literal_is_not_a_closure() {
        // Numbers collapse to an operand marker; `56 | addr.0` must be
        // bitwise-or. This once swallowed every fn after `pack_blob`.
        let fs = parse(
            "fn pack(addr: PmAddr) -> u64 { BLOB_TAG << 56 | addr.0 }\nfn after() { g(); }",
        );
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert_eq!(fs[1].name, "after");
        assert!(flat_calls(&fs[1]).contains(&"g".to_string()));
    }

    #[test]
    fn let_statement_after_unsemicoloned_control_flow() {
        // `while …{}` ends without `;`; the following `let` must parse
        // as a binding (and must never wedge the parser — this exact
        // shape once looped forever on a slice-pattern let-else).
        let fs = parse(
            "fn f() { while let Some(a) = it.next() { use_it(a); } let [x, y] = p[..] else { return; }; g(x, y); }",
        );
        assert_eq!(fs.len(), 1);
        let calls = flat_calls(&fs[0]);
        assert!(calls.contains(&"use_it".to_string()), "{calls:?}");
        assert!(calls.contains(&"g".to_string()), "{calls:?}");
    }

    #[test]
    fn truncated_input_terminates() {
        // The parser must be total even on unterminated input.
        let fs = parse("fn f() { while c { } let [x, y] = p[..] else {");
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn indexed_receiver_region() {
        let fs = parse(
            "fn f() { self.shards[Self::shard_of(h)].write(ctx, |ctx, sh| { ctx.fence(); }); }",
        );
        let Some(Stmt::Call(c)) = fs[0]
            .body
            .0
            .iter()
            .find(|s| matches!(s, Stmt::Call(c) if c.name == "write"))
        else {
            panic!("{:?}", fs[0].body)
        };
        assert_eq!(c.closures.len(), 1);
        assert_eq!(call_names(&c.closures[0].0), ["fence"]);
    }
}
