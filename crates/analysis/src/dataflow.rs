//! Generic forward dataflow over [`crate::cfg::Cfg`].
//!
//! A classic worklist fixpoint: facts flow from the entry node along
//! successor edges, joining at merges, until nothing changes. Reporting
//! is a *separate* pass after convergence ([`check`]) so diagnostics are
//! emitted exactly once per node against the final (widest) facts — a
//! transfer function that reported during iteration would fire on
//! intermediate facts and duplicate on every worklist revisit.
//!
//! Facts must form a join-semilattice of finite height: `join` must be
//! commutative/associative/idempotent and `transfer` monotone, which
//! every analysis in [`crate::flow_rules`] satisfies (finite obligation
//! enum, finite variable maps, bools). Termination then follows.

use crate::cfg::{Cfg, Ev};

/// A diagnostic produced by an analysis at a node. The flow layer
/// attaches rule name and file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diag {
    pub line: usize,
    pub msg: String,
}

pub trait Analysis {
    type Fact: Clone + PartialEq;

    /// Fact at the function entry node.
    fn entry_fact(&self) -> Self::Fact;

    /// Least upper bound of two facts.
    fn join(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact;

    /// Fact after executing `ev` in state `fact`. During fixpoint
    /// iteration `sink` is `None`; during the reporting pass it
    /// collects diagnostics.
    fn transfer(
        &self,
        ev: &Ev,
        line: usize,
        fact: &Self::Fact,
        sink: Option<&mut Vec<Diag>>,
    ) -> Self::Fact;
}

/// Solve to fixpoint; returns the IN fact of each node (`None` for
/// nodes unreachable from entry).
pub fn solve<A: Analysis>(cfg: &Cfg, a: &A) -> Vec<Option<A::Fact>> {
    let n = cfg.nodes.len();
    let mut input: Vec<Option<A::Fact>> = vec![None; n];
    input[cfg.entry] = Some(a.entry_fact());
    let mut work: Vec<usize> = vec![cfg.entry];
    let mut queued = vec![false; n];
    queued[cfg.entry] = true;
    while let Some(node) = work.pop() {
        queued[node] = false;
        let in_fact = input[node].clone().expect("queued node has a fact");
        let out = a.transfer(&cfg.nodes[node].ev, cfg.nodes[node].line, &in_fact, None);
        for &s in &cfg.succs[node] {
            let merged = match &input[s] {
                Some(prev) => a.join(prev, &out),
                None => out.clone(),
            };
            if input[s].as_ref() != Some(&merged) {
                input[s] = Some(merged);
                if !queued[s] {
                    queued[s] = true;
                    work.push(s);
                }
            }
        }
    }
    input
}

/// Reporting pass: replay `transfer` once per reachable node against the
/// converged IN facts, collecting diagnostics.
pub fn check<A: Analysis>(cfg: &Cfg, a: &A, facts: &[Option<A::Fact>]) -> Vec<Diag> {
    let mut out = Vec::new();
    for (i, node) in cfg.nodes.iter().enumerate() {
        if let Some(f) = &facts[i] {
            let _ = a.transfer(&node.ev, node.line, f, Some(&mut out));
        }
    }
    out.sort_by_key(|d| d.line);
    out.dedup();
    out
}

/// Convenience: solve then check.
pub fn run<A: Analysis>(cfg: &Cfg, a: &A) -> Vec<Diag> {
    let facts = solve(cfg, a);
    check(cfg, a, &facts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use crate::lint::strip_non_code;
    use crate::parse::parse_functions;

    /// Toy analysis: counts stores seen on the longest path, saturating
    /// at 3 (finite lattice), flags a fence when the count is 0.
    struct CountStores;

    impl Analysis for CountStores {
        type Fact = u8;

        fn entry_fact(&self) -> u8 {
            0
        }

        fn join(&self, a: &u8, b: &u8) -> u8 {
            (*a).max(*b)
        }

        fn transfer(&self, ev: &Ev, line: usize, fact: &u8, sink: Option<&mut Vec<Diag>>) -> u8 {
            match ev {
                Ev::Store { .. } => (*fact + 1).min(3),
                Ev::Fence => {
                    if *fact == 0 {
                        if let Some(sink) = sink {
                            sink.push(Diag {
                                line,
                                msg: "fence with no prior store".into(),
                            });
                        }
                    }
                    *fact
                }
                _ => *fact,
            }
        }
    }

    fn cfg_of(src: &str) -> crate::cfg::Cfg {
        let fs = parse_functions(&strip_non_code(src));
        build_cfg(&fs[0])
    }

    #[test]
    fn terminates_on_loops_and_joins_at_merges() {
        let cfg = cfg_of(
            "fn f() { loop { if c { ctx.write_u64(a, v); } else { ctx.write_u64(b, v); } if done { break; } } ctx.fence(); }",
        );
        let diags = run(&cfg, &CountStores);
        // A store happens on every path before the fence.
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn reports_once_against_final_facts() {
        let cfg = cfg_of("fn f() {\n ctx.fence();\n ctx.fence();\n}");
        let diags = run(&cfg, &CountStores);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_ne!(diags[0].line, diags[1].line);
    }

    #[test]
    fn unreachable_code_is_not_checked() {
        let cfg = cfg_of("fn f() { return; ctx.fence(); }");
        let diags = run(&cfg, &CountStores);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
