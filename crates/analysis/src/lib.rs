//! Static and dynamic analysis for the Spash reproduction.
//!
//! Two tools live here, both dependency-free:
//!
//! * [`sandrive`] — a seeded workload driver for the persistence-ordering
//!   sanitizer (`spash_pmem::san`). It runs every index with the sanitizer
//!   armed and reports publication-ordering violations plus the
//!   redundant-flush / no-op-fence perf diagnostics.
//! * [`lint`] — `spash-lint`, a source-level checker (handwritten
//!   tokenizer, no `syn`) for the workspace's cross-cutting invariants:
//!   no host sync primitives or host clocks in sched-instrumented code,
//!   busy-waits through `spin_wait()`, `// SAFETY:` on every `unsafe`,
//!   and no raw arena stores outside the instrumented platform.
//!
//! `spash-lint flow` layers a path-sensitive static analyzer on top of
//! the same tokenizer: [`parse`] recovers per-function statement/branch
//! structure, [`cfg`] lowers it to a control-flow graph of persistence
//! events, [`dataflow`] runs forward fixpoints over it, [`summaries`]
//! propagates obligations bottom-up across the call graph, and
//! [`flow_rules`] implements the three ordering rules (flush-fence
//! obligation, no clwb in HTM, publish-before-init) plus the waiver
//! cross-check against the dynamic sanitizer's `san_forgive` sites.
//!
//! `spash-lint conc` reuses the same CFG and call-graph summaries for
//! concurrency discipline: [`conc_rules`] computes interprocedural
//! locksets over the lock/HTM regions the lowering models, flags
//! unprotected shared-PM writes and check-then-act races, emits a
//! machine-readable shared-word inventory, and cross-checks every
//! waiver against the dynamic scheduler/sanitizer twins.

pub mod cfg;
pub mod conc_rules;
pub mod dataflow;
pub mod flow_rules;
pub mod json;
pub mod lint;
pub mod parse;
pub mod sandrive;
pub mod summaries;

use spash::{Spash, SpashConfig};
use spash_baselines::{CLevel, Cceh, Dash, Halo, Level, Plush};
use spash_index_api::crashpoint::CrashTarget;
use spash_pmem::SanMode;

/// Every index in the repo as a [`CrashTarget`], constructed with the same
/// parameters the crash-point sweep uses (`spash-bench crashpoints`).
pub fn all_targets() -> Vec<CrashTarget> {
    vec![
        Spash::crash_target(SpashConfig::test_default()),
        Cceh::crash_target(1),
        Dash::crash_target(1),
        Level::crash_target(4),
        CLevel::crash_target(4),
        Plush::crash_target(4),
        Halo::crash_target(8 << 20, u64::MAX),
    ]
}

/// The sanitizer mode appropriate for an index, keyed by target name.
///
/// Spash is eADR-native: its data path deliberately issues no flushes, so
/// under `Strict` every publication would be flagged. It runs `Relaxed`,
/// where only ranges it explicitly registers with `san_ordered` (its ADR
/// downgrade path) are checked. The six baselines are ADR-era flush+fence
/// designs and must survive `Strict`: every line they write is checked at
/// every visibility edge.
pub fn san_mode_for(target_name: &str) -> SanMode {
    if target_name.starts_with("Spash") {
        SanMode::Relaxed
    } else {
        SanMode::Strict
    }
}
