//! Intraprocedural control-flow graphs over persistence events.
//!
//! Each parsed function lowers to a graph whose nodes carry one [`Ev`]
//! each. Only the events the flow rules care about survive; everything
//! else becomes [`Ev::Call`] (resolved against interprocedural
//! summaries) or [`Ev::Nop`].
//!
//! The event mapping mirrors the dynamic sanitizer's model
//! (`spash_pmem::san`): stores are the `MemCtx` write methods,
//! publication edges are exactly the dynamic `SyncEvent`s that trigger
//! an `on_edge` check — atomic RMWs (`cas_u64` / `fetch_or_u64` /
//! `fetch_and_u64`), lock releases (the ends of `VLock`/`VRwLock`
//! closure regions and explicit `nontx_unlock`), and HTM commits (the
//! end of an `htm.try_transaction` closure). Plain `read_u64`/Acquire
//! loads are *not* edges, matching `san::on_edge`.
//!
//! Region closures lower with a dedicated exit node so `?`/`return`
//! inside the closure still reaches the region's publication edge —
//! which is exactly what happens dynamically: the closure unwinds, the
//! region wrapper releases the lock / commits or aborts the transaction.

use crate::parse::{Block, Call, Func, Stmt};

/// Publication-edge kinds, matching `san::SyncEvent`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PubKind {
    /// `cas_u64` / `fetch_or_u64` / `fetch_and_u64`.
    Rmw,
    /// End of a lock closure region or explicit `nontx_unlock`.
    LockRelease,
    /// End of an `htm.try_transaction` closure (commit).
    HtmCommit,
}

impl PubKind {
    pub fn label(self) -> &'static str {
        match self {
            PubKind::Rmw => "atomic RMW",
            PubKind::LockRelease => "lock release",
            PubKind::HtmCommit => "HTM commit",
        }
    }
}

/// One persistence-relevant event.
#[derive(Clone, Debug)]
pub enum Ev {
    /// A PM store. `tgt` is the base identifier(s) of the address
    /// expression (for the publish-before-init taint rule); `nt` marks
    /// non-temporal stores, which bypass the cache but still need a
    /// fence before publication.
    Store { nt: bool, tgt: Vec<String> },
    Flush { tgt: Vec<String> },
    Fence,
    /// A publication edge. `val` is the base identifier(s) of the value
    /// being published (empty for lock release / HTM commit).
    Publish { kind: PubKind, val: Vec<String> },
    HtmBegin,
    /// A call resolved via interprocedural summaries. `foreign` marks a
    /// receiver other than `self`/`Self`/bare (`Arc::new`, `map.insert`,
    /// `alloc.alloc_region`): the target is a method of *that* value or
    /// type, so same-file-first resolution must not apply — a `fn new`
    /// or `fn insert` in the calling file is a name collision, not the
    /// callee. Only a globally unique name may resolve.
    Call { name: String, foreign: bool },
    /// `let var = init;` — `alloc` is true when the initializer calls
    /// an allocator (fresh PM whose contents start unfenced).
    Bind { var: String, alloc: bool },
    Nop,
}

#[derive(Clone, Debug)]
pub struct Node {
    pub ev: Ev,
    pub line: usize,
}

/// A function CFG. `entry` and `exit` are `Nop` nodes; edges are in
/// `succs`. Nodes unreachable from `entry` (code after `return`) keep
/// their slots but never receive dataflow facts.
pub struct Cfg {
    pub nodes: Vec<Node>,
    pub succs: Vec<Vec<usize>>,
    pub entry: usize,
    pub exit: usize,
}

impl Cfg {
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut p = vec![Vec::new(); self.nodes.len()];
        for (n, ss) in self.succs.iter().enumerate() {
            for &s in ss {
                p[s].push(n);
            }
        }
        p
    }
}

/// Identifiers that never name a PM address or published value.
const NON_ADDR_IDENTS: &[&str] = &["ctx", "self", "tx"];

fn addr_base(args: &[Vec<String>], skip_last: bool) -> Vec<String> {
    // First non-context identifier of each relevant argument: the base
    // of the address expression (`seg.slot_addr(b, s)` → `seg`).
    let n = args.len().saturating_sub(skip_last as usize);
    let mut out = Vec::new();
    for a in &args[..n] {
        if let Some(id) = a.iter().find(|i| !NON_ADDR_IDENTS.contains(&i.as_str())) {
            out.push(id.clone());
        }
    }
    out
}

fn val_base(args: &[Vec<String>]) -> Vec<String> {
    args.last()
        .and_then(|a| a.iter().find(|i| !NON_ADDR_IDENTS.contains(&i.as_str())))
        .map(|s| vec![s.clone()])
        .unwrap_or_default()
}

struct Lower {
    nodes: Vec<Node>,
    succs: Vec<Vec<usize>>,
    fn_exit: usize,
    /// (continue target, break target) per enclosing loop.
    loop_stack: Vec<(usize, usize)>,
    /// Exit node of the innermost enclosing closure (region end or
    /// plain-closure merge); `return`/`?` route here when present.
    closure_exit: Vec<usize>,
}

impl Lower {
    fn node(&mut self, ev: Ev, line: usize) -> usize {
        self.nodes.push(Node { ev, line });
        self.succs.push(Vec::new());
        self.nodes.len() - 1
    }

    fn edge(&mut self, a: usize, b: usize) {
        if !self.succs[a].contains(&b) {
            self.succs[a].push(b);
        }
    }

    fn early_exit_target(&self) -> usize {
        *self.closure_exit.last().unwrap_or(&self.fn_exit)
    }

    fn lower_block(&mut self, b: &Block, mut cur: usize) -> usize {
        for s in &b.0 {
            cur = self.lower_stmt(s, cur);
        }
        cur
    }

    /// Lower a closure body with its own loop scope and exit node.
    fn lower_closure(&mut self, b: &Block, entry: usize, exit: usize) {
        let saved_loops = std::mem::take(&mut self.loop_stack);
        self.closure_exit.push(exit);
        let end = self.lower_block(b, entry);
        self.edge(end, exit);
        self.closure_exit.pop();
        self.loop_stack = saved_loops;
    }

    fn lower_stmt(&mut self, s: &Stmt, cur: usize) -> usize {
        match s {
            Stmt::Call(c) => self.lower_call(c, cur),
            Stmt::Bind {
                name,
                line,
                init_calls,
            } => {
                let alloc = init_calls
                    .iter()
                    .any(|n| n.contains("alloc") && !n.contains("dealloc"));
                let n = self.node(
                    Ev::Bind {
                        var: name.clone(),
                        alloc,
                    },
                    *line,
                );
                self.edge(cur, n);
                n
            }
            Stmt::If { cond, then, els } => {
                let mut split = cur;
                for c in cond {
                    split = self.lower_stmt(c, split);
                }
                let line = self.nodes[split].line;
                let merge = self.node(Ev::Nop, line);
                let t_end = self.lower_block(then, split);
                self.edge(t_end, merge);
                match els {
                    Some(e) => {
                        let e_end = self.lower_block(e, split);
                        self.edge(e_end, merge);
                    }
                    None => self.edge(split, merge),
                }
                merge
            }
            Stmt::Match { cond, arms } => {
                let mut split = cur;
                for c in cond {
                    split = self.lower_stmt(c, split);
                }
                let line = self.nodes[split].line;
                let merge = self.node(Ev::Nop, line);
                if arms.is_empty() {
                    self.edge(split, merge);
                } else {
                    for a in arms {
                        let a_end = self.lower_block(a, split);
                        self.edge(a_end, merge);
                    }
                }
                merge
            }
            Stmt::Loop {
                cond,
                body,
                exits_by_cond,
            } => {
                let line = self.nodes[cur].line;
                let head = self.node(Ev::Nop, line);
                self.edge(cur, head);
                let mut c_end = head;
                for c in cond {
                    c_end = self.lower_stmt(c, c_end);
                }
                let exit = self.node(Ev::Nop, line);
                // `while`/`for` may exit after evaluating the condition
                // without running the body; a bare `loop` exits only
                // through `break` edges.
                if *exits_by_cond {
                    self.edge(c_end, exit);
                }
                self.loop_stack.push((head, exit));
                let b_end = self.lower_block(body, c_end);
                self.edge(b_end, head);
                self.loop_stack.pop();
                exit
            }
            Stmt::Block(b) => self.lower_block(b, cur),
            Stmt::MaybeBlock(b) => {
                // A detached closure: may run zero or more times.
                let line = self.nodes[cur].line;
                let merge = self.node(Ev::Nop, line);
                self.edge(cur, merge);
                let entry = self.node(Ev::Nop, line);
                self.edge(cur, entry);
                self.lower_closure(b, entry, merge);
                merge
            }
            Stmt::Return { line } => {
                let t = self.early_exit_target();
                self.edge(cur, t);
                // Dead continuation node: no predecessors.
                self.node(Ev::Nop, *line)
            }
            Stmt::Question { line } => {
                let q = self.node(Ev::Nop, *line);
                self.edge(cur, q);
                let t = self.early_exit_target();
                self.edge(q, t);
                q
            }
            Stmt::Break { line } => {
                let t = self
                    .loop_stack
                    .last()
                    .map(|&(_, brk)| brk)
                    .unwrap_or_else(|| self.early_exit_target());
                self.edge(cur, t);
                self.node(Ev::Nop, *line)
            }
            Stmt::Continue { line } => {
                let t = self
                    .loop_stack
                    .last()
                    .map(|&(head, _)| head)
                    .unwrap_or_else(|| self.early_exit_target());
                self.edge(cur, t);
                self.node(Ev::Nop, *line)
            }
        }
    }

    fn lower_call(&mut self, c: &Call, cur: usize) -> usize {
        let line = c.line;
        let ev = match c.name.as_str() {
            "write_u64" | "write_bytes" => Some(Ev::Store {
                nt: false,
                tgt: addr_base(&c.args, true),
            }),
            "ntstore_bytes" => Some(Ev::Store {
                nt: true,
                tgt: addr_base(&c.args, true),
            }),
            "flush" | "flush_range" => Some(Ev::Flush {
                tgt: addr_base(&c.args, false),
            }),
            "fence" => Some(Ev::Fence),
            "cas_u64" | "fetch_or_u64" | "fetch_and_u64" => Some(Ev::Publish {
                kind: PubKind::Rmw,
                val: val_base(&c.args),
            }),
            "nontx_unlock" => Some(Ev::Publish {
                kind: PubKind::LockRelease,
                val: vec![],
            }),
            // Sanitizer bookkeeping, not memory traffic.
            "san_forgive" | "san_transient" | "san_ordered" | "san_tag" | "san_op_label" => {
                Some(Ev::Nop)
            }
            _ => None,
        };
        if let Some(ev) = ev {
            let n = self.node(ev, line);
            self.edge(cur, n);
            return n;
        }
        // Region calls: the closure body runs between an entry event
        // and the region's publication edge.
        if !c.closures.is_empty() {
            match c.name.as_str() {
                "try_transaction" => {
                    let begin = self.node(Ev::HtmBegin, line);
                    self.edge(cur, begin);
                    let end = self.node(
                        Ev::Publish {
                            kind: PubKind::HtmCommit,
                            val: vec![],
                        },
                        line,
                    );
                    for cl in &c.closures {
                        self.lower_closure(cl, begin, end);
                    }
                    return end;
                }
                "read" | "write" => {
                    // VLock / VRwLock / sharded-lock closure regions.
                    let begin = self.node(Ev::Nop, line);
                    self.edge(cur, begin);
                    let end = self.node(
                        Ev::Publish {
                            kind: PubKind::LockRelease,
                            val: vec![],
                        },
                        line,
                    );
                    for cl in &c.closures {
                        self.lower_closure(cl, begin, end);
                    }
                    return end;
                }
                _ => {
                    // Unknown higher-order call (`stats_span`, iterator
                    // adapters…): closure may run; no region semantics.
                    let merge = self.node(Ev::Nop, line);
                    self.edge(cur, merge);
                    for cl in &c.closures {
                        let entry = self.node(Ev::Nop, line);
                        self.edge(cur, entry);
                        self.lower_closure(cl, entry, merge);
                    }
                    let n = self.node(
                        Ev::Call {
                            name: c.name.clone(),
                            foreign: foreign_recv(&c.recv),
                        },
                        line,
                    );
                    self.edge(merge, n);
                    return n;
                }
            }
        }
        let n = self.node(
            Ev::Call {
                name: c.name.clone(),
                foreign: foreign_recv(&c.recv),
            },
            line,
        );
        self.edge(cur, n);
        n
    }
}

/// Does the receiver point outside the current file's own fn namespace?
/// Bare calls and `self.helper`/`Self::helper` target functions the
/// same-file resolution rule may claim; anything else (`Arc::new`,
/// `map.insert`, `alloc.alloc_region`, `common::make_val`) targets some
/// other type's method and must resolve by global uniqueness only.
fn foreign_recv(recv: &str) -> bool {
    !(recv.is_empty() || recv == "self" || recv == "Self")
}

/// Build the CFG for one parsed function.
pub fn build_cfg(f: &Func) -> Cfg {
    let mut l = Lower {
        nodes: Vec::new(),
        succs: Vec::new(),
        fn_exit: 0,
        loop_stack: Vec::new(),
        closure_exit: Vec::new(),
    };
    let entry = l.node(Ev::Nop, f.line);
    let exit = l.node(Ev::Nop, f.end_line);
    l.fn_exit = exit;
    let end = l.lower_block(&f.body, entry);
    l.edge(end, exit);
    Cfg {
        nodes: l.nodes,
        succs: l.succs,
        entry,
        exit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::strip_non_code;
    use crate::parse::parse_functions;

    fn cfg_of(src: &str) -> Cfg {
        let fs = parse_functions(&strip_non_code(src));
        assert_eq!(fs.len(), 1, "expected one fn in {src}");
        build_cfg(&fs[0])
    }

    fn count(cfg: &Cfg, pred: impl Fn(&Ev) -> bool) -> usize {
        cfg.nodes.iter().filter(|n| pred(&n.ev)).count()
    }

    #[test]
    fn straight_line_events() {
        let cfg = cfg_of("fn f() { ctx.write_u64(a, v); ctx.flush(a); ctx.fence(); }");
        assert_eq!(count(&cfg, |e| matches!(e, Ev::Store { .. })), 1);
        assert_eq!(count(&cfg, |e| matches!(e, Ev::Flush { .. })), 1);
        assert_eq!(count(&cfg, |e| matches!(e, Ev::Fence)), 1);
    }

    #[test]
    fn branch_has_two_paths_to_merge() {
        let cfg = cfg_of("fn f() { if c { ctx.flush(a); } ctx.fence(); }");
        // The fence node must have the merge as its only pred path, and
        // the merge two preds (then-branch end, condition skip).
        let preds = cfg.preds();
        let fence = cfg
            .nodes
            .iter()
            .position(|n| matches!(n.ev, Ev::Fence))
            .unwrap();
        let merge = preds[fence][0];
        assert_eq!(preds[merge].len(), 2);
    }

    #[test]
    fn htm_region_brackets_body() {
        let cfg = cfg_of(
            "fn f() { self.htm.try_transaction(ctx, |tx, ctx| { tx.write_u64(ctx, a, v)?; Ok(()) }); }",
        );
        assert_eq!(count(&cfg, |e| matches!(e, Ev::HtmBegin)), 1);
        assert_eq!(
            count(
                &cfg,
                |e| matches!(e, Ev::Publish { kind: PubKind::HtmCommit, .. })
            ),
            1
        );
        // `?` inside the closure must reach the commit node, not fn exit.
        let commit = cfg
            .nodes
            .iter()
            .position(|n| matches!(n.ev, Ev::Publish { kind: PubKind::HtmCommit, .. }))
            .unwrap();
        let preds = cfg.preds();
        assert!(preds[commit].len() >= 2, "early exit + fallthrough");
    }

    #[test]
    fn lock_region_publishes_at_end() {
        let cfg = cfg_of("fn f() { seg.rw.write(ctx, |ctx| { ctx.write_u64(a, v); }); }");
        assert_eq!(
            count(
                &cfg,
                |e| matches!(e, Ev::Publish { kind: PubKind::LockRelease, .. })
            ),
            1
        );
    }

    #[test]
    fn loop_back_edge_exists() {
        let cfg = cfg_of("fn f() { loop { if done { break; } ctx.fence(); } }");
        // Some node must have a successor with a smaller index (the
        // back edge to the loop head).
        let has_back = cfg
            .succs
            .iter()
            .enumerate()
            .any(|(i, ss)| ss.iter().any(|&s| s < i && s != cfg.exit));
        assert!(has_back);
    }

    #[test]
    fn return_routes_to_fn_exit() {
        let cfg = cfg_of("fn f() { if c { return; } ctx.fence(); }");
        let preds = cfg.preds();
        assert!(preds[cfg.exit].len() >= 2, "{:?}", preds[cfg.exit]);
    }

    #[test]
    fn rmw_is_publish_with_value() {
        let cfg = cfg_of("fn f() { ctx.cas_u64(head, old, node.0); }");
        let publish = cfg
            .nodes
            .iter()
            .find(|n| matches!(n.ev, Ev::Publish { .. }))
            .unwrap();
        let Ev::Publish { kind, val } = &publish.ev else { unreachable!() };
        assert_eq!(*kind, PubKind::Rmw);
        assert_eq!(val, &["node".to_string()]);
    }

    #[test]
    fn store_target_base_identifier() {
        let cfg = cfg_of("fn f() { ctx.write_u64(seg.slot_addr(b, s), v); }");
        let store = cfg
            .nodes
            .iter()
            .find(|n| matches!(n.ev, Ev::Store { .. }))
            .unwrap();
        let Ev::Store { tgt, .. } = &store.ev else { unreachable!() };
        assert_eq!(tgt, &["seg".to_string()]);
    }
}
