//! Intraprocedural control-flow graphs over persistence events.
//!
//! Each parsed function lowers to a graph whose nodes carry one [`Ev`]
//! each. Only the events the flow rules care about survive; everything
//! else becomes [`Ev::Call`] (resolved against interprocedural
//! summaries) or [`Ev::Nop`].
//!
//! The event mapping mirrors the dynamic sanitizer's model
//! (`spash_pmem::san`): stores are the `MemCtx` write methods,
//! publication edges are exactly the dynamic `SyncEvent`s that trigger
//! an `on_edge` check — atomic RMWs (`cas_u64` / `fetch_or_u64` /
//! `fetch_and_u64`), lock releases (the ends of `VLock`/`VRwLock`
//! closure regions and explicit `nontx_unlock`), and HTM commits (the
//! end of an `htm.try_transaction` closure). Plain `read_u64`/Acquire
//! loads are *not* edges, matching `san::on_edge`.
//!
//! Region closures lower with a dedicated exit node so `?`/`return`
//! inside the closure still reaches the region's publication edge —
//! which is exactly what happens dynamically: the closure unwinds, the
//! region wrapper releases the lock / commits or aborts the transaction.

use crate::parse::{Block, Call, Func, Stmt};

/// Publication-edge kinds, matching `san::SyncEvent`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PubKind {
    /// `cas_u64` / `fetch_or_u64` / `fetch_and_u64`.
    Rmw,
    /// End of a lock closure region or explicit `nontx_unlock`.
    LockRelease,
    /// End of an `htm.try_transaction` closure (commit).
    HtmCommit,
}

impl PubKind {
    pub fn label(self) -> &'static str {
        match self {
            PubKind::Rmw => "atomic RMW",
            PubKind::LockRelease => "lock release",
            PubKind::HtmCommit => "HTM commit",
        }
    }
}

/// One persistence-relevant event.
#[derive(Clone, Debug)]
pub enum Ev {
    /// A PM store. `tgt` is the base identifier(s) of the address
    /// expression (for the publish-before-init taint rule); `via` the
    /// helper calls inside the address expression (`seg.slot_addr(b, s)`
    /// → `slot_addr`), which the concurrency analyzer uses to label the
    /// word being written; `nt` marks non-temporal stores, which bypass
    /// the cache but still need a fence before publication.
    Store {
        nt: bool,
        tgt: Vec<String>,
        via: Vec<String>,
    },
    /// A PM load (`read_u64` / `read_bytes`). Not a publication edge —
    /// it exists for the concurrency rules (guarded reads, inventory).
    Load { tgt: Vec<String>, via: Vec<String> },
    Flush { tgt: Vec<String> },
    Fence,
    /// A publication edge. `val` is the base identifier(s) of the value
    /// being published (empty for lock release / HTM commit); for RMWs
    /// `tgt`/`via` describe the word operated on, like [`Ev::Store`].
    Publish {
        kind: PubKind,
        val: Vec<String>,
        tgt: Vec<String>,
        via: Vec<String>,
    },
    HtmBegin,
    /// Entry into a lock region (`VLock::with`, `VRwLock::read`/`write`,
    /// `nontx_lock`). `id` is the node's own index, so a matching
    /// [`Ev::RegionExit`] — or a lockset fact — can name this exact
    /// region instance. `writer` is false for read-side regions;
    /// `sharded` marks an indexed receiver (`self.shards[i].with(…)`),
    /// i.e. a per-shard lock rather than one global lock.
    RegionEnter {
        id: usize,
        lock: String,
        writer: bool,
        sharded: bool,
    },
    /// Exit of a lock region. `enter` is the matching [`Ev::RegionEnter`]
    /// node for closure regions; `None` for explicit `nontx_unlock`,
    /// which releases whatever `lock`-named region is held.
    RegionExit { enter: Option<usize>, lock: String },
    /// Identifiers consulted by a branch condition (`if cond_idents { … }`);
    /// the atomicity rule uses these to tie guarded reads to the
    /// decisions they justify.
    CondUse { idents: Vec<String> },
    /// A call resolved via interprocedural summaries. `foreign` marks a
    /// receiver other than `self`/`Self`/bare (`Arc::new`, `map.insert`,
    /// `alloc.alloc_region`): the target is a method of *that* value or
    /// type, so same-file-first resolution must not apply — a `fn new`
    /// or `fn insert` in the calling file is a name collision, not the
    /// callee. Only a globally unique name may resolve.
    Call { name: String, foreign: bool },
    /// `let var = init;` — `alloc` is true when the initializer calls
    /// an allocator (fresh PM whose contents start unfenced);
    /// `init_calls`/`init_idents` carry the initializer's calls and
    /// identifiers for guard/alloc taint propagation.
    Bind {
        var: String,
        alloc: bool,
        init_calls: Vec<String>,
        init_idents: Vec<String>,
    },
    Nop,
}

/// The region-forming functions the CFG lowering recognizes, with the
/// synchronization role each plays. `spash-lint conc` cross-checks this
/// table against `// conc: region(<kind>) fn=<name>` annotations at the
/// definitions in `crates/pmem` / `crates/htm` (rule `conc-sync-model`),
/// so the static model cannot silently drift from the primitives.
pub const REGION_FNS: &[(&str, &str)] = &[
    ("with", "lock"),
    ("write", "lock"),
    ("read", "read-lock"),
    ("try_transaction", "htm"),
    ("run_two_phase", "htm"),
    ("nontx_lock", "acquire"),
    ("nontx_unlock", "release"),
];

#[derive(Clone, Debug)]
pub struct Node {
    pub ev: Ev,
    pub line: usize,
}

/// A function CFG. `entry` and `exit` are `Nop` nodes; edges are in
/// `succs`. Nodes unreachable from `entry` (code after `return`) keep
/// their slots but never receive dataflow facts. `in_cond[n]` is true
/// when node `n` was lowered from a branch/loop condition expression
/// (the "check" position of a check-then-act pattern).
pub struct Cfg {
    pub nodes: Vec<Node>,
    pub succs: Vec<Vec<usize>>,
    pub entry: usize,
    pub exit: usize,
    pub in_cond: Vec<bool>,
}

impl Cfg {
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut p = vec![Vec::new(); self.nodes.len()];
        for (n, ss) in self.succs.iter().enumerate() {
            for &s in ss {
                p[s].push(n);
            }
        }
        p
    }
}

/// Identifiers that never name a PM address or published value.
const NON_ADDR_IDENTS: &[&str] = &["ctx", "self", "tx"];

fn addr_base(args: &[Vec<String>], skip_last: bool) -> Vec<String> {
    // First non-context identifier of each relevant argument: the base
    // of the address expression (`seg.slot_addr(b, s)` → `seg`).
    let n = args.len().saturating_sub(skip_last as usize);
    let mut out = Vec::new();
    for a in &args[..n] {
        if let Some(id) = a.iter().find(|i| !NON_ADDR_IDENTS.contains(&i.as_str())) {
            out.push(id.clone());
        }
    }
    out
}

fn val_base(args: &[Vec<String>]) -> Vec<String> {
    args.last()
        .and_then(|a| a.iter().find(|i| !NON_ADDR_IDENTS.contains(&i.as_str())))
        .map(|s| vec![s.clone()])
        .unwrap_or_default()
}

/// Helper-call names inside the address argument(s) of an access —
/// the concurrency analyzer's word labels (`seg.slot_addr(b, s)` →
/// `slot_addr`).
fn via_calls(arg_calls: &[Vec<String>], skip_last: bool) -> Vec<String> {
    let n = arg_calls.len().saturating_sub(skip_last as usize);
    arg_calls[..n].iter().flatten().cloned().collect()
}

struct Lower {
    nodes: Vec<Node>,
    succs: Vec<Vec<usize>>,
    in_cond: Vec<bool>,
    fn_exit: usize,
    /// (continue target, break target) per enclosing loop.
    loop_stack: Vec<(usize, usize)>,
    /// Exit node of the innermost enclosing closure (region end or
    /// plain-closure merge); `return`/`?` route here when present.
    closure_exit: Vec<usize>,
    /// Nonzero while lowering a branch/loop condition expression.
    cond_depth: usize,
    /// Guard-style RAII regions (`let g = x.read();`) still open in the
    /// current scope: (RegionEnter node id, lock name). Closures scope
    /// them — guards acquired inside a closure drop at its exit.
    guards: Vec<(usize, String)>,
}

impl Lower {
    fn node(&mut self, ev: Ev, line: usize) -> usize {
        self.nodes.push(Node { ev, line });
        self.succs.push(Vec::new());
        self.in_cond.push(self.cond_depth > 0);
        self.nodes.len() - 1
    }

    /// A `RegionEnter` node whose `id` is its own index.
    fn region_enter(&mut self, lock: String, writer: bool, sharded: bool, line: usize) -> usize {
        let n = self.node(
            Ev::RegionEnter {
                id: 0,
                lock,
                writer,
                sharded,
            },
            line,
        );
        if let Ev::RegionEnter { id, .. } = &mut self.nodes[n].ev {
            *id = n;
        }
        n
    }

    fn edge(&mut self, a: usize, b: usize) {
        if !self.succs[a].contains(&b) {
            self.succs[a].push(b);
        }
    }

    fn early_exit_target(&self) -> usize {
        *self.closure_exit.last().unwrap_or(&self.fn_exit)
    }

    fn lower_block(&mut self, b: &Block, mut cur: usize) -> usize {
        for s in &b.0 {
            cur = self.lower_stmt(s, cur);
        }
        cur
    }

    /// Lower a closure body with its own loop scope and exit node.
    fn lower_closure(&mut self, b: &Block, entry: usize, exit: usize) {
        let saved_loops = std::mem::take(&mut self.loop_stack);
        let guard_mark = self.guards.len();
        self.closure_exit.push(exit);
        let mut end = self.lower_block(b, entry);
        // RAII guards acquired inside the closure drop at its scope end:
        // chain their release edges before the closure exit so the
        // lockset does not leak into the caller's continuation.
        while self.guards.len() > guard_mark {
            let (enter, lock) = self.guards.pop().unwrap();
            let line = self.nodes[end].line;
            let x = self.node(
                Ev::RegionExit {
                    enter: Some(enter),
                    lock,
                },
                line,
            );
            self.edge(end, x);
            end = x;
        }
        self.edge(end, exit);
        self.closure_exit.pop();
        self.loop_stack = saved_loops;
    }

    fn lower_stmt(&mut self, s: &Stmt, cur: usize) -> usize {
        match s {
            Stmt::Call(c) => self.lower_call(c, cur),
            Stmt::Bind {
                name,
                line,
                init_calls,
                init_idents,
            } => {
                let alloc = init_calls
                    .iter()
                    .any(|n| n.contains("alloc") && !n.contains("dealloc"));
                let n = self.node(
                    Ev::Bind {
                        var: name.clone(),
                        alloc,
                        init_calls: init_calls.clone(),
                        init_idents: init_idents.clone(),
                    },
                    *line,
                );
                self.edge(cur, n);
                n
            }
            Stmt::If {
                cond,
                then,
                els,
                cond_idents,
            } => {
                let mut split = cur;
                self.cond_depth += 1;
                for c in cond {
                    split = self.lower_stmt(c, split);
                }
                if !cond_idents.is_empty() {
                    let line = self.nodes[split].line;
                    let n = self.node(
                        Ev::CondUse {
                            idents: cond_idents.clone(),
                        },
                        line,
                    );
                    self.edge(split, n);
                    split = n;
                }
                self.cond_depth -= 1;
                let line = self.nodes[split].line;
                let merge = self.node(Ev::Nop, line);
                let t_end = self.lower_block(then, split);
                self.edge(t_end, merge);
                match els {
                    Some(e) => {
                        let e_end = self.lower_block(e, split);
                        self.edge(e_end, merge);
                    }
                    None => self.edge(split, merge),
                }
                merge
            }
            Stmt::Match { cond, arms } => {
                let mut split = cur;
                self.cond_depth += 1;
                for c in cond {
                    split = self.lower_stmt(c, split);
                }
                self.cond_depth -= 1;
                let line = self.nodes[split].line;
                let merge = self.node(Ev::Nop, line);
                if arms.is_empty() {
                    self.edge(split, merge);
                } else {
                    for a in arms {
                        let a_end = self.lower_block(a, split);
                        self.edge(a_end, merge);
                    }
                }
                merge
            }
            Stmt::Loop {
                cond,
                body,
                exits_by_cond,
            } => {
                let line = self.nodes[cur].line;
                let head = self.node(Ev::Nop, line);
                self.edge(cur, head);
                let mut c_end = head;
                self.cond_depth += 1;
                for c in cond {
                    c_end = self.lower_stmt(c, c_end);
                }
                self.cond_depth -= 1;
                let exit = self.node(Ev::Nop, line);
                // `while`/`for` may exit after evaluating the condition
                // without running the body; a bare `loop` exits only
                // through `break` edges.
                if *exits_by_cond {
                    self.edge(c_end, exit);
                }
                self.loop_stack.push((head, exit));
                let b_end = self.lower_block(body, c_end);
                self.edge(b_end, head);
                self.loop_stack.pop();
                exit
            }
            Stmt::Block(b) => self.lower_block(b, cur),
            Stmt::MaybeBlock(b) => {
                // A detached closure: may run zero or more times.
                let line = self.nodes[cur].line;
                let merge = self.node(Ev::Nop, line);
                self.edge(cur, merge);
                let entry = self.node(Ev::Nop, line);
                self.edge(cur, entry);
                self.lower_closure(b, entry, merge);
                merge
            }
            Stmt::Return { line } => {
                let t = self.early_exit_target();
                self.edge(cur, t);
                // Dead continuation node: no predecessors.
                self.node(Ev::Nop, *line)
            }
            Stmt::Question { line } => {
                let q = self.node(Ev::Nop, *line);
                self.edge(cur, q);
                let t = self.early_exit_target();
                self.edge(q, t);
                q
            }
            Stmt::Break { line } => {
                let t = self
                    .loop_stack
                    .last()
                    .map(|&(_, brk)| brk)
                    .unwrap_or_else(|| self.early_exit_target());
                self.edge(cur, t);
                self.node(Ev::Nop, *line)
            }
            Stmt::Continue { line } => {
                let t = self
                    .loop_stack
                    .last()
                    .map(|&(head, _)| head)
                    .unwrap_or_else(|| self.early_exit_target());
                self.edge(cur, t);
                self.node(Ev::Nop, *line)
            }
        }
    }

    fn lower_call(&mut self, c: &Call, cur: usize) -> usize {
        let line = c.line;
        let ev = match c.name.as_str() {
            "write_u64" | "write_bytes" => Some(Ev::Store {
                nt: false,
                tgt: addr_base(&c.args, true),
                via: via_calls(&c.arg_calls, true),
            }),
            "ntstore_bytes" => Some(Ev::Store {
                nt: true,
                tgt: addr_base(&c.args, true),
                via: via_calls(&c.arg_calls, true),
            }),
            "read_u64" => Some(Ev::Load {
                tgt: addr_base(&c.args, false),
                via: via_calls(&c.arg_calls, false),
            }),
            "read_bytes" => Some(Ev::Load {
                tgt: addr_base(&c.args, true),
                via: via_calls(&c.arg_calls, true),
            }),
            "flush" | "flush_range" => Some(Ev::Flush {
                tgt: addr_base(&c.args, false),
            }),
            "fence" => Some(Ev::Fence),
            "cas_u64" | "fetch_or_u64" | "fetch_and_u64" => Some(Ev::Publish {
                kind: PubKind::Rmw,
                val: val_base(&c.args),
                tgt: addr_base(&c.args[..c.args.len().min(1)], false),
                via: c.arg_calls.first().cloned().unwrap_or_default(),
            }),
            // Sanitizer bookkeeping, not memory traffic.
            "san_forgive" | "san_transient" | "san_ordered" | "san_tag" | "san_op_label" => {
                Some(Ev::Nop)
            }
            _ => None,
        };
        if let Some(ev) = ev {
            let n = self.node(ev, line);
            self.edge(cur, n);
            return n;
        }
        // Explicit lock/unlock pairs. `nontx_lock` keeps its call node
        // (its summary effect still applies); `nontx_unlock` keeps its
        // publication edge, preceded by the region exit so the lockset
        // analysis sees the release.
        if c.name == "nontx_lock" {
            let begin = self.region_enter("nontx".into(), true, false, line);
            self.edge(cur, begin);
            let n = self.node(
                Ev::Call {
                    name: c.name.clone(),
                    foreign: foreign_recv(&c.recv),
                },
                line,
            );
            self.edge(begin, n);
            return n;
        }
        if c.name == "nontx_unlock" {
            let rel = self.node(
                Ev::RegionExit {
                    enter: None,
                    lock: "nontx".into(),
                },
                line,
            );
            self.edge(cur, rel);
            let pb = self.node(
                Ev::Publish {
                    kind: PubKind::LockRelease,
                    val: vec![],
                    tgt: vec![],
                    via: vec![],
                },
                line,
            );
            self.edge(rel, pb);
            return pb;
        }
        // Guard-style RAII acquisition (`let t = self.table.read();`,
        // `let mut d = self.dir.write();`): a host RwLock guard held to
        // the end of the enclosing scope. Lowered as a region whose exit
        // the scope emits — the innermost closure's end, or the end of
        // the function when acquired at top level — matching RAII
        // drop-at-scope-end to the granularity the CFG models.
        if c.closures.is_empty()
            && c.args.is_empty()
            && (c.name == "read" || c.name == "write")
            && !c.recv.is_empty()
        {
            let lock = c
                .recv
                .rsplit('.')
                .next()
                .filter(|s| !s.is_empty())
                .unwrap_or("lock")
                .to_string();
            let begin = self.region_enter(lock.clone(), c.name == "write", c.recv_indexed, line);
            self.guards.push((begin, lock));
            self.edge(cur, begin);
            return begin;
        }
        // Region calls: the closure body runs between an entry event
        // and the region's publication edge.
        if !c.closures.is_empty() {
            match c.name.as_str() {
                "try_transaction" => {
                    let begin = self.node(Ev::HtmBegin, line);
                    self.edge(cur, begin);
                    let end = self.node(
                        Ev::Publish {
                            kind: PubKind::HtmCommit,
                            val: vec![],
                            tgt: vec![],
                            via: vec![],
                        },
                        line,
                    );
                    for cl in &c.closures {
                        self.lower_closure(cl, begin, end);
                    }
                    return end;
                }
                "run_two_phase" => {
                    // The Spash two-phase protocol wrapper (core/ops.rs):
                    // its closures run inside the wrapper's HTM
                    // transaction or, on the fallback path, under the
                    // nontx locks it acquires — either way writer-
                    // protected. Modeled as one writer region named
                    // "htm"; flow-neutral like `with` (the real
                    // HtmBegin/commit are lowered from the wrapper's own
                    // body, which is analyzed separately).
                    let begin = self.region_enter("htm".into(), true, false, line);
                    self.edge(cur, begin);
                    let end = self.node(
                        Ev::RegionExit {
                            enter: Some(begin),
                            lock: "htm".into(),
                        },
                        line,
                    );
                    for cl in &c.closures {
                        self.lower_closure(cl, begin, end);
                    }
                    return end;
                }
                "read" | "write" | "with" => {
                    // VLock / VRwLock / sharded-lock closure regions.
                    // The lock name is the last receiver segment
                    // (`seg.bucket_locks[i].with(…)` → `bucket_locks`).
                    let lock = c
                        .recv
                        .rsplit('.')
                        .next()
                        .filter(|s| !s.is_empty())
                        .unwrap_or("lock")
                        .to_string();
                    let writer = c.name != "read";
                    let begin = self.region_enter(lock.clone(), writer, c.recv_indexed, line);
                    self.edge(cur, begin);
                    let end = self.node(
                        Ev::RegionExit {
                            enter: Some(begin),
                            lock,
                        },
                        line,
                    );
                    for cl in &c.closures {
                        self.lower_closure(cl, begin, end);
                    }
                    // `VLock::with` returns the closure's value without a
                    // publication edge of its own in the dynamic model's
                    // eADR paths; the flow rules never treated it as one,
                    // so only `read`/`write` keep their release edge.
                    if c.name == "with" {
                        return end;
                    }
                    let pb = self.node(
                        Ev::Publish {
                            kind: PubKind::LockRelease,
                            val: vec![],
                            tgt: vec![],
                            via: vec![],
                        },
                        line,
                    );
                    self.edge(end, pb);
                    return pb;
                }
                _ => {
                    // Unknown higher-order call (`stats_span`, iterator
                    // adapters…): closure may run; no region semantics.
                    let merge = self.node(Ev::Nop, line);
                    self.edge(cur, merge);
                    for cl in &c.closures {
                        let entry = self.node(Ev::Nop, line);
                        self.edge(cur, entry);
                        self.lower_closure(cl, entry, merge);
                    }
                    let n = self.node(
                        Ev::Call {
                            name: c.name.clone(),
                            foreign: foreign_recv(&c.recv),
                        },
                        line,
                    );
                    self.edge(merge, n);
                    return n;
                }
            }
        }
        let n = self.node(
            Ev::Call {
                name: c.name.clone(),
                foreign: foreign_recv(&c.recv),
            },
            line,
        );
        self.edge(cur, n);
        n
    }
}

/// Does the receiver point outside the current file's own fn namespace?
/// Bare calls and `self.helper`/`Self::helper` target functions the
/// same-file resolution rule may claim; anything else (`Arc::new`,
/// `map.insert`, `alloc.alloc_region`, `common::make_val`) targets some
/// other type's method and must resolve by global uniqueness only.
fn foreign_recv(recv: &str) -> bool {
    !(recv.is_empty() || recv == "self" || recv == "Self")
}

/// Build the CFG for one parsed function.
pub fn build_cfg(f: &Func) -> Cfg {
    let mut l = Lower {
        nodes: Vec::new(),
        succs: Vec::new(),
        in_cond: Vec::new(),
        fn_exit: 0,
        loop_stack: Vec::new(),
        closure_exit: Vec::new(),
        cond_depth: 0,
        guards: Vec::new(),
    };
    let entry = l.node(Ev::Nop, f.line);
    let exit = l.node(Ev::Nop, f.end_line);
    l.fn_exit = exit;
    let end = l.lower_block(&f.body, entry);
    l.edge(end, exit);
    Cfg {
        nodes: l.nodes,
        succs: l.succs,
        entry,
        exit,
        in_cond: l.in_cond,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::strip_non_code;
    use crate::parse::parse_functions;

    fn cfg_of(src: &str) -> Cfg {
        let fs = parse_functions(&strip_non_code(src));
        assert_eq!(fs.len(), 1, "expected one fn in {src}");
        build_cfg(&fs[0])
    }

    fn count(cfg: &Cfg, pred: impl Fn(&Ev) -> bool) -> usize {
        cfg.nodes.iter().filter(|n| pred(&n.ev)).count()
    }

    #[test]
    fn straight_line_events() {
        let cfg = cfg_of("fn f() { ctx.write_u64(a, v); ctx.flush(a); ctx.fence(); }");
        assert_eq!(count(&cfg, |e| matches!(e, Ev::Store { .. })), 1);
        assert_eq!(count(&cfg, |e| matches!(e, Ev::Flush { .. })), 1);
        assert_eq!(count(&cfg, |e| matches!(e, Ev::Fence)), 1);
    }

    #[test]
    fn branch_has_two_paths_to_merge() {
        let cfg = cfg_of("fn f() { if c { ctx.flush(a); } ctx.fence(); }");
        // The fence node must have the merge as its only pred path, and
        // the merge two preds (then-branch end, condition skip).
        let preds = cfg.preds();
        let fence = cfg
            .nodes
            .iter()
            .position(|n| matches!(n.ev, Ev::Fence))
            .unwrap();
        let merge = preds[fence][0];
        assert_eq!(preds[merge].len(), 2);
    }

    #[test]
    fn htm_region_brackets_body() {
        let cfg = cfg_of(
            "fn f() { self.htm.try_transaction(ctx, |tx, ctx| { tx.write_u64(ctx, a, v)?; Ok(()) }); }",
        );
        assert_eq!(count(&cfg, |e| matches!(e, Ev::HtmBegin)), 1);
        assert_eq!(
            count(
                &cfg,
                |e| matches!(e, Ev::Publish { kind: PubKind::HtmCommit, .. })
            ),
            1
        );
        // `?` inside the closure must reach the commit node, not fn exit.
        let commit = cfg
            .nodes
            .iter()
            .position(|n| matches!(n.ev, Ev::Publish { kind: PubKind::HtmCommit, .. }))
            .unwrap();
        let preds = cfg.preds();
        assert!(preds[commit].len() >= 2, "early exit + fallthrough");
    }

    #[test]
    fn lock_region_publishes_at_end() {
        let cfg = cfg_of("fn f() { seg.rw.write(ctx, |ctx| { ctx.write_u64(a, v); }); }");
        assert_eq!(
            count(
                &cfg,
                |e| matches!(e, Ev::Publish { kind: PubKind::LockRelease, .. })
            ),
            1
        );
    }

    #[test]
    fn loop_back_edge_exists() {
        let cfg = cfg_of("fn f() { loop { if done { break; } ctx.fence(); } }");
        // Some node must have a successor with a smaller index (the
        // back edge to the loop head).
        let has_back = cfg
            .succs
            .iter()
            .enumerate()
            .any(|(i, ss)| ss.iter().any(|&s| s < i && s != cfg.exit));
        assert!(has_back);
    }

    #[test]
    fn return_routes_to_fn_exit() {
        let cfg = cfg_of("fn f() { if c { return; } ctx.fence(); }");
        let preds = cfg.preds();
        assert!(preds[cfg.exit].len() >= 2, "{:?}", preds[cfg.exit]);
    }

    #[test]
    fn rmw_is_publish_with_value() {
        let cfg = cfg_of("fn f() { ctx.cas_u64(head, old, node.0); }");
        let publish = cfg
            .nodes
            .iter()
            .find(|n| matches!(n.ev, Ev::Publish { .. }))
            .unwrap();
        let Ev::Publish { kind, val, .. } = &publish.ev else { unreachable!() };
        assert_eq!(*kind, PubKind::Rmw);
        assert_eq!(val, &["node".to_string()]);
    }

    #[test]
    fn store_target_base_identifier() {
        let cfg = cfg_of("fn f() { ctx.write_u64(seg.slot_addr(b, s), v); }");
        let store = cfg
            .nodes
            .iter()
            .find(|n| matches!(n.ev, Ev::Store { .. }))
            .unwrap();
        let Ev::Store { tgt, .. } = &store.ev else { unreachable!() };
        assert_eq!(tgt, &["seg".to_string()]);
    }
}
